"""Cluster topology: machines, workers and parameter servers.

The paper's two test clusters have 13 machines (4 cores each) and 6
machines (32 cores each); a physical node may host any number of workers
and servers. The default layout below mirrors the paper's evaluation: one
worker per machine, and parameter servers co-located with the first
machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.network import GIGABIT, NetworkModel

__all__ = ["ClusterSpec"]


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of a simulated cluster.

    Attributes:
        num_workers: Data-parallel workers (one graph partition each).
        num_servers: Parameter servers holding the model shards.
        workers_per_machine: Workers packed onto each machine.
        colocate_servers: If True (default) server ``s`` runs on machine
            ``s % num_machines``; pulls from co-located workers are free.
        network: Interconnect model (Gigabit Ethernet by default).
        compute_speed: Relative per-worker compute speed used to translate
            measured single-process kernel time into per-machine time; 1.0
            means "as fast as this host".
        worker_speeds: Optional per-worker speed multipliers for
            heterogeneous clusters (the setting where the paper notes
            All-Reduce breaks down but the PS architecture survives).
            ``None`` means a homogeneous cluster.
        overlap_comm: Model perfect communication/computation overlap
            (epoch = max(compute, comm)) instead of the synchronous
            default (epoch = compute + comm). AGL's pipelining claim is
            modelled this way.
    """

    num_workers: int
    num_servers: int = 1
    workers_per_machine: int = 1
    colocate_servers: bool = True
    network: NetworkModel = field(default=GIGABIT)
    compute_speed: float = 1.0
    worker_speeds: tuple[float, ...] | None = None
    overlap_comm: bool = False

    def __post_init__(self):
        if self.num_workers <= 0:
            raise ValueError("need at least one worker")
        if self.num_servers <= 0:
            raise ValueError("need at least one server")
        if self.workers_per_machine <= 0:
            raise ValueError("workers_per_machine must be positive")
        if self.compute_speed <= 0:
            raise ValueError("compute_speed must be positive")
        if self.worker_speeds is not None:
            if len(self.worker_speeds) != self.num_workers:
                raise ValueError(
                    f"{len(self.worker_speeds)} worker speeds for "
                    f"{self.num_workers} workers"
                )
            if any(speed <= 0 for speed in self.worker_speeds):
                raise ValueError("worker speeds must be positive")

    def speed_of(self, worker: int) -> float:
        """Effective compute speed of one worker."""
        base = self.compute_speed
        if self.worker_speeds is not None:
            base *= self.worker_speeds[worker]
        return base

    @property
    def num_machines(self) -> int:
        """Machines needed for the workers (servers are co-located)."""
        return -(-self.num_workers // self.workers_per_machine)

    @property
    def storage_machine(self) -> int:
        """Machine hosting the shared graph store (feature shards live
        on the first machine's disks; elastic recovery fetches adopted
        features from here)."""
        return 0

    def worker_machine(self, worker: int) -> int:
        """Machine hosting ``worker``."""
        if not 0 <= worker < self.num_workers:
            raise IndexError(f"worker {worker} out of range")
        return worker // self.workers_per_machine

    def server_machine(self, server: int) -> int:
        """Machine hosting ``server``."""
        if not 0 <= server < self.num_servers:
            raise IndexError(f"server {server} out of range")
        if self.colocate_servers:
            return server % self.num_machines
        # Dedicated server machines appended after the worker machines.
        return self.num_machines + server
