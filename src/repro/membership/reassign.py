"""Live partition adoption after a permanent worker loss.

When the :class:`~repro.membership.view.MembershipView` declares a
worker dead for good, its partition must not die with it. The
:class:`PartitionReassigner` hands the orphaned vertices to the
least-loaded survivor (load = owned vertices + incident edges, from
:func:`~repro.partition.stats.part_loads`), rebuilds every worker's
request/serve/halo plan from the updated assignment, refetches the
features the adopter now needs from the shared graph store, and carries
what it can of the *gradient gap* — the ResEC-BP residuals queued on
channels that no longer exist — into the residuals of the channels that
replace them, remapped vertex by vertex.

Dead workers keep their index: their slot in ``ctx.workers`` holds an
empty :class:`~repro.core.worker.WorkerState` (zero vertices, no
channels), so worker ids, cluster-spec machine placement and every
positional structure in the engine stay stable across membership
changes. A rejoining worker reclaims exactly the vertices it originally
owned, wherever adoption has since moved them.
"""

from __future__ import annotations

import numpy as np

from repro.core.messages import ChannelKey
from repro.core.worker import WorkerState, build_worker_states
from repro.engine.context import ExchangeContext
from repro.graph.csr import CSRGraph
from repro.membership.view import MembershipView
from repro.partition.base import Partition
from repro.partition.stats import part_loads

__all__ = ["PartitionReassigner"]


class PartitionReassigner:
    """Moves partitions between workers and rebuilds the exchange.

    Args:
        ctx: The shared exchange context (workers list is swapped in
            place so every holder of the reference sees the new states).
        backend: The model backend; its ``on_membership_change`` hook
            rebuilds architecture-specific derived structures.
        normalized: The globally normalized adjacency the worker states
            were originally built from.
        partition: The original partition; rejoins reclaim against it.
        membership: The membership view (liveness + event timeline).
    """

    def __init__(
        self,
        ctx: ExchangeContext,
        backend,
        normalized: CSRGraph,
        partition: Partition,
        membership: MembershipView,
    ):
        self.ctx = ctx
        self.backend = backend
        self.normalized = normalized
        self.membership = membership
        self.original = partition.assignment.copy()
        self.assignment = partition.assignment.copy()

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def adopt(self, epoch: int, dead: int) -> int:
        """Hand ``dead``'s partition to the least-loaded survivor."""
        membership = self.membership
        loads = part_loads(
            self.normalized, self.assignment, membership.num_workers
        )
        survivors = membership.alive_workers()
        if not survivors:
            raise RuntimeError("no survivors left to adopt a partition")
        adopter = min(survivors, key=lambda w: (int(loads[w]), w))
        moved = self.assignment == dead
        count = int(moved.sum())
        self.assignment[moved] = adopter
        membership.custodian[dead] = adopter
        membership.record(
            epoch, "partition_adopted", dead,
            adopter=adopter, vertices=count,
        )
        self._rebuild(epoch, changed={dead, adopter}, reloaded={adopter: count})
        return adopter

    def rejoin(self, epoch: int, worker: int) -> list[int]:
        """Return ``worker``'s original vertices from their custodians."""
        mask = self.original == worker
        holders = [
            int(w) for w in np.unique(self.assignment[mask])
            if int(w) != worker
        ]
        count = int(mask.sum())
        self.assignment[mask] = worker
        self.membership.custodian[worker] = worker
        self.membership.record(
            epoch, "partition_reclaimed", worker,
            reclaimed_from=holders, vertices=count,
        )
        self._rebuild(
            epoch, changed={worker, *holders}, reloaded={worker: count}
        )
        return holders

    # ------------------------------------------------------------------
    # Rebuild
    # ------------------------------------------------------------------
    def _rebuild(
        self, epoch: int, changed: set[int], reloaded: dict[int, int]
    ) -> None:
        """Rebuild worker states and exchange state after a move.

        ``changed`` workers are those whose *local vertex set* changed —
        everything derived from it (requests, serves, halo ordering,
        channels) is rebuilt; unchanged workers keep the same halo
        ordering, so their cached halo features carry over for free.
        ``reloaded`` maps workers to the number of vertices whose
        features they must refetch from the shared graph store.
        """
        ctx = self.ctx
        faults = ctx.config.faults
        old_states = list(ctx.workers)

        exported: list[tuple[ChannelKey, np.ndarray]] = []
        export = getattr(ctx.bp_policy, "export_residuals", None)
        if export is not None:
            exported = export(changed)

        partition = Partition(
            assignment=self.assignment.copy(),
            num_parts=self.membership.num_workers,
            method="elastic",
        )
        new_states = build_worker_states(ctx.graph, self.normalized, partition)
        if ctx.config.cache_first_hop:
            for state in new_states:
                if state.worker_id not in changed:
                    state.halo_features = (
                        old_states[state.worker_id].halo_features
                    )
        ctx.workers[:] = new_states

        # Changed survivors refetch their halo feature cache from the
        # owning workers; the adopter additionally reloads its new local
        # features from the shared graph store, and pays the process
        # state-rebuild stall.
        if ctx.config.cache_first_hop:
            for worker in sorted(changed):
                state = ctx.workers[worker]
                if self.membership.is_alive(worker):
                    self._refetch_halo(state)
                else:
                    # Dead slot: an empty cache keeps the positional
                    # eval/exchange paths shape-consistent.
                    state.halo_features = np.zeros(
                        (state.num_halo, ctx.graph.feature_dim),
                        dtype=np.float32,
                    )
        for worker in sorted(reloaded):
            count = reloaded[worker]
            ctx.runtime.add_stall(worker, faults.recovery_seconds)
            if count:
                num_bytes = count * ctx.graph.feature_dim * 4 + 16
                ctx.runtime.fetch_from_store(worker, num_bytes, "recovery")

        carried, dropped = self._carry_residuals(
            exported, old_states, new_states
        )
        if export is None:
            invalidate = getattr(ctx.bp_policy, "invalidate_worker", None)
            if invalidate is not None:
                for worker in sorted(changed):
                    invalidate(worker)
        invalidate_fp = getattr(ctx.fp_policy, "invalidate_worker", None)
        if invalidate_fp is not None:
            for worker in sorted(changed):
                invalidate_fp(worker)

        ctx.transport.rebuild(changed)
        self.prime_sampled_channels()
        hook = getattr(self.backend, "on_membership_change", None)
        if hook is not None:
            hook()
        self.membership.record(
            epoch, "exchange_rebuilt",
            changed=sorted(changed),
            residual_rows_carried=carried,
            residual_rows_dropped=dropped,
        )

    def _refetch_halo(self, state: WorkerState) -> None:
        """Refetch one survivor's halo feature cache (charged traffic)."""
        ctx = self.ctx
        halo = np.zeros(
            (state.num_halo, ctx.graph.feature_dim), dtype=np.float32
        )
        # ecg: ignore[ECG003] halo_slots insertion order IS the bit-pinned channel plan order; refetch must scatter rows in plan order
        for owner, slots in state.halo_slots.items():
            responder = ctx.workers[owner]
            rows = responder.features[responder.serves[state.worker_id]]
            halo[slots] = rows
            ctx.runtime.send_worker_to_worker(
                owner, state.worker_id, rows.nbytes + 16, "recovery"
            )
        state.halo_features = halo

    # ------------------------------------------------------------------
    # Gradient-gap carry
    # ------------------------------------------------------------------
    def _carry_residuals(
        self,
        exported: list[tuple[ChannelKey, np.ndarray]],
        old_states: list[WorkerState],
        new_states: list[WorkerState],
    ) -> tuple[int, int]:
        """Remap exported ResEC residual rows onto the new channels.

        Each residual row belongs to one global vertex; the row moves to
        the channel that now carries that vertex's gradient (new owner →
        surviving consumer), accumulating on collision. Rows whose
        vertex became local to its consumer (no channel anymore) or
        whose consumer has no surviving successor are dropped — that
        part of the gap is genuinely unrecoverable and the watchdog
        covers the fallout. Returns ``(carried_rows, dropped_rows)``.
        """
        policy = self.ctx.bp_policy
        seed = getattr(policy, "seed_residual", None)
        if seed is None or not exported:
            return 0, sum(r.shape[0] for _, r in exported)
        pending: dict[ChannelKey, np.ndarray] = {}
        carried = dropped = 0
        for key, residual in exported:
            resolved = self._resolve_channel(key, old_states, residual.shape[0])
            if resolved is None:
                dropped += residual.shape[0]
                continue
            consumer, owner, reverse = resolved
            ids = old_states[consumer].requests[owner]
            new_consumer = self._successor(consumer, old_states)
            if new_consumer is None:
                dropped += residual.shape[0]
                continue
            new_owners = self.assignment[ids]
            for new_owner in np.unique(new_owners):
                new_owner = int(new_owner)
                sel = new_owners == new_owner
                if new_owner == new_consumer:
                    dropped += int(sel.sum())  # became local: no channel
                    continue
                wanted = new_states[new_consumer].requests.get(new_owner)
                if wanted is None:
                    dropped += int(sel.sum())
                    continue
                sub_ids = ids[sel]
                pos = np.searchsorted(wanted, sub_ids)
                ok = pos < wanted.size
                ok &= wanted[np.minimum(pos, wanted.size - 1)] == sub_ids
                dropped += int((~ok).sum())
                if not ok.any():
                    continue
                if reverse:
                    new_key = ChannelKey(key.layer, new_consumer, new_owner)
                else:
                    new_key = ChannelKey(key.layer, new_owner, new_consumer)
                buffer = pending.get(new_key)
                if buffer is None:
                    buffer = pending[new_key] = np.zeros(
                        (wanted.size, residual.shape[1]), dtype=np.float32
                    )
                np.add.at(buffer, pos[ok], residual[sel][ok])
                carried += int(ok.sum())
        for new_key in sorted(pending):
            seed(new_key, pending[new_key])
        return carried, dropped

    def _resolve_channel(
        self, key: ChannelKey, old_states: list[WorkerState], num_rows: int
    ) -> tuple[int, int, bool] | None:
        """Which endpoint consumed the channel's rows?

        Forward-style gradient fetches (GCN/SAGE) key the channel as
        (responder=owner, requester=consumer); reverse pushes (GAT) flip
        it. The residual length equals the consumer's request list for
        the owner, which disambiguates. Returns
        ``(consumer, owner, reverse)`` or None.
        """
        forward = old_states[key.requester].requests.get(key.responder)
        if forward is not None and forward.shape[0] == num_rows:
            return key.requester, key.responder, False
        reverse = old_states[key.responder].requests.get(key.requester)
        if reverse is not None and reverse.shape[0] == num_rows:
            return key.responder, key.requester, True
        return None

    def _successor(
        self, worker: int, old_states: list[WorkerState]
    ) -> int | None:
        """Who consumes ``worker``'s channels now — itself, or the single
        worker that took over its whole vertex set."""
        if self.membership.is_alive(worker):
            return worker
        owners = np.unique(
            self.assignment[old_states[worker].sub.local_vertices]
        )
        if owners.size != 1:
            return None
        successor = int(owners[0])
        return successor if self.membership.is_alive(successor) else None

    # ------------------------------------------------------------------
    def prime_sampled_channels(self) -> None:
        """Re-prime full-channel residual state after a rebuild.

        Sampled training requires every backward channel's residual to
        exist before the first subset respond (see
        :meth:`~repro.core.resec_bp.ResECPolicy.prime_residual`); new
        channels created by adoption start at zero, while carried
        residuals keep their seeded values.
        """
        ctx = self.ctx
        prime = getattr(ctx.bp_policy, "prime_residual", None)
        has = getattr(ctx.bp_policy, "has_residual", None)
        if prime is None or has is None:
            return
        if getattr(self.backend, "subsets", None) is None:
            return  # full-batch backends never respond with a subset
        for layer in range(2, ctx.params.num_layers + 1):
            for state in ctx.workers:
                for owner, wanted in sorted(state.requests.items()):
                    key = ChannelKey(
                        layer=layer,
                        responder=owner,
                        requester=state.worker_id,
                    )
                    if not has(key):
                        prime(key, wanted.shape[0], ctx.params.dims[layer])
