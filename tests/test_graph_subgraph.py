"""Unit tests for subgraph extraction (graph-centered and ML-centered views)."""

import numpy as np
import pytest

from repro.graph.csr import from_edge_list
from repro.graph.subgraph import (
    induced_subgraph,
    khop_neighborhood,
    khop_sampled_neighborhood,
)


@pytest.fixture
def path_graph():
    """0 - 1 - 2 - 3 - 4 (symmetric path)."""
    edges = []
    for v in range(4):
        edges.append((v, v + 1))
        edges.append((v + 1, v))
    return from_edge_list(edges, 5)


class TestInducedSubgraph:
    def test_local_and_remote_split(self, path_graph):
        sub = induced_subgraph(path_graph, np.array([0, 1]))
        np.testing.assert_array_equal(sub.local_vertices, [0, 1])
        np.testing.assert_array_equal(sub.remote_vertices, [2])
        assert sub.num_local == 2 and sub.num_remote == 1

    def test_compact_ids_local_first(self, path_graph):
        sub = induced_subgraph(path_graph, np.array([1, 2]))
        assert sub.global_to_compact[1] == 0
        assert sub.global_to_compact[2] == 1
        # Remote vertices 0 and 3, sorted, take compact ids 2 and 3.
        assert sub.global_to_compact[0] == 2
        assert sub.global_to_compact[3] == 3

    def test_all_local_edges_kept(self, path_graph):
        sub = induced_subgraph(path_graph, np.array([1, 2]))
        # Vertex 1's row: neighbours 0 (remote) and 2 (local).
        row1 = sub.indices[sub.indptr[0]:sub.indptr[1]]
        assert set(row1.tolist()) == {sub.global_to_compact[0],
                                      sub.global_to_compact[2]}

    def test_whole_graph_has_no_remote(self, path_graph):
        sub = induced_subgraph(path_graph, np.arange(5))
        assert sub.num_remote == 0
        assert sub.num_edges == path_graph.num_edges

    def test_duplicate_locals_rejected(self, path_graph):
        with pytest.raises(ValueError, match="duplicates"):
            induced_subgraph(path_graph, np.array([0, 0]))

    def test_weights_follow_edges(self, path_graph):
        from repro.graph.normalize import gcn_normalize

        normalized = gcn_normalize(path_graph)
        sub = induced_subgraph(normalized, np.array([1, 2]))
        assert sub.weights is not None
        assert sub.weights.shape == sub.indices.shape
        # Weight of edge 1->2 in the subgraph equals the global weight.
        dense = normalized.to_scipy().toarray()
        row1 = slice(sub.indptr[0], sub.indptr[1])
        for col, w in zip(sub.indices[row1], sub.weights[row1]):
            global_col = (
                sub.local_vertices[col]
                if col < sub.num_local
                else sub.remote_vertices[col - sub.num_local]
            )
            assert w == pytest.approx(dense[1, global_col], abs=1e-6)

    def test_compact_ids_helper(self, path_graph):
        sub = induced_subgraph(path_graph, np.array([0, 1]))
        np.testing.assert_array_equal(
            sub.compact_ids(np.array([1, 2])), [1, 2]
        )


class TestKHop:
    def test_zero_hops_is_targets(self, path_graph):
        result = khop_neighborhood(path_graph, np.array([2]), 0)
        np.testing.assert_array_equal(result, [2])

    def test_one_hop(self, path_graph):
        result = khop_neighborhood(path_graph, np.array([2]), 1)
        np.testing.assert_array_equal(result, [1, 2, 3])

    def test_covers_whole_path(self, path_graph):
        result = khop_neighborhood(path_graph, np.array([0]), 4)
        np.testing.assert_array_equal(result, np.arange(5))

    def test_negative_hops_rejected(self, path_graph):
        with pytest.raises(ValueError):
            khop_neighborhood(path_graph, np.array([0]), -1)

    def test_growth_matches_table2_direction(self, medium_graph):
        """More hops -> strictly more cached vertices (the g^L blowup)."""
        adjacency = medium_graph.adjacency
        targets = np.array([0, 1, 2])
        sizes = [
            khop_neighborhood(adjacency, targets, hops).size
            for hops in (1, 2, 3)
        ]
        assert sizes[0] < sizes[1] <= sizes[2]


class TestSampledKHop:
    def test_fanout_bounds_layer_growth(self, medium_graph):
        rng = np.random.default_rng(0)
        targets = np.arange(10)
        layers = khop_sampled_neighborhood(
            medium_graph.adjacency, targets, [3, 3], rng
        )
        assert len(layers) == 2
        assert layers[0].size <= 10 * 3
        assert layers[1].size <= (10 + layers[0].size) * 3

    def test_layers_disjoint_from_targets(self, medium_graph):
        rng = np.random.default_rng(0)
        targets = np.arange(5)
        layers = khop_sampled_neighborhood(
            medium_graph.adjacency, targets, [4], rng
        )
        assert not set(layers[0].tolist()) & set(targets.tolist())

    def test_bad_fanout_rejected(self, path_graph):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            khop_sampled_neighborhood(path_graph, np.array([0]), [0], rng)
