"""Streaming graph generation: edge chunks spill to a store.

Two generators that never hold the full edge list in memory:

* :func:`stream_graph` — the planted-partition (SBM) generator,
  **bit-identical** to :func:`repro.graph.generators.generate_graph`:
  the RNG call sequence is replicated exactly (labels, degrees,
  per-vertex edge stubs, feature chunks, label noise, split masks —
  numpy ``Generator`` draws are stream-sequential, so chunked draws
  equal one big draw), and the CSR layout is reconstructed from the
  deduplicated edge-key set by :func:`fill_csr_symmetric`, which
  reproduces ``from_edge_list(both_arcs, deduplicate=True)`` exactly.
* :func:`stream_rmat_graph` — a chunk-seeded R-MAT twin for the large
  bench tier: each edge chunk draws from ``default_rng([seed, chunk])``
  so generation is embarrassingly chunkable and O(chunk) in memory.
  Its rows come out fully sorted (directed-key dedup), which is a
  *different* canonical layout from the legacy
  :func:`repro.graph.rmat.generate_rmat_graph` (whose level-major RNG
  cannot be chunked); the two are distinct named generators, and the
  memory/mmap backends of *this* generator are bit-identical to each
  other.

Per-vertex arrays (labels, degrees, masks) are O(n) and stay resident —
the things that scale as O(E) and O(n·d) (edge list, feature matrix)
are what stream.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro.graph.attributed import make_split_masks
from repro.graph.generators import GraphSpec, power_law_degrees
from repro.graph.rmat import RMATSpec
from repro.graph.store.base import GraphStoreBundle
from repro.graph.store.builder import StoreBuilder
from repro.graph.store.external import (
    ExternalSorter,
    fill_csr_directed,
    fill_csr_symmetric,
)
from repro.graph.store.mmapstore import (
    DEFAULT_CHUNK_VERTICES,
    DEFAULT_RESIDENT_BLOCKS,
)

__all__ = ["stream_graph", "stream_rmat_graph"]

DEFAULT_CHUNK_EDGES = 1 << 18


class _KeySpool:
    """Capture a sorted key stream once, replay it many times.

    The symmetric CSR fill needs two passes over the merged edge keys;
    the spool writes blocks to npy files (mmap path) or keeps them as
    arrays (memory path) while the first pass also accumulates the
    per-vertex counts.
    """

    def __init__(self, workdir: Path | None):
        self._workdir = workdir
        self._blocks: list[Path | np.ndarray] = []
        self.total = 0

    def fill(self, blocks: Iterator[np.ndarray]) -> None:
        for i, block in enumerate(blocks):
            self.total += block.size
            if self._workdir is None:
                self._blocks.append(block)
            else:
                path = self._workdir / f"keys-{i:05d}.npy"
                np.save(path, block)
                self._blocks.append(path)

    def __iter__(self) -> Iterator[np.ndarray]:
        for block in self._blocks:
            if isinstance(block, Path):
                yield np.load(block)
            else:
                yield block

    def cleanup(self) -> None:
        for block in self._blocks:
            if isinstance(block, Path):
                block.unlink(missing_ok=True)
        self._blocks = []


def _chunk_ranges(n: int, chunk: int) -> Iterator[tuple[int, int]]:
    for start in range(0, n, chunk):
        yield start, min(start + chunk, n)


def _write_features_chunked(
    builder: StoreBuilder,
    labels: np.ndarray,
    centroids: np.ndarray,
    noise_scale: float,
    rng: np.random.Generator,
    feature_dim: int,
    chunk_rows: int,
) -> None:
    """Chunked twin of :func:`repro.graph.generators.class_features`.

    Row-chunked ``standard_normal`` draws consume the identical RNG
    stream as one ``(n, d)`` draw, and the per-element arithmetic is
    the same expression, so the emitted float32 rows are bit-identical.
    Draw blocks are capped below the storage chunk (the writer spans
    chunk files transparently) so the float64 temporaries stay a few
    MB even when chunks are large — at the million-vertex tier the
    feature pass would otherwise dominate the generator's peak RSS.
    """
    draw_rows = min(chunk_rows, 16_384)
    column = builder.column_writer("features", (feature_dim,), np.float32)
    for start, stop in _chunk_ranges(labels.shape[0], draw_rows):
        noise = rng.standard_normal((stop - start, feature_dim))
        block = centroids[labels[start:stop]] + noise * noise_scale
        column.append(block.astype(np.float32))
    column.close()


def _planted_partition_keys(
    labels: np.ndarray,
    degrees: np.ndarray,
    homophily: float,
    rng: np.random.Generator,
    sorter: ExternalSorter,
    chunk_vertices: int,
) -> None:
    """Per-vertex stub sampling, identical to ``planted_partition_edges``.

    The per-vertex RNG calls (``random``, two ``integers``) are made in
    the same order with the same sizes; kept edges are encoded as
    undirected keys ``lo * n + hi`` and appended to the sorter in vertex
    chunks instead of accumulating python lists.
    """
    n = labels.shape[0]
    num_classes = int(labels.max()) + 1
    members = [np.flatnonzero(labels == c) for c in range(num_classes)]
    stubs = np.maximum(degrees // 2, 1)
    for start, stop in _chunk_ranges(n, chunk_vertices):
        chunk_keys: list[np.ndarray] = []
        for v in range(start, stop):
            k = int(stubs[v])
            same = rng.random(k) < homophily
            partners = np.empty(k, dtype=np.int64)
            n_same = int(same.sum())
            if n_same:
                pool = members[labels[v]]
                partners[same] = pool[rng.integers(0, pool.size, size=n_same)]
            n_diff = k - n_same
            if n_diff:
                partners[~same] = rng.integers(0, n, size=n_diff)
            kept = partners[partners != v]
            lo = np.minimum(kept, v)
            hi = np.maximum(kept, v)
            chunk_keys.append(lo * n + hi)
        if chunk_keys:
            sorter.append(np.concatenate(chunk_keys))


def _make_builder(
    num_vertices: int,
    backend: str,
    out_dir: str | Path | None,
    chunk_vertices: int,
    max_resident_blocks: int,
) -> tuple[StoreBuilder, Path | None]:
    builder = StoreBuilder(
        num_vertices,
        backend=backend,
        out_dir=out_dir,
        chunk_vertices=chunk_vertices,
        max_resident_blocks=max_resident_blocks,
    )
    spill: Path | None = None
    if backend == "mmap":
        spill = Path(tempfile.mkdtemp(prefix="sort-", dir=str(out_dir)))
    return builder, spill


def stream_graph(
    spec: GraphSpec,
    backend: str = "memory",
    out_dir: str | Path | None = None,
    chunk_vertices: int = DEFAULT_CHUNK_VERTICES,
    max_resident_blocks: int = DEFAULT_RESIDENT_BLOCKS,
) -> GraphStoreBundle:
    """Streaming twin of :func:`~repro.graph.generators.generate_graph`.

    Returns a :class:`GraphStoreBundle`; with ``backend="memory"`` its
    ``materialize()`` is bit-identical to ``generate_graph(spec)`` —
    same CSR, features, labels and masks — and with ``backend="mmap"``
    the same bytes land in chunk files under ``out_dir``.
    """
    n = spec.num_vertices
    builder, spill = _make_builder(
        n, backend, out_dir, chunk_vertices, max_resident_blocks
    )
    try:
        rng = np.random.default_rng(spec.seed)
        labels = rng.integers(0, spec.num_classes, size=n)
        labels[:spec.num_classes] = np.arange(spec.num_classes)

        if spec.power_law > 0:
            degrees = power_law_degrees(
                n, spec.avg_degree, spec.power_law, rng
            )
        else:
            jitter = rng.integers(-1, 2, size=n)
            degrees = np.clip(
                np.round(spec.avg_degree + jitter), 1, n - 1
            ).astype(np.int64)

        sorter = ExternalSorter(workdir=spill)
        _planted_partition_keys(
            labels, degrees, spec.homophily, rng, sorter, chunk_vertices
        )

        scale = 1.0 / np.sqrt(spec.feature_dim)
        centroids = rng.standard_normal(
            (spec.num_classes, spec.feature_dim)
        ) * scale
        _write_features_chunked(
            builder, labels, centroids, spec.feature_noise * scale,
            rng, spec.feature_dim, chunk_vertices,
        )

        observed = labels
        if spec.label_noise > 0.0:
            observed = labels.copy()
            flip = rng.random(n) < spec.label_noise
            observed[flip] = rng.integers(
                0, spec.num_classes, size=int(flip.sum())
            )

        train = spec.train or max(spec.num_classes * 20, n // 10)
        val = spec.val or max(n // 20, spec.num_classes)
        test = spec.test or max(n // 5, spec.num_classes)
        total = train + val + test
        if total > n:
            ratio = n / (total + 1)
            train = max(int(train * ratio), 1)
            val = max(int(val * ratio), 1)
            test = max(int(test * ratio), 1)
        masks = make_split_masks(n, train, val, test, rng)

        builder.set_column("labels", observed.astype(np.int64))
        for component, mask in zip(
            ("train_mask", "val_mask", "test_mask"), masks
        ):
            builder.set_column(component, mask)

        # Merge the undirected keys, count both endpoints, fill the CSR.
        spool = _KeySpool(spill)
        forward = np.zeros(n, dtype=np.int64)
        reverse = np.zeros(n, dtype=np.int64)

        def counting(blocks: Iterator[np.ndarray]) -> Iterator[np.ndarray]:
            for block in blocks:
                forward[:] = forward + np.bincount(block // n, minlength=n)
                reverse[:] = reverse + np.bincount(block % n, minlength=n)
                yield block

        spool.fill(counting(sorter.sorted_blocks(unique=True)))
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(forward + reverse, out=indptr[1:])
        builder.set_indptr(indptr)
        fill_csr_symmetric(
            lambda: iter(spool), n, indptr, forward, builder.indices_sink()
        )
        spool.cleanup()

        return builder.finish(
            num_classes=spec.num_classes,
            name=spec.name,
            meta={
                "generator": "planted_partition",
                "homophily": spec.homophily,
                "power_law": spec.power_law,
                "label_noise": spec.label_noise,
                "seed": spec.seed,
                "target_avg_degree": spec.avg_degree,
            },
        )
    finally:
        if spill is not None:
            shutil.rmtree(spill, ignore_errors=True)


def _rmat_chunk_edges(
    spec: RMATSpec, chunk_index: int, count: int
) -> tuple[np.ndarray, np.ndarray]:
    """One chunk of R-MAT edges from its own seeded stream."""
    rng = np.random.default_rng([spec.seed, chunk_index])
    src = np.zeros(count, dtype=np.int64)
    dst = np.zeros(count, dtype=np.int64)
    p_a, p_b, p_c = spec.a, spec.b, spec.c
    for _ in range(spec.scale):
        draw = rng.random(count)
        src_bit = draw >= p_a + p_b
        dst_bit = ((draw >= p_a) & (draw < p_a + p_b)) | (
            draw >= p_a + p_b + p_c
        )
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    keep = src != dst
    return src[keep], dst[keep]


def stream_rmat_graph(
    spec: RMATSpec,
    backend: str = "memory",
    out_dir: str | Path | None = None,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    chunk_vertices: int = DEFAULT_CHUNK_VERTICES,
    max_resident_blocks: int = DEFAULT_RESIDENT_BLOCKS,
    progress: Callable[[str], None] | None = None,
) -> GraphStoreBundle:
    """Chunk-seeded streaming R-MAT generator (the large-tier workload).

    Each chunk of ``chunk_edges`` samples draws from
    ``default_rng([seed, chunk])``; both arcs are encoded as directed
    keys and deduplicated externally, so rows come out fully sorted.
    ``chunk_edges`` is part of the graph's identity (changing it changes
    which stream each edge draws from); the memory and mmap backends
    produce bit-identical graphs for equal parameters.
    """
    n = spec.num_vertices
    builder, spill = _make_builder(
        n, backend, out_dir, chunk_vertices, max_resident_blocks
    )
    try:
        num_samples = n * spec.edge_factor
        sorter = ExternalSorter(workdir=spill)
        num_chunks = (num_samples + chunk_edges - 1) // chunk_edges
        for chunk in range(num_chunks):
            count = min(chunk_edges, num_samples - chunk * chunk_edges)
            src, dst = _rmat_chunk_edges(spec, chunk, count)
            sorter.append(src * n + dst)
            sorter.append(dst * n + src)
            if progress is not None and chunk % 16 == 15:
                progress(f"sampled {chunk + 1}/{num_chunks} edge chunks")

        attr_rng = np.random.default_rng([spec.seed, 0x5EED])
        labels = attr_rng.integers(0, spec.num_classes, n)
        labels[:spec.num_classes] = np.arange(spec.num_classes)
        scale = 1.0 / np.sqrt(spec.feature_dim)
        centroids = attr_rng.standard_normal(
            (spec.num_classes, spec.feature_dim)
        ) * scale
        _write_features_chunked(
            builder, labels, centroids, 2.0 * scale,
            attr_rng, spec.feature_dim, chunk_vertices,
        )
        train = max(n // 10, spec.num_classes)
        val = max(n // 20, 1)
        test = max(n // 5, 1)
        masks = make_split_masks(n, train, val, test, attr_rng)
        builder.set_column("labels", labels.astype(np.int64))
        for component, mask in zip(
            ("train_mask", "val_mask", "test_mask"), masks
        ):
            builder.set_column(component, mask)
        if progress is not None:
            progress("attributes written; merging edges")

        counts = np.zeros(n, dtype=np.int64)

        def counting(blocks: Iterator[np.ndarray]) -> Iterator[np.ndarray]:
            for block in blocks:
                counts[:] = counts + np.bincount(block // n, minlength=n)
                yield block

        spool = _KeySpool(spill)
        spool.fill(counting(sorter.sorted_blocks(unique=True)))
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        builder.set_indptr(indptr)
        fill_csr_directed(iter(spool), n, builder.indices_sink())
        spool.cleanup()
        if progress is not None:
            progress(f"CSR filled: {int(indptr[-1]):,} edges")

        return builder.finish(
            num_classes=spec.num_classes,
            name=f"rmat-{spec.scale}-stream",
            meta={
                "generator": "rmat_stream",
                "scale": spec.scale,
                "edge_factor": spec.edge_factor,
                "quadrants": (spec.a, spec.b, spec.c),
                "chunk_edges": chunk_edges,
                "seed": spec.seed,
            },
        )
    finally:
        if spill is not None:
            shutil.rmtree(spill, ignore_errors=True)
