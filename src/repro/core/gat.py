"""Distributed Graph Attention Network (GAT) on the EC-Graph substrate.

The paper (section III-B) claims EC-Graph generalizes beyond GCN to any
model exchanging the same message types: "GAT fetches embeddings from
in-neighbors in FP and embedding gradients from out-neighbors in BP".
This module delivers that claim: a multi-head, head-averaging GAT whose
forward halo exchange is the ordinary embedding fetch (so ReqEC-FP
applies unchanged), and whose backward pass uses the transport's
*reverse* exchange — consumers push partial gradients of the remote
embeddings they attended over back to the owners (so ResEC-BP applies
to those messages).

The attention math (hand-derived gradients, verified against finite
differences in the test suite) lives in
:class:`repro.engine.backends.GATBackend`; ``GATTrainer`` is the facade
that selects it, sharing the staged forward/backward plumbing with GCN
and SAGE.
"""

from __future__ import annotations

import numpy as np

from repro.core.trainer import ECGraphTrainer
from repro.engine import GATBackend
from repro.engine.backends import (
    attn_dst_name,
    attn_src_name,
    head_weight_name,
)

__all__ = ["GATTrainer", "attn_src_name", "attn_dst_name",
           "head_weight_name"]


class GATTrainer(ECGraphTrainer):
    """Full-batch distributed GAT training (``num_heads`` averaged heads).

    Reuses the ECGraphTrainer's setup (partitioning, worker states,
    parameter servers, policies, transport) and swaps in the GAT
    backend's per-layer math. The forward policy (raw / compress /
    ReqEC-FP) governs the embedding fetches exactly as for GCN; the
    backward policy (raw / compress / ResEC-BP) governs the reverse
    partial-gradient pushes.
    """

    def __init__(self, *args, num_heads: int = 1, **kwargs):
        if num_heads < 1:
            raise ValueError("num_heads must be >= 1")
        super().__init__(*args, **kwargs)
        self.num_heads = num_heads

    def _make_backend(self) -> GATBackend:
        return GATBackend(num_heads=self.num_heads)

    # ------------------------------------------------------------------
    # Compatibility shims over the backend (exercised by the test suite)
    # ------------------------------------------------------------------
    def _layer_params(self, layer: int) -> list[str]:
        return self._backend.layer_param_names(layer)

    def _gat_layer_forward(self, worker: int, h_cat: np.ndarray,
                           params: dict, layer: int, is_last: bool):
        return self._backend.gat_layer_forward(
            worker, h_cat, params, layer, is_last=is_last
        )
