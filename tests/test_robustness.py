"""Robustness / edge-case tests across the training stack.

Degenerate inputs a production system must survive: isolated vertices,
disconnected components, workers with empty halos, single-class labels
in a worker's shard, extreme bit widths, graphs smaller than the
cluster — plus the chaos suite: injected message drops, corruption,
delays, stragglers, parameter-server outages and worker crashes with
checkpointed recovery.
"""

import numpy as np
import pytest

from repro.cluster.engine import ClusterRuntime
from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.trainer import ECGraphTrainer
from repro.faults import FaultConfig, FaultInjector
from repro.faults.chaos import run_chaos
from repro.graph.attributed import AttributedGraph
from repro.graph.csr import from_edge_list
from repro.graph.generators import GraphSpec, generate_graph
from repro.obs import ObsConfig


def _graph_from_edges(edges, n, classes=2, seed=0, train_frac=0.5):
    rng = np.random.default_rng(seed)
    adjacency = from_edge_list(edges, n, deduplicate=True)
    labels = rng.integers(0, classes, n)
    labels[:classes] = np.arange(classes)
    features = rng.standard_normal((n, 6)).astype(np.float32)
    features += labels[:, None] * 0.5
    masks = np.zeros((3, n), dtype=bool)
    order = rng.permutation(n)
    cut1 = max(int(n * train_frac), classes)
    cut2 = cut1 + max(n // 5, 1)
    masks[0, order[:cut1]] = True
    masks[1, order[cut1:cut2]] = True
    masks[2, order[cut2:]] = True
    return AttributedGraph(
        adjacency=adjacency,
        features=features,
        labels=labels,
        train_mask=masks[0],
        val_mask=masks[1],
        test_mask=masks[2],
        num_classes=classes,
        name="edge-case",
    )


def _train(graph, workers=2, epochs=5, **config_overrides):
    config = ECGraphConfig(**config_overrides)
    trainer = ECGraphTrainer(
        graph, ModelConfig(num_layers=2, hidden_dim=4),
        ClusterSpec(num_workers=workers), config,
    )
    return trainer.train(epochs)


class TestDegenerateGraphs:
    def test_isolated_vertices_survive(self):
        # Vertices 4..7 have no edges at all.
        edges = [(0, 1), (1, 0), (2, 3), (3, 2)]
        graph = _graph_from_edges(edges, 8)
        run = _train(graph)
        assert np.isfinite(run.epochs[-1].loss)

    def test_disconnected_components(self):
        edges = []
        for base in (0, 5):
            for i in range(4):
                edges.append((base + i, base + i + 1))
                edges.append((base + i + 1, base + i))
        graph = _graph_from_edges(edges, 10)
        run = _train(graph, workers=2)
        assert np.isfinite(run.epochs[-1].loss)

    def test_worker_with_no_remote_neighbors(self):
        # Two cliques split exactly along a 2-way round-robin... force
        # the situation by making component {0,1} vs {2,3} and hash
        # partitioning over 2 workers: worker 0 gets {0, 2}, worker 1
        # gets {1, 3}; add a variant where a worker's halo is empty by
        # using self-contained even/odd components.
        edges = [(0, 2), (2, 0), (1, 3), (3, 1)]
        graph = _graph_from_edges(edges, 4)
        run = _train(graph, workers=2)
        assert np.isfinite(run.epochs[-1].loss)

    def test_star_graph_hub(self):
        # One hub connected to everyone: extreme degree imbalance.
        n = 20
        edges = [(0, i) for i in range(1, n)] + [(i, 0) for i in range(1, n)]
        graph = _graph_from_edges(edges, n)
        run = _train(graph, workers=3)
        assert np.isfinite(run.epochs[-1].loss)

    def test_graph_smaller_than_feature_dim(self):
        spec = GraphSpec(name="t", num_vertices=10, avg_degree=2.0,
                         feature_dim=64, num_classes=2, train=4, val=2,
                         test=2, seed=0)
        run = _train(generate_graph(spec), workers=2)
        assert np.isfinite(run.epochs[-1].loss)


class TestDegenerateLabels:
    def test_worker_shard_with_no_train_vertices(self):
        # All train vertices on even ids -> with 2-way round robin the
        # odd worker trains nothing but must still participate.
        edges = [(i, (i + 1) % 8) for i in range(8)]
        edges += [((i + 1) % 8, i) for i in range(8)]
        graph = _graph_from_edges(edges, 8)
        graph.train_mask[:] = False
        graph.train_mask[[0, 2, 4]] = True
        run = _train(graph, workers=2)
        assert np.isfinite(run.epochs[-1].loss)

    def test_no_train_vertices_anywhere_rejected(self, small_graph):
        small_graph.train_mask[:] = False
        trainer = ECGraphTrainer(
            small_graph, ModelConfig(num_layers=2, hidden_dim=4),
            ClusterSpec(num_workers=2), ECGraphConfig(),
        )
        with pytest.raises(ValueError, match="training vertices"):
            trainer.setup()


class TestExtremeSettings:
    @pytest.mark.parametrize("bits", [1, 16])
    def test_extreme_bit_widths(self, small_graph, bits):
        run = _train(
            small_graph, workers=3, epochs=8,
            fp_mode="reqec", bp_mode="resec",
            fp_bits=bits, bp_bits=bits, adaptive_bits=False,
        )
        assert np.isfinite(run.epochs[-1].loss)

    def test_trend_period_two(self, small_graph):
        run = _train(
            small_graph, workers=3, epochs=8,
            fp_mode="reqec", trend_period=2,
        )
        assert np.isfinite(run.epochs[-1].loss)

    def test_delay_longer_than_training(self, small_graph):
        run = _train(
            small_graph, workers=3, epochs=3,
            fp_mode="delayed", bp_mode="delayed", delayed_rounds=50,
        )
        assert np.isfinite(run.epochs[-1].loss)

    def test_more_servers_than_parameters_rows(self, small_graph):
        trainer = ECGraphTrainer(
            small_graph, ModelConfig(num_layers=2, hidden_dim=2),
            ClusterSpec(num_workers=2, num_servers=13),
            ECGraphConfig(fp_mode="raw", bp_mode="raw"),
        )
        result = trainer.run_epoch(0)
        assert np.isfinite(result.loss)

    def test_single_layer_model(self, small_graph):
        trainer = ECGraphTrainer(
            small_graph, ModelConfig(num_layers=1, hidden_dim=4),
            ClusterSpec(num_workers=2),
            ECGraphConfig(fp_mode="raw", bp_mode="raw"),
        )
        run = trainer.train(10)
        assert run.best_test_accuracy() > 0.3

    def test_workers_exceeding_components(self):
        # 6 workers for a 12-vertex graph: some workers get 2 vertices.
        edges = [(i, (i + 1) % 12) for i in range(12)]
        edges += [((i + 1) % 12, i) for i in range(12)]
        graph = _graph_from_edges(edges, 12)
        run = _train(graph, workers=6)
        assert np.isfinite(run.epochs[-1].loss)


def _fault_train(graph, faults, epochs=12, workers=3, **config_overrides):
    """Train with a FaultConfig; returns (trainer, run)."""
    config = ECGraphConfig(faults=faults, **config_overrides)
    trainer = ECGraphTrainer(
        graph, ModelConfig(num_layers=2, hidden_dim=8),
        ClusterSpec(num_workers=workers), config,
    )
    return trainer, trainer.train(epochs)


class TestFaultConfig:
    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            FaultConfig(enabled=True, drop_prob=1.5)
        with pytest.raises(ValueError):
            FaultConfig(enabled=True, drop_prob=0.6, corrupt_prob=0.6)
        with pytest.raises(ValueError):
            FaultConfig(enabled=True, max_retries=-1)

    def test_injector_requires_enabled_config(self):
        with pytest.raises(ValueError, match="enabled"):
            FaultInjector(FaultConfig())

    def test_json_round_trip(self):
        import dataclasses
        import json

        faults = FaultConfig(
            enabled=True, drop_prob=0.1, straggler_workers=(2,),
            straggler_epochs=(3, 7), server_outages=((4, 0),),
            crash_schedule=((5, 1),),
        )
        revived = FaultConfig.from_dict(
            json.loads(json.dumps(dataclasses.asdict(faults)))
        )
        assert revived == faults


class TestChaosFaultsDisabled:
    def test_disabled_run_bit_identical(self, small_graph):
        """The fault machinery must be invisible when faults are off.

        An enabled-but-all-zero FaultConfig routes every message through
        the injector's fast path; the loss curve AND the traffic meter
        must match the plain default run exactly.
        """
        _, base = _fault_train(small_graph, FaultConfig())
        _, noop = _fault_train(small_graph, FaultConfig(enabled=True))
        assert [e.loss for e in base.epochs] == [e.loss for e in noop.epochs]
        assert base.total_bytes() == noop.total_bytes()
        assert [e.breakdown.comm_seconds for e in base.epochs] == [
            e.breakdown.comm_seconds for e in noop.epochs
        ]

    def test_disabled_trainer_has_no_injector(self, small_graph):
        trainer, _ = _fault_train(small_graph, FaultConfig(), epochs=1)
        assert trainer.fault_counters is None
        assert trainer.nac.injector is None


class TestChaosMessageFaults:
    def test_drops_are_retried_and_survived(self, small_graph):
        trainer, run = _fault_train(
            small_graph, FaultConfig(enabled=True, drop_prob=0.2),
        )
        counters = trainer.fault_counters
        assert counters.drops > 0
        assert counters.retries > 0
        assert counters.retry_bytes > 0
        assert counters.extra_seconds > 0  # backoff stalls were charged
        assert np.isfinite(run.epochs[-1].loss)

    def test_retry_bytes_hit_the_meter(self, small_graph):
        _, clean = _fault_train(small_graph, FaultConfig())
        trainer, faulty = _fault_train(
            small_graph, FaultConfig(enabled=True, drop_prob=0.2),
        )
        assert trainer.fault_counters.retries > 0
        assert faulty.total_bytes() > clean.total_bytes()

    def test_corruption_and_delay(self, small_graph):
        trainer, run = _fault_train(
            small_graph,
            FaultConfig(enabled=True, corrupt_prob=0.15, delay_prob=0.2,
                        delay_seconds=0.01),
        )
        counters = trainer.fault_counters
        assert counters.corruptions > 0
        assert counters.delays > 0
        assert counters.extra_seconds > 0
        assert np.isfinite(run.epochs[-1].loss)

    def test_exhausted_retries_degrade_not_crash(self, small_graph):
        """With retries off, every drop must degrade gracefully."""
        trainer, run = _fault_train(
            small_graph,
            FaultConfig(enabled=True, drop_prob=0.25, max_retries=0),
            epochs=15,
        )
        counters = trainer.fault_counters
        assert counters.retries == 0
        assert counters.degraded == counters.drops > 0
        # All three degradation tiers and the ResEC-BP residual fold
        # should fire at this drop rate.
        assert counters.degraded_predicted > 0  # ReqEC trend fallback
        assert counters.degraded_cached > 0     # stale-halo cache
        assert counters.residual_compensations > 0
        assert np.isfinite(run.epochs[-1].loss)

    def test_fault_schedule_is_deterministic(self, small_graph):
        faults = FaultConfig(enabled=True, drop_prob=0.1, delay_prob=0.1)
        t1, r1 = _fault_train(small_graph, faults)
        t2, r2 = _fault_train(small_graph, faults)
        assert t1.fault_counters.as_dict() == t2.fault_counters.as_dict()
        assert [e.loss for e in r1.epochs] == [e.loss for e in r2.epochs]


class TestChaosStragglersAndOutages:
    def test_straggler_scales_compute(self):
        spec = ClusterSpec(num_workers=2)
        slow = ClusterRuntime(spec)
        slow.fault_injector = FaultInjector(FaultConfig(
            enabled=True, straggler_workers=(0,), straggler_factor=4.0,
        ))
        slow.add_compute(0, 1.0)
        fast = ClusterRuntime(spec)
        fast.add_compute(0, 1.0)
        assert slow.end_epoch().compute_seconds == pytest.approx(
            4.0 * fast.end_epoch().compute_seconds
        )

    def test_straggler_epoch_window(self):
        injector = FaultInjector(FaultConfig(
            enabled=True, straggler_workers=(1,), straggler_factor=3.0,
            straggler_epochs=(2, 4),
        ))
        scales = []
        for epoch in range(6):
            injector.start_epoch(epoch)
            scales.append(injector.compute_scale(1))
        assert scales == [1.0, 1.0, 3.0, 3.0, 1.0, 1.0]
        assert injector.compute_scale(0) == 1.0

    def test_stall_not_scaled_by_straggler(self):
        runtime = ClusterRuntime(ClusterSpec(num_workers=2))
        runtime.fault_injector = FaultInjector(FaultConfig(
            enabled=True, straggler_workers=(0,), straggler_factor=4.0,
        ))
        runtime.add_stall(0, 0.5)
        assert runtime.end_epoch().compute_seconds == pytest.approx(0.5)
        assert runtime.fault_injector.counters.extra_seconds == 0.5

    def test_parameter_server_outage_retries(self, small_graph):
        trainer, run = _fault_train(
            small_graph,
            FaultConfig(enabled=True, server_outages=((2, 0), (3, 0)),
                        outage_attempts=2),
            epochs=6,
        )
        counters = trainer.fault_counters
        assert counters.ps_retries > 0
        assert counters.retry_bytes > 0
        assert np.isfinite(run.epochs[-1].loss)

    def test_outage_slows_but_preserves_math(self, small_graph):
        """An outage only delays: parameter values must be unaffected."""
        _, clean = _fault_train(small_graph, FaultConfig(), epochs=6)
        _, outage = _fault_train(
            small_graph,
            FaultConfig(enabled=True, server_outages=((2, 0),)),
            epochs=6,
        )
        assert [e.loss for e in clean.epochs] == [
            e.loss for e in outage.epochs
        ]
        assert outage.total_bytes() > clean.total_bytes()


class TestChaosCrashRecovery:
    def test_crash_recovers_within_one_epoch(self, small_graph):
        crash_at = 6
        trainer, run = _fault_train(
            small_graph,
            FaultConfig(enabled=True, crash_schedule=((crash_at, 1),),
                        checkpoint_every=1),
        )
        counters = trainer.fault_counters
        assert counters.crashes == 1
        assert counters.params_rolled_back == 1
        losses = [e.loss for e in run.epochs]
        # Rollback restored the end-of-previous-epoch parameters, so the
        # post-crash epoch must resume within one epoch of the pre-crash
        # loss rather than restarting from scratch.
        assert losses[crash_at] <= losses[crash_at - 1] + 1e-3
        assert losses[-1] < losses[0]

    def test_crash_recovery_from_disk_checkpoint(self, small_graph, tmp_path):
        trainer, run = _fault_train(
            small_graph,
            FaultConfig(enabled=True, crash_schedule=((5, 0),),
                        checkpoint_every=1, checkpoint_dir=str(tmp_path)),
        )
        assert (tmp_path / "latest.npz").exists()
        assert trainer.fault_counters.params_rolled_back == 1
        assert np.isfinite(run.epochs[-1].loss)

    def test_crash_charges_recovery_cost(self, small_graph):
        _, clean = _fault_train(small_graph, FaultConfig(), epochs=8)
        trainer, faulty = _fault_train(
            small_graph,
            FaultConfig(enabled=True, crash_schedule=((4, 1),),
                        recovery_seconds=2.0),
            epochs=8,
        )
        assert trainer.fault_counters.extra_seconds >= 2.0
        # The rebuilt worker refetches its halo features.
        assert faulty.total_bytes() > clean.total_bytes()

    def test_crash_consumed_once(self):
        injector = FaultInjector(FaultConfig(
            enabled=True, crash_schedule=((3, 0), (3, 2)),
        ))
        assert injector.take_crashes(3) == [0, 2]
        assert injector.take_crashes(3) == []
        assert injector.take_crashes(4) == []

    def test_crash_rebuilds_halo_feature_cache(self, small_graph):
        """A crash wipes the first-hop cache; recovery refetches it."""
        trainer, _ = _fault_train(
            small_graph,
            FaultConfig(enabled=True, crash_schedule=((4, 1),)),
            epochs=6,
        )
        state = trainer.workers[1]
        before = np.array(state.halo_features, copy=True)
        bytes_before = trainer.runtime.meter.total_bytes
        trainer._recover_workers([1])
        # The cache was wiped and refetched: same values, new traffic.
        np.testing.assert_array_equal(state.halo_features, before)
        assert state.halo_features is not before
        assert trainer.runtime.meter.total_bytes > bytes_before


class TestChaosAcceptance:
    def test_mixed_scenario_survives_within_two_points(self, small_graph):
        """ISSUE acceptance: 5% drops + one worker crash must complete
        every epoch with final accuracy within 2 points of fault-free."""
        report = run_chaos(
            small_graph, "mixed", num_workers=3, num_epochs=20, seed=0,
        )
        assert report.survived
        assert report.counters.faults_injected > 0
        assert report.counters.crashes == 1
        assert report.accuracy_gap <= 0.02
        assert report.slowdown >= 1.0


class TestFaultMetricsMirror:
    """Telemetry fault counters must equal the injector's ground truth.

    The metrics registry mirrors every fault event the transport and
    the recovery manager handle; under a seeded chaos schedule the two
    bookkeeping systems must agree exactly, or one of them lied.
    """

    OBS = ObsConfig(enabled=True, trace=False, health=False, profile=False,
                    epoch_snapshots=False)

    def _run(self, graph, faults, epochs=12, **overrides):
        return _fault_train(graph, faults, epochs=epochs, obs=self.OBS,
                            **overrides)

    def test_message_fault_mirror(self, small_graph):
        trainer, run = self._run(
            small_graph,
            FaultConfig(enabled=True, seed=3, drop_prob=0.2,
                        corrupt_prob=0.1, delay_prob=0.15,
                        delay_seconds=0.01, max_retries=1),
        )
        counters = trainer.fault_counters
        snap = run.telemetry.metrics
        assert snap.counter_total("fault_retries") == counters.retries
        assert snap.counter_total("fault_delays") == counters.delays
        assert snap.counter_total("fault_message_failures") == (
            counters.drops + counters.corruptions
        )
        assert counters.retries > 0 and counters.delays > 0

    def test_degradation_mirror_by_kind(self, small_graph):
        trainer, run = self._run(
            small_graph,
            FaultConfig(enabled=True, seed=7, drop_prob=0.25,
                        max_retries=0),
            epochs=15,
        )
        counters = trainer.fault_counters
        snap = run.telemetry.metrics
        degraded = snap.counters_by_label("fault_degraded", "kind")
        assert degraded.get("predicted", 0) == counters.degraded_predicted
        assert degraded.get("cached", 0) == counters.degraded_cached
        assert degraded.get("zero", 0) == counters.degraded_zero
        assert snap.counter_total("fault_residual_compensations") == (
            counters.residual_compensations
        )
        assert counters.degraded > 0

    def test_crash_and_rollback_mirror(self, small_graph):
        trainer, run = self._run(
            small_graph,
            FaultConfig(enabled=True, crash_schedule=((4, 1), (7, 2)),
                        checkpoint_every=1),
        )
        counters = trainer.fault_counters
        snap = run.telemetry.metrics
        assert counters.crashes == 2
        assert snap.counter_total("fault_crashes") == counters.crashes
        assert snap.counter_total("fault_params_rolled_back") == (
            counters.params_rolled_back
        )
        assert counters.params_rolled_back == 2

    def test_corrupt_checkpoint_mirror(self, small_graph, tmp_path):
        trainer, _ = self._run(
            small_graph,
            FaultConfig(enabled=True, checkpoint_every=1,
                        checkpoint_dir=str(tmp_path)),
            epochs=4,
        )
        # Tear the newest checkpoint; restore must skip it (counting
        # the corruption once) and fall back to the rotated previous.
        (tmp_path / "latest.npz").write_bytes(b"not a checkpoint")
        assert trainer._recovery.restore_latest_checkpoint()
        counters = trainer.fault_counters
        snap = trainer.obs.metrics.snapshot()
        assert counters.corrupt_checkpoints == 1
        assert snap.counter_total("fault_checkpoint_corrupt") == 1
        assert snap.counter("fault_checkpoint_corrupt",
                            file="latest.npz") == 1
