"""Study how graph partitioning drives communication cost.

Partitioning controls ``g_rmt`` — the average number of remote 1-hop
neighbours per vertex — which multiplies directly into EC-Graph's
communication bill (Table II). This example partitions one graph with
Hash, streaming BFS/LDG and the METIS-like multilevel partitioner,
prints their edge-cut/balance statistics, and trains EC-Graph under each
to show the traffic difference end to end (the paper's Fig. 11 axis).

    python examples/partitioning_study.py
"""

from __future__ import annotations

from repro import ECGraphConfig
from repro.analysis.reporting import format_table
from repro.cluster import ClusterSpec
from repro.core import ECGraphTrainer, ModelConfig
from repro.graph import load_dataset
from repro.partition import make_partitioner, partition_stats

WORKERS = 6
EPOCHS = 20


def main() -> None:
    graph = load_dataset("reddit", profile="bench", seed=0)
    print(graph.summary())
    print()

    rows = []
    for method in ("hash", "bfs", "metis", "spectral"):
        partitioner = make_partitioner(method, seed=0)
        partition = partitioner.partition(graph.adjacency, WORKERS)
        stats = partition_stats(graph.adjacency, partition)

        trainer = ECGraphTrainer(
            graph,
            ModelConfig(num_layers=2, hidden_dim=16),
            ClusterSpec(num_workers=WORKERS),
            ECGraphConfig(),
            partition=partition,
        )
        run = trainer.train(EPOCHS, name=method)
        rows.append([
            method,
            f"{partition.seconds * 1e3:.1f}ms",
            f"{stats.edge_cut_ratio:.3f}",
            f"{stats.balance:.2f}",
            f"{stats.avg_remote_neighbors:.2f}",
            f"{run.total_bytes() / 1e6:.1f}MB",
            f"{run.avg_epoch_seconds() * 1e3:.2f}ms",
        ])

    print(format_table(
        ["partitioner", "partition time", "edge-cut ratio", "balance",
         "g_rmt", "traffic", "epoch time"],
        rows,
        title=f"Partitioning strategies on {graph.name}, {WORKERS} workers",
    ))
    print(
        "\ng_rmt (avg remote 1-hop neighbours) is the multiplier in"
        "\nTable II's communication cost — locality-aware partitioners"
        "\nbuy lower traffic at higher partitioning cost."
    )


if __name__ == "__main__":
    main()
