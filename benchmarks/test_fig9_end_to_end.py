"""Fig. 9 — end-to-end time: preprocessing + training to convergence.

For each system on OGBN-Products (the dataset the paper highlights),
prints the preprocessing time (partitioning, caches, L-hop pulls,
offline sampling) and the training time to the shared accuracy target,
plus EC-Graph's speedup over every other system — the quantity behind the
paper's "1.10~1.48x over DistGNN, 1.35~6.28x over DistDGL" claims.
"""

from __future__ import annotations

from _helpers import HIDDEN, LAYERS, bench_graph, dataset_header, run_once

from repro.analysis.convergence import convergence_target, summarize
from repro.analysis.reporting import format_table
from repro.baselines import run_system

DATASET = "ogbn-products"
SYSTEMS = ("noncp", "distgnn", "ecgraph", "distdgl", "agl", "aligraph",
           "ecgraph_s")
EPOCHS = 80
WORKERS = 6


def _experiment():
    graph = bench_graph(DATASET)
    runs = []
    for system in SYSTEMS:
        runs.append(run_system(
            system, graph, num_layers=LAYERS[DATASET],
            hidden_dim=HIDDEN[DATASET], num_workers=WORKERS,
            num_epochs=EPOCHS,
        ))
    return runs


def test_fig9_end_to_end(benchmark):
    runs = run_once(benchmark, _experiment)
    print()
    print(dataset_header(DATASET))
    target = convergence_target(runs, slack=0.97)
    summaries = {run.name: summarize(run, target) for run in runs}
    ec = summaries["ecgraph"]

    rows = []
    for run in runs:
        summary = summaries[run.name]
        total = (
            summary.preprocessing_seconds + summary.seconds_to_target
            if summary.seconds_to_target is not None
            else None
        )
        if run.name != "ecgraph" and total is not None and (
            ec.seconds_to_target is not None
        ):
            ec_total = ec.preprocessing_seconds + ec.seconds_to_target
            speedup = f"{total / ec_total:.2f}x"
        else:
            speedup = "-"
        rows.append([
            run.name,
            f"{summary.preprocessing_seconds:.3f}",
            f"{summary.seconds_to_target:.3f}"
            if summary.seconds_to_target is not None else "-",
            f"{total:.3f}" if total is not None else "-",
            summary.best_test_accuracy,
            speedup,
        ])
    print(format_table(
        ["system", "preprocess (s)", "train-to-target (s)", "end-to-end (s)",
         "best acc", "EC-Graph speedup"],
        rows,
        title=f"Fig. 9: end-to-end on {DATASET} (target {target:.3f})",
    ))

    # Shape: EC-Graph reaches the target, and beats the uncompensated
    # full-batch baseline end to end.
    assert ec.seconds_to_target is not None
    noncp = summaries["noncp"]
    if noncp.seconds_to_target is not None:
        assert (
            ec.preprocessing_seconds + ec.seconds_to_target
            < 1.2 * (noncp.preprocessing_seconds + noncp.seconds_to_target)
        )
