"""Fault-injection configuration.

A :class:`FaultConfig` describes every fault the simulator can inject
into a training run and the tolerance policy used to survive it. It
hangs off :class:`~repro.core.config.ECGraphConfig` the same way the
telemetry :class:`~repro.obs.config.ObsConfig` does: disabled by
default, and with ``enabled=False`` the whole fault stack is inert —
training is bit-identical (loss *and* traffic-meter totals) to a build
without it.

Fault classes:

* **message faults** — every worker-to-worker halo message independently
  drops, corrupts (detected by checksum, so it behaves like a drop that
  consumed wire bytes) or arrives late;
* **stragglers** — chosen workers run slower by a constant factor over
  an epoch range, stretching the BSP epoch;
* **parameter-server outages** — during chosen epochs a server is
  unreachable for a fixed number of attempts per shard message, so every
  pull/push pays retry bytes and backoff before succeeding (parameters
  cannot be degraded away, only delayed);
* **worker crashes** — at chosen epochs a worker dies and is rebuilt
  from the latest checkpoint (see ``checkpoint_every`` /
  ``checkpoint_dir``), with the error-compensation channel state
  resynchronized;
* **permanent worker loss** (``elastic=True``) — at chosen epochs a
  worker dies and *never* comes back; the membership layer
  (:mod:`repro.membership`) detects the expired lease, hands the
  orphaned partition to the least-loaded survivor, and the convergence
  watchdog guards the run against post-adoption divergence. A separate
  rejoin schedule can bring a lost worker back later, reclaiming its
  original partition.

All randomness is derived from ``seed`` with stateless per-message
draws, so a fault schedule is exactly reproducible and independent of
iteration order.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FaultConfig", "FAULTS_DISABLED"]


@dataclass(frozen=True)
class FaultConfig:
    """Fault schedule plus tolerance policy for one training run.

    Attributes:
        enabled: Master switch; False keeps every hot path untouched.
        seed: Seed for the stateless per-message fate draws.
        drop_prob: Per-delivery-attempt probability a worker-to-worker
            message is lost in transit.
        corrupt_prob: Probability the message arrives but fails its
            checksum (counted separately; handled like a drop).
        delay_prob: Probability the message is delivered late.
        delay_seconds: Stall charged to the requester for a late message.
        max_retries: Retransmissions after the first failed attempt
            before the exchange gives up and degrades.
        backoff_base_s: First retry backoff; doubles per attempt via
            ``backoff_factor`` (charged as requester stall time).
        backoff_factor: Exponential backoff multiplier.
        straggler_workers: Workers slowed by ``straggler_factor``.
        straggler_factor: Compute-time multiplier for stragglers (>= 1).
        straggler_epochs: ``(start, stop)`` epoch half-open range the
            slowdown applies to; None means every epoch.
        server_outages: ``(epoch, server)`` pairs; during that epoch the
            server fails ``outage_attempts`` times per shard message.
        outage_attempts: Failed attempts per shard message in an outage.
        crash_schedule: ``(epoch, worker)`` pairs; the worker dies just
            before that epoch runs and is recovered from checkpoint.
        recovery_seconds: Compute time charged to a recovering worker
            (process restart + partition state rebuild).
        checkpoint_every: Auto-checkpoint the server parameters every
            this many completed epochs (in memory, or on disk when
            ``checkpoint_dir`` is set).
        checkpoint_dir: Directory for real ``.npz`` checkpoints; None
            keeps snapshots in memory only.
        restore_params: On crash recovery, roll parameters back to the
            latest checkpoint (False keeps the live server copies, which
            models crash-tolerant servers that survived the worker).
        reset_residuals: Zero the ReqEC/ResEC channel state touching the
            crashed worker (True, the safe default) instead of keeping
            the survivor-side state as-is.
        elastic: Enable elastic membership: a lease/heartbeat-based
            :class:`~repro.membership.MembershipView`, partition
            adoption on permanent loss, and the convergence watchdog.
        permanent_failures: ``(epoch, worker)`` pairs; the worker dies
            just before that epoch and never restarts. Requires
            ``elastic=True`` — without adoption the run cannot survive.
        rejoin_schedule: ``(epoch, worker)`` pairs; a permanently lost
            worker rejoins just before that epoch, reclaiming the
            vertices it originally owned.
        heartbeat_interval_s: Membership heartbeat period; failure
            detection is quantized to whole heartbeats.
        lease_grace_s: Lease length: how long survivors wait without a
            heartbeat before declaring a worker dead (the BSP epoch
            stalls for the whole detection window).
        quorum_fraction: Fail fast (``QuorumLostError``) when the alive
            fraction of the original membership drops below this.
        max_consecutive_rollbacks: The watchdog aborts with
            ``DivergenceError`` after this many consecutive
            rollback-triggering epochs.
        watchdog_loss_factor: While armed, the watchdog trips when the
            loss exceeds this multiple of the recent-window median.
        watchdog_window: Epochs of loss history the watchdog compares
            against, and how long it stays armed after an event.
        watchdog_burst: Corruptions within one epoch that count as a
            "corruption burst" and arm the watchdog.
    """

    enabled: bool = False
    seed: int = 0
    # Message-level faults (worker-to-worker halo exchange).
    drop_prob: float = 0.0
    corrupt_prob: float = 0.0
    delay_prob: float = 0.0
    delay_seconds: float = 0.05
    # Retry policy.
    max_retries: int = 3
    backoff_base_s: float = 0.01
    backoff_factor: float = 2.0
    # Stragglers.
    straggler_workers: tuple[int, ...] = ()
    straggler_factor: float = 1.0
    straggler_epochs: tuple[int, int] | None = None
    # Parameter-server outages.
    server_outages: tuple[tuple[int, int], ...] = ()
    outage_attempts: int = 2
    # Worker crashes + checkpointed recovery.
    crash_schedule: tuple[tuple[int, int], ...] = ()
    recovery_seconds: float = 1.0
    checkpoint_every: int = 1
    checkpoint_dir: str | None = None
    restore_params: bool = True
    reset_residuals: bool = True
    # Elastic membership: permanent loss, adoption, rejoin, watchdog.
    elastic: bool = False
    permanent_failures: tuple[tuple[int, int], ...] = ()
    rejoin_schedule: tuple[tuple[int, int], ...] = ()
    heartbeat_interval_s: float = 0.25
    lease_grace_s: float = 1.0
    quorum_fraction: float = 0.5
    max_consecutive_rollbacks: int = 3
    watchdog_loss_factor: float = 4.0
    watchdog_window: int = 5
    watchdog_burst: int = 16

    def __post_init__(self):
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        for name in ("drop_prob", "corrupt_prob", "delay_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.drop_prob + self.corrupt_prob + self.delay_prob > 1.0:
            raise ValueError(
                "drop_prob + corrupt_prob + delay_prob must not exceed 1"
            )
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be non-negative")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")
        if any(w < 0 for w in self.straggler_workers):
            raise ValueError("straggler worker ids must be non-negative")
        if self.straggler_epochs is not None:
            start, stop = self.straggler_epochs
            if start < 0 or stop < start:
                raise ValueError(
                    "straggler_epochs must be a (start, stop) range with "
                    "0 <= start <= stop"
                )
        if self.outage_attempts < 1:
            raise ValueError("outage_attempts must be >= 1")
        for epoch, server in self.server_outages:
            if epoch < 0 or server < 0:
                raise ValueError("server_outages entries must be non-negative")
        for epoch, worker in self.crash_schedule:
            if epoch < 0 or worker < 0:
                raise ValueError("crash_schedule entries must be non-negative")
        if self.recovery_seconds < 0:
            raise ValueError("recovery_seconds must be non-negative")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.checkpoint_dir is not None and not str(self.checkpoint_dir):
            raise ValueError("checkpoint_dir must be None or a non-empty path")
        for name in ("permanent_failures", "rejoin_schedule"):
            for epoch, worker in getattr(self, name):
                if epoch < 0 or worker < 0:
                    raise ValueError(f"{name} entries must be non-negative")
        if self.permanent_failures and not self.elastic:
            raise ValueError(
                "permanent_failures requires elastic=True: without "
                "partition adoption the run cannot survive a permanent "
                "worker loss"
            )
        if self.rejoin_schedule and not self.elastic:
            raise ValueError("rejoin_schedule requires elastic=True")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.lease_grace_s < 0:
            raise ValueError("lease_grace_s must be non-negative")
        if not 0.0 < self.quorum_fraction <= 1.0:
            raise ValueError("quorum_fraction must be in (0, 1]")
        if self.max_consecutive_rollbacks < 1:
            raise ValueError("max_consecutive_rollbacks must be >= 1")
        if self.watchdog_loss_factor <= 1.0:
            raise ValueError("watchdog_loss_factor must exceed 1")
        if self.watchdog_window < 1:
            raise ValueError("watchdog_window must be >= 1")
        if self.watchdog_burst < 1:
            raise ValueError("watchdog_burst must be >= 1")

    @property
    def any_message_faults(self) -> bool:
        """True when at least one message-fate probability is nonzero."""
        return (self.drop_prob + self.corrupt_prob + self.delay_prob) > 0.0

    @staticmethod
    def from_dict(fields: dict) -> "FaultConfig":
        """Rebuild from a JSON round-trip (lists became tuples again)."""
        fields = dict(fields)
        for name in ("straggler_workers",):
            if name in fields and fields[name] is not None:
                fields[name] = tuple(fields[name])
        if fields.get("straggler_epochs") is not None:
            fields["straggler_epochs"] = tuple(fields["straggler_epochs"])
        for name in (
            "server_outages", "crash_schedule", "permanent_failures",
            "rejoin_schedule",
        ):
            if name in fields and fields[name] is not None:
                fields[name] = tuple(tuple(pair) for pair in fields[name])
        return FaultConfig(**fields)


FAULTS_DISABLED = FaultConfig()
