"""Fig. 7 — backward-pass compression vs ResEC-BP at different bit widths.

Forward stays raw so the backward direction is isolated:

* ``Non-cp``    — no compression,
* ``Cp-bp-B``   — gradient compression only,
* ``ResEC-BP-B`` — gradient compression with responding-end error
  feedback.

Expected shape: error feedback recovers convergence speed and final
accuracy lost to low-bit gradient quantization.
"""

from __future__ import annotations

from _helpers import HIDDEN, bench_graph, dataset_header, run_once

from repro.analysis.reporting import format_series, format_table
from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.trainer import ECGraphTrainer

DATASETS = ("reddit", "ogbn-products")
BITS = (1, 2, 4)
EPOCHS = 60
WORKERS = 6


def _run(graph, hidden, config, name):
    trainer = ECGraphTrainer(
        graph, ModelConfig(num_layers=2, hidden_dim=hidden),
        ClusterSpec(num_workers=WORKERS), config,
    )
    return trainer.train(EPOCHS, name=name)


def _experiment():
    results = {}
    for dataset in DATASETS:
        graph = bench_graph(dataset)
        hidden = HIDDEN[dataset]
        runs = [_run(graph, hidden,
                     ECGraphConfig(fp_mode="raw", bp_mode="raw"), "Non-cp")]
        for bits in BITS:
            runs.append(_run(
                graph, hidden,
                ECGraphConfig(fp_mode="raw", bp_mode="compress",
                              bp_bits=bits),
                f"Cp-bp-{bits}",
            ))
            runs.append(_run(
                graph, hidden,
                ECGraphConfig(fp_mode="raw", bp_mode="resec",
                              bp_bits=bits),
                f"ResEC-BP-{bits}",
            ))
        results[dataset] = runs
    return results


def test_fig7_bp_bits(benchmark):
    results = run_once(benchmark, _experiment)
    print()
    for dataset, runs in results.items():
        print(f"--- Fig. 7: {dataset} ---")
        print(dataset_header(dataset))
        for run in runs:
            print(format_series(f"{run.name:12s}", run.accuracy_curve()))
        rows = [
            [run.name, run.best_test_accuracy(),
             run.epochs[-1].test_accuracy]
            for run in runs
        ]
        print(format_table(["config", "best acc", "final acc"], rows))
        print()

    # Shape: at every width, error feedback is at least as good as plain
    # gradient compression, and at 1 bit it is strictly better on the
    # high-degree dataset.
    for _dataset, runs in results.items():
        by_name = {run.name: run for run in runs}
        for bits in BITS:
            assert (
                by_name[f"ResEC-BP-{bits}"].best_test_accuracy()
                >= by_name[f"Cp-bp-{bits}"].best_test_accuracy() - 0.02
            )
    reddit = {run.name: run for run in results["reddit"]}
    assert (
        reddit["ResEC-BP-1"].best_test_accuracy()
        >= reddit["Cp-bp-1"].best_test_accuracy()
    )
