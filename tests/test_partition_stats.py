"""Unit tests for partition quality statistics and request plans."""

import numpy as np
import pytest

from repro.graph.csr import from_edge_list
from repro.partition.base import Partition
from repro.partition.stats import partition_stats, remote_neighbor_lists


@pytest.fixture
def square_graph():
    """4-cycle: 0-1-2-3-0 (symmetric)."""
    edges = [(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2), (3, 0), (0, 3)]
    return from_edge_list(edges, 4)


class TestStats:
    def test_edge_cut_counts_directed_arcs(self, square_graph):
        partition = Partition(np.array([0, 0, 1, 1]), 2)
        stats = partition_stats(square_graph, partition)
        # Cut undirected edges: (1,2) and (3,0) -> 4 directed arcs.
        assert stats.edge_cut == 4
        assert stats.edge_cut_ratio == pytest.approx(0.5)

    def test_no_cut_when_single_part(self, square_graph):
        partition = Partition(np.zeros(4, dtype=np.int64), 1)
        stats = partition_stats(square_graph, partition)
        assert stats.edge_cut == 0
        assert stats.avg_remote_neighbors == 0.0

    def test_remote_neighbors_avg(self, square_graph):
        partition = Partition(np.array([0, 0, 1, 1]), 2)
        stats = partition_stats(square_graph, partition)
        # Each vertex has exactly one remote neighbour.
        assert stats.avg_remote_neighbors == pytest.approx(1.0)
        assert stats.total_halo == 4

    def test_balance(self, square_graph):
        partition = Partition(np.array([0, 0, 0, 1]), 2)
        stats = partition_stats(square_graph, partition)
        assert stats.balance == pytest.approx(3 / 2)
        assert stats.max_part_size == 3
        assert stats.min_part_size == 1

    def test_mismatched_sizes_rejected(self, square_graph):
        with pytest.raises(ValueError):
            partition_stats(square_graph, Partition(np.zeros(3, dtype=np.int64), 1))

    def test_duplicate_remote_neighbor_counted_once(self):
        # Vertex 0 has two parallel-ish edges to vertex 1 (via dedup off).
        g = from_edge_list([(0, 1), (0, 1)], 2)
        partition = Partition(np.array([0, 1]), 2)
        stats = partition_stats(g, partition)
        assert stats.avg_remote_neighbors == pytest.approx(0.5)


class TestRemoteNeighborLists:
    def test_request_pattern(self, square_graph):
        partition = Partition(np.array([0, 0, 1, 1]), 2)
        requests = remote_neighbor_lists(square_graph, partition)
        np.testing.assert_array_equal(requests[0][1], [2, 3])
        np.testing.assert_array_equal(requests[1][0], [0, 1])

    def test_lists_sorted(self, square_graph):
        partition = Partition(np.array([0, 1, 0, 1]), 2)
        requests = remote_neighbor_lists(square_graph, partition)
        for per_part in requests:
            for ids in per_part.values():
                assert (np.diff(ids) > 0).all()

    def test_ownership_correct(self, square_graph):
        partition = Partition(np.array([0, 1, 0, 1]), 2)
        requests = remote_neighbor_lists(square_graph, partition)
        for part, per_part in enumerate(requests):
            for owner, ids in per_part.items():
                assert owner != part
                assert (partition.assignment[ids] == owner).all()
