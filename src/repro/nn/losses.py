"""Loss functions for vertex classification.

The paper trains GCN with softmax + cross-entropy over the labelled
training vertices (Algorithm 1, lines 12-13). The distributed backward pass
starts from ``dL/dZ^L`` which for softmax cross-entropy is the well-known
``softmax(Z) - onehot(y)`` restricted to the training mask, so the loss here
returns both the scalar loss and that gradient.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["softmax", "log_softmax", "LossResult", "softmax_cross_entropy"]


def softmax(z: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = z - np.max(z, axis=axis, keepdims=True)
    ez = np.exp(shifted)
    return ez / np.sum(ez, axis=axis, keepdims=True)


def log_softmax(z: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = z - np.max(z, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


@dataclass(frozen=True)
class LossResult:
    """Scalar loss together with the gradient w.r.t. the logits.

    Attributes:
        loss: Mean cross-entropy over the masked vertices.
        grad: ``dL/dZ`` with the same shape as the logits; rows outside the
            mask are zero so unlabelled vertices contribute no gradient.
        correct: Number of masked vertices whose argmax matches the label.
        count: Number of masked vertices.
    """

    loss: float
    grad: np.ndarray
    correct: int
    count: int

    @property
    def accuracy(self) -> float:
        return self.correct / self.count if self.count else 0.0


def softmax_cross_entropy(
    logits: np.ndarray,
    labels: np.ndarray,
    mask: np.ndarray | None = None,
) -> LossResult:
    """Mean softmax cross-entropy over masked rows, with gradient.

    Args:
        logits: ``(n, num_classes)`` raw scores ``Z^L``.
        labels: ``(n,)`` integer class ids. Entries outside the mask may be
            arbitrary (e.g. ``-1`` for unlabelled vertices).
        mask: Optional boolean ``(n,)`` selecting the rows that contribute
            to the loss. ``None`` means all rows.

    Returns:
        A :class:`LossResult`. The gradient is already divided by the mask
        size, matching the mean reduction, so the caller feeds it directly
        into the backward recursion of Eq. (4).
    """
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    n = logits.shape[0]
    if labels.shape != (n,):
        raise ValueError(
            f"labels shape {labels.shape} does not match logits rows {n}"
        )
    if mask is None:
        mask = np.ones(n, dtype=bool)
    elif mask.shape != (n,):
        raise ValueError(f"mask shape {mask.shape} does not match logits rows {n}")

    count = int(mask.sum())
    grad = np.zeros_like(logits, dtype=np.float32)
    if count == 0:
        return LossResult(loss=0.0, grad=grad, correct=0, count=0)

    masked_logits = logits[mask]
    masked_labels = labels[mask]
    logp = log_softmax(masked_logits, axis=1)
    picked = logp[np.arange(count), masked_labels]
    loss = float(-picked.mean())

    probs = np.exp(logp)
    probs[np.arange(count), masked_labels] -= 1.0
    grad[mask] = (probs / count).astype(np.float32)

    predictions = masked_logits.argmax(axis=1)
    correct = int((predictions == masked_labels).sum())
    return LossResult(loss=loss, grad=grad, correct=correct, count=count)
