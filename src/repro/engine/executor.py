"""The execution seam: where worker kernels actually run.

The staged engine describes *what* happens each iteration — pulls,
halo exchanges, per-worker kernels, the loss scan — while an executor
decides *where* the per-worker kernels run:

* :class:`SyncExecutor` (``execution="sync"``) runs them inline in the
  supervisor process under each worker's compute clock, exactly as the
  engine always has — the historical single-process simulation;
* :class:`~repro.mp.supervisor.ProcessExecutor`
  (``execution="multiprocess"``) dispatches them to real OS worker
  processes over pipes and shared-memory stores (see
  ``docs/execution.md``).

Everything *between* the kernels — parameter pulls, the exchange
policies and their compensation state, fault injection, traffic
metering, the Bit-Tuner — always stays on the supervisor, which is why
the two executors produce bit-identical loss curves and traffic totals.

The seam's row accessors (:meth:`SyncExecutor.layer_rows`,
``grad_rows``, ``bp_halo_rows``) are how exchanges source the rows a
worker serves: inline execution reads the backend's caches directly;
the process executor reads the shared-memory blocks its workers
populate.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, ContextManager

import numpy as np

from repro.nn.losses import softmax_cross_entropy

if TYPE_CHECKING:
    from repro.core.worker import WorkerState
    from repro.engine.backends import ModelBackend
    from repro.engine.context import ExchangeContext

__all__ = ["SyncExecutor"]


class SyncExecutor:
    """Inline execution: every worker kernel runs in this process."""

    name = "sync"

    def __init__(self) -> None:
        self.ctx: ExchangeContext | None = None
        self.backend: ModelBackend | None = None

    def bind(self, ctx: ExchangeContext, backend: ModelBackend) -> None:
        self.ctx = ctx
        self.backend = backend

    def _bound(self) -> tuple[ExchangeContext, ModelBackend]:
        assert self.ctx is not None and self.backend is not None
        return self.ctx, self.backend

    # ------------------------------------------------------------------
    # Iteration hooks
    # ------------------------------------------------------------------
    def on_epoch_start(self, t: int) -> None:
        self._bound()[1].on_epoch_start(t)

    def begin_iteration(self) -> None:
        self._bound()[1].begin_iteration()

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward_kernels(
        self,
        t: int,
        layer: int,
        pulled: list[dict[str, np.ndarray]],
        halos: list[np.ndarray],
        is_last: bool,
    ) -> None:
        del t
        ctx, backend = self._bound()
        for state in ctx.active_workers():
            i = state.worker_id
            prev = backend.layer_input(state, layer)
            with ctx.runtime.worker_compute(i):
                h_cat = np.concatenate([prev, halos[i]], axis=0)
                backend.forward_layer(
                    state, h_cat, pulled[i], layer, is_last=is_last
                )

    def loss_scan(self, t: int) -> tuple[float, dict[str, list[int]]]:
        """Loss + accuracy counters from the final logits; seeds the
        gradient rows (scaled by the global train count)."""
        del t
        ctx, backend = self._bound()
        num_layers = ctx.params.num_layers
        counters = {"train": [0, 0], "val": [0, 0], "test": [0, 0]}
        total_loss = 0.0
        for state in ctx.active_workers():
            logits = backend.final_logits(state)
            with ctx.runtime.worker_compute(state.worker_id):
                result = softmax_cross_entropy(
                    logits, state.labels, state.train_mask
                )
                local = int(state.train_mask.sum())
                scale = (
                    local / ctx.global_train_count if local else 0.0
                )
                # result.grad is a mean over local train vertices;
                # rescale to a global mean so summing worker pushes is
                # exact.
                state.grad_rows[num_layers] = (
                    result.grad * scale
                ).astype(np.float32)
                total_loss += result.loss * scale
                counters["train"][0] += result.correct
                counters["train"][1] += result.count
                predictions = logits.argmax(axis=1)
                for split, mask in (
                    ("val", state.val_mask),
                    ("test", state.test_mask),
                ):
                    counters[split][0] += int(
                        (predictions[mask] == state.labels[mask]).sum()
                    )
                    counters[split][1] += int(mask.sum())
        return total_loss, counters

    # ------------------------------------------------------------------
    # Backward
    # ------------------------------------------------------------------
    def _bp_span(self, layer: int, stage: str) -> ContextManager[object]:
        ctx, _ = self._bound()
        if getattr(self.backend, "_bp_span_stages", False):
            return ctx.telemetry.span(
                "kernel", layer=layer, direction="bp", stage=stage
            )
        return contextlib.nullcontext()

    def backward_local(
        self,
        t: int,
        layer: int,
        weights: dict[str, np.ndarray],
        grads: dict[int, dict[str, np.ndarray]],
    ) -> None:
        del t
        ctx, backend = self._bound()
        with self._bp_span(layer, "weight_grad"):
            for state in ctx.active_workers():
                i = state.worker_id
                with ctx.runtime.worker_compute(i):
                    grads[i].update(
                        backend.backward_local(state, layer, weights)
                    )

    def backward_reduce(
        self,
        t: int,
        layer: int,
        weights: dict[str, np.ndarray],
        halos: list[np.ndarray],
    ) -> None:
        del t
        ctx, backend = self._bound()
        with self._bp_span(layer, "input_grad"):
            for state in ctx.active_workers():
                with ctx.runtime.worker_compute(state.worker_id):
                    backend.backward_reduce(
                        state, layer, halos[state.worker_id], weights
                    )

    # ------------------------------------------------------------------
    # Exchange row sources
    # ------------------------------------------------------------------
    def layer_rows(self, state: WorkerState, layer: int) -> np.ndarray:
        """Rows a forward exchange serves: the layer's local outputs."""
        return self._bound()[1].layer_output(state, layer)

    def grad_rows(self, state: WorkerState, layer: int) -> np.ndarray:
        """Rows a backward fetch serves: the layer's gradient rows."""
        return state.grad_rows[layer]

    def bp_halo_rows(self, state: WorkerState, layer: int) -> np.ndarray:
        """Halo rows a reverse exchange pushes (GAT dH partials)."""
        return self._bound()[1].bp_halo_rows(state, layer)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_worker_crash(self, worker_id: int) -> None:
        """Inline workers have no process to respawn."""
        del worker_id

    def close(self) -> None:
        """Inline execution holds no external resources."""
