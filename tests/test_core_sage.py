"""Tests for the distributed GraphSAGE trainer."""

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.models import bias_name, weight_name
from repro.core.sage import SAGETrainer, self_weight_name


def _trainer(graph, workers, config=None, layers=2, hidden=6):
    return SAGETrainer(
        graph,
        ModelConfig(num_layers=layers, hidden_dim=hidden, model="sage"),
        ClusterSpec(num_workers=workers),
        config or ECGraphConfig(fp_mode="raw", bp_mode="raw", seed=9),
    )


class TestValidation:
    def test_requires_sage_model(self, small_graph):
        trainer = SAGETrainer(
            small_graph, ModelConfig(num_layers=2, model="gcn"),
            ClusterSpec(num_workers=2), ECGraphConfig(),
        )
        with pytest.raises(ValueError, match="sage"):
            trainer.setup()

    def test_self_weights_registered(self, small_graph):
        trainer = _trainer(small_graph, 2, layers=3)
        trainer.setup()
        names = trainer.servers.parameter_names()
        for layer in range(3):
            assert self_weight_name(layer) in names


class TestGradients:
    def test_pushed_gradients_match_finite_differences(self, small_graph):
        trainer = _trainer(small_graph, workers=1)
        trainer.setup()

        captured = {}
        original_push = trainer.servers.push

        def spy_push(worker, grads):
            for name, grad in grads.items():
                captured[name] = captured.get(name, 0) + grad.astype(np.float64)
            original_push(worker, grads)

        trainer.servers.push = spy_push
        trainer._forward(0)
        trainer.servers.apply_updates = lambda: None
        trainer._backward(0)

        def loss_now():
            trainer._forward(0)
            # _forward returns (loss, counters)
            return trainer._forward(0)[0]

        rng = np.random.default_rng(0)
        eps = 1e-3
        for name in (weight_name(0), self_weight_name(0),
                     weight_name(1), self_weight_name(1), bias_name(0)):
            theta = trainer.servers.get(name)
            grad = captured[name]
            flat_indices = rng.choice(theta.size,
                                      size=min(6, theta.size), replace=False)
            for flat in flat_indices:
                idx = np.unravel_index(flat, theta.shape)
                original = theta[idx]
                theta[idx] = original + eps
                up = trainer._forward(0)[0]
                theta[idx] = original - eps
                down = trainer._forward(0)[0]
                theta[idx] = original
                numeric = (up - down) / (2 * eps)
                tolerance = 5e-3 + 0.05 * abs(numeric)
                assert grad[idx] == pytest.approx(numeric, abs=tolerance), (
                    name, idx,
                )


class TestDistributedEquivalence:
    def test_losses_match_standalone(self, small_graph):
        config = ECGraphConfig(fp_mode="raw", bp_mode="raw", seed=9)
        single = _trainer(small_graph, 1, config)
        multi = _trainer(small_graph, 3, config)
        run1 = single.train(6)
        run3 = multi.train(6)
        for a, b in zip(run1.epochs, run3.epochs):
            assert a.loss == pytest.approx(b.loss, rel=1e-3, abs=1e-5)

    def test_parameters_match_after_training(self, small_graph):
        config = ECGraphConfig(fp_mode="raw", bp_mode="raw", seed=9)
        single = _trainer(small_graph, 1, config)
        multi = _trainer(small_graph, 2, config)
        single.train(5)
        multi.train(5)
        for name in single.servers.parameter_names():
            np.testing.assert_allclose(
                single.servers.get(name), multi.servers.get(name),
                atol=2e-4,
            )


class TestSAGETraining:
    def test_learns(self, small_graph):
        run = _trainer(small_graph, 2).train(60)
        assert run.best_test_accuracy() > 0.7

    def test_compressed_sage_trains(self, small_graph):
        config = ECGraphConfig(fp_mode="reqec", bp_mode="resec",
                               fp_bits=4, bp_bits=4, seed=9)
        run = _trainer(small_graph, 3, config).train(40)
        assert run.best_test_accuracy() > 0.6

    def test_compression_reduces_sage_traffic(self, small_graph):
        raw = _trainer(
            small_graph, 3,
            ECGraphConfig(fp_mode="raw", bp_mode="raw", seed=9),
        ).train(5)
        compressed = _trainer(
            small_graph, 3,
            ECGraphConfig(fp_mode="compress", bp_mode="compress",
                          fp_bits=2, bp_bits=2, adaptive_bits=False,
                          seed=9),
        ).train(5)
        assert compressed.total_bytes() < raw.total_bytes()

    def test_evaluate_exact(self, small_graph):
        trainer = _trainer(small_graph, 2)
        trainer.train(10)
        metrics = trainer.evaluate_exact()
        assert 0.0 <= metrics["test"] <= 1.0
