"""The hot-path optimizations must be invisible in every result.

Buffer pooling and thread fan-out change *when and where* work happens,
never *what* is computed or charged: with the knobs on, loss curves,
total traffic and per-category traffic must be bit-identical to the
sequential, allocate-per-call configuration — and both knobs must
default to off.
"""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import ECGraphTrainer, ModelConfig
from repro.core.config import ECGraphConfig
from repro.graph import load_dataset


def _train(graph, granularity, **overrides):
    config = ECGraphConfig(
        trend_period=3, selector_granularity=granularity, **overrides
    )
    trainer = ECGraphTrainer(
        graph, ModelConfig(num_layers=2, hidden_dim=16),
        ClusterSpec(num_workers=3), config,
    )
    result = trainer.train(5)
    losses = [epoch.loss for epoch in result.epochs]
    meter = trainer.runtime.meter
    if trainer.nac is not None:
        trainer.nac.close()
    return losses, meter.total_bytes, meter.category_totals()


class TestOptimizationsAreBitInvisible:
    @pytest.fixture(scope="class")
    def graph(self):
        return load_dataset("cora", profile="tiny", seed=1)

    @pytest.mark.parametrize("granularity", ["vertex", "element", "matrix"])
    def test_pool_and_threads_bit_identical(self, graph, granularity):
        base = _train(graph, granularity)
        optimized = _train(
            graph, granularity, halo_buffer_pool=True, exchange_threads=4
        )
        assert base[0] == optimized[0]  # identical loss sequence
        assert base[1] == optimized[1]  # identical total traffic
        assert base[2] == optimized[2]  # identical per-category traffic

    def test_buffer_pool_alone_bit_identical(self, graph):
        base = _train(graph, "vertex")
        pooled = _train(graph, "vertex", halo_buffer_pool=True)
        assert base == pooled


class TestKnobDefaults:
    def test_defaults_off(self):
        config = ECGraphConfig()
        assert config.halo_buffer_pool is False
        assert config.exchange_threads == 0

    def test_negative_threads_rejected(self):
        with pytest.raises(ValueError, match="exchange_threads"):
            ECGraphConfig(exchange_threads=-1)


class TestPooledBufferSemantics:
    def test_pooled_halos_zeroed_between_exchanges(self):
        from repro.cluster.engine import ClusterRuntime
        from repro.cluster.topology import ClusterSpec as EngineSpec
        from repro.core.messages import RawPolicy
        from repro.core.nac import NeighborAccessController
        from repro.core.worker import build_worker_states
        from repro.graph.normalize import gcn_normalize
        from repro.partition.hashing import HashPartitioner

        graph = load_dataset("cora", profile="tiny", seed=2)
        normalized = gcn_normalize(graph.adjacency)
        partition = HashPartitioner().partition(graph.adjacency, 3)
        workers = build_worker_states(graph, normalized, partition)
        runtime = ClusterRuntime(EngineSpec(num_workers=3))
        nac = NeighborAccessController(runtime, workers, buffer_pool=True)

        values = [np.ones((s.num_local, 4), dtype=np.float32)
                  for s in workers]
        first = nac.exchange(
            layer=0, t=0, rows_of=lambda s: values[s.worker_id],
            policy=RawPolicy(), category="fp_embeddings", dim=4,
        )
        # Poison the pooled buffers, then exchange a subset that serves
        # no rows: untouched halo slots must read zero, not stale data.
        for halo in first:
            halo.fill(99.0)
        empty_subset = {
            (owner, state.worker_id): np.zeros(0, dtype=np.int64)
            for state in workers for owner in state.halo_slots
        }
        second = nac.exchange(
            layer=0, t=1, rows_of=lambda s: values[s.worker_id],
            policy=RawPolicy(), category="fp_embeddings", dim=4,
            subset=empty_subset,
        )
        for prev, halo in zip(first, second):
            assert halo is prev  # the pool reused the buffer ...
            assert not halo.any()  # ... and zeroed it in place
