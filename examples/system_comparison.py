"""Compare every distributed GNN system on one dataset.

Runs the whole system zoo — standalone DGL/PyG, DistGNN (delayed
aggregation), DistDGL (online sampling), AGL and AliGraph-FG
(ML-centered), EC-Graph and EC-Graph-S — on a simulated OGBN-Products
stand-in and prints a Table IV/V-style comparison: epoch time, accuracy,
traffic, preprocessing.

    python examples/system_comparison.py
"""

from __future__ import annotations

from repro.analysis.convergence import convergence_target, summarize
from repro.analysis.reporting import format_table
from repro.baselines import run_system, system_names
from repro.graph import load_dataset

EPOCHS = 60
WORKERS = 6


def main() -> None:
    graph = load_dataset("ogbn-products", profile="bench", seed=0)
    print(graph.summary())
    print()

    runs = []
    for system in system_names():
        print(f"training {system} ...")
        runs.append(run_system(
            system, graph, num_layers=2, hidden_dim=32,
            num_workers=WORKERS, num_epochs=EPOCHS,
        ))
    print()

    target = convergence_target(runs, slack=0.97)
    rows = []
    for run in runs:
        summary = summarize(run, target)
        rows.append([
            run.name,
            f"{summary.avg_epoch_seconds * 1e3:.2f}ms",
            summary.best_test_accuracy,
            f"{summary.total_bytes / 1e6:.1f}MB",
            f"{summary.preprocessing_seconds:.2f}s",
            summary.epochs_to_target or "-",
        ])
    print(format_table(
        ["system", "epoch time", "best acc", "traffic", "preprocess",
         f"epochs to {target:.3f}"],
        rows,
        title="All systems on ogbn-products (simulated 6-machine cluster)",
    ))


if __name__ == "__main__":
    main()
