"""Parameter servers and the Parameter Manager (paper section III-A).

The PM divides the GNN weights and biases of each layer evenly across the
``m`` servers with a range-based partition (the paper's built-in default):
parameter tensors are split along their first axis into contiguous shards.
Workers ``pull`` the shards of the layers they are about to compute and
``push`` gradient shards back; each server sums the per-worker gradients
and applies the optimizer to the shards it owns (Algorithm 2, lines 1-3).

Because Adam's update is element-wise, running one optimizer per server
over its shards is mathematically identical to a single global optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.cluster.engine import ClusterRuntime
from repro.nn.optim import Optimizer

__all__ = ["Shard", "ParameterServerGroup", "range_shards"]


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of a parameter tensor owned by one server."""

    name: str
    server: int
    start: int
    stop: int

    @property
    def key(self) -> str:
        return f"{self.name}[{self.start}:{self.stop}]"


def range_shards(name: str, first_axis: int, num_servers: int) -> list[Shard]:
    """Split ``first_axis`` rows into ``num_servers`` contiguous shards.

    Rows are distributed as evenly as possible; when there are fewer rows
    than servers, trailing servers receive empty shards (omitted).
    """
    if first_axis < 0:
        raise ValueError("first_axis must be non-negative")
    base, extra = divmod(first_axis, num_servers)
    shards = []
    start = 0
    for server in range(num_servers):
        size = base + (1 if server < extra else 0)
        if size == 0:
            continue
        shards.append(Shard(name, server, start, start + size))
        start += size
    return shards


class ParameterServerGroup:
    """All parameter servers of one training job, plus the manager logic."""

    def __init__(
        self,
        runtime: ClusterRuntime,
        optimizer_factory: Callable[[], Optimizer],
        reduce: str = "mean",
    ):
        """Args:
        runtime: Cluster runtime used for traffic accounting.
        optimizer_factory: Builds one optimizer per server (the paper
            uses Adam everywhere).
        reduce: ``"mean"`` averages pushed gradients over workers;
            ``"sum"`` adds them (use sum when workers already scale
            their gradients by the global sample count).
        """
        if reduce not in ("mean", "sum"):
            raise ValueError(f"reduce must be 'mean' or 'sum', got {reduce!r}")
        self.runtime = runtime
        self.reduce = reduce
        self.num_servers = runtime.spec.num_servers
        self._params: Dict[str, np.ndarray] = {}
        self._shards: Dict[str, list[Shard]] = {}
        self._optimizers = [optimizer_factory() for _ in range(self.num_servers)]
        self._pending: Dict[str, np.ndarray] = {}
        self._pushes_received = 0

    # ------------------------------------------------------------------
    def register(self, name: str, value: np.ndarray) -> None:
        """Register a parameter tensor and shard it across the servers."""
        if name in self._params:
            raise ValueError(f"parameter {name!r} already registered")
        array = np.ascontiguousarray(value, dtype=np.float32)
        self._params[name] = array
        first_axis = array.shape[0] if array.ndim else 1
        self._shards[name] = range_shards(name, first_axis, self.num_servers)

    def parameter_names(self) -> list[str]:
        return list(self._params)

    def get(self, name: str) -> np.ndarray:
        """Server-side direct read (used by tests and checkpointing)."""
        return self._params[name]

    def set(self, name: str, value: np.ndarray) -> None:
        """Server-side direct write (checkpoint restore)."""
        if name not in self._params:
            raise KeyError(f"unknown parameter {name!r}")
        if value.shape != self._params[name].shape:
            raise ValueError("shape mismatch on parameter restore")
        self._params[name] = np.ascontiguousarray(value, dtype=np.float32)

    # ------------------------------------------------------------------
    def pull(self, worker: int, names: list[str]) -> Dict[str, np.ndarray]:
        """Worker pulls full tensors; traffic is charged shard-by-shard."""
        with self.runtime.telemetry.span("param_pull", worker=worker):
            return self._pull(worker, names)

    def _outage_retries(
        self, worker: int, server: int, nbytes: int, category: str,
        server_to_worker: bool,
    ) -> None:
        """Charge the retries a shard message pays during a PS outage.

        Parameters cannot be degraded away like halo rows can, so an
        unreachable server only *delays*: each failed attempt costs its
        wire bytes (the retransmission) plus backoff stall on the
        worker, and the final attempt — already charged by the caller —
        succeeds once the server is back.
        """
        injector = self.runtime.fault_injector
        if injector is None:
            return
        attempts = injector.server_outage_attempts(server)
        if not attempts:
            return
        timeout = self.runtime.spec.network.loss_detection_seconds(nbytes)
        for attempt in range(1, attempts + 1):
            injector.counters.ps_retries += 1
            injector.counters.retry_bytes += nbytes
            self.runtime.add_stall(
                worker, timeout + injector.backoff_seconds(attempt)
            )
            if server_to_worker:
                self.runtime.send_server_to_worker(
                    server, worker, nbytes, category
                )
            else:
                self.runtime.send_worker_to_server(
                    worker, server, nbytes, category
                )
            if self.runtime.telemetry.enabled:
                self.runtime.telemetry.metrics.inc(
                    "fault_ps_retries", category=category
                )

    def _pull(self, worker: int, names: list[str]) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for name in names:
            if name not in self._params:
                raise KeyError(f"unknown parameter {name!r}")
            array = self._params[name]
            for shard in self._shards[name]:
                rows = shard.stop - shard.start
                per_row = array[0:1].nbytes if array.ndim else array.nbytes
                nbytes = rows * per_row + 16
                self.runtime.send_server_to_worker(
                    shard.server, worker, nbytes, "param_pull"
                )
                self._outage_retries(
                    worker, shard.server, nbytes, "param_pull", True
                )
            out[name] = array.copy()
        return out

    def push(self, worker: int, grads: Dict[str, np.ndarray]) -> None:
        """Worker pushes gradients; servers accumulate until all arrive."""
        with self.runtime.telemetry.span("param_push", worker=worker):
            self._push(worker, grads)

    def _push(self, worker: int, grads: Dict[str, np.ndarray]) -> None:
        for name, grad in grads.items():
            if name not in self._params:
                raise KeyError(f"gradient for unknown parameter {name!r}")
            if grad.shape != self._params[name].shape:
                raise ValueError(
                    f"gradient shape {grad.shape} != parameter "
                    f"{self._params[name].shape} for {name!r}"
                )
            for shard in self._shards[name]:
                rows = shard.stop - shard.start
                per_row = grad[0:1].nbytes if grad.ndim else grad.nbytes
                nbytes = rows * per_row + 16
                self.runtime.send_worker_to_server(
                    worker, shard.server, nbytes, "param_push"
                )
                self._outage_retries(
                    worker, shard.server, nbytes, "param_push", False
                )
            pending = self._pending.get(name)
            if pending is None:
                self._pending[name] = grad.astype(np.float64)
            else:
                pending += grad
        self._pushes_received += 1

    def apply_updates(self) -> None:
        """Sum the buffered gradients and run the per-server optimizers.

        Called once per iteration after every worker has pushed. Gradients
        are averaged over workers — combined with per-worker mean losses
        this matches a global full-batch mean loss up to worker weighting.
        """
        if not self._pending:
            return
        with self.runtime.telemetry.span("server_apply"):
            self._apply_updates()
        self.runtime.telemetry.metrics.inc("optimizer_steps")

    def _apply_updates(self) -> None:
        num_pushes = max(self._pushes_received, 1) if self.reduce == "mean" else 1
        for server, optimizer in enumerate(self._optimizers):
            shard_params: Dict[str, np.ndarray] = {}
            shard_grads: Dict[str, np.ndarray] = {}
            for name, grad_sum in self._pending.items():
                for shard in self._shards[name]:
                    if shard.server != server:
                        continue
                    view = self._params[name][shard.start:shard.stop]
                    shard_params[shard.key] = view
                    shard_grads[shard.key] = (
                        grad_sum[shard.start:shard.stop] / num_pushes
                    ).astype(np.float32)
            if shard_grads:
                optimizer.step(shard_params, shard_grads)
                # Optimizer mutated the views in place; write them back to
                # be robust to optimizers that rebind instead of mutate.
                for key, updated in shard_params.items():
                    name, span = key.split("[")
                    start, stop = span.rstrip("]").split(":")
                    self._params[name][int(start):int(stop)] = updated
        self._pending.clear()
        self._pushes_received = 0

    def set_learning_rate(self, lr: float) -> None:
        """Update every server optimizer's learning rate.

        Learning-rate schedules are driven by the trainer once per
        iteration; broadcasting a scalar to the servers is free compared
        to parameter traffic, so no bytes are charged.
        """
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        for optimizer in self._optimizers:
            optimizer.lr = lr

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of all parameters (checkpointing)."""
        return {name: array.copy() for name, array in self._params.items()}
