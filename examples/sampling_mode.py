"""EC-Graph-S: the sampling training mode on a large-graph stand-in.

Full-batch training touches every edge every epoch; the sampling mode
(paper section V, EC-Graph-S) caps each vertex's aggregation at a
per-layer fanout, shrinking both compute and the remote halo. This
example contrasts, on the OGBN-Papers stand-in:

* full-batch EC-Graph,
* EC-Graph-S with offline sampling (sampled once, in preprocessing),
* a DistDGL-style configuration with online re-sampling every epoch.

    python examples/sampling_mode.py
"""

from __future__ import annotations

from repro import ECGraphConfig
from repro.analysis.reporting import format_table
from repro.cluster import ClusterSpec
from repro.core import ECGraphTrainer, ModelConfig
from repro.core.sampling_trainer import SampledECGraphTrainer
from repro.graph import load_dataset

EPOCHS = 60
WORKERS = 6
FANOUTS = [10, 10, 10]  # the paper's OGBN-Papers sampling ratios


def main() -> None:
    graph = load_dataset("ogbn-papers", profile="bench", seed=0)
    print(graph.summary())
    print(f"(paper graph: {graph.meta['paper_vertices']:,} vertices; "
          f"scale 1/{graph.meta['scale_factor']:.0f})")
    print()

    model = ModelConfig(num_layers=3, hidden_dim=32)
    spec = ClusterSpec(num_workers=WORKERS)

    full = ECGraphTrainer(graph, model, spec, ECGraphConfig())
    full_run = full.train(EPOCHS, name="EC-Graph (full batch)")

    offline = SampledECGraphTrainer(
        graph, model, spec, fanouts=FANOUTS,
        config=ECGraphConfig(fp_mode="compress", bp_mode="resec"),
        online=False,
    )
    offline_run = offline.train(EPOCHS, name="EC-Graph-S (offline)")

    online = SampledECGraphTrainer(
        graph, model, spec, fanouts=FANOUTS,
        config=ECGraphConfig(fp_mode="raw", bp_mode="raw"),
        online=True,
    )
    online_run = online.train(EPOCHS, name="DistDGL-style (online)")

    rows = []
    for run in (full_run, offline_run, online_run):
        rows.append([
            run.name,
            f"{run.avg_epoch_seconds() * 1e3:.2f}ms",
            run.best_test_accuracy(),
            f"{run.total_bytes() / 1e6:.1f}MB",
            f"{run.preprocessing_seconds:.2f}s",
        ])
    print(format_table(
        ["mode", "epoch time", "best acc", "traffic", "preprocess"],
        rows,
        title=f"Sampling modes on {graph.name}, 3-layer GCN",
    ))
    print(
        "\nOffline sampling pays once in preprocessing; online sampling"
        "\npays every epoch — the cost the paper identifies as dominating"
        "\nDistDGL on bandwidth-constrained clusters."
    )


if __name__ == "__main__":
    main()
