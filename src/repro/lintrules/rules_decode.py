"""ECG005 — wire decoders validate before they index.

Decode paths (``decode_*`` / ``unpack_*`` in ``compression/`` and
``graph/io.py``) are the repo's trust boundary: they consume bytes that
may be truncated, foreign, or corrupt (a partial NFS copy, a stale
shared segment, a fuzzed archive). The contract — established by
``unpack_bits`` and ``load_graph`` — is that malformed input raises a
:class:`ValueError` naming the problem, never an ``IndexError`` or
``struct.error`` from deep inside numpy.

Two checks enforce the discipline in the scoped files:

* every ``decode*`` / ``unpack*`` function must either raise
  ``ValueError`` itself or delegate to a validating helper (a call
  whose name starts with ``_validate``/``unpack_``/``_check``/
  ``_decode``/``decode_`` or re-raises into ValueError) — a decoder
  with no reachable validation is flagged at its ``def``;
* ``except Exception: pass`` / bare ``except: pass`` handlers are
  flagged anywhere in the scoped files — swallowing a decode error
  turns corrupt bytes into silent wrong answers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintrules.base import Finding, ModuleInfo, Rule, dotted_name

__all__ = ["DecodeDisciplineRule"]

_DECODER_PREFIXES = ("decode", "unpack", "_decode", "_unpack")
_VALIDATOR_PREFIXES = (
    "_validate", "validate", "unpack_", "_unpack", "_check", "check_",
    "_decode", "decode_", "_require",
)


def _in_scope(module: ModuleInfo) -> bool:
    parts = module.parts
    if not parts:
        return False
    if parts[0] == "compression":
        return True
    return parts == ("graph", "io.py")


def _raises_value_error(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            name = dotted_name(exc.func) if isinstance(exc, ast.Call) else (
                dotted_name(exc)
            )
            if name.rsplit(".", 1)[-1] in ("ValueError", "KeyError"):
                return True
    return False


def _is_stub(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Protocol/abstract stubs (docstring, ..., pass, NotImplementedError)."""
    body = fn.body
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ) and isinstance(body[0].value.value, str):
        body = body[1:]
    if not body:
        return True
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ) and stmt.value.value is Ellipsis:
            continue
        if isinstance(stmt, ast.Raise) and stmt.exc is not None:
            name = dotted_name(
                stmt.exc.func if isinstance(stmt.exc, ast.Call) else stmt.exc
            )
            if name.rsplit(".", 1)[-1] == "NotImplementedError":
                continue
        return False
    return True


def _delegates_validation(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func).rsplit(".", 1)[-1]
            if name.startswith(_VALIDATOR_PREFIXES):
                return True
    return False


class DecodeDisciplineRule(Rule):
    """Decoders in compression/ and graph/io.py must fail loudly."""

    code = "ECG005"
    name = "decode-discipline"
    summary = (
        "wire decoder without ValueError validation, or a swallowed "
        "exception, in compression/ or graph/io.py"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not _in_scope(module):
            return
        for node in self.walk(module):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not node.name.startswith(_DECODER_PREFIXES):
                    continue
                if _is_stub(node):
                    continue
                if _raises_value_error(node) or _delegates_validation(node):
                    continue
                yield module.finding(
                    self.code,
                    f"decoder {node.name}() neither raises ValueError nor "
                    "calls a validating helper; malformed bytes must fail "
                    "loudly, not IndexError deep in numpy",
                    node,
                )
            elif isinstance(node, ast.ExceptHandler):
                too_broad = node.type is None or (
                    isinstance(node.type, ast.Name)
                    and node.type.id in ("Exception", "BaseException")
                )
                swallows = all(
                    isinstance(stmt, ast.Pass) for stmt in node.body
                )
                if too_broad and swallows:
                    yield module.finding(
                        self.code,
                        "broad except swallowing all errors in a decode "
                        "path; corrupt bytes must raise ValueError",
                        node,
                    )
