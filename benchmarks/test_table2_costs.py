"""Table II — algorithm costs: ML-centered framework vs EC-Graph.

Prints the analytical model for each dataset's parameters and validates
it empirically: measured cached-vertex counts for the ML-centered trainer
(memory ~ g^L) and measured wire bytes for EC-Graph (communication
~ T * L * g_rmt * d / (32/B)).
"""

from __future__ import annotations

from _helpers import bench_graph, dataset_header, fmt_bytes, run_once

from repro.analysis.costs import CostParameters, ecgraph_costs, ml_centered_costs
from repro.analysis.reporting import format_table
from repro.baselines.ml_centered import MLCenteredTrainer
from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.trainer import ECGraphTrainer
from repro.partition import HashPartitioner, partition_stats


def _analytic_rows():
    rows = []
    for name in ("cora", "reddit", "ogbn-products"):
        graph = bench_graph(name)
        partition = HashPartitioner().partition(graph.adjacency, 6)
        stats = partition_stats(graph.adjacency, partition)
        params = CostParameters(
            avg_degree=graph.adjacency.average_degree,
            avg_dim=32.0,
            input_dim=float(graph.feature_dim),
            num_layers=2,
            num_iterations=100,
            avg_remote_neighbors=stats.avg_remote_neighbors,
            bits=2,
        )
        ml = ml_centered_costs(params)
        ec = ecgraph_costs(params)
        rows.append([
            name,
            f"{ml.memory:.0f}",
            f"{ec.memory:.0f}",
            f"{ml.computation:.0f}",
            f"{ec.computation:.0f}",
            f"{ml.communication:.0f}",
            f"{ec.communication:.0f}",
        ])
    return rows


def test_table2_analytic_and_empirical(benchmark):
    rows = run_once(benchmark, _analytic_rows)
    print()
    print(format_table(
        ["dataset", "ML mem", "EC mem", "ML comp", "EC comp",
         "ML comm", "EC comm"],
        rows,
        title="Table II (analytical, per target vertex, abstract units)",
    ))

    # Empirical check on one dataset: ML-centered caches >> graph size;
    # EC-Graph per-epoch bytes shrink with B.
    graph = bench_graph("reddit")
    print(dataset_header("reddit"))
    ml = MLCenteredTrainer(
        graph, ModelConfig(num_layers=2, hidden_dim=16),
        ClusterSpec(num_workers=6), cache_fanouts=[25, 25],
        config=ECGraphConfig(),
    )
    cached = sum(ml.cached_vertex_counts())
    redundancy = cached / graph.num_vertices
    print(f"ML-centered cached vertices: {cached:,} "
          f"({redundancy:.2f}x the graph — Table II's g^L memory blowup)")
    assert redundancy > 1.5

    measured = {}
    for bits in (2, 8):
        trainer = ECGraphTrainer(
            graph, ModelConfig(num_layers=2, hidden_dim=16),
            ClusterSpec(num_workers=6),
            ECGraphConfig(fp_mode="compress", bp_mode="compress",
                          fp_bits=bits, bp_bits=bits, adaptive_bits=False),
        )
        trainer.run_epoch(0)
        measured[bits] = trainer.runtime.epoch_history[0].bytes_sent
    print(f"EC-Graph epoch bytes: B=2 -> {fmt_bytes(measured[2])}, "
          f"B=8 -> {fmt_bytes(measured[8])} "
          f"(ratio {measured[8] / measured[2]:.2f}, model predicts ~4)")
    assert 2.0 < measured[8] / measured[2] < 6.0
