"""Partition results and the partitioner interface.

The Graph Engine calls a partitioner to divide the input graph into one
part per worker (paper section III-A). A :class:`Partition` is simply the
assignment vector plus convenience accessors, validated on construction so
every downstream consumer can rely on the invariants:

* every vertex is assigned to exactly one part,
* part ids are dense in ``[0, num_parts)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.store.base import GraphStore

__all__ = ["Partition", "Partitioner"]


@dataclass
class Partition:
    """An assignment of vertices to ``num_parts`` workers.

    Attributes:
        assignment: ``(n,)`` int array; ``assignment[v]`` is the owning part.
        num_parts: Number of parts (workers).
        method: Name of the algorithm that produced the partition.
        seconds: Wall-clock partitioning time (Fig. 9 charges preprocessing).
    """

    assignment: np.ndarray
    num_parts: int
    method: str = "unknown"
    seconds: float = 0.0

    def __post_init__(self):
        self.assignment = np.ascontiguousarray(self.assignment, dtype=np.int64)
        if self.assignment.ndim != 1:
            raise ValueError("assignment must be 1-D")
        if self.num_parts <= 0:
            raise ValueError("num_parts must be positive")
        if self.assignment.size and (
            self.assignment.min() < 0 or self.assignment.max() >= self.num_parts
        ):
            raise ValueError("part id out of range")

    @property
    def num_vertices(self) -> int:
        return self.assignment.shape[0]

    def part_vertices(self, part: int) -> np.ndarray:
        """Global vertex ids owned by ``part`` (sorted ascending)."""
        if not 0 <= part < self.num_parts:
            raise IndexError(f"part {part} out of range [0, {self.num_parts})")
        return np.flatnonzero(self.assignment == part).astype(np.int64)

    def part_sizes(self) -> np.ndarray:
        """Vertex count per part."""
        return np.bincount(self.assignment, minlength=self.num_parts)

    def owner(self, vertex: int) -> int:
        """The part owning ``vertex``."""
        return int(self.assignment[vertex])


class Partitioner(Protocol):
    """Common interface for all partitioning algorithms.

    Partitioners accept either a resident :class:`CSRGraph` or a
    :class:`~repro.graph.store.GraphStore` (possibly out-of-core).
    Adjacency-free methods (hash) never touch the columns; streaming
    methods (bfs) go through the store's block API; the quality methods
    (metis, spectral) materialize the topology and are documented as
    in-memory algorithms.
    """

    name: str

    def partition(
        self, graph: CSRGraph | GraphStore, num_parts: int
    ) -> Partition:
        """Divide ``graph`` into ``num_parts`` parts."""
        ...
