"""The storage seam: where graph bytes live is one abstraction.

Two interfaces cover everything the system reads from a graph:

* :class:`GraphStore` — CSR topology. Row pointers are always resident
  (``O(n)``), but the column/weight arrays may live on disk in chunks;
  consumers that scale stream :meth:`GraphStore.iter_adjacency` blocks
  instead of touching ``indices`` wholesale.
* :class:`FeatureStore` — row-addressable dense data (features, labels,
  split masks). Consumers ask for the rows they own
  (:meth:`FeatureStore.rows`) or stream blocks; nothing in the training
  path materializes the full matrix.

:class:`GraphStoreBundle` packages one topology store plus the
per-vertex stores and duck-types the narrow :class:`AttributedGraph`
surface the trainer consumes (``adjacency``, ``feature_dim``,
``num_classes``, ``train_mask``, ``name``, ``meta``), so a bundle can be
handed to :class:`~repro.core.trainer.ECGraphTrainer` directly.

Backends: :mod:`repro.graph.store.memory` wraps today's in-RAM arrays
(the default — bit-identical to the pre-store code paths) and
:mod:`repro.graph.store.mmapstore` maps npy chunk files with an LRU
residency budget (see ``docs/storage.md``).
"""

from __future__ import annotations

import abc
from typing import Iterator

import numpy as np

from repro.graph.attributed import AttributedGraph
from repro.graph.csr import CSRGraph

__all__ = [
    "DEFAULT_MAX_BLOCK_EDGES",
    "FeatureStore",
    "GraphStore",
    "GraphStoreBundle",
    "as_topology",
    "as_bundle",
]

# Upper bound on the edges one iter_adjacency block carries (~8 MB of
# int64 columns). Storage chunks are split on row boundaries to honor
# it: on power-law graphs the first chunks hold most of the edges, and
# consumers allocate per-block temporaries proportional to block size.
DEFAULT_MAX_BLOCK_EDGES = 1 << 20


class FeatureStore(abc.ABC):
    """Row-addressable dense storage (2-D feature matrix or 1-D column)."""

    @property
    @abc.abstractmethod
    def shape(self) -> tuple[int, ...]:
        """Full logical shape ``(n,)`` or ``(n, d)``."""

    @property
    @abc.abstractmethod
    def dtype(self) -> np.dtype:
        """Element dtype."""

    @property
    def num_rows(self) -> int:
        return self.shape[0]

    @property
    def row_dim(self) -> int:
        """Columns per row (1 for 1-D stores)."""
        return self.shape[1] if len(self.shape) > 1 else 1

    @property
    def nbytes(self) -> int:
        """Logical payload size in bytes (on disk for mmap stores)."""
        return int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize

    @abc.abstractmethod
    def slice(self, start: int, stop: int) -> np.ndarray:
        """Rows ``[start, stop)``; a zero-copy view where the backend can."""

    @abc.abstractmethod
    def iter_blocks(self) -> Iterator[tuple[int, int, np.ndarray]]:
        """Yield ``(start, stop, rows)`` covering all rows in order."""

    def rows(self, ids: np.ndarray) -> np.ndarray:
        """Gather the rows named by ``ids`` (in the given order).

        Contiguous ascending ids take the :meth:`slice` fast path, which
        mmap backends serve as a zero-copy view; arbitrary ids gather
        block by block so only the touched chunks become resident.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return np.empty((0,) + self.shape[1:], dtype=self.dtype)
        if ids.size == ids[-1] - ids[0] + 1 and ids[0] >= 0:
            # Cheap contiguity test: right span plus strictly ascending.
            if ids.size == 1 or bool(np.all(np.diff(ids) == 1)):
                return self.slice(int(ids[0]), int(ids[-1]) + 1)
        return self._gather(ids)

    def _gather(self, ids: np.ndarray) -> np.ndarray:
        out = np.empty((ids.size,) + self.shape[1:], dtype=self.dtype)
        order = np.argsort(ids, kind="stable")
        sorted_ids = ids[order]
        cursor = 0
        for start, stop, block in self.iter_blocks():
            if cursor >= sorted_ids.size:
                break
            if sorted_ids[cursor] >= stop:
                continue
            end = int(np.searchsorted(sorted_ids, stop, side="left"))
            sel = sorted_ids[cursor:end] - start
            out[order[cursor:end]] = block[sel]
            cursor = end
        if cursor != sorted_ids.size:
            raise IndexError("row id out of range")
        return out

    def to_array(self) -> np.ndarray:
        """Materialize the full matrix (tests / small graphs only)."""
        return self.slice(0, self.num_rows)


class GraphStore(abc.ABC):
    """CSR topology with chunk-addressable columns.

    ``indptr`` is resident (``O(n)`` — the one array every consumer
    needs for degrees and block maths); ``indices``/``weights`` access
    goes through row-range methods so out-of-core backends only fault in
    the touched chunks.
    """

    @property
    @abc.abstractmethod
    def indptr(self) -> np.ndarray:
        """``(n + 1,)`` int64 row pointers (always addressable)."""

    @property
    @abc.abstractmethod
    def has_weights(self) -> bool: ...

    @property
    def num_vertices(self) -> int:
        return self.indptr.shape[0] - 1

    @property
    def num_edges(self) -> int:
        return int(self.indptr[-1])

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    @abc.abstractmethod
    def adjacency_block(
        self, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """``(indices, weights)`` of rows ``[start, stop)``, concatenated.

        ``weights`` is ``None`` for unweighted graphs. Blocks within one
        storage chunk are zero-copy views in mmap backends.
        """

    @abc.abstractmethod
    def iter_adjacency(
        self,
    ) -> Iterator[tuple[int, int, np.ndarray, np.ndarray | None]]:
        """Yield ``(start, stop, indices, weights)`` covering all rows.

        Blocks are row-aligned (a row never spans two blocks) and
        backends bound them to roughly :data:`DEFAULT_MAX_BLOCK_EDGES`
        edges, so consumers' per-block temporaries stay small even on
        power-law graphs whose head chunks hold most of the edges. A
        single row larger than the bound is yielded alone.
        """

    def _edge_bounded_spans(
        self, start: int, stop: int, max_edges: int
    ) -> Iterator[tuple[int, int]]:
        """Split rows ``[start, stop)`` into row-aligned spans of at
        most ``max_edges`` edges (single oversized rows excepted)."""
        indptr = self.indptr
        lo = start
        while lo < stop:
            target = int(indptr[lo]) + max_edges
            hi = int(np.searchsorted(indptr, target, side="right")) - 1
            hi = min(max(hi, lo + 1), stop)
            yield lo, hi
            lo = hi

    def neighbors(self, vertex: int) -> np.ndarray:
        indices, _ = self.adjacency_block(vertex, vertex + 1)
        return indices

    def to_csr(self) -> CSRGraph:
        """Materialize the full CSR (tests / small graphs only)."""
        chunks = list(self.iter_adjacency())
        indices = (
            np.concatenate([c[2] for c in chunks])
            if chunks
            else np.empty(0, dtype=np.int64)
        )
        weights = None
        if self.has_weights:
            weights = np.concatenate([c[3] for c in chunks])
        return CSRGraph(np.asarray(self.indptr).copy(), indices, weights)


class GraphStoreBundle:
    """One attributed graph behind the store seam.

    Duck-types the :class:`AttributedGraph` surface the trainer and the
    engine consume, so ``ECGraphTrainer(bundle, ...)`` works unchanged.
    Labels and split masks are small (``O(n)``) and cached as resident
    arrays on first touch; the feature matrix is only reachable through
    the row API (there is deliberately no ``.features`` attribute).
    """

    def __init__(
        self,
        adjacency: GraphStore,
        feature_store: FeatureStore,
        label_store: FeatureStore,
        train_mask_store: FeatureStore,
        val_mask_store: FeatureStore,
        test_mask_store: FeatureStore,
        num_classes: int,
        name: str = "unnamed",
        meta: dict[str, object] | None = None,
    ) -> None:
        self.adjacency = adjacency
        self.feature_store = feature_store
        self.label_store = label_store
        self.train_mask_store = train_mask_store
        self.val_mask_store = val_mask_store
        self.test_mask_store = test_mask_store
        self.num_classes = int(num_classes)
        self.name = name
        self.meta = dict(meta or {})
        self._labels: np.ndarray | None = None
        self._masks: dict[str, np.ndarray] = {}

    # -- AttributedGraph surface --------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.adjacency.num_vertices

    @property
    def num_edges(self) -> int:
        return self.adjacency.num_edges

    @property
    def feature_dim(self) -> int:
        return self.feature_store.shape[1]

    @property
    def labels(self) -> np.ndarray:
        if self._labels is None:
            self._labels = np.ascontiguousarray(
                self.label_store.to_array(), dtype=np.int64
            )
        return self._labels

    def _mask(self, key: str) -> np.ndarray:
        if key not in self._masks:
            store = getattr(self, f"{key}_store")
            self._masks[key] = np.ascontiguousarray(
                store.to_array(), dtype=bool
            )
        return self._masks[key]

    @property
    def train_mask(self) -> np.ndarray:
        return self._mask("train_mask")

    @property
    def val_mask(self) -> np.ndarray:
        return self._mask("val_mask")

    @property
    def test_mask(self) -> np.ndarray:
        return self._mask("test_mask")

    def split_sizes(self) -> tuple[int, int, int]:
        return (
            int(self.train_mask.sum()),
            int(self.val_mask.sum()),
            int(self.test_mask.sum()),
        )

    def summary(self) -> str:
        train, val, test = self.split_sizes()
        return (
            f"{self.name}: |V|={self.num_vertices:,} |E|={self.num_edges:,} "
            f"d0={self.feature_dim} classes={self.num_classes} "
            f"split={train}/{val}/{test} [store]"
        )

    # -- Conversion ----------------------------------------------------
    def materialize(self) -> AttributedGraph:
        """Full in-RAM :class:`AttributedGraph` (tests / small graphs)."""
        return AttributedGraph(
            adjacency=self.adjacency.to_csr(),
            features=self.feature_store.to_array(),
            labels=self.labels,
            train_mask=self.train_mask,
            val_mask=self.val_mask,
            test_mask=self.test_mask,
            num_classes=self.num_classes,
            name=self.name,
            meta=dict(self.meta),
        )


def as_topology(graph: CSRGraph | GraphStore) -> GraphStore:
    """Coerce a :class:`CSRGraph` or :class:`GraphStore` to a store."""
    if isinstance(graph, GraphStore):
        return graph
    from repro.graph.store.memory import MemoryGraphStore

    return MemoryGraphStore(graph)


def as_bundle(graph: AttributedGraph | GraphStoreBundle) -> GraphStoreBundle:
    """Coerce an :class:`AttributedGraph` or bundle to a bundle."""
    if isinstance(graph, GraphStoreBundle):
        return graph
    from repro.graph.store.memory import memory_bundle

    return memory_bundle(graph)
