"""Shared fixtures: small deterministic graphs and cluster specs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec
from repro.graph.attributed import AttributedGraph
from repro.graph.csr import CSRGraph, from_edge_list
from repro.graph.generators import GraphSpec, generate_graph


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def tiny_csr() -> CSRGraph:
    """A 5-vertex directed graph with a known edge list.

    Edges: 0->1, 0->2, 1->2, 2->0, 3->4, 4->3 (vertex order preserved).
    """
    edges = [(0, 1), (0, 2), (1, 2), (2, 0), (3, 4), (4, 3)]
    return from_edge_list(edges, num_vertices=5)


@pytest.fixture
def ring_graph() -> CSRGraph:
    """A symmetric 8-cycle (both arcs stored)."""
    n = 8
    edges = []
    for v in range(n):
        edges.append((v, (v + 1) % n))
        edges.append(((v + 1) % n, v))
    return from_edge_list(edges, num_vertices=n, deduplicate=True)


@pytest.fixture
def small_graph() -> AttributedGraph:
    """A 96-vertex planted-partition graph that GCN learns quickly."""
    spec = GraphSpec(
        name="unit-small",
        num_vertices=96,
        avg_degree=6.0,
        feature_dim=12,
        num_classes=3,
        homophily=0.9,
        feature_noise=0.8,
        train=40,
        val=16,
        test=32,
        seed=7,
    )
    return generate_graph(spec)


@pytest.fixture
def medium_graph() -> AttributedGraph:
    """A 256-vertex, higher-degree graph for integration tests."""
    spec = GraphSpec(
        name="unit-medium",
        num_vertices=256,
        avg_degree=14.0,
        feature_dim=16,
        num_classes=4,
        homophily=0.88,
        feature_noise=1.0,
        power_law=2.0,
        train=100,
        val=40,
        test=80,
        seed=11,
    )
    return generate_graph(spec)


@pytest.fixture
def cluster3() -> ClusterSpec:
    return ClusterSpec(num_workers=3, num_servers=1)


@pytest.fixture
def cluster2() -> ClusterSpec:
    return ClusterSpec(num_workers=2, num_servers=2)
