"""The unified halo transport: one code path for every exchange.

Historically the Neighbor Access Controller carried three hand-written
exchange loops — sequential forward, thread-pooled forward, and
sequential reverse — each re-implementing encode/deliver/decode, fault
retry, degradation and metering with small copy-paste drift. This module
folds them into one transport layer:

* :class:`ChannelSession` materializes one planned (responder,
  requester) channel — the rows it serves, where the decoded rows land
  (forward scatter into halo slots, or reverse accumulation into the
  owner's local rows) — so the runner loops are direction-agnostic;
* :class:`HaloTransport` plans the sessions in the canonical order
  (requesters ascending, then halo-slot insertion order; reverse:
  consumers ascending, then their owners), then drives them through a
  single sequential runner or a thread-pooled runner that merges its
  charges in the same canonical order.

Fault retry (:meth:`HaloTransport._deliver`), policy failure
notification, stale-halo degradation and codec-time charging therefore
exist exactly once, shared by both directions. Accounting and halo
contents are bit-identical to the historical loops: channel order,
float scatter/accumulation order and the fault RNG's (epoch, layer,
responder, requester, attempt) fate keys are all preserved.

Two optional hot-path optimizations (both off by default, see
``docs/performance.md``):

* **buffer pooling** — halo (and reverse-accumulator) matrices are
  reused across exchanges, keyed by ``(kind, worker, dim)`` and zeroed
  in place, instead of being reallocated per layer per iteration.
  Pooled buffers are only valid until the next exchange call.
* **thread-pool fan-out** — the independent channels encode and decode
  concurrently (numpy releases the GIL in its kernels); results are
  merged and charged in the canonical channel order from per-channel
  measured times. The fan-out engages only on the fault-free,
  telemetry-off path; otherwise the transport silently falls back to
  the sequential runner.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.cluster.engine import ClusterRuntime
from repro.core.messages import (
    ChannelKey,
    ChannelMessage,
    ExchangePolicy,
    ReceiveResult,
)
from repro.core.worker import WorkerState
from repro.faults.injector import FATE_CORRUPT, FATE_DELAY, FATE_DROP
from repro.obs.tracing import monotonic_now

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector

__all__ = ["ChannelSession", "HaloTransport"]


@dataclass
class ChannelSession:
    """One planned (responder, requester) channel of a halo exchange.

    A session binds the channel key to the rows the responder serves and
    to the scatter target on the receiving side. Forward sessions write
    ``outputs[consumer][slots] = rows``; reverse sessions accumulate
    ``outputs[consumer] += rows`` at ``accumulate_rows`` (the owner's
    local row ids), preserving the float addition order of the planned
    sequence.
    """

    key: ChannelKey
    served: np.ndarray
    slots: np.ndarray | None = None
    rows_idx: np.ndarray | None = None
    accumulate_rows: np.ndarray | None = None

    @property
    def responder(self) -> int:
        return self.key.responder

    @property
    def consumer(self) -> int:
        return self.key.requester

    @property
    def reverse(self) -> bool:
        return self.accumulate_rows is not None

    def scatter(self, outputs: list[np.ndarray], rows: np.ndarray) -> None:
        """Place decoded ``rows`` into the consumer's output matrix."""
        if self.accumulate_rows is not None:
            np.add.at(outputs[self.consumer], self.accumulate_rows, rows)
        elif self.rows_idx is None:
            outputs[self.consumer][self.slots] = rows
        else:
            outputs[self.consumer][self.slots[self.rows_idx]] = rows


class HaloTransport:
    """Runs halo exchanges — forward and reverse — across worker pairs.

    When a :class:`~repro.faults.FaultInjector` is attached (see
    :attr:`injector`), every delivery can drop, corrupt or stall; the
    transport retransmits with exponential backoff — retry bytes hit the
    traffic meter and backoff stalls the requester, so the modelled
    epoch time reflects the faults — and when retries are exhausted it
    *degrades* instead of aborting: forward channels substitute the
    ReqEC-FP predicted candidate, the last successfully received rows,
    or zeros (partial aggregation), in that order; reverse channels
    contribute zero and let error-feedback policies fold the loss into
    their residuals.

    Args:
        buffer_pool: Reuse halo buffers across exchanges (zeroed in
            place) instead of allocating fresh ones every call.
        threads: Fan the independent channels of one exchange out over
            this many threads; ``0``/``1`` keeps the sequential loop.
    """

    def __init__(
        self,
        runtime: ClusterRuntime,
        workers: list[WorkerState],
        codec_speedup: float = 20.0,
        buffer_pool: bool = False,
        threads: int = 0,
    ) -> None:
        if codec_speedup <= 0:
            raise ValueError("codec_speedup must be positive")
        if threads < 0:
            raise ValueError("threads must be non-negative")
        self.runtime = runtime
        self.workers = workers
        self.codec_speedup = codec_speedup
        self.buffer_pool = buffer_pool
        self.threads = threads
        self.telemetry = runtime.telemetry
        # FaultInjector, attached by the trainer when faults are
        # enabled; None keeps the exchange loop on the fault-free path.
        self.injector: FaultInjector | None = None
        self._last_proportions: dict[tuple[int, int], float] = {}
        # Last successfully received rows per channel, the stale-halo
        # fallback of last resort. Populated only under fault injection.
        self._halo_cache: dict[ChannelKey, np.ndarray] = {}
        # (kind, worker, dim) -> pooled float32 buffer.
        self._buffers: dict[tuple[str, int, int], np.ndarray] = {}
        self._executor: ThreadPoolExecutor | None = None
        # Optional session-output provider: (kind, worker, rows, dim) ->
        # zeroed float32 buffer, or None to fall back to the local pool.
        # The multiprocess executor plugs its shared-memory blocks in
        # here (ProcessChannelBuffers) so scatters land zero-copy where
        # the worker processes read them. Semantics match the pooled
        # path: a zeroed buffer reused across exchanges.
        self.buffer_provider: (
            Callable[[str, int, int, int], np.ndarray | None] | None
        ) = None

    # ------------------------------------------------------------------
    # Buffer pool
    # ------------------------------------------------------------------
    def _buffer(self, kind: str, worker: int, rows: int, dim: int) -> np.ndarray:
        """A zeroed ``(rows, dim)`` float32 buffer, pooled when enabled."""
        if self.buffer_provider is not None:
            buf = self.buffer_provider(kind, worker, rows, dim)
            if buf is not None:
                return buf
        if not self.buffer_pool:
            return np.zeros((rows, dim), dtype=np.float32)
        key = (kind, worker, dim)
        buf = self._buffers.get(key)
        if buf is None or buf.shape[0] != rows:
            buf = np.zeros((rows, dim), dtype=np.float32)
            self._buffers[key] = buf
        else:
            buf.fill(0.0)
        return buf

    # ------------------------------------------------------------------
    # Thread pool
    # ------------------------------------------------------------------
    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.threads, thread_name_prefix="nac"
            )
        return self._executor

    def close(self) -> None:
        """Shut the fan-out thread pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _fan_out_ok(self, sessions: list[ChannelSession]) -> bool:
        """Threaded fan-out needs the fault-free, uninstrumented path:
        fault fates consume a shared RNG stream in channel order and
        span tracing timestamps interleave across threads."""
        return (
            self.threads > 1
            and len(sessions) > 1
            and self.injector is None
            and not self.telemetry.enabled
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def exchange(
        self,
        layer: int,
        t: int,
        rows_of: Callable[[WorkerState], np.ndarray],
        policy: ExchangePolicy,
        category: str,
        dim: int,
        subset: dict[tuple[int, int], np.ndarray] | None = None,
    ) -> list[np.ndarray]:
        """Fetch remote rows for every worker; returns halo matrices.

        Args:
            layer: Layer id baked into the channel keys.
            t: Iteration number (policies schedule on it).
            rows_of: Maps a *responding* worker's state to the local
                matrix whose rows are being served (e.g. its ``H^{l-1}``).
            policy: The exchange policy for this direction.
            category: Traffic category for the meter.
            dim: Row width, used to size the halo buffers.
            subset: Optional per-(responder, requester) indices into the
                channel's full vertex list (sampling mode); channels not
                present exchange all rows.

        Returns:
            One ``(num_halo, dim)`` array per worker, rows scattered into
            the worker's halo ordering. Vertices outside a subset keep 0.
            With the buffer pool enabled the arrays are only valid until
            the next exchange.
        """
        halos = [
            self._buffer("halo", state.worker_id, state.num_halo, dim)
            for state in self.workers
        ]
        self._last_proportions.clear()
        obs = self.telemetry
        with obs.span("halo_exchange", layer=layer, category=category):
            sessions = self._plan_forward(layer, rows_of, subset)
            self._run(sessions, halos, t, policy, category, dim)
        return halos

    def reverse_exchange(
        self,
        layer: int,
        t: int,
        halo_rows_of: Callable[[WorkerState], np.ndarray],
        policy: ExchangePolicy,
        category: str,
        dim: int,
    ) -> list[np.ndarray]:
        """Push halo-partial gradients back to their owners and sum them.

        The mirror of :meth:`exchange`, needed by models with asymmetric
        aggregation (GAT): each worker computed *partial* gradients for
        the remote vertices it consumed; the owners must receive and sum
        those partials. The paper describes this as fetching "embedding
        gradients from out-neighbors" in the backward pass.

        Args:
            halo_rows_of: Maps a worker's state to its ``(num_halo, dim)``
                partial-gradient matrix (halo ordering).

        Returns:
            One ``(num_local, dim)`` array per worker: the sum of the
            partials every consumer computed for that worker's vertices.
            With the buffer pool enabled the arrays are only valid until
            the next exchange.
        """
        accumulated = [
            self._buffer("local", state.worker_id, state.num_local, dim)
            for state in self.workers
        ]
        obs = self.telemetry
        with obs.span("halo_exchange", layer=layer, category=category,
                      direction="reverse"):
            sessions = self._plan_reverse(layer, halo_rows_of)
            self._run(sessions, accumulated, t, policy, category, dim)
        return accumulated

    def last_proportions(self) -> dict[tuple[int, int], float]:
        """Predicted-selection proportions observed in the last exchange.

        Keyed by (responder, requester); feeds the Bit-Tuner once per
        iteration, after the final forward layer (Algorithm 3).
        """
        return dict(self._last_proportions)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _plan_forward(
        self,
        layer: int,
        rows_of: Callable[[WorkerState], np.ndarray],
        subset: dict[tuple[int, int], np.ndarray] | None,
    ) -> list[ChannelSession]:
        """Materialize this round's sessions in the canonical order.

        The order — requesters ascending, then each requester's owners in
        halo-slot insertion order — is what the sequential loop always
        used; the threaded runner merges its charges in exactly this
        order so accounting is execution-schedule independent.
        """
        sessions: list[ChannelSession] = []
        for requester in self.workers:
            i = requester.worker_id
            # ecg: ignore[ECG003] halo_slots insertion order IS the bit-pinned channel plan; sorting would reorder float scatters and break the goldens
            for owner, slots in requester.halo_slots.items():
                rows_idx = None
                if subset is not None:
                    rows_idx = subset.get((owner, i))
                    if rows_idx is not None and rows_idx.size == 0:
                        continue
                responder = self.workers[owner]
                serve_rows = responder.serves[i]
                source = rows_of(responder)
                if rows_idx is None:
                    served = source[serve_rows]
                else:
                    served = source[serve_rows[rows_idx]]
                sessions.append(ChannelSession(
                    key=ChannelKey(layer=layer, responder=owner, requester=i),
                    served=served,
                    slots=slots,
                    rows_idx=rows_idx,
                ))
        return sessions

    def _plan_reverse(
        self,
        layer: int,
        halo_rows_of: Callable[[WorkerState], np.ndarray],
    ) -> list[ChannelSession]:
        """Reverse sessions: consumers ascending, owners in slot order.

        Channel direction flips — the consumer responds with its halo
        partials and the owner "requests" them — so the key is
        ``ChannelKey(layer, responder=consumer, requester=owner)`` and
        the scatter accumulates into the owner's served local rows.
        """
        sessions: list[ChannelSession] = []
        for consumer in self.workers:
            i = consumer.worker_id
            if not consumer.halo_slots:
                # No remote neighbours (or an empty post-membership
                # slot): nothing to push, and the backend may not have
                # partials for this worker at all.
                continue
            partials = halo_rows_of(consumer)
            # ecg: ignore[ECG003] halo_slots insertion order IS the bit-pinned channel plan; sorting would reorder reverse accumulation and break the goldens
            for owner, slots in consumer.halo_slots.items():
                owner_state = self.workers[owner]
                sessions.append(ChannelSession(
                    key=ChannelKey(layer=layer, responder=i, requester=owner),
                    served=partials[slots],
                    accumulate_rows=owner_state.serves[i],
                ))
        return sessions

    # ------------------------------------------------------------------
    # Runners
    # ------------------------------------------------------------------
    def _run(
        self,
        sessions: list[ChannelSession],
        outputs: list[np.ndarray],
        t: int,
        policy: ExchangePolicy,
        category: str,
        dim: int,
    ) -> None:
        if self._fan_out_ok(sessions):
            self._run_threaded(sessions, outputs, t, policy, category)
        else:
            self._run_sequential(sessions, outputs, t, policy, category, dim)

    def _run_sequential(
        self,
        sessions: list[ChannelSession],
        outputs: list[np.ndarray],
        t: int,
        policy: ExchangePolicy,
        category: str,
        dim: int,
    ) -> None:
        obs = self.telemetry
        for ch in sessions:
            responder, consumer = ch.responder, ch.consumer
            with obs.span("encode", responder=responder, requester=consumer):
                start = monotonic_now()
                message = policy.respond(
                    ch.key, ch.served, t, rows_idx=ch.rows_idx
                )
                respond_wall = monotonic_now() - start
            self._charge_compute(responder, respond_wall, message.codec_seconds)

            delivered = self._deliver(
                ch.key, message, responder, consumer, category
            )
            if obs.enabled:
                obs.metrics.inc(
                    "halo_rows", ch.served.shape[0], category=category
                )
                obs.metrics.observe(
                    "message_bytes", message.nbytes, category=category
                )

            if not delivered:
                self._degrade(ch, message, outputs, t, policy, category, dim)
                continue

            with obs.span("decode", responder=responder, requester=consumer):
                start = monotonic_now()
                result = policy.receive(
                    ch.key, message, t, rows_idx=ch.rows_idx
                )
                receive_wall = monotonic_now() - start
            self._charge_compute(consumer, receive_wall, result.codec_seconds)

            ch.scatter(outputs, result.rows)
            obs.ledger.record_rows(
                ch.key, category, ch.served.shape[0], ch.served.size
            )
            if (
                not ch.reverse
                and ch.rows_idx is None
                and self.injector is not None
            ):
                self._halo_cache[ch.key] = np.array(result.rows, copy=True)
            self._record_proportion(ch, message, result)

    def _run_threaded(
        self,
        sessions: list[ChannelSession],
        outputs: list[np.ndarray],
        t: int,
        policy: ExchangePolicy,
        category: str,
    ) -> None:
        """Encode/decode all channels concurrently, charge in order.

        Channel computations are independent and deterministic given
        (key, rows, t) and the policy's per-channel state, so the
        scattered contents are bit-identical to the sequential runner no
        matter how the scheduler interleaves them — scatters (including
        reverse accumulation, whose float addition order matters) happen
        after the barrier in the canonical session order. Only the
        *charging* order could differ — so all meter/compute charges
        happen after each barrier, in the canonical order, from
        per-channel measured times.
        """
        pool = self._pool()

        def _respond(ch: ChannelSession) -> tuple[ChannelMessage, float]:
            start = monotonic_now()
            message = policy.respond(ch.key, ch.served, t, rows_idx=ch.rows_idx)
            return message, monotonic_now() - start

        responded = list(pool.map(_respond, sessions))
        for ch, (message, wall) in zip(sessions, responded):
            self._charge_compute(ch.responder, wall, message.codec_seconds)
            self.runtime.send_worker_to_worker(
                ch.responder, ch.consumer, message.nbytes, category
            )

        def _receive(
            item: tuple[ChannelSession, tuple[ChannelMessage, float]]
        ) -> tuple[ReceiveResult, float]:
            ch, (message, _) = item
            start = monotonic_now()
            result = policy.receive(ch.key, message, t, rows_idx=ch.rows_idx)
            return result, monotonic_now() - start

        received = list(pool.map(_receive, zip(sessions, responded)))
        for ch, (message, _), (result, wall) in zip(
            sessions, responded, received
        ):
            self._charge_compute(ch.consumer, wall, result.codec_seconds)
            ch.scatter(outputs, result.rows)
            self._record_proportion(ch, message, result)

    def _record_proportion(
        self,
        ch: ChannelSession,
        message: ChannelMessage,
        result: ReceiveResult,
    ) -> None:
        proportion = result.meta.get("proportion")
        if proportion is None:
            proportion = message.meta.get("proportion")
        if proportion is not None:
            self._last_proportions[(ch.responder, ch.consumer)] = float(
                proportion
            )

    # ------------------------------------------------------------------
    # Fault tolerance
    # ------------------------------------------------------------------
    def _deliver(
        self,
        key: ChannelKey,
        message: ChannelMessage,
        src: int,
        dst: int,
        category: str,
    ) -> bool:
        """Attempt delivery with retransmission; returns success.

        Every attempt — including failed ones, whose bytes were on the
        wire before the loss — is charged to the traffic meter. Each
        failed attempt stalls the receiving worker for the network's
        loss-detection timeout (the RTO a reliable RPC layer waits
        before declaring the message dead), retransmissions add the
        retry policy's exponential backoff on top, and late deliveries
        stall for the configured delay.
        """
        ledger = self.telemetry.ledger
        metered = False
        if ledger.enabled:
            spec = self.runtime.spec
            # Mirror the TrafficMeter's intra-machine exemption so the
            # ledger's metered bytes reconcile against it exactly.
            metered = spec.worker_machine(src) != spec.worker_machine(dst)
            ledger.record_frame(key, category, message.nbytes, metered)
        self.runtime.send_worker_to_worker(src, dst, message.nbytes, category)
        injector = self.injector
        if injector is None:
            return True
        obs = self.telemetry
        timeout = self.runtime.spec.network.loss_detection_seconds(
            message.nbytes
        )
        fate = injector.message_fate(key.layer, src, dst, category, 0)
        attempt = 0
        while fate in (FATE_DROP, FATE_CORRUPT):
            if obs.enabled:
                obs.metrics.inc(
                    "fault_message_failures", category=category, fate=fate
                )
            self.runtime.add_stall(dst, timeout)
            attempt += 1
            if attempt > injector.config.max_retries:
                return False
            injector.counters.retries += 1
            injector.counters.retry_bytes += message.nbytes
            self.runtime.add_stall(dst, injector.backoff_seconds(attempt))
            ledger.record_frame(
                key, category, message.nbytes, metered, retry=True
            )
            self.runtime.send_worker_to_worker(
                src, dst, message.nbytes, category
            )
            if obs.enabled:
                obs.metrics.inc("fault_retries", category=category)
            fate = injector.message_fate(key.layer, src, dst, category, attempt)
        if fate == FATE_DELAY:
            self.runtime.add_stall(dst, injector.config.delay_seconds)
            if obs.enabled:
                obs.metrics.inc("fault_delays", category=category)
        return True

    def _degrade(
        self,
        ch: ChannelSession,
        message: ChannelMessage,
        outputs: list[np.ndarray],
        t: int,
        policy: ExchangePolicy,
        category: str,
        dim: int,
    ) -> None:
        """Handle an undeliverable message on either direction.

        Forward channels substitute stale rows (:meth:`_degraded_rows`);
        reverse channels contribute zero this iteration — lost partial
        gradients are folded into the channel residual by error-feedback
        policies so they re-ship next iteration.
        """
        self._notify_failure(policy, ch.key, message, rows_idx=ch.rows_idx)
        if ch.reverse:
            self.injector.counters.degraded_zero += 1
            self.telemetry.ledger.record_degraded(ch.key, category, "zero")
            if self.telemetry.enabled:
                self.telemetry.metrics.inc(
                    "fault_degraded", kind="zero", category=category
                )
            return
        rows = self._degraded_rows(
            policy, ch.key, t, ch.served.shape[0], dim, category
        )
        if rows is None:
            return  # zeros: partial aggregation
        ch.scatter(outputs, rows)

    def _notify_failure(
        self,
        policy: ExchangePolicy,
        key: ChannelKey,
        message: ChannelMessage,
        rows_idx: np.ndarray | None = None,
    ) -> None:
        """Tell a stateful policy its message never arrived.

        ReqEC-FP rolls back an unacknowledged trend snapshot so both
        ends stay in sync; ResEC-BP folds the lost gradient into the
        channel residual so error feedback re-ships it next iteration
        (the handler returns True when it compensated that way).
        """
        handler = getattr(policy, "on_delivery_failure", None)
        if handler is not None and handler(key, message, rows_idx=rows_idx):
            self.injector.counters.residual_compensations += 1
            if self.telemetry.enabled:
                self.telemetry.metrics.inc("fault_residual_compensations")

    def _degraded_rows(
        self,
        policy: ExchangePolicy,
        key: ChannelKey,
        t: int,
        num_rows: int,
        dim: int,
        category: str,
    ) -> np.ndarray | None:
        """Stale-halo substitute for an undeliverable forward message.

        Preference order: the ReqEC-FP *predicted* candidate (requester
        trend state needs no payload at all), then the channel's last
        successfully received rows, then None (the halo slots keep
        their zeros — DistGNN-style partial aggregation).
        """
        counters = self.injector.counters
        obs = self.telemetry
        fallback = getattr(policy, "fallback_rows", None)
        if fallback is not None:
            rows = fallback(key, t)
            if rows is not None and rows.shape == (num_rows, dim):
                counters.degraded_predicted += 1
                obs.ledger.record_degraded(key, category, "predicted")
                if obs.enabled:
                    obs.metrics.inc("fault_degraded", kind="predicted")
                return rows
        cached = self._halo_cache.get(key)
        if cached is not None and cached.shape == (num_rows, dim):
            counters.degraded_cached += 1
            obs.ledger.record_degraded(key, category, "cached")
            if obs.enabled:
                obs.metrics.inc("fault_degraded", kind="cached")
            return cached
        counters.degraded_zero += 1
        obs.ledger.record_degraded(key, category, "zero")
        if obs.enabled:
            obs.metrics.inc("fault_degraded", kind="zero")
        return None

    def invalidate_worker(self, worker: int) -> None:
        """Drop cached halo rows touching ``worker`` (crash recovery)."""
        stale = [
            key for key in self._halo_cache
            if worker in (key.responder, key.requester)
        ]
        for key in stale:
            del self._halo_cache[key]

    def rebuild(self, changed: object = None) -> None:
        """Reset per-channel caches after a membership change.

        Sessions are planned fresh from the worker states on every
        exchange, so the plans need no rebuilding — but the stale-halo
        cache, the pooled buffers (halo sizes changed) and the last
        proportions all describe channels that may no longer exist.
        ``changed`` is accepted for symmetry with the policy hooks; the
        caches are cheap enough to drop wholesale.
        """
        del changed
        self._halo_cache.clear()
        self._buffers.clear()
        self._last_proportions.clear()

    # ------------------------------------------------------------------
    def _charge_compute(
        self, worker: int, wall_seconds: float, codec_seconds: float
    ) -> None:
        """Charge policy time, discounting codec work by the speedup."""
        codec_seconds = min(codec_seconds, wall_seconds)
        other = wall_seconds - codec_seconds
        self.runtime.add_compute(
            worker, other + codec_seconds / self.codec_speedup
        )
