"""Weight initialization schemes for dense GNN layers.

All initializers take an explicit :class:`numpy.random.Generator` so that
distributed workers can reproduce identical parameter tensors from a shared
seed (the parameter servers broadcast the seed, not the weights).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "glorot_uniform",
    "glorot_normal",
    "he_uniform",
    "he_normal",
    "zeros",
    "uniform",
]


def _fan(shape: tuple[int, ...]) -> tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight tensor shape.

    For 2-D weights ``(in_dim, out_dim)`` this is simply the two axes. For
    higher-rank tensors the trailing axes are folded into the receptive
    field, matching the convention used by PyTorch and Keras.
    """
    if len(shape) < 1:
        raise ValueError("weight shape must have at least one axis")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = 1
    for dim in shape[2:]:
        receptive *= dim
    return shape[0] * receptive, shape[1] * receptive


def glorot_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization, the GCN paper's default."""
    fan_in, fan_out = _fan(shape)
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def glorot_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = _fan(shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return (rng.standard_normal(shape) * std).astype(np.float32)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform initialization, suited to ReLU activations."""
    fan_in, _ = _fan(shape)
    limit = math.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He normal initialization, suited to ReLU activations."""
    fan_in, _ = _fan(shape)
    std = math.sqrt(2.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(np.float32)


def zeros(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zero initialization (used for biases)."""
    del rng
    return np.zeros(shape, dtype=np.float32)


def uniform(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    low: float = -0.05,
    high: float = 0.05,
) -> np.ndarray:
    """Plain uniform initialization over ``[low, high)``."""
    return rng.uniform(low, high, size=shape).astype(np.float32)


INITIALIZERS = {
    "glorot_uniform": glorot_uniform,
    "glorot_normal": glorot_normal,
    "he_uniform": he_uniform,
    "he_normal": he_normal,
    "zeros": zeros,
}


def get_initializer(name: str):
    """Look up an initializer by name.

    Raises :class:`KeyError` with the list of known names when the name is
    unknown, so configuration typos fail loudly.
    """
    try:
        return INITIALIZERS[name]
    except KeyError:
        known = ", ".join(sorted(INITIALIZERS))
        raise KeyError(f"unknown initializer {name!r}; known: {known}") from None
