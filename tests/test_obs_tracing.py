"""Unit tests for the span tracer and the trace exporters."""

import json
import warnings

import pytest

from repro.obs.export import (
    read_jsonl,
    spans_to_chrome,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.tracing import NullTracer, SpanTracer


def _trace_three_nested():
    tracer = SpanTracer()
    with tracer.span("epoch", epoch=0):
        with tracer.span("forward"):
            with tracer.span("kernel", layer=1):
                pass
    return tracer


class TestSpanTracer:
    def test_nesting_depth_and_parent(self):
        tracer = _trace_three_nested()
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["epoch"].depth == 0
        assert by_name["forward"].depth == 1
        assert by_name["kernel"].depth == 2
        assert by_name["epoch"].parent == -1
        assert by_name["forward"].parent == by_name["epoch"].index
        assert by_name["kernel"].parent == by_name["forward"].index

    def test_children_contained_in_parent(self):
        tracer = _trace_three_nested()
        by_name = {s.name: s for s in tracer.spans}
        outer, inner = by_name["epoch"], by_name["kernel"]
        assert inner.start_s >= outer.start_s
        assert (inner.start_s + inner.duration_s
                <= outer.start_s + outer.duration_s + 1e-9)

    def test_siblings_sum_within_parent(self):
        tracer = SpanTracer()
        with tracer.span("iteration"):
            for layer in (1, 2):
                with tracer.span("layer", layer=layer):
                    pass
        by_name = {}
        for span in tracer.spans:
            by_name.setdefault(span.name, []).append(span)
        layer_total = sum(s.duration_s for s in by_name["layer"])
        assert layer_total <= by_name["iteration"][0].duration_s + 1e-9

    def test_totals_by_name(self):
        tracer = SpanTracer()
        for _ in range(3):
            with tracer.span("kernel"):
                pass
        count, seconds = tracer.totals_by_name()["kernel"]
        assert count == 3 and seconds >= 0.0

    def test_attrs_preserved(self):
        tracer = SpanTracer()
        with tracer.span("halo_exchange", layer=2, category="fp"):
            pass
        assert tracer.spans[0].attrs == {"layer": 2, "category": "fp"}

    def test_max_spans_drops_not_grows(self):
        tracer = SpanTracer(max_spans=2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for _ in range(5):
                with tracer.span("x"):
                    pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3

    def test_drop_warns_exactly_once(self):
        tracer = SpanTracer(max_spans=1)
        with tracer.span("kept"):
            pass
        with pytest.warns(RuntimeWarning, match="span buffer full"):
            with tracer.span("first-drop"):
                pass
        # Subsequent overflows are silent — the counter carries on.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with tracer.span("second-drop"):
                pass
        assert tracer.dropped == 2

    def test_drops_mirrored_into_metrics(self):
        from repro.obs.registry import MetricsRegistry

        metrics = MetricsRegistry()
        tracer = SpanTracer(max_spans=1, metrics=metrics)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for _ in range(4):
                with tracer.span("x"):
                    pass
        assert tracer.dropped == 3
        assert metrics.snapshot().counter("spans_dropped") == 3

    def test_reset_rearms_the_warning(self):
        tracer = SpanTracer(max_spans=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for _ in range(2):
                with tracer.span("x"):
                    pass
        tracer.reset()
        with tracer.span("kept"):
            pass
        with pytest.warns(RuntimeWarning, match="span buffer full"):
            with tracer.span("overflow"):
                pass

    def test_invalid_max_spans(self):
        with pytest.raises(ValueError):
            SpanTracer(max_spans=0)

    def test_reset(self):
        tracer = _trace_three_nested()
        tracer.reset()
        assert tracer.spans == [] and tracer.dropped == 0

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        first = tracer.span("a", layer=1)
        second = tracer.span("b")
        with first, second:
            pass
        assert first is second  # shared no-op context
        assert tracer.spans == []
        assert tracer.totals_by_name() == {}


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = _trace_three_nested()
        path = write_jsonl(tracer.spans, tmp_path / "spans.jsonl")
        records = read_jsonl(path)
        assert [r["name"] for r in records] == [
            s.name for s in tracer.spans
        ]
        assert records[0]["attrs"] == tracer.spans[0].attrs
        assert records[0]["duration_s"] == pytest.approx(
            tracer.spans[0].duration_s
        )

    def test_empty_jsonl(self, tmp_path):
        path = write_jsonl([], tmp_path / "spans.jsonl")
        assert read_jsonl(path) == []

    def test_chrome_document_shape(self):
        tracer = _trace_three_nested()
        doc = spans_to_chrome(tracer.spans, process_name="test")
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"  # process-name metadata
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 3
        for event in complete:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= event.keys()
            assert event["dur"] >= 0.0

    def test_chrome_file_parses(self, tmp_path):
        tracer = _trace_three_nested()
        path = write_chrome_trace(tracer.spans, tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        kernel = [e for e in doc["traceEvents"] if e["name"] == "kernel"]
        assert kernel[0]["args"] == {"layer": 1}

    def test_chrome_timestamps_are_microseconds(self):
        tracer = _trace_three_nested()
        doc = spans_to_chrome(tracer.spans)
        span = tracer.spans[0]
        event = next(
            e for e in doc["traceEvents"] if e.get("ph") == "X"
            and e["name"] == span.name
        )
        assert event["ts"] == pytest.approx(span.start_s * 1e6)
        assert event["dur"] == pytest.approx(span.duration_s * 1e6)
