"""Integration tests for the distributed trainer.

The anchor test: with raw (lossless) exchange, distributed full-batch
training on any number of workers must match single-worker training
*exactly* — the paper's architecture computes the same global GCN, only
partitioned. Everything else (compression effects, traffic ordering,
convergence) builds on that guarantee.
"""

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.trainer import ECGraphTrainer


def _train(graph, workers, config, epochs=5, model=None):
    trainer = ECGraphTrainer(
        graph,
        model or ModelConfig(num_layers=2, hidden_dim=8),
        ClusterSpec(num_workers=workers),
        config,
    )
    run = trainer.train(epochs)
    return trainer, run


class TestDistributedEqualsStandalone:
    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_losses_identical_with_raw_exchange(self, small_graph, workers):
        config = ECGraphConfig(fp_mode="raw", bp_mode="raw", seed=3)
        _, single = _train(small_graph, 1, config)
        _, multi = _train(small_graph, workers, config)
        for a, b in zip(single.epochs, multi.epochs):
            assert a.loss == pytest.approx(b.loss, rel=1e-4, abs=1e-5)
            assert a.train_accuracy == pytest.approx(b.train_accuracy)
            assert a.test_accuracy == pytest.approx(b.test_accuracy)

    def test_parameters_identical_after_training(self, small_graph):
        config = ECGraphConfig(fp_mode="raw", bp_mode="raw", seed=3)
        t1, _ = _train(small_graph, 1, config)
        t3, _ = _train(small_graph, 3, config)
        for name in t1.servers.parameter_names():
            np.testing.assert_allclose(
                t1.servers.get(name), t3.servers.get(name),
                atol=1e-4,
            )

    def test_three_layer_model_matches_too(self, small_graph):
        config = ECGraphConfig(fp_mode="raw", bp_mode="raw", seed=1)
        model = ModelConfig(num_layers=3, hidden_dim=6)
        _, single = _train(small_graph, 1, config, model=model)
        _, multi = _train(small_graph, 3, config, model=model)
        assert single.epochs[-1].loss == pytest.approx(
            multi.epochs[-1].loss, rel=1e-3, abs=1e-5
        )

    def test_no_first_hop_cache_still_matches(self, small_graph):
        config = ECGraphConfig(
            fp_mode="raw", bp_mode="raw", cache_first_hop=False, seed=3
        )
        _, single = _train(small_graph, 1, config)
        _, multi = _train(small_graph, 3, config)
        assert single.epochs[-1].loss == pytest.approx(
            multi.epochs[-1].loss, rel=1e-4, abs=1e-5
        )


class TestTrafficAccounting:
    def test_standalone_has_zero_traffic(self, small_graph):
        config = ECGraphConfig(fp_mode="raw", bp_mode="raw")
        _, run = _train(small_graph, 1, config)
        assert run.total_bytes() == 0

    def test_distributed_traffic_positive(self, small_graph):
        config = ECGraphConfig(fp_mode="raw", bp_mode="raw")
        _, run = _train(small_graph, 3, config)
        assert run.total_bytes() > 0

    def test_compression_reduces_traffic(self, small_graph):
        raw_config = ECGraphConfig(fp_mode="raw", bp_mode="raw")
        cp_config = ECGraphConfig(
            fp_mode="compress", bp_mode="compress", fp_bits=2, bp_bits=2,
            adaptive_bits=False,
        )
        _, raw_run = _train(small_graph, 3, raw_config)
        _, cp_run = _train(small_graph, 3, cp_config)
        # Small unit graphs have tiny per-message payloads, so framing
        # overhead caps the ratio well below the asymptotic 16x.
        assert cp_run.total_bytes() < raw_run.total_bytes() / 2.5

    def test_categories_present(self, small_graph):
        config = ECGraphConfig(fp_mode="raw", bp_mode="raw")
        _, run = _train(small_graph, 3, config, epochs=2)
        categories = run.epochs[0].breakdown.category_bytes
        assert "fp_embeddings" in categories
        assert "bp_gradients" in categories
        assert "param_pull" in categories
        assert "param_push" in categories

    def test_more_bits_more_traffic(self, small_graph):
        runs = {}
        for bits in (1, 8):
            config = ECGraphConfig(
                fp_mode="compress", bp_mode="compress",
                fp_bits=bits, bp_bits=bits, adaptive_bits=False,
                table_mode="bounds",
            )
            _, runs[bits] = _train(small_graph, 3, config)
        assert runs[1].total_bytes() < runs[8].total_bytes()

    def test_first_hop_cache_removes_layer1_traffic(self, small_graph):
        cached = ECGraphConfig(fp_mode="raw", bp_mode="raw",
                               cache_first_hop=True)
        uncached = ECGraphConfig(fp_mode="raw", bp_mode="raw",
                                 cache_first_hop=False)
        _, run_cached = _train(small_graph, 3, cached)
        _, run_uncached = _train(small_graph, 3, uncached)
        assert run_cached.total_bytes() < run_uncached.total_bytes()


class TestECGraphPipeline:
    def test_full_pipeline_converges(self, small_graph):
        config = ECGraphConfig(fp_bits=4, bp_bits=4)
        _, run = _train(small_graph, 3, config, epochs=40)
        assert run.best_test_accuracy() > 0.7

    def test_bit_tuner_engages(self, medium_graph):
        config = ECGraphConfig(fp_bits=4, bp_bits=4, adaptive_bits=True,
                               trend_period=4)
        trainer, _ = _train(medium_graph, 3, config, epochs=25)
        # The tuner must have been consulted; widths stay on the ladder.
        from repro.core.bit_tuner import BIT_LADDER

        pairs = [(i, j) for i in range(3) for j in range(3) if i != j]
        assert all(trainer.tuner.bits(p) in BIT_LADDER for p in pairs)

    def test_evaluate_exact_does_not_disturb_state(self, small_graph):
        config = ECGraphConfig(fp_bits=2, bp_bits=2)
        trainer, _ = _train(small_graph, 3, config, epochs=8)
        before = trainer.runtime.meter.total_bytes
        metrics = trainer.evaluate_exact()
        assert trainer.runtime.meter.total_bytes == before
        assert 0.0 <= metrics["test"] <= 1.0

    def test_early_stopping_on_patience(self, small_graph):
        config = ECGraphConfig(fp_mode="raw", bp_mode="raw")
        trainer = ECGraphTrainer(
            small_graph, ModelConfig(num_layers=2, hidden_dim=8),
            ClusterSpec(num_workers=2), config,
        )
        run = trainer.train(500, patience=5)
        assert run.num_epochs < 500

    def test_target_accuracy_stops(self, small_graph):
        config = ECGraphConfig(fp_mode="raw", bp_mode="raw")
        trainer = ECGraphTrainer(
            small_graph, ModelConfig(num_layers=2, hidden_dim=8),
            ClusterSpec(num_workers=2), config,
        )
        run = trainer.train(300, target_accuracy=0.5)
        assert run.epochs[-1].test_accuracy >= 0.5
        assert run.num_epochs < 300

    def test_partition_mismatch_rejected(self, small_graph):
        from repro.partition.base import Partition

        bad = Partition(
            np.zeros(small_graph.num_vertices, dtype=np.int64), 1
        )
        trainer = ECGraphTrainer(
            small_graph, ModelConfig(), ClusterSpec(num_workers=2),
            ECGraphConfig(), partition=bad,
        )
        with pytest.raises(ValueError, match="parts"):
            trainer.setup()

    def test_run_metadata(self, small_graph):
        config = ECGraphConfig()
        _, run = _train(small_graph, 3, config, epochs=2)
        assert run.meta["num_workers"] == 3
        assert run.meta["fp_mode"] == "reqec"
        assert run.preprocessing_seconds > 0

    def test_epoch_breakdown_positive_times(self, small_graph):
        config = ECGraphConfig()
        _, run = _train(small_graph, 3, config, epochs=2)
        for epoch in run.epochs:
            assert epoch.breakdown.compute_seconds > 0
            assert epoch.breakdown.comm_seconds > 0
            assert epoch.breakdown.total_seconds == pytest.approx(
                epoch.breakdown.compute_seconds
                + epoch.breakdown.comm_seconds
            )


class TestDelayedMode:
    def test_distgnn_mode_trains(self, small_graph):
        config = ECGraphConfig(
            fp_mode="delayed", bp_mode="delayed", delayed_rounds=3
        )
        _, run = _train(small_graph, 3, config, epochs=40)
        assert run.best_test_accuracy() > 0.6

    def test_delayed_less_traffic_than_raw(self, small_graph):
        raw = ECGraphConfig(fp_mode="raw", bp_mode="raw")
        delayed = ECGraphConfig(
            fp_mode="delayed", bp_mode="delayed", delayed_rounds=5
        )
        _, raw_run = _train(small_graph, 3, raw, epochs=10)
        _, delayed_run = _train(small_graph, 3, delayed, epochs=10)
        assert delayed_run.total_bytes() < raw_run.total_bytes()
