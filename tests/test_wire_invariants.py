"""Wire-size invariants: every byte count a policy *charges* must equal
the length of the bytes the serializer actually *produces*.

The traffic meter bills the computed ``nbytes`` of each message, so any
drift between the accounting arithmetic and the real frames would skew
every traffic figure the reproduction reports. These tests pin exact
equality — no tolerances — across granularities, bit widths, table
modes, and the all-predicted (empty subset) selector edge case.
"""

import numpy as np
import pytest

from repro.cluster.serialize import (
    encode_exact,
    encode_quantized,
    encode_selector,
)
from repro.compression.quantization import SUPPORTED_BITS, BucketQuantizer
from repro.core.bit_tuner import BitTuner
from repro.core.messages import ChannelKey
from repro.core.reqec_fp import SELECT_PREDICTED, ReqECPolicy


@pytest.fixture
def rows():
    rng = np.random.default_rng(0)
    return rng.uniform(-2.0, 3.0, size=(19, 7)).astype(np.float32)


def _policy(granularity, table_mode="table", bits=4):
    return ReqECPolicy(
        BitTuner(initial_bits=bits, enabled=False),
        trend_period=4,
        granularity=granularity,
        table_mode=table_mode,
    )


class TestQuantizedPayloadBytes:
    @pytest.mark.parametrize("bits", SUPPORTED_BITS)
    @pytest.mark.parametrize("mode", ["table", "bounds"])
    def test_payload_bytes_equals_frame_length(self, rows, bits, mode):
        quantized = BucketQuantizer(bits, mode).encode(rows)
        assert quantized.payload_bytes() == len(encode_quantized(quantized))

    @pytest.mark.parametrize("mode", ["table", "bounds"])
    def test_empty_matrix_payload_bytes(self, mode):
        quantized = BucketQuantizer(4, mode).encode(
            np.zeros((0, 7), dtype=np.float32), lo=-1.0, hi=2.0
        )
        assert quantized.payload_bytes() == len(encode_quantized(quantized))


class TestReqECAccounting:
    @pytest.mark.parametrize("granularity", ["vertex", "element", "matrix"])
    def test_boundary_message_is_exact_frame(self, rows, granularity):
        policy = _policy(granularity)
        message = policy.respond(ChannelKey(0, 0, 1), rows, t=3)
        assert message.payload[0] == "exact"
        _, sent, m_cr = message.payload
        assert message.nbytes == len(encode_exact(sent, m_cr))

    @pytest.mark.parametrize("granularity", ["vertex", "element", "matrix"])
    @pytest.mark.parametrize("bits", [2, 4, 8])
    @pytest.mark.parametrize("mode", ["table", "bounds"])
    def test_selector_message_is_selector_frame(
        self, rows, granularity, bits, mode
    ):
        policy = _policy(granularity, table_mode=mode, bits=bits)
        key = ChannelKey(0, 0, 1)
        policy.respond(key, rows, t=3)  # boundary primes the trend
        message = policy.respond(key, rows + 0.05, t=4)
        assert message.payload[0] == "cps"
        _, selection, quantized, lo, hi, _ = message.payload
        frame = encode_selector(
            selection, quantized, message.meta["proportion"]
        )
        assert message.nbytes == len(frame)

    @pytest.mark.parametrize("granularity", ["vertex", "element", "matrix"])
    def test_first_group_message_is_quant_frame(self, rows, granularity):
        # t inside the first trend group, before any boundary: the
        # responder has no snapshot and ships plain compressed rows.
        policy = _policy(granularity)
        message = policy.respond(ChannelKey(0, 0, 1), rows, t=1)
        assert message.payload[0] == "cps_only"
        quantized = message.payload[1]
        assert message.nbytes == len(encode_quantized(quantized))

    @pytest.mark.parametrize("granularity", ["vertex", "element"])
    def test_all_predicted_selector_is_empty_but_sized(
        self, rows, granularity
    ):
        """The empty-mask edge: every vertex predicted, the quantized
        subset ships zero ids — the frame still carries the selector,
        the true (lo, hi) domain, and the accounting still matches."""
        policy = _policy(granularity)
        quantizer = BucketQuantizer(4)
        ids, reps, lo, hi = quantizer.encode_ids(rows)
        shape = rows.shape if granularity == "element" else rows.shape[:1]
        selection = np.full(shape, SELECT_PREDICTED, dtype=np.uint8)
        quantized, nbytes = policy._build_compressed_payload(
            rows, selection, quantizer, ids, reps, lo, hi
        )
        assert quantized.num_elements == 0
        assert quantized.lo == lo and quantized.hi == hi
        frame = encode_selector(selection, quantized, 1.0)
        assert nbytes == len(frame)
