"""ECG002 — randomness must flow from an injected, seeded Generator.

Every stochastic choice in the repro — graph generation, feature
synthesis, neighbour sampling, fault injection, parameter init — is
derived from ``ECGraphConfig.seed`` through ``np.random.default_rng``
(or a ``SeedSequence`` spawn of it). Two call families break that chain
and are banned anywhere under ``src/repro``:

* the *legacy* numpy module-level RNG (``np.random.rand``,
  ``np.random.randint``, ``np.random.seed``, ...), whose hidden global
  state couples unrelated call sites and is not spawn-safe across the
  multiprocess backend;
* the stdlib ``random`` module's module-level functions (``random.random``,
  ``random.shuffle``, ...) and ``from random import ...`` imports.

``np.random.default_rng``, ``np.random.Generator``, ``np.random.
SeedSequence`` and friends are the sanctioned constructors; stdlib
``random.Random(seed)`` instances are likewise allowed (it is the
module-level global that is banned, not the class).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintrules.base import Finding, ModuleInfo, Rule, dotted_name

__all__ = ["UnseededRandomRule"]

# np.random attributes that are *not* hidden-global-state hazards.
_NP_RANDOM_ALLOWED = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "RandomState",
}
# stdlib random attributes that construct explicit instances.
_STDLIB_ALLOWED = {"Random", "SystemRandom"}


class UnseededRandomRule(Rule):
    """No module-level RNG state anywhere in ``src/repro``."""

    code = "ECG002"
    name = "unseeded-randomness"
    summary = (
        "module-level RNG (np.random.* legacy API or bare random.*); "
        "inject a seeded np.random.Generator instead"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        stdlib_aliases = {"random"}
        for node in self.walk(module):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        stdlib_aliases.add(alias.asname or "random")
        for node in self.walk(module):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    yield module.finding(
                        self.code,
                        "from random import ... pulls module-level RNG "
                        "state; inject a seeded Generator",
                        node,
                    )
                elif node.module in ("numpy.random", "np.random"):
                    banned = [
                        alias.name for alias in node.names
                        if alias.name not in _NP_RANDOM_ALLOWED
                    ]
                    if banned:
                        yield module.finding(
                            self.code,
                            "importing legacy numpy RNG functions "
                            f"({', '.join(banned)}); use default_rng",
                            node,
                        )
                continue
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if not name:
                continue
            parts = name.split(".")
            if len(parts) >= 3 and parts[-2] == "random" and (
                parts[-3] in ("np", "numpy")
            ):
                if parts[-1] not in _NP_RANDOM_ALLOWED:
                    yield module.finding(
                        self.code,
                        f"legacy global-state RNG call {name}(); use an "
                        "injected np.random.default_rng(seed) Generator",
                        node,
                    )
            elif len(parts) == 2 and parts[0] in stdlib_aliases:
                if parts[1] not in _STDLIB_ALLOWED:
                    yield module.finding(
                        self.code,
                        f"stdlib module-level RNG call {name}(); "
                        "construct random.Random(seed) or use numpy",
                        node,
                    )
