"""Trace and metrics exporters: JSONL, Chrome trace, Prometheus text.

Three formats cover the three consumption paths:

* **JSONL** — one span (or one metrics snapshot) per line, trivially
  greppable and streamable into pandas
  (``pd.read_json(path, lines=True)``);
* **Chrome trace** — the ``traceEvents`` document that loads directly in
  ``chrome://tracing`` or Perfetto. Spans become complete events
  (``ph: "X"``) with microsecond ``ts``/``dur``; nesting is recovered
  from timestamps on a single thread row.
* **Prometheus text** — the ``text/plain; version=0.0.4`` exposition
  format, so a run's final metrics can be dropped into a node-exporter
  textfile collector or diffed line-by-line in CI. Output is sorted and
  byte-stable for a given snapshot.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.obs.tracing import Span

if TYPE_CHECKING:
    from repro.obs.registry import MetricsSnapshot

__all__ = [
    "span_to_record",
    "spans_to_jsonl",
    "spans_to_chrome",
    "write_jsonl",
    "write_chrome_trace",
    "read_jsonl",
    "metrics_to_prometheus",
    "write_prometheus",
    "metrics_to_jsonl",
    "write_metrics_jsonl",
]


def span_to_record(span: Span) -> dict:
    """Flatten one span into a JSON-ready dict (seconds kept as floats)."""
    return {
        "name": span.name,
        "start_s": span.start_s,
        "duration_s": span.duration_s,
        "depth": span.depth,
        "parent": span.parent,
        "index": span.index,
        "attrs": dict(span.attrs),
    }


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """Render spans as one JSON object per line."""
    return "\n".join(json.dumps(span_to_record(s)) for s in spans)


def spans_to_chrome(
    spans: Iterable[Span],
    process_name: str = "ecgraph",
) -> dict:
    """Build a Chrome-trace document (``chrome://tracing`` / Perfetto).

    All spans land on pid 0 / tid 0; complete events carry microsecond
    timestamps relative to the tracer origin, so the viewer reconstructs
    the nesting purely from containment.
    """
    events = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "tid": 0,
        "args": {"name": process_name},
    }]
    for span in spans:
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": span.start_s * 1e6,
            "dur": span.duration_s * 1e6,
            "pid": 0,
            "tid": 0,
            "cat": span.name,
            "args": dict(span.attrs),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_jsonl(spans: Iterable[Span], path: str | Path) -> Path:
    """Write spans as JSONL; returns the resolved path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = spans_to_jsonl(spans)
    path.write_text(text + ("\n" if text else ""))
    return path


def write_chrome_trace(
    spans: Iterable[Span],
    path: str | Path,
    process_name: str = "ecgraph",
) -> Path:
    """Write the Chrome-trace JSON document; returns the resolved path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(spans_to_chrome(spans, process_name), handle)
    return path


# ----------------------------------------------------------------------
# Metrics exporters
# ----------------------------------------------------------------------

def _prom_name(name: str) -> str:
    """Sanitize a metric name into the Prometheus charset."""
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return f"ecgraph_{cleaned}"


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _prom_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_prom_escape(str(v))}"' for k, v in labels)
    return "{" + inner + "}"


def _prom_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def metrics_to_prometheus(snapshot: "MetricsSnapshot") -> str:
    """Render a metrics snapshot in the Prometheus text format.

    Counters and gauges map directly; histogram summaries become
    ``<name>_count`` / ``<name>_sum`` summary pairs plus ``_min`` /
    ``_max`` gauges. Families and series are emitted in sorted order, so
    the same snapshot always renders to the same bytes.
    """
    families: dict[str, tuple[str, list[str]]] = {}

    def _add(name: str, kind: str, line: str) -> None:
        family = families.get(name)
        if family is None:
            family = families[name] = (kind, [])
        family[1].append(line)

    for (name, labels), value in sorted(snapshot.counters.items()):
        prom = _prom_name(name)
        _add(prom, "counter",
             f"{prom}{_prom_labels(labels)} {_prom_value(value)}")
    for (name, labels), value in sorted(snapshot.gauges.items()):
        prom = _prom_name(name)
        _add(prom, "gauge",
             f"{prom}{_prom_labels(labels)} {_prom_value(value)}")
    for (name, labels), (count, total, lo, hi) in sorted(
        snapshot.histograms.items()
    ):
        prom = _prom_name(name)
        rendered = _prom_labels(labels)
        _add(prom, "summary", f"{prom}_count{rendered} {_prom_value(count)}")
        _add(prom, "summary", f"{prom}_sum{rendered} {_prom_value(total)}")
        if count:
            _add(f"{prom}_min", "gauge",
                 f"{prom}_min{rendered} {_prom_value(lo)}")
            _add(f"{prom}_max", "gauge",
                 f"{prom}_max{rendered} {_prom_value(hi)}")

    lines: list[str] = []
    for name in sorted(families):
        kind, series = families[name]
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(series)
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(snapshot: "MetricsSnapshot", path: str | Path) -> Path:
    """Write the Prometheus rendering; returns the resolved path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(metrics_to_prometheus(snapshot))
    return path


def metrics_to_jsonl(snapshots: Iterable["MetricsSnapshot"]) -> str:
    """Render snapshots (e.g. one per epoch) as one JSON object per line.

    ``sort_keys`` plus the snapshot's own sorted ``as_dict`` keeps the
    output deterministic for a given sequence of snapshots.
    """
    return "\n".join(
        json.dumps(snap.as_dict(), sort_keys=True) for snap in snapshots
    )


def write_metrics_jsonl(
    snapshots: Iterable["MetricsSnapshot"], path: str | Path
) -> Path:
    """Write metrics snapshots as JSONL; returns the resolved path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = metrics_to_jsonl(snapshots)
    path.write_text(text + ("\n" if text else ""))
    return path


def read_jsonl(path: str | Path) -> list[dict]:
    """Load a JSONL span file back into records (round-trip testing)."""
    path = Path(path)
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
