"""Lease/heartbeat membership view over the simulated worker fleet.

The :class:`MembershipView` is the single source of truth for *which
workers are alive*. It is driven by the deterministic
:class:`~repro.faults.injector.FaultInjector` schedules
(``permanent_failures`` / ``rejoin_schedule``) rather than wall-clock
heartbeats, so elastic runs replay bit-identically, but it models the
timing of a real lease protocol: a dead worker is only *detected* after
its lease expires, which costs every survivor a stall of one grace
window quantized to whole heartbeat intervals.

Every transition (loss, detection, adoption, rejoin, watchdog action,
quorum check) is appended to ``events`` — an ordered, deterministic
timeline that the chaos harness and the epoch report both surface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.faults.config import FaultConfig

__all__ = ["MembershipEvent", "MembershipView", "QuorumLostError"]


class QuorumLostError(ValueError):
    """Alive fraction dropped below ``quorum_fraction``: fail fast.

    Subclasses :class:`ValueError` so the CLI maps it to exit code 2
    alongside the other configuration/state errors.
    """


@dataclass(frozen=True)
class MembershipEvent:
    """One membership transition, in deterministic timeline order."""

    epoch: int
    kind: str
    worker: int | None = None
    details: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        out = {"epoch": self.epoch, "kind": self.kind}
        if self.worker is not None:
            out["worker"] = self.worker
        out.update(self.details)
        return out


class MembershipView:
    """Who is alive, who owns what, and how we found out.

    Args:
        num_workers: Size of the original membership (worker ids are
            dense ``0..num_workers-1`` and never renumbered — a dead
            worker keeps its slot so partition/worker indexing stays
            stable).
        faults: The fault config supplying the lease parameters
            (``heartbeat_interval_s``, ``lease_grace_s``,
            ``quorum_fraction``).
    """

    def __init__(self, num_workers: int, faults: FaultConfig):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.faults = faults
        self._alive = [True] * num_workers
        self.events: list[MembershipEvent] = []
        # worker -> current owner of its original partition (differs
        # from the worker itself only while the partition is adopted).
        self.custodian = {w: w for w in range(num_workers)}

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def is_alive(self, worker: int) -> bool:
        return self._alive[worker]

    def alive_workers(self) -> list[int]:
        """Alive worker ids, ascending (deterministic order)."""
        return [w for w in range(self.num_workers) if self._alive[w]]

    @property
    def alive_count(self) -> int:
        return sum(self._alive)

    def detection_seconds(self) -> float:
        """Wall time from silent death to declared-dead.

        A real lease expires after ``lease_grace_s`` without a
        heartbeat, but survivors only *notice* on heartbeat boundaries,
        so detection rounds up to a whole number of heartbeat intervals
        (at least one).
        """
        hb = self.faults.heartbeat_interval_s
        beats = max(1, math.ceil(self.faults.lease_grace_s / hb))
        return beats * hb

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def mark_dead(self, epoch: int, worker: int) -> float:
        """Declare ``worker`` permanently dead; return detection stall.

        Returns the per-survivor stall (seconds) spent waiting out the
        lease before the death was detected.
        """
        if not 0 <= worker < self.num_workers:
            raise ValueError(f"worker {worker} out of range")
        if not self._alive[worker]:
            raise ValueError(f"worker {worker} is already dead")
        self._alive[worker] = False
        stall = self.detection_seconds()
        self.record(
            epoch, "worker_lost", worker,
            detection_seconds=stall, alive=self.alive_count,
        )
        return stall

    def mark_alive(self, epoch: int, worker: int) -> bool:
        """Bring ``worker`` back; False if it was never marked dead."""
        if not 0 <= worker < self.num_workers:
            raise ValueError(f"worker {worker} out of range")
        if self._alive[worker]:
            return False
        self._alive[worker] = True
        self.record(epoch, "worker_rejoined", worker, alive=self.alive_count)
        return True

    def require_quorum(self, epoch: int) -> None:
        """Fail fast when too few of the original workers survive."""
        fraction = self.alive_count / self.num_workers
        if fraction < self.faults.quorum_fraction:
            self.record(
                epoch, "quorum_lost",
                alive=self.alive_count, total=self.num_workers,
                quorum_fraction=self.faults.quorum_fraction,
            )
            raise QuorumLostError(
                f"quorum lost at epoch {epoch}: {self.alive_count}/"
                f"{self.num_workers} workers alive, below quorum "
                f"fraction {self.faults.quorum_fraction}"
            )

    def record(
        self, epoch: int, kind: str, worker: int | None = None, **details
    ) -> MembershipEvent:
        """Append one transition to the deterministic timeline."""
        event = MembershipEvent(
            epoch=epoch, kind=kind, worker=worker, details=dict(details)
        )
        self.events.append(event)
        return event
