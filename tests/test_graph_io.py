"""Unit tests for graph (de)serialization."""

import numpy as np
import pytest

from repro.graph.generators import GraphSpec, generate_graph
from repro.graph.io import load_graph, save_graph


@pytest.fixture
def graph():
    return generate_graph(
        GraphSpec(
            name="io-test",
            num_vertices=60,
            avg_degree=4.0,
            feature_dim=8,
            num_classes=2,
            seed=1,
        )
    )


class TestRoundTrip:
    def test_structure_preserved(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(graph, path)
        loaded = load_graph(path)
        np.testing.assert_array_equal(
            loaded.adjacency.indptr, graph.adjacency.indptr
        )
        np.testing.assert_array_equal(
            loaded.adjacency.indices, graph.adjacency.indices
        )

    def test_attributes_preserved(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(graph, path)
        loaded = load_graph(path)
        np.testing.assert_array_equal(loaded.features, graph.features)
        np.testing.assert_array_equal(loaded.labels, graph.labels)
        np.testing.assert_array_equal(loaded.train_mask, graph.train_mask)
        assert loaded.num_classes == graph.num_classes
        assert loaded.name == graph.name

    def test_meta_preserved(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(graph, path)
        loaded = load_graph(path)
        assert loaded.meta["generator"] == "planted_partition"

    def test_weighted_adjacency_roundtrip(self, graph, tmp_path):
        from repro.graph.normalize import gcn_normalize

        graph.adjacency = gcn_normalize(graph.adjacency)
        path = tmp_path / "weighted.npz"
        save_graph(graph, path)
        loaded = load_graph(path)
        np.testing.assert_allclose(
            loaded.adjacency.weights, graph.adjacency.weights
        )

    def test_creates_parent_dirs(self, graph, tmp_path):
        path = tmp_path / "deep" / "nested" / "g.npz"
        save_graph(graph, path)
        assert path.exists()


class TestMmapLoading:
    def test_uncompressed_roundtrip_with_mmap(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(graph, path, compress=False)
        loaded = load_graph(path, mmap_mode="r")
        np.testing.assert_array_equal(loaded.features, graph.features)
        np.testing.assert_array_equal(
            loaded.adjacency.indices, graph.adjacency.indices
        )
        np.testing.assert_array_equal(loaded.test_mask, graph.test_mask)

    def test_mmap_arrays_are_disk_backed(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(graph, path, compress=False)
        loaded = load_graph(path, mmap_mode="r")
        # AttributedGraph may rewrap the memmap in a zero-copy view;
        # either way the ultimate base must be the on-disk mapping.
        array = loaded.features
        while array.base is not None and not isinstance(array, np.memmap):
            array = array.base
        assert isinstance(array, np.memmap)

    def test_mmap_of_compressed_archive_rejected(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(graph, path, compress=True)
        with pytest.raises(ValueError, match="compress=False"):
            load_graph(path, mmap_mode="r")

    def test_unsupported_mmap_mode(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(graph, path, compress=False)
        with pytest.raises(ValueError, match="mmap_mode"):
            load_graph(path, mmap_mode="r+")


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_graph(tmp_path / "missing.npz")

    def test_wrong_version_rejected(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(graph, path)
        with np.load(path) as archive:
            payload = {k: archive[k] for k in archive.files}
        payload["format_version"] = np.int64(99)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_graph(path)

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, indptr=np.arange(3), features=np.zeros((2, 2)))
        with pytest.raises(ValueError, match="not a graph archive"):
            load_graph(path)

    def test_wrong_magic_rejected(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(graph, path)
        with np.load(path) as archive:
            payload = {k: archive[k] for k in archive.files}
        payload["magic"] = np.str_("NOTAGRAPH")
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="magic"):
            load_graph(path)

    def test_missing_members_named(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(graph, path)
        with np.load(path) as archive:
            payload = {
                k: archive[k] for k in archive.files
                if k not in ("features", "labels")
            }
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="features"):
            load_graph(path)

    def test_truncated_file_rejected(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(graph, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 3])
        with pytest.raises(ValueError, match="corrupt|truncated"):
            load_graph(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "noise.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(ValueError, match="corrupt"):
            load_graph(path)
