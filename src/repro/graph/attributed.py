"""Attributed graphs: adjacency + features + labels + split masks.

This mirrors the paper's input ``G = <V, E, X_V>`` for vertex
classification: a directed adjacency, a float feature matrix, integer class
labels and boolean train/val/test masks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["AttributedGraph", "make_split_masks"]


@dataclass
class AttributedGraph:
    """An attributed, labelled graph ready for GNN training.

    Attributes:
        adjacency: Directed :class:`CSRGraph`; for the GCN experiments the
            graphs are symmetric (both arcs stored).
        features: ``(n, d0)`` float32 feature matrix ``X_V``.
        labels: ``(n,)`` int64 class ids.
        train_mask / val_mask / test_mask: Boolean ``(n,)`` split masks.
        num_classes: Number of distinct classes.
        name: Human-readable dataset name (used in reports).
        meta: Free-form provenance (generator parameters, scale factor, ...).
    """

    adjacency: CSRGraph
    features: np.ndarray
    labels: np.ndarray
    train_mask: np.ndarray
    val_mask: np.ndarray
    test_mask: np.ndarray
    num_classes: int
    name: str = "unnamed"
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        n = self.adjacency.num_vertices
        self.features = np.ascontiguousarray(self.features, dtype=np.float32)
        self.labels = np.ascontiguousarray(self.labels, dtype=np.int64)
        for mask_name in ("train_mask", "val_mask", "test_mask"):
            mask = np.ascontiguousarray(getattr(self, mask_name), dtype=bool)
            setattr(self, mask_name, mask)
            if mask.shape != (n,):
                raise ValueError(f"{mask_name} shape {mask.shape} != ({n},)")
        if self.features.shape[0] != n:
            raise ValueError(
                f"features rows {self.features.shape[0]} != vertices {n}"
            )
        if self.labels.shape != (n,):
            raise ValueError(f"labels shape {self.labels.shape} != ({n},)")
        if self.num_classes <= 0:
            raise ValueError("num_classes must be positive")
        labelled = self.labels[self.train_mask | self.val_mask | self.test_mask]
        if labelled.size and (labelled.min() < 0 or labelled.max() >= self.num_classes):
            raise ValueError("labelled vertex has class id out of range")

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.adjacency.num_vertices

    @property
    def num_edges(self) -> int:
        return self.adjacency.num_edges

    @property
    def feature_dim(self) -> int:
        return self.features.shape[1]

    def split_sizes(self) -> tuple[int, int, int]:
        """``(train, val, test)`` vertex counts."""
        return (
            int(self.train_mask.sum()),
            int(self.val_mask.sum()),
            int(self.test_mask.sum()),
        )

    def summary(self) -> str:
        """One-line description matching the paper's Table III columns."""
        train, val, test = self.split_sizes()
        return (
            f"{self.name}: |V|={self.num_vertices:,} |E|={self.num_edges:,} "
            f"d0={self.feature_dim} classes={self.num_classes} "
            f"avg_degree={self.adjacency.average_degree:.2f} "
            f"split={train}/{val}/{test}"
        )


def make_split_masks(
    num_vertices: int,
    train: int,
    val: int,
    test: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Draw disjoint train/val/test masks of the requested sizes.

    Raises :class:`ValueError` if the sizes exceed the vertex count, instead
    of silently truncating a split.
    """
    total = train + val + test
    if total > num_vertices:
        raise ValueError(
            f"split sizes {train}+{val}+{test}={total} exceed {num_vertices} vertices"
        )
    perm = rng.permutation(num_vertices)
    train_mask = np.zeros(num_vertices, dtype=bool)
    val_mask = np.zeros(num_vertices, dtype=bool)
    test_mask = np.zeros(num_vertices, dtype=bool)
    train_mask[perm[:train]] = True
    val_mask[perm[train:train + val]] = True
    test_mask[perm[train + val:total]] = True
    return train_mask, val_mask, test_mask
