"""TrainerCore: the object that drives the staged pipeline.

One core owns one :class:`~repro.engine.context.ExchangeContext`, one
:class:`~repro.engine.backends.ModelBackend` and the five stages, and
runs them in the paper's synchronous-iteration order::

    HaloPlanStage -> ForwardStage -> BackwardStage -> OptimizeStage
        -> EvalStage

The trainer classes in :mod:`repro.core` are thin facades over a core:
they build the context during ``setup()`` and delegate
``run_epoch``/``evaluate_exact`` (and the private hooks the test suite
exercises) here.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.core.results import EpochResult
from repro.engine.backends import ModelBackend
from repro.engine.context import ExchangeContext
from repro.engine.executor import SyncExecutor
from repro.engine.recovery import RecoveryManager
from repro.engine.stages import (
    BackwardStage,
    EvalStage,
    ForwardStage,
    HaloPlanStage,
    OptimizeStage,
)

__all__ = ["TrainerCore"]


class TrainerCore:
    """Drives one synchronous training iteration through the stages."""

    def __init__(
        self,
        ctx: ExchangeContext,
        backend: ModelBackend,
        recovery: RecoveryManager | None = None,
    ) -> None:
        self.ctx = ctx
        self.backend = backend
        self.recovery = recovery
        ctx.recovery = recovery
        backend.bind(ctx)
        if ctx.executor is None:
            ctx.executor = SyncExecutor()
        ctx.executor.bind(ctx, backend)
        self.halo_plan = HaloPlanStage(ctx, backend)
        self.forward = ForwardStage(ctx, backend)
        self.backward = BackwardStage(ctx, backend)
        self.optimize = OptimizeStage(ctx, backend)
        self.eval = EvalStage(ctx, backend)
        self.stages = (
            self.halo_plan, self.forward, self.backward,
            self.optimize, self.eval,
        )

    # ------------------------------------------------------------------
    def run_epoch(
        self, t: int, lr_schedule: Callable[[int], float] | None = None
    ) -> EpochResult:
        """One synchronous training iteration (forward + backward).

        Any exception — a fault-tolerance abort, a diverged watchdog, a
        dead worker process — tears the execution resources down
        (:meth:`shutdown`) before propagating, so a failing epoch never
        strands transport threads, worker processes or shared memory.
        """
        try:
            return self._run_epoch(t, lr_schedule)
        except BaseException:
            self.shutdown()
            raise

    def _run_epoch(
        self, t: int, lr_schedule: Callable[[int], float] | None = None
    ) -> EpochResult:
        ctx = self.ctx
        obs = ctx.telemetry
        profiler = obs.profiler
        profiler.begin_epoch(t, ctx.runtime)
        if self.recovery is not None:
            self.recovery.begin_epoch(t)
        if lr_schedule is not None:
            ctx.servers.set_learning_rate(lr_schedule(t))
        with obs.span("epoch", epoch=t):
            with obs.span("halo_plan", epoch=t), profiler.stage("halo_plan"):
                self.halo_plan.run(t)
            with obs.span("forward", epoch=t), profiler.stage("forward"):
                loss, counters = self.forward.run(t)
            with obs.span("backward", epoch=t), profiler.stage("backward"):
                grads = self.backward.run(t)
            with obs.span("optimize", epoch=t), profiler.stage("optimize"):
                self.optimize.run(grads)
            if (
                self.recovery is not None
                and self.recovery.watchdog is not None
            ):
                # Watchdog audit runs before end_epoch's checkpoint so a
                # rollback is never overwritten by a diverged save.
                self.recovery.observe_convergence(
                    t, loss, self._grad_norm(grads)
                )
        breakdown = ctx.runtime.end_epoch()
        if self.recovery is not None:
            self.recovery.end_epoch(t)
        with obs.span("eval", epoch=t), profiler.stage("eval"):
            result = self.eval.run(t, loss, counters, breakdown)
        profiler.end_epoch(breakdown)
        return result

    def shutdown(self) -> None:
        """Release execution resources: the transport's fan-out thread
        pool and the executor's worker processes / shared memory.

        Idempotent, and safe to call mid-training on the sync path —
        the thread pool re-creates lazily if another epoch runs.
        """
        executor = getattr(self.ctx, "executor", None)
        if executor is not None:
            executor.close()
        self.ctx.transport.close()

    def evaluate_exact(self) -> dict[str, float]:
        """Exact-communication accuracy (Table V measurement)."""
        return self.eval.evaluate_exact()

    @staticmethod
    def _grad_norm(grads: dict[int, dict[str, np.ndarray]]) -> float:
        """Global L2 norm over every worker's parameter-gradient shares."""
        total = 0.0
        for worker in sorted(grads):
            shares = grads[worker]
            for name in sorted(shares):
                g = shares[name]
                total += float(np.vdot(g, g).real)
        return math.sqrt(total)
