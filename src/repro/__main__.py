"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``datasets`` — list the paper-matched datasets and their statistics;
* ``train``    — train one system on one dataset and print the run;
* ``compare``  — train several systems on one dataset side by side;
* ``partition`` — partition a dataset and print quality statistics;
* ``trace``    — run with telemetry enabled and export trace + metrics
  (Chrome trace, span/metrics JSONL, Prometheus text);
* ``report``   — run instrumented and render one self-contained epoch
  report (stage timeline, bandwidth waterfall, compression frontier,
  fault counters) as HTML or markdown;
* ``chaos``    — train under an injected fault scenario and report how
  the tolerance machinery held up against the fault-free twin;
* ``bench``    — time the codec micro-kernels, a halo exchange and a
  training epoch (with a per-stage profile); write ``BENCH_core.json``
  and optionally gate on a committed baseline (``--compare``);
* ``lint``     — run the AST-based invariant checker (rules ECG001..007:
  simulated-clock discipline, seeded randomness, deterministic state
  iteration, shared-resource lifecycles, wire-decode validation, no
  pickle/eval, config drift) over source trees; exits non-zero on
  findings.

Operational errors (bad config values, missing dataset paths, corrupt
checkpoints) exit non-zero with a one-line message instead of a
traceback; tracebacks are reserved for actual bugs.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.analysis.convergence import convergence_target, summarize
from repro.analysis.reporting import format_table, telemetry_table
from repro.baselines import run_system, system_names
from repro.core.checkpoint import CheckpointError
from repro.core.config import ECGraphConfig
from repro.faults.scenarios import scenario_names
from repro.graph.datasets import PAPER_STATS, dataset_names, load_dataset
from repro.obs import ObsConfig
from repro.obs.export import (
    write_chrome_trace,
    write_jsonl,
    write_metrics_jsonl,
    write_prometheus,
)
from repro.partition import make_partitioner, partition_stats


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name in dataset_names():
        stats = PAPER_STATS[name]
        graph = load_dataset(name, profile=args.profile)
        rows.append([
            name,
            f"{stats.num_vertices:,}",
            f"{graph.num_vertices:,}",
            f"{stats.avg_degree:.1f}",
            f"{graph.adjacency.average_degree:.1f}",
            stats.num_classes,
            graph.num_classes,
        ])
    print(format_table(
        ["dataset", "paper |V|", "sim |V|", "paper deg", "sim deg",
         "paper classes", "sim classes"],
        rows,
        title=f"Datasets (profile={args.profile})",
    ))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, profile=args.profile, seed=args.seed)
    print(graph.summary())
    run = run_system(
        args.system, graph,
        num_layers=args.layers, hidden_dim=args.hidden,
        num_workers=args.workers, num_epochs=args.epochs,
        patience=args.patience,
    )
    print(format_table(
        ["epochs", "best acc", "final acc", "epoch time", "traffic"],
        [[
            run.num_epochs,
            run.best_test_accuracy(),
            run.final_test_accuracy
            if run.final_test_accuracy is not None else "-",
            f"{run.avg_epoch_seconds() * 1e3:.2f}ms",
            f"{run.total_bytes() / 1e6:.1f}MB",
        ]],
        title=f"{args.system} on {graph.name}",
    ))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, profile=args.profile, seed=args.seed)
    print(graph.summary())
    runs = []
    for system in args.systems:
        print(f"training {system} ...", file=sys.stderr)
        runs.append(run_system(
            system, graph,
            num_layers=args.layers, hidden_dim=args.hidden,
            num_workers=args.workers, num_epochs=args.epochs,
        ))
    target = convergence_target(runs, slack=0.97)
    rows = []
    for run in runs:
        summary = summarize(run, target)
        rows.append([
            run.name,
            f"{summary.avg_epoch_seconds * 1e3:.2f}ms",
            summary.best_test_accuracy,
            f"{summary.total_bytes / 1e6:.1f}MB",
            summary.epochs_to_target or "-",
        ])
    print(format_table(
        ["system", "epoch time", "best acc", "traffic",
         f"epochs to {target:.3f}"],
        rows,
    ))
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, profile=args.profile, seed=args.seed)
    print(graph.summary())
    rows = []
    for method in args.methods:
        partitioner = make_partitioner(method, seed=args.seed)
        partition = partitioner.partition(graph.adjacency, args.workers)
        stats = partition_stats(graph.adjacency, partition)
        rows.append([
            method,
            f"{partition.seconds * 1e3:.1f}ms",
            f"{stats.edge_cut_ratio:.3f}",
            f"{stats.balance:.2f}",
            f"{stats.avg_remote_neighbors:.2f}",
        ])
    print(format_table(
        ["method", "time", "edge-cut", "balance", "g_rmt"],
        rows,
        title=f"{args.workers}-way partitions of {graph.name}",
    ))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.smoke:
        args.profile = "tiny"
        args.epochs = min(args.epochs, 3)
        args.workers = min(args.workers, 4)
    graph = load_dataset(args.dataset, profile=args.profile, seed=args.seed)
    print(graph.summary())
    config = ECGraphConfig(seed=args.seed, obs=ObsConfig(enabled=True))
    run = run_system(
        args.system, graph,
        num_layers=args.layers, hidden_dim=args.hidden,
        num_workers=args.workers, num_epochs=args.epochs,
        config=config,
    )
    report = run.telemetry
    if report is None:
        print(f"{args.system} does not support telemetry", file=sys.stderr)
        return 1

    out = pathlib.Path(args.out)
    if out.exists() and not out.is_dir():
        print(f"--out {out} exists and is not a directory", file=sys.stderr)
        return 1
    out.mkdir(parents=True, exist_ok=True)
    chrome_path = out / "trace.json"
    jsonl_path = out / "spans.jsonl"
    report_path = out / "telemetry.json"
    prom_path = out / "metrics.prom"
    metrics_path = out / "metrics.jsonl"
    write_chrome_trace(report.spans, chrome_path)
    write_jsonl(report.spans, jsonl_path)
    report_path.write_text(json.dumps(report.as_dict(), indent=2) + "\n")
    write_prometheus(report.metrics, prom_path)
    # One line per epoch (the epoch-scoped snapshots), then the lifetime
    # totals as the final line.
    epoch_snapshots = [
        e.telemetry for e in run.epochs if e.telemetry is not None
    ]
    write_metrics_jsonl(epoch_snapshots + [report.metrics], metrics_path)

    print(telemetry_table(report))
    if report.health is not None:
        health = report.health
        fractions = ", ".join(
            f"{name}={frac:.2f}"
            for name, frac in sorted(health.candidate_fractions.items())
        )
        print(f"\nCompression health: {'OK' if health.ok else 'VIOLATIONS'}")
        if fractions:
            print(f"  candidate wins: {fractions}")
        if health.bits_events:
            print(f"  bit-width changes: {len(health.bits_events)}")
        for violation in health.violations:
            print(f"  VIOLATION: {violation}")
    print(f"\nwrote {chrome_path} (chrome://tracing), {jsonl_path}, "
          f"{report_path}, {prom_path}, {metrics_path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import (
        build_report, missing_stages, render_html, render_markdown,
    )

    if args.smoke:
        args.profile = "tiny"
        args.epochs = min(args.epochs, 3)
        args.workers = min(args.workers, 4)
    graph = load_dataset(args.dataset, profile=args.profile, seed=args.seed)
    print(graph.summary())
    config = ECGraphConfig(seed=args.seed, obs=ObsConfig(enabled=True))
    run = run_system(
        args.system, graph,
        num_layers=args.layers, hidden_dim=args.hidden,
        num_workers=args.workers, num_epochs=args.epochs,
        config=config,
    )
    if run.telemetry is None:
        print(f"{args.system} does not support telemetry", file=sys.stderr)
        return 1

    data = build_report(run)
    absent = missing_stages(data)

    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    text = (
        render_html(data) if args.format == "html" else render_markdown(data)
    )
    out.write_text(text)

    stages = data["stages"]
    rows = [
        [stage,
         agg["count"],
         f"{agg['wall_seconds'] * 1e3:.2f}ms",
         f"{agg['compute_seconds'] * 1e3:.2f}ms",
         f"{agg['comm_seconds'] * 1e3:.2f}ms",
         f"{agg['bytes_sent'] / 1e3:.1f}KB"]
        for stage, agg in stages.items()
    ]
    if rows:
        print(format_table(
            ["stage", "runs", "wall", "modelled compute", "modelled comm",
             "bytes"],
            rows,
            title=f"Stage timeline ({run.num_epochs} epochs, coverage "
                  f"{(data['coverage'] or 0) * 100:.1f}%)",
        ))
    print(f"\nwrote {out}")
    if absent:
        print("FAIL: engine stages missing from the profile: "
              + ", ".join(absent), file=sys.stderr)
        return 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.chaos import run_chaos

    if args.smoke:
        args.profile = "tiny"
        # 24 epochs gives post-fault trajectories time to reconverge on
        # the tiny profile (at 8 the ±1-test-vertex noise of its
        # 38-vertex split dominates the accuracy-gap gate).
        args.epochs = min(args.epochs, 24)
        args.workers = min(args.workers, 3)
    seeds = [args.seed + i for i in range(max(args.seeds, 1))]
    reports = []
    dataset_name = args.dataset
    for seed in seeds:
        graph = load_dataset(args.dataset, profile=args.profile, seed=seed)
        dataset_name = graph.name
        if seed == seeds[0]:
            print(graph.summary())
        print(f"scenario {args.scenario!r} seed {seed}: training "
              "fault-free baseline and faulty twin ...", file=sys.stderr)
        reports.append((seed, run_chaos(
            graph, args.scenario,
            system=args.system, num_layers=args.layers,
            hidden_dim=args.hidden, num_workers=args.workers,
            num_epochs=args.epochs, seed=seed,
            checkpoint_dir=args.checkpoint_dir,
            execution=args.execution,
        )))

    print(format_table(
        ["seed", "epochs", "survived", "baseline acc", "chaos acc",
         "gap", "slowdown"],
        [[
            seed,
            f"{report.completed_epochs}/{report.scheduled_epochs}",
            "yes" if report.survived else "NO",
            f"{report.baseline_accuracy:.3f}",
            f"{report.chaos_accuracy:.3f}",
            f"{report.accuracy_gap:+.3f}",
            f"{report.slowdown:.2f}x",
        ] for seed, report in reports],
        title=f"{args.system} under {args.scenario!r} on {dataset_name}"
              + (f" ({len(seeds)} seeds)" if len(seeds) > 1 else ""),
    ))

    def _total(name: str) -> float:
        return sum(getattr(r.counters, name) for _, r in reports)

    print("\nFaults injected: "
          f"{_total('drops'):.0f} drops, "
          f"{_total('corruptions'):.0f} corruptions, "
          f"{_total('delays'):.0f} delays, {_total('crashes'):.0f} crashes, "
          f"{_total('permanent_failures'):.0f} permanent losses")
    print("Tolerance: "
          f"{_total('retries'):.0f} retries "
          f"({_total('retry_bytes') / 1e3:.1f}KB resent), "
          f"{_total('ps_retries'):.0f} PS retries, "
          f"{_total('degraded'):.0f} degraded exchanges "
          f"(predicted={_total('degraded_predicted'):.0f}, "
          f"cached={_total('degraded_cached'):.0f}, "
          f"zero={_total('degraded_zero'):.0f}), "
          f"{_total('residual_compensations'):.0f} residual compensations, "
          f"{_total('params_rolled_back'):.0f} param rollbacks, "
          f"{_total('extra_seconds'):.2f}s stalled")
    if _total("permanent_failures") or _total("rejoins"):
        print("Membership: "
              f"{_total('adoptions'):.0f} adoptions, "
              f"{_total('rejoins'):.0f} rejoins, "
              f"{_total('watchdog_trips'):.0f} watchdog trips "
              f"({_total('watchdog_rollbacks'):.0f} rollbacks, "
              f"{_total('watchdog_escalations'):.0f} channel escalations)")

    if args.json_out:
        path = pathlib.Path(args.json_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        if len(reports) == 1:
            seed, report = reports[0]
            payload = dict(report.as_dict(), system=args.system,
                           dataset=dataset_name, seed=seed)
        else:
            runs = [
                dict(report.as_dict(), seed=seed)
                for seed, report in reports
            ]
            payload = {
                "scenario": args.scenario,
                "system": args.system,
                "dataset": dataset_name,
                "seeds": seeds,
                "survived": all(r["survived"] for r in runs),
                "max_accuracy_gap": max(r["accuracy_gap"] for r in runs),
                "runs": runs,
            }
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {path}")

    failed = 0
    for seed, report in reports:
        label = f"seed {seed}: " if len(seeds) > 1 else ""
        if not report.survived:
            print(f"FAIL: {label}only {report.completed_epochs} of "
                  f"{report.scheduled_epochs} epochs completed",
                  file=sys.stderr)
            failed += 1
        elif report.accuracy_gap > args.max_accuracy_gap:
            print(f"FAIL: {label}accuracy gap {report.accuracy_gap:.3f} "
                  f"exceeds --max-accuracy-gap {args.max_accuracy_gap}",
                  file=sys.stderr)
            failed += 1
    return 1 if failed else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        compare_reports, load_report, parse_percent, run_bench,
        speedup_flag_lines, stage_breakdown_lines, write_report,
    )

    max_regress = parse_percent(args.max_regress)
    profile = "large" if args.profile == "large" else "core"
    scope = f", execution={args.execution}" if args.execution else ""
    if profile == "large":
        scope += ", profile=large"
    print(f"running bench suites "
          f"({'smoke' if args.smoke else 'full'}{scope}) ...",
          file=sys.stderr)
    report = run_bench(smoke=args.smoke, execution=args.execution,
                       profile=profile)

    if "kernels" in report:
        rows = [
            [name,
             f"{stats['ns_per_element']:.2f}",
             f"{stats['reference_ns_per_element']:.2f}",
             f"{stats['speedup_vs_reference']:.1f}x"]
            for name, stats in sorted(report["kernels"].items())
        ]
        print(format_table(
            ["kernel", "ns/elem", "reference ns/elem", "speedup"],
            rows, title="Codec micro-kernels",
        ))
    if "exchange" in report:
        exchange = report["exchange"]
        print(format_table(
            ["suite", "sequential", "pooled", "threaded"],
            [["halo exchange",
              f"{exchange['sequential_seconds'] * 1e3:.2f}ms",
              f"{exchange['pooled_seconds'] * 1e3:.2f}ms",
              f"{exchange['threaded_seconds'] * 1e3:.2f}ms"]],
        ))
    if "epoch" in report:
        epoch = report["epoch"]
        print(format_table(
            ["suite", "old codec", "default", "pool+threads",
             "codec speedup"],
            [["epoch wall time",
              f"{epoch['reference_codec_seconds'] * 1e3:.1f}ms",
              f"{epoch['default_seconds'] * 1e3:.1f}ms",
              f"{epoch['optimized_seconds'] * 1e3:.1f}ms",
              f"{epoch.get('speedup_vs_reference_codec', 0):.2f}x"]],
        ))
        stages = epoch.get("stages")
        if stages:
            print(format_table(
                ["stage", "wall/epoch", "share"],
                [[name,
                  f"{seconds * 1e3:.2f}ms",
                  f"{seconds / sum(stages.values()) * 100:.1f}%"]
                 for name, seconds in stages.items()],
                title=f"Per-stage epoch profile (coverage "
                      f"{epoch.get('stage_coverage', 0) * 100:.1f}%)",
            ))
    if "epoch_multiprocess" in report:
        mp = report["epoch_multiprocess"]
        print(format_table(
            ["suite", "sequential", "threaded", "multiprocess",
             "vs sequential", "vs threads"],
            [["epoch wall time",
              f"{mp['sequential_seconds'] * 1e3:.1f}ms",
              f"{mp['threaded_seconds'] * 1e3:.1f}ms",
              f"{mp['multiprocess_seconds'] * 1e3:.1f}ms",
              f"{mp.get('speedup_multiprocess', 0):.2f}x",
              f"{mp.get('speedup_multiprocess_vs_threads', 0):.2f}x"]],
            title=f"Multiprocess execution "
                  f"({mp['host_cpus']} host CPU(s))",
        ))

    if "large" in report:
        large = report["large"]
        print(format_table(
            ["step", "seconds"],
            [[step, f"{large[f'{step}_seconds']:.2f}s"]
             for step in ("generate", "partition", "stats",
                          "subgraph", "gather")],
            title=f"Out-of-core tier ({large['num_vertices']:,} vertices, "
                  f"{large['num_edges']:,} edges, "
                  f"{large['num_workers']} workers)",
        ))
        verdict = "OK" if large["rss_below_features"] else "ABOVE"
        print(f"peak RSS {large['peak_rss_bytes'] / 1e6:.0f} MB vs "
              f"{large['feature_bytes_on_disk'] / 1e6:.0f} MB of on-disk "
              f"features ({large['rss_to_feature_ratio']:.2f}x, {verdict})")
        if not large["rss_below_features"]:
            print("FLAG: peak RSS exceeded the on-disk feature matrix "
                  "(expected in smoke runs, where the interpreter "
                  "dominates; investigate on the full tier)")

    for line in speedup_flag_lines(report):
        print(f"FLAG: {line}")

    path = write_report(report, args.out)
    print(f"\nwrote {path}")

    if args.compare:
        baseline = load_report(args.compare)
        stage_lines = stage_breakdown_lines(report, baseline)
        if stage_lines:
            print(f"\nper-stage epoch deltas vs {args.compare} "
                  "(informational):")
            for line in stage_lines:
                print(f"  {line}")
        regressions = compare_reports(report, baseline, max_regress)
        if regressions:
            print(f"FAIL: {len(regressions)} kernel(s) regressed vs "
                  f"{args.compare}:", file=sys.stderr)
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"no kernel regressed more than {args.max_regress} vs "
              f"{args.compare}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lintrules import format_json, format_text, run_lint

    def _codes(raw: str | None) -> list[str] | None:
        if raw is None:
            return None
        return [code.strip() for code in raw.split(",") if code.strip()]

    report = run_lint(
        args.paths, select=_codes(args.select), ignore=_codes(args.ignore)
    )
    text = (
        format_json(report) if args.format == "json" else format_text(report)
    )
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n")
        print(f"wrote {out}", file=sys.stderr)
    print(text)
    return report.exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EC-Graph reproduction: distributed GNN training "
                    "with error-compensated compression",
    )
    parser.add_argument("--profile", default="bench",
                        choices=["tiny", "bench", "full", "large"],
                        help="dataset size profile; 'large' selects the "
                             "out-of-core million-vertex tier (bench "
                             "command only)")
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list datasets").set_defaults(
        func=_cmd_datasets
    )

    train = sub.add_parser("train", help="train one system")
    train.add_argument("--system", default="ecgraph", choices=system_names())
    train.add_argument("--dataset", default="cora", choices=dataset_names())
    train.add_argument("--workers", type=int, default=6)
    train.add_argument("--layers", type=int, default=2)
    train.add_argument("--hidden", type=int, default=16)
    train.add_argument("--epochs", type=int, default=100)
    train.add_argument("--patience", type=int, default=None)
    train.set_defaults(func=_cmd_train)

    compare = sub.add_parser("compare", help="train several systems")
    compare.add_argument("--systems", nargs="+",
                         default=["ecgraph", "noncp", "distgnn"],
                         choices=system_names())
    compare.add_argument("--dataset", default="reddit",
                         choices=dataset_names())
    compare.add_argument("--workers", type=int, default=6)
    compare.add_argument("--layers", type=int, default=2)
    compare.add_argument("--hidden", type=int, default=16)
    compare.add_argument("--epochs", type=int, default=60)
    compare.set_defaults(func=_cmd_compare)

    part = sub.add_parser("partition", help="partition quality statistics")
    part.add_argument("--dataset", default="reddit", choices=dataset_names())
    part.add_argument("--workers", type=int, default=6)
    part.add_argument("--methods", nargs="+",
                      default=["hash", "bfs", "metis"],
                      choices=["hash", "bfs", "metis", "spectral"])
    part.set_defaults(func=_cmd_partition)

    trace = sub.add_parser(
        "trace", help="instrumented run: export Chrome trace + metrics"
    )
    trace.add_argument("--system", default="ecgraph", choices=system_names())
    trace.add_argument("--dataset", default="cora", choices=dataset_names())
    trace.add_argument("--workers", type=int, default=4)
    trace.add_argument("--layers", type=int, default=2)
    trace.add_argument("--hidden", type=int, default=16)
    trace.add_argument("--epochs", type=int, default=10)
    trace.add_argument("--out", default="traces",
                       help="output directory for trace.json / spans.jsonl "
                            "/ telemetry.json")
    trace.add_argument("--smoke", action="store_true",
                       help="tiny profile, <=3 epochs (CI smoke test)")
    trace.set_defaults(func=_cmd_trace)

    rep = sub.add_parser(
        "report", help="instrumented run: one self-contained epoch report"
    )
    rep.add_argument("--system", default="ecgraph", choices=system_names())
    rep.add_argument("--dataset", default="cora", choices=dataset_names())
    rep.add_argument("--workers", type=int, default=4)
    rep.add_argument("--layers", type=int, default=2)
    rep.add_argument("--hidden", type=int, default=16)
    rep.add_argument("--epochs", type=int, default=10)
    rep.add_argument("--out", default="reports/epoch_report.html",
                     help="report path (default: reports/epoch_report.html)")
    rep.add_argument("--format", default="html",
                     choices=["html", "markdown"],
                     help="artifact format (default: html)")
    rep.add_argument("--smoke", action="store_true",
                     help="tiny profile, <=3 epochs; fails when an engine "
                          "stage is missing from the profile (CI smoke)")
    rep.set_defaults(func=_cmd_report)

    chaos = sub.add_parser(
        "chaos", help="fault-injection run: survival + accuracy report"
    )
    chaos.add_argument("scenario", nargs="?", default="mixed",
                       choices=scenario_names(),
                       help="named fault scenario (default: mixed)")
    chaos.add_argument("--system", default="ecgraph", choices=system_names())
    chaos.add_argument("--dataset", default="cora", choices=dataset_names())
    chaos.add_argument("--workers", type=int, default=4)
    chaos.add_argument("--layers", type=int, default=2)
    chaos.add_argument("--hidden", type=int, default=16)
    chaos.add_argument("--epochs", type=int, default=30)
    chaos.add_argument("--checkpoint-dir", default=None,
                       help="directory for on-disk recovery checkpoints "
                            "(default: in-memory snapshots only)")
    chaos.add_argument("--max-accuracy-gap", type=float, default=0.02,
                       help="fail if faults cost more final test accuracy "
                            "than this (default: 0.02)")
    chaos.add_argument("--json-out", default=None,
                       help="also write the report as JSON to this path")
    chaos.add_argument("--seeds", type=int, default=1,
                       help="run the scenario across N consecutive seeds "
                            "starting at --seed and fail if any run fails "
                            "(default: 1)")
    chaos.add_argument("--execution", default="sync",
                       choices=["sync", "multiprocess"],
                       help="run workers inline or as real OS processes "
                            "(crash faults then kill actual processes)")
    chaos.add_argument("--smoke", action="store_true",
                       help="tiny profile, <=24 epochs, <=3 workers "
                            "(CI smoke test)")
    chaos.set_defaults(func=_cmd_chaos)

    bench = sub.add_parser(
        "bench", help="performance suites: codec kernels, exchange, epoch"
    )
    bench.add_argument("--out", default="BENCH_core.json",
                       help="report path (default: BENCH_core.json)")
    bench.add_argument("--compare", default=None,
                       help="baseline report to gate kernel timings against")
    bench.add_argument("--max-regress", default="15%",
                       help="fail --compare when a kernel's ns/element "
                            "grows more than this (default: 15%%)")
    bench.add_argument("--smoke", action="store_true",
                       help="small sizes, few repeats (CI smoke test)")
    bench.add_argument("--execution", default=None,
                       choices=["sync", "multiprocess"],
                       help="narrow the run: 'multiprocess' runs only the "
                            "multiprocess epoch suite, 'sync' only the "
                            "single-process suites (default: everything)")
    bench.set_defaults(func=_cmd_bench)

    lint = sub.add_parser(
        "lint", help="AST-based invariant checker (ECG001..ECG007)"
    )
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to check (default: src)")
    lint.add_argument("--select", default=None,
                      help="comma-separated rule codes to run "
                           "(default: all)")
    lint.add_argument("--ignore", default=None,
                      help="comma-separated rule codes to skip")
    lint.add_argument("--format", default="text", choices=["text", "json"],
                      help="output format (default: text)")
    lint.add_argument("--out", default=None,
                      help="also write the report to this path "
                           "(e.g. a CI artifact)")
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (CheckpointError, FileNotFoundError, KeyError, ValueError) as exc:
        # Operational failures (bad config values, missing dataset paths,
        # corrupt checkpoints) get a one-line diagnosis, not a traceback.
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
