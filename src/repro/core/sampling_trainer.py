"""Sampling-based training (EC-Graph-S and the DistDGL baseline).

The paper's sampling mode keeps the graph-centered architecture but caps
each vertex's aggregation at a per-layer *fanout* (e.g. ``(10, 5)`` for a
2-layer GCN), which shrinks both compute and the remote halo that must be
fetched. Two sampling disciplines are modelled:

* **offline** (EC-Graph-S, AGL): neighbours are sampled once during
  preprocessing and reused every epoch — the sampling cost lands in the
  Fig. 9 preprocessing bar;
* **online** (DistDGL): neighbours are resampled every iteration, so the
  sampling cost recurs in every epoch — the paper observes this dominates
  DistDGL's time on constrained clusters.

Kept edges are rescaled by ``degree / fanout`` so the sampled aggregation
is an unbiased estimator of the full sum. ReqEC-FP keeps dense
per-channel trend state and is therefore not offered in sampling mode
(the paper describes it for full-batch training); EC-Graph-S runs plain
quantization forward and ResEC-BP backward.

The sampling machinery itself lives in
:class:`repro.engine.backends.SampledGCNBackend`;
``SampledECGraphTrainer`` is the facade that selects it and folds the
offline sampling pass into preprocessing.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix

from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.messages import ChannelKey
from repro.core.resec_bp import ResECPolicy
from repro.core.trainer import ECGraphTrainer
from repro.engine import SampledGCNBackend
from repro.graph.attributed import AttributedGraph
from repro.obs.tracing import monotonic_now
from repro.partition.base import Partition

__all__ = ["SampledECGraphTrainer"]


class SampledECGraphTrainer(ECGraphTrainer):
    """Distributed GCN training with per-layer neighbour fanouts."""

    def __init__(
        self,
        graph: AttributedGraph,
        model_config: ModelConfig,
        cluster_spec: ClusterSpec,
        fanouts: list[int],
        config: ECGraphConfig | None = None,
        online: bool = False,
        sampling_speedup: float = 20.0,
        partitioner: str = "hash",
        partition: Partition | None = None,
    ):
        """Args:
        fanouts: Per-layer neighbour caps, ``fanouts[l-1]`` for layer
            ``l``; length must equal the model's layer count.
        online: Resample every iteration (DistDGL) instead of once
            (EC-Graph-S / AGL).
        sampling_speedup: Divide measured Python sampling time by this to
            emulate native sampling kernels (same rationale as the codec
            speedup, see DESIGN.md).
        """
        config = config or ECGraphConfig(fp_mode="compress", bp_mode="resec")
        if config.fp_mode == "reqec":
            raise ValueError(
                "ReqEC-FP is a full-batch mechanism; use fp_mode='compress' "
                "or 'raw' in sampling mode"
            )
        if "delayed" in (config.fp_mode, config.bp_mode):
            raise ValueError(
                "delayed aggregation keeps dense per-channel caches and "
                "cannot track per-iteration sampled subsets; use raw or "
                "compress/resec in sampling mode"
            )
        if len(fanouts) != model_config.num_layers:
            raise ValueError(
                f"{len(fanouts)} fanouts for {model_config.num_layers} layers"
            )
        if any(f < 1 for f in fanouts):
            raise ValueError("fanouts must be >= 1")
        if sampling_speedup <= 0:
            raise ValueError("sampling_speedup must be positive")
        super().__init__(
            graph, model_config, cluster_spec, config,
            partitioner=partitioner, partition=partition,
        )
        self.fanouts = list(fanouts)
        self.online = online
        self.sampling_speedup = sampling_speedup
        self._rng = np.random.default_rng(config.seed + 1)

    def _make_backend(self) -> SampledGCNBackend:
        return SampledGCNBackend(
            self.fanouts, self.online, self.sampling_speedup, self._rng
        )

    # ------------------------------------------------------------------
    def setup(self) -> None:
        if self._setup_done:
            return
        super().setup()
        if isinstance(self._bp_policy, ResECPolicy):
            # Residual state spans each channel's full vertex list so
            # sampled subsets stay aligned across iterations.
            for layer in range(2, self.params.num_layers + 1):
                for state in self.workers:
                    for owner, wanted in state.requests.items():
                        key = ChannelKey(
                            layer=layer,
                            responder=owner,
                            requester=state.worker_id,
                        )
                        self._bp_policy.prime_residual(
                            key, wanted.shape[0], self.params.dims[layer]
                        )
        if not self.online:
            start = monotonic_now()
            with self.obs.span("sampling", mode="offline"):
                self._backend.resample()
            self._preprocessing_seconds += (
                monotonic_now() - start
            ) / self.sampling_speedup
            self._backend.sampled_once = True

    # ------------------------------------------------------------------
    # Compatibility shims over the backend (exercised by the test suite)
    # ------------------------------------------------------------------
    def _resample(self) -> None:
        self._backend.resample()

    @property
    def _sampled_adj(self) -> list[dict[int, csr_matrix]]:
        return self._backend.sampled_adj if self._backend else []

    @property
    def _subsets(self) -> dict[int, dict[tuple[int, int], np.ndarray]]:
        return self._backend.subsets if self._backend else {}

    @property
    def _sampled_once(self) -> bool:
        return bool(self._backend) and self._backend.sampled_once
