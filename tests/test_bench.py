"""Tests for the ``repro bench`` harness: report structure, baseline
comparison, and the CLI exit codes CI relies on."""

import json

import pytest

from repro.bench import (
    compare_reports,
    load_report,
    parse_percent,
    run_bench,
    write_report,
)
from repro.bench.harness import SCHEMA, best_seconds
from repro.bench.reference import pack_bits_reference, unpack_bits_reference


class TestReferenceKernels:
    @pytest.mark.parametrize("bits", [1, 3, 4, 8, 11, 16])
    def test_reference_matches_new_kernels(self, bits):
        import numpy as np

        from repro.compression.quantization import pack_bits, unpack_bits

        rng = np.random.default_rng(bits)
        ids = rng.integers(0, 1 << bits, size=777, dtype=np.uint32)
        packed = pack_bits_reference(ids, bits)
        np.testing.assert_array_equal(packed, pack_bits(ids, bits))
        np.testing.assert_array_equal(
            unpack_bits_reference(packed, bits, ids.size),
            unpack_bits(packed, bits, ids.size),
        )


class TestBestSeconds:
    def test_returns_positive_float(self):
        assert best_seconds(lambda: sum(range(100)), repeats=2) > 0

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            best_seconds(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            best_seconds(lambda: None, repeats=1, inner=0)


class TestParsePercent:
    @pytest.mark.parametrize("text,expected", [
        ("15%", 0.15), ("15", 0.15), (" 200% ", 2.0), ("0%", 0.0),
    ])
    def test_parses(self, text, expected):
        assert parse_percent(text) == pytest.approx(expected)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="cannot parse"):
            parse_percent("fast")

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            parse_percent("-5%")


class TestReportIO:
    def test_write_then_load_roundtrip(self, tmp_path):
        report = {"schema": SCHEMA, "kernels": {}}
        path = write_report(report, tmp_path / "r.json")
        assert load_report(path) == report

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_report(tmp_path / "absent.json")

    def test_load_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/9"}))
        with pytest.raises(ValueError, match="schema"):
            load_report(path)


def _report(ns_by_kernel):
    return {
        "schema": SCHEMA,
        "kernels": {
            name: {"ns_per_element": ns}
            for name, ns in ns_by_kernel.items()
        },
    }


class TestCompareReports:
    def test_no_regression_within_limit(self):
        current = _report({"pack_bits[bits=4]": 1.10})
        baseline = _report({"pack_bits[bits=4]": 1.00})
        assert compare_reports(current, baseline, 0.15) == []

    def test_regression_reported(self):
        current = _report({"pack_bits[bits=4]": 2.0})
        baseline = _report({"pack_bits[bits=4]": 1.0})
        lines = compare_reports(current, baseline, 0.15)
        assert len(lines) == 1
        assert "pack_bits[bits=4]" in lines[0]
        assert "+100%" in lines[0]

    def test_kernels_missing_on_either_side_skipped(self):
        current = _report({"only_current": 9.0, "shared": 1.0})
        baseline = _report({"only_baseline": 0.1, "shared": 1.0})
        assert compare_reports(current, baseline, 0.0) == []

    def test_improvement_never_fails(self):
        current = _report({"k": 0.5})
        baseline = _report({"k": 5.0})
        assert compare_reports(current, baseline, 0.0) == []


class TestStageBreakdownLines:
    def _epoch_report(self, stages):
        return {"schema": SCHEMA, "epoch": {"stages": stages}}

    def test_sorted_by_absolute_delta(self):
        from repro.bench import stage_breakdown_lines

        lines = stage_breakdown_lines(
            self._epoch_report({"forward": 0.030, "backward": 0.010}),
            self._epoch_report({"forward": 0.020, "backward": 0.015}),
        )
        assert len(lines) == 2
        assert lines[0].startswith("forward:")  # |+10ms| > |-5ms|
        assert "+50%" in lines[0]
        assert lines[1].startswith("backward:")

    def test_baseline_without_stages_is_silent(self):
        from repro.bench import stage_breakdown_lines

        current = self._epoch_report({"forward": 0.030})
        assert stage_breakdown_lines(current, {"epoch": {}}) == []
        assert stage_breakdown_lines(current, {}) == []


class TestSpeedupFlagLines:
    """Sub-1.0 ``speedup_*`` entries are surfaced, never hidden."""

    def test_flags_only_sub_unity_speedups(self):
        from repro.bench import speedup_flag_lines

        report = {
            "schema": SCHEMA,
            "epoch": {"speedup_optimized": 0.70, "default_seconds": 0.1},
            "epoch_multiprocess": {
                "speedup_multiprocess": 1.8,
                "speedup_multiprocess_vs_threads": 0.9,
                "host_cpus": 1,
            },
        }
        lines = speedup_flag_lines(report)
        assert len(lines) == 2
        assert any("epoch.speedup_optimized = 0.70x" in x for x in lines)
        assert any(
            "epoch_multiprocess.speedup_multiprocess_vs_threads" in x
            for x in lines
        )
        # The honest >1.0 claim is not flagged.
        assert not any("= 1.80x" in x for x in lines)

    def test_clean_report_produces_no_flags(self):
        from repro.bench import speedup_flag_lines

        report = {"epoch": {"speedup_optimized": 1.3}, "schema": SCHEMA}
        assert speedup_flag_lines(report) == []


class TestRunBenchSmoke:
    """One real smoke run, shared by the structural assertions."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_bench(smoke=True)

    def test_schema_and_profile(self, report):
        assert report["schema"] == SCHEMA
        assert report["profile"] == "smoke"

    def test_kernel_entries(self, report):
        for bits in (2, 4, 8):
            for op in ("pack_bits", "unpack_bits"):
                entry = report["kernels"][f"{op}[bits={bits}]"]
                assert entry["ns_per_element"] > 0
                assert entry["reference_ns_per_element"] > 0
                assert entry["speedup_vs_reference"] > 0

    def test_exchange_and_epoch_sections(self, report):
        for key in ("sequential_seconds", "pooled_seconds",
                    "threaded_seconds"):
            assert report["exchange"][key] > 0
        for key in ("reference_codec_seconds", "default_seconds",
                    "optimized_seconds", "speedup_vs_reference_codec"):
            assert report["epoch"][key] > 0

    def test_metrics_snapshot_included(self, report):
        assert "bench_kernel_ns" in json.dumps(report["metrics"])
        assert "bench_stage_seconds" in json.dumps(report["metrics"])

    def test_stage_profile_section(self, report):
        from repro.obs import ENGINE_STAGES

        stages = report["epoch"]["stages"]
        assert set(stages) == set(ENGINE_STAGES)
        for seconds in stages.values():
            assert seconds > 0
        assert report["epoch"]["stage_coverage"] >= 0.90

    def test_stage_walls_sum_close_to_epoch_wall(self, report):
        # ISSUE acceptance: per-stage times must account for the epoch
        # to within a few percent. The profiled trainer is a separate
        # instance from the wall-clock one, so compare stage sum against
        # the profiler's own envelope via the coverage ratio.
        coverage = report["epoch"]["stage_coverage"]
        assert 0.90 <= coverage <= 1.0 + 1e-6

    def test_multiprocess_section(self, report):
        mp = report["epoch_multiprocess"]
        assert mp["host_cpus"] >= 1
        for key in ("sequential_seconds", "threaded_seconds",
                    "multiprocess_seconds"):
            assert mp[key] > 0
        assert mp["speedup_multiprocess"] > 0
        assert mp["speedup_multiprocess_vs_threads"] > 0

    def test_report_is_json_serializable(self, report, tmp_path):
        path = write_report(report, tmp_path / "smoke.json")
        assert load_report(path)["profile"] == "smoke"

    def test_peak_rss_recorded(self, report):
        assert report["peak_rss_bytes"] > 0


class TestRunBenchLargeSmoke:
    """The out-of-core tier, at smoke scale (seconds, not minutes)."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_bench(smoke=True, profile="large")

    def test_schema_and_profile(self, report):
        assert report["schema"] == SCHEMA
        assert report["profile"] == "large-smoke"

    def test_pipeline_steps_timed(self, report):
        large = report["large"]
        for key in ("generate_seconds", "partition_seconds",
                    "stats_seconds", "subgraph_seconds", "gather_seconds"):
            assert large[key] > 0

    def test_store_and_rss_accounting(self, report):
        large = report["large"]
        assert large["num_vertices"] == 1 << 14
        assert large["num_edges"] > large["num_vertices"]
        assert large["feature_bytes_on_disk"] > 0
        assert large["store_bytes_on_disk"] > large["feature_bytes_on_disk"]
        assert report["peak_rss_bytes"] > 0
        assert large["rss_to_feature_ratio"] > 0

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="profile"):
            run_bench(smoke=True, profile="galactic")


class TestBenchCLI:
    def test_smoke_run_writes_report(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "bench.json"
        assert main(["bench", "--smoke", "--out", str(out)]) == 0
        assert load_report(out)["profile"] == "smoke"
        assert "Codec micro-kernels" in capsys.readouterr().out

    def test_compare_fails_on_regression(self, tmp_path, capsys):
        from repro.__main__ import main

        # A baseline claiming every kernel once took ~0 ns forces every
        # real measurement to read as a regression.
        out = tmp_path / "bench.json"
        assert main(["bench", "--smoke", "--out", str(out)]) == 0
        report = load_report(out)
        for stats in report["kernels"].values():
            stats["ns_per_element"] = stats["ns_per_element"] / 1e6
        baseline_path = write_report(report, tmp_path / "baseline.json")
        code = main([
            "bench", "--smoke", "--out", str(out),
            "--compare", str(baseline_path), "--max-regress", "15%",
        ])
        assert code == 1
        assert "FAIL" in capsys.readouterr().err

    def test_execution_multiprocess_scopes_the_run(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "mp.json"
        code = main([
            "bench", "--smoke", "--execution", "multiprocess",
            "--out", str(out),
        ])
        assert code == 0
        report = load_report(out)
        assert "epoch_multiprocess" in report
        assert "kernels" not in report
        assert "Multiprocess execution" in capsys.readouterr().out

    def test_compare_passes_against_self(self, tmp_path):
        from repro.__main__ import main

        out = tmp_path / "bench.json"
        assert main(["bench", "--smoke", "--out", str(out)]) == 0
        # Re-compare against the report just produced with a huge
        # allowance: machine noise alone cannot trip a 10000% limit.
        code = main([
            "bench", "--smoke", "--out", str(tmp_path / "second.json"),
            "--compare", str(out), "--max-regress", "10000%",
        ])
        assert code == 0
