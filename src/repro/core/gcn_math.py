"""The GCN forward/backward linear algebra (paper Eqs. 2-6).

These are the *local* kernels each worker runs between communication
steps. ``A_local`` is the worker's slice of the normalized adjacency: a
``(num_local, num_local + num_halo)`` sparse matrix whose columns follow
the worker's compact vertex order (local vertices first, then the halo).

Forward (Eq. 2-3), with the DGL-style ordering optimization the paper
adopts (compute ``X W`` first when the input dimension is larger):

    M^l = A_local @ H_cat          (aggregate)        [aggregate-first]
    Z^l = M^l @ W + b
  or
    Z^l = A_local @ (H_cat @ W) + b                   [transform-first]

Backward (Eq. 4-6), using that the graphs here are symmetric so
``A^T = A``:

    G^L = dL/dZ^L                           (from the loss)
    dH^{l-1}_local = A_local @ G_cat^l  ... then  @ W^T, Hadamard sigma'
    Y^{l-1} = (M^l)^T G^l   where  M^l = A H^{l-1}    (weight gradient)
    grad_b  = sum_rows(G^l)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_matrix

from repro.nn.activations import Activation

__all__ = ["LayerForwardCache", "layer_forward", "layer_backward_inputs",
           "weight_gradient", "bias_gradient"]


@dataclass
class LayerForwardCache:
    """Per-layer forward state a worker keeps for the backward pass.

    Attributes:
        aggregated: ``M^l = A_local @ H_cat`` — only stored when the
            aggregate-first ordering ran; ``None`` under transform-first
            (the weight gradient then uses ``h_cat`` instead).
        h_cat: The concatenated input ``H_cat^{l-1}`` (local + halo rows).
        pre_activation: ``Z^l`` for the local vertices.
        output: ``H^l`` for the local vertices.
        transform_first: Which ordering produced this cache.
    """

    aggregated: np.ndarray | None
    h_cat: np.ndarray
    pre_activation: np.ndarray
    output: np.ndarray
    transform_first: bool


def layer_forward(
    a_local: csr_matrix,
    h_cat: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    activation: Activation,
    is_last: bool,
    transform_first: bool | None = None,
) -> LayerForwardCache:
    """Run one GCN layer on a worker's local vertices.

    Args:
        a_local: ``(n_local, n_local + n_halo)`` normalized adjacency rows.
        h_cat: ``(n_local + n_halo, d_in)`` concatenated embeddings.
        weight: ``(d_in, d_out)``.
        bias: ``(d_out,)`` or None.
        activation: Hidden activation; skipped on the last layer, whose
            logits go straight into softmax cross-entropy.
        transform_first: Force an ordering; ``None`` picks the cheaper one
            (``d_in > d_out`` => transform first), mirroring DGL.
    """
    d_in, d_out = weight.shape
    if h_cat.shape[1] != d_in:
        raise ValueError(
            f"h_cat dim {h_cat.shape[1]} does not match weight in-dim {d_in}"
        )
    if transform_first is None:
        transform_first = d_in > d_out

    if transform_first:
        z = a_local @ (h_cat @ weight)
        aggregated = None
    else:
        aggregated = a_local @ h_cat
        z = aggregated @ weight
    if bias is not None:
        z = z + bias
    z = z.astype(np.float32)
    h = z if is_last else activation(z).astype(np.float32)
    return LayerForwardCache(
        aggregated=aggregated,
        h_cat=h_cat,
        pre_activation=z,
        output=h,
        transform_first=transform_first,
    )


def layer_backward_inputs(
    a_local: csr_matrix,
    g_cat: np.ndarray,
    weight: np.ndarray,
    pre_activation_prev: np.ndarray,
    activation: Activation,
) -> np.ndarray:
    """Propagate ``G^l`` one layer down: Eq. 5 for the local vertices.

    Args:
        a_local: Local adjacency rows (symmetric graph, so it also plays
            the role of ``A^T`` rows).
        g_cat: ``(n_local + n_halo, d_out)`` concatenated ``G^l`` rows —
            local rows first, then halo rows fetched from the owners.
        weight: ``W^{l-1}`` mapping ``d_in -> d_out``.
        pre_activation_prev: ``Z^{l-1}`` for the local vertices.
        activation: The activation whose derivative gates the gradient.

    Returns:
        ``G^{l-1}`` rows for the local vertices.
    """
    dh = (a_local @ g_cat) @ weight.T
    return (dh * activation.derivative(pre_activation_prev)).astype(np.float32)


def weight_gradient(
    cache: LayerForwardCache,
    a_local: csr_matrix,
    g_local: np.ndarray,
) -> np.ndarray:
    """Worker-local share of ``Y^{l-1} = (A H^{l-1})^T G^l`` (Eq. 6).

    Under aggregate-first the forward cached ``M^l = A_local H_cat``
    directly; under transform-first it is recomputed sparsely here. The
    full gradient is the sum of these shares across workers, which the
    parameter servers perform.
    """
    aggregated = cache.aggregated
    if aggregated is None:
        aggregated = a_local @ cache.h_cat
    return (aggregated.T @ g_local).astype(np.float32)


def bias_gradient(g_local: np.ndarray) -> np.ndarray:
    """Worker-local share of the bias gradient: column sums of ``G^l``."""
    return g_local.sum(axis=0).astype(np.float32)
