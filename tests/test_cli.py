"""Unit tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.system == "ecgraph"
        assert args.dataset == "cora"
        assert args.workers == 6

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--system", "spark"])

    def test_profile_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--profile", "huge", "datasets"])

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.scenario == "mixed"
        assert args.max_accuracy_gap == pytest.approx(0.02)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "meteor-strike"])

    def test_report_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.system == "ecgraph"
        assert args.format == "html"
        assert args.out == "reports/epoch_report.html"
        assert not args.smoke

    def test_report_format_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "--format", "pdf"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["--profile", "tiny", "datasets"]) == 0
        out = capsys.readouterr().out
        assert "cora" in out and "ogbn-papers" in out
        assert "111,059,956" in out  # paper statistics shown

    def test_train(self, capsys):
        code = main([
            "--profile", "tiny", "train", "--dataset", "cora",
            "--workers", "2", "--epochs", "5", "--hidden", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best acc" in out

    def test_compare(self, capsys):
        code = main([
            "--profile", "tiny", "compare", "--dataset", "cora",
            "--systems", "ecgraph", "noncp",
            "--workers", "2", "--epochs", "5", "--hidden", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ecgraph" in out and "noncp" in out

    def test_partition(self, capsys):
        code = main([
            "--profile", "tiny", "partition", "--dataset", "cora",
            "--workers", "3", "--methods", "hash", "metis",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "edge-cut" in out

    def test_trace_smoke(self, capsys, tmp_path):
        import json

        code = main(["trace", "--smoke", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Telemetry: wall time by phase" in out
        assert "Compression health" in out
        doc = json.loads((tmp_path / "trace.json").read_text())
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert events
        for event in events:
            assert {"name", "ph", "ts", "dur"} <= event.keys()
        report = json.loads((tmp_path / "telemetry.json").read_text())
        assert report["metrics"]["scope"] == "total"
        assert (tmp_path / "spans.jsonl").exists()

    def test_trace_smoke_span_names_pinned(self, capsys, tmp_path):
        """Regression pin: the exact span vocabulary of a plain
        instrumented run. A missing name means a stage lost its span;
        a new name means the trace docs need updating."""
        import json

        assert main(["trace", "--smoke", "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        names = {
            json.loads(line)["name"]
            for line in (tmp_path / "spans.jsonl").read_text().splitlines()
        }
        assert names == {
            "epoch", "halo_plan", "forward", "backward", "optimize",
            "eval", "layer", "kernel", "loss", "halo_exchange",
            "encode", "decode", "param_pull", "param_push",
            "server_apply",
        }

    def test_trace_smoke_writes_metric_exports(self, capsys, tmp_path):
        import json

        assert main(["trace", "--smoke", "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        prom = (tmp_path / "metrics.prom").read_text()
        assert "# TYPE ecgraph_comm_bytes counter" in prom
        assert "ecgraph_epochs_completed" in prom
        lines = (tmp_path / "metrics.jsonl").read_text().splitlines()
        records = [json.loads(line) for line in lines]
        # One snapshot per epoch plus the lifetime total as last line.
        assert records[-1]["scope"] == "total"
        per_epoch = sum(
            r["counters"].get("comm_bytes{category=fp_embeddings}", 0)
            for r in records[:-1]
        )
        total = records[-1]["counters"]["comm_bytes{category=fp_embeddings}"]
        assert per_epoch == total

    def test_report_smoke_html(self, capsys, tmp_path):
        out = tmp_path / "report.html"
        code = main(["report", "--smoke", "--out", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "Stage timeline" in stdout
        assert "coverage" in stdout
        text = out.read_text()
        assert text.startswith("<!DOCTYPE html>")
        for stage in ("halo_plan", "forward", "backward", "optimize",
                      "eval"):
            assert f"<td>{stage}</td>" in text

    def test_report_smoke_markdown(self, capsys, tmp_path):
        out = tmp_path / "report.md"
        code = main([
            "report", "--smoke", "--format", "markdown",
            "--out", str(out),
        ])
        assert code == 0
        capsys.readouterr()
        text = out.read_text()
        assert text.startswith("# Epoch report:")
        assert "## Bandwidth waterfall" in text

    def test_chaos_smoke(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "chaos.json"
        code = main([
            "chaos", "--smoke", "--workers", "2",
            "--json-out", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "survived" in out
        assert "Faults injected" in out
        report = json.loads(out_path.read_text())
        assert report["survived"] is True
        assert report["completed_epochs"] == report["scheduled_epochs"]
        assert report["counters"]["crashes"] == 1


class TestOperationalErrors:
    def test_invalid_config_value_one_line_error(self, capsys):
        code = main([
            "--profile", "tiny", "train", "--dataset", "cora",
            "--workers", "2", "--epochs", "2", "--layers", "0",
        ])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_missing_path_one_line_error(self, capsys, tmp_path, monkeypatch):
        # A missing dataset/checkpoint path surfaces as FileNotFoundError
        # from inside a command; main() must turn it into one line.
        import repro.__main__ as cli

        def explode(*args, **kwargs):
            raise FileNotFoundError(
                f"checkpoint not found: {tmp_path / 'nope.npz'}"
            )

        monkeypatch.setattr(cli, "load_dataset", explode)
        code = cli.main(["--profile", "tiny", "train", "--epochs", "1"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: checkpoint not found")
        assert "Traceback" not in err
