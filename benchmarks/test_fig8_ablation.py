"""Fig. 8 — ablation study: convergence-time speedup + accuracy.

Configurations, as in the paper's Fig. 8:

* ``Non-cp``      — raw messages both directions,
* ``Cp-fp``       — forward compression only (no compensation),
* ``Cp-bp``       — backward compression only (no compensation),
* ``ReqEC``       — ReqEC-FP forward (fixed bits),
* ``ResEC``       — ResEC-BP backward,
* ``ReqEC-adapt`` — ReqEC-FP with the adaptive Bit-Tuner,
* ``EC-Graph``    — full pipeline (ReqEC-adapt + ResEC).

Bars = speedup of convergence time over Non-cp (higher is better);
the accuracy column plays the paper's overlaid line. The paper's
headline shape: compression *without* compensation can be slower than no
compression at all (it needs many more epochs), while the compensated
configurations win.
"""

from __future__ import annotations

from _helpers import HIDDEN, LAYERS, bench_graph, dataset_header, run_once

from repro.analysis.convergence import convergence_target, summarize
from repro.analysis.reporting import format_table
from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.trainer import ECGraphTrainer

DATASETS = ("cora", "reddit", "ogbn-products")
EPOCHS = 70
WORKERS = 6

# Per-dataset bits for Cp-fp / Cp-bp / ReqEC / ResEC, following the
# paper's section V-C convention of picking widths that can still reach
# near-optimal accuracy.
BIT_SETTINGS = {
    "cora": (2, 4, 1, 2),
    "pubmed": (4, 4, 2, 2),
    "reddit": (8, 8, 2, 4),
    "ogbn-products": (8, 8, 2, 2),
    "ogbn-papers": (8, 8, 4, 4),
}


def _configs(dataset):
    cp_fp, cp_bp, reqec, resec = BIT_SETTINGS[dataset]
    return [
        ("Non-cp", ECGraphConfig(fp_mode="raw", bp_mode="raw")),
        ("Cp-fp", ECGraphConfig(fp_mode="compress", bp_mode="raw",
                                fp_bits=cp_fp, adaptive_bits=False)),
        ("Cp-bp", ECGraphConfig(fp_mode="raw", bp_mode="compress",
                                bp_bits=cp_bp)),
        ("ReqEC", ECGraphConfig(fp_mode="reqec", bp_mode="raw",
                                fp_bits=reqec, adaptive_bits=False)),
        ("ResEC", ECGraphConfig(fp_mode="raw", bp_mode="resec",
                                bp_bits=resec)),
        ("ReqEC-adapt", ECGraphConfig(fp_mode="reqec", bp_mode="raw",
                                      fp_bits=reqec, adaptive_bits=True)),
        ("EC-Graph", ECGraphConfig(fp_mode="reqec", bp_mode="resec",
                                   fp_bits=reqec, bp_bits=resec,
                                   adaptive_bits=True)),
    ]


def _experiment():
    results = {}
    for dataset in DATASETS:
        graph = bench_graph(dataset)
        runs = []
        for name, config in _configs(dataset):
            trainer = ECGraphTrainer(
                graph,
                ModelConfig(num_layers=LAYERS[dataset],
                            hidden_dim=HIDDEN[dataset]),
                ClusterSpec(num_workers=WORKERS),
                config,
            )
            runs.append(trainer.train(EPOCHS, name=name))
        results[dataset] = runs
    return results


def test_fig8_ablation(benchmark):
    results = run_once(benchmark, _experiment)
    print()
    for dataset, runs in results.items():
        target = convergence_target(runs, slack=0.98)
        summaries = {run.name: summarize(run, target) for run in runs}
        base = summaries["Non-cp"].seconds_to_target
        rows = []
        for run in runs:
            summary = summaries[run.name]
            if base is not None and summary.seconds_to_target:
                speedup = f"{base / summary.seconds_to_target:.2f}x"
            else:
                speedup = "-"
            rows.append([
                run.name,
                speedup,
                summary.best_test_accuracy,
                f"{summary.avg_epoch_seconds * 1e3:.2f}ms",
                summary.epochs_to_target or "-",
            ])
        print(f"--- Fig. 8: {dataset} (target acc {target:.3f}) ---")
        print(dataset_header(dataset))
        print(format_table(
            ["config", "speedup vs Non-cp", "best acc", "epoch time",
             "epochs to target"],
            rows,
        ))
        print()

    # Shape: the full EC-Graph pipeline reaches the target and keeps
    # near-baseline accuracy on every dataset.
    for _dataset, runs in results.items():
        summaries = {r.name: summarize(r, convergence_target(runs))
                     for r in runs}
        assert summaries["EC-Graph"].seconds_to_target is not None
        assert summaries["EC-Graph"].best_test_accuracy >= (
            summaries["Non-cp"].best_test_accuracy - 0.05
        )
