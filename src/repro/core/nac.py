"""The 1-hop Neighbor Access Controller (paper Fig. 2a).

The NAC mediates every halo exchange: local neighbours come out of shared
memory for free, remote neighbours go through an exchange policy, the
traffic meter and the compute clocks. Since the simulator runs workers
sequentially, responder and requester codec time is measured directly and
charged to the right worker, scaled by the configured codec speedup
(emulating the original C++ compression kernels; see DESIGN.md).
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.cluster.engine import ClusterRuntime
from repro.core.messages import ChannelKey, ExchangePolicy
from repro.core.worker import WorkerState

__all__ = ["NeighborAccessController"]


class NeighborAccessController:
    """Runs one halo exchange across all worker pairs."""

    def __init__(
        self,
        runtime: ClusterRuntime,
        workers: list[WorkerState],
        codec_speedup: float = 20.0,
    ):
        if codec_speedup <= 0:
            raise ValueError("codec_speedup must be positive")
        self.runtime = runtime
        self.workers = workers
        self.codec_speedup = codec_speedup
        self.telemetry = runtime.telemetry
        self._last_proportions: dict[tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    def exchange(
        self,
        layer: int,
        t: int,
        rows_of: Callable[[WorkerState], np.ndarray],
        policy: ExchangePolicy,
        category: str,
        dim: int,
        subset: dict[tuple[int, int], np.ndarray] | None = None,
    ) -> list[np.ndarray]:
        """Fetch remote rows for every worker; returns halo matrices.

        Args:
            layer: Layer id baked into the channel keys.
            t: Iteration number (policies schedule on it).
            rows_of: Maps a *responding* worker's state to the local
                matrix whose rows are being served (e.g. its ``H^{l-1}``).
            policy: The exchange policy for this direction.
            category: Traffic category for the meter.
            dim: Row width, used to size the halo buffers.
            subset: Optional per-(responder, requester) indices into the
                channel's full vertex list (sampling mode); channels not
                present exchange all rows.

        Returns:
            One ``(num_halo, dim)`` array per worker, rows scattered into
            the worker's halo ordering. Vertices outside a subset keep 0.
        """
        halos = [
            np.zeros((state.num_halo, dim), dtype=np.float32)
            for state in self.workers
        ]
        self._last_proportions.clear()
        obs = self.telemetry
        with obs.span("halo_exchange", layer=layer, category=category):
            for requester in self.workers:
                i = requester.worker_id
                for owner, slots in requester.halo_slots.items():
                    responder = self.workers[owner]
                    serve_rows = responder.serves[i]
                    key = ChannelKey(layer=layer, responder=owner, requester=i)

                    rows_idx = None
                    if subset is not None:
                        rows_idx = subset.get((owner, i))
                        if rows_idx is not None and rows_idx.size == 0:
                            continue

                    source = rows_of(responder)
                    if rows_idx is None:
                        served = source[serve_rows]
                    else:
                        served = source[serve_rows[rows_idx]]

                    with obs.span("encode", responder=owner, requester=i):
                        start = time.perf_counter()
                        message = policy.respond(
                            key, served, t, rows_idx=rows_idx
                        )
                        respond_wall = time.perf_counter() - start
                    self._charge_compute(
                        owner, respond_wall, message.codec_seconds
                    )

                    self.runtime.send_worker_to_worker(
                        owner, i, message.nbytes, category
                    )
                    if obs.enabled:
                        obs.metrics.inc(
                            "halo_rows", served.shape[0], category=category
                        )
                        obs.metrics.observe(
                            "message_bytes", message.nbytes, category=category
                        )

                    with obs.span("decode", responder=owner, requester=i):
                        start = time.perf_counter()
                        result = policy.receive(
                            key, message, t, rows_idx=rows_idx
                        )
                        receive_wall = time.perf_counter() - start
                    self._charge_compute(i, receive_wall, result.codec_seconds)

                    if rows_idx is None:
                        halos[i][slots] = result.rows
                    else:
                        halos[i][slots[rows_idx]] = result.rows

                    proportion = result.meta.get("proportion")
                    if proportion is None:
                        proportion = message.meta.get("proportion")
                    if proportion is not None:
                        self._last_proportions[(owner, i)] = float(proportion)
        return halos

    def reverse_exchange(
        self,
        layer: int,
        t: int,
        halo_rows_of: Callable[[WorkerState], np.ndarray],
        policy: ExchangePolicy,
        category: str,
        dim: int,
    ) -> list[np.ndarray]:
        """Push halo-partial gradients back to their owners and sum them.

        The mirror of :meth:`exchange`, needed by models with asymmetric
        aggregation (GAT): each worker computed *partial* gradients for
        the remote vertices it consumed; the owners must receive and sum
        those partials. The paper describes this as fetching "embedding
        gradients from out-neighbors" in the backward pass.

        Args:
            halo_rows_of: Maps a worker's state to its ``(num_halo, dim)``
                partial-gradient matrix (halo ordering).

        Returns:
            One ``(num_local, dim)`` array per worker: the sum of the
            partials every consumer computed for that worker's vertices.
        """
        accumulated = [
            np.zeros((state.num_local, dim), dtype=np.float32)
            for state in self.workers
        ]
        obs = self.telemetry
        with obs.span("halo_exchange", layer=layer, category=category,
                      direction="reverse"):
            for consumer in self.workers:
                i = consumer.worker_id
                partials = halo_rows_of(consumer)
                for owner, slots in consumer.halo_slots.items():
                    responder_rows = partials[slots]
                    owner_state = self.workers[owner]
                    local_rows = owner_state.serves[i]
                    # Channel direction: consumer responds, owner requests.
                    key = ChannelKey(layer=layer, responder=i, requester=owner)

                    with obs.span("encode", responder=i, requester=owner):
                        start = time.perf_counter()
                        message = policy.respond(key, responder_rows, t)
                        respond_wall = time.perf_counter() - start
                    self._charge_compute(i, respond_wall, message.codec_seconds)

                    self.runtime.send_worker_to_worker(
                        i, owner, message.nbytes, category
                    )
                    if obs.enabled:
                        obs.metrics.inc(
                            "halo_rows", responder_rows.shape[0],
                            category=category,
                        )
                        obs.metrics.observe(
                            "message_bytes", message.nbytes, category=category
                        )

                    with obs.span("decode", responder=i, requester=owner):
                        start = time.perf_counter()
                        result = policy.receive(key, message, t)
                        receive_wall = time.perf_counter() - start
                    self._charge_compute(
                        owner, receive_wall, result.codec_seconds
                    )

                    np.add.at(accumulated[owner], local_rows, result.rows)
        return accumulated

    def last_proportions(self) -> dict[tuple[int, int], float]:
        """Predicted-selection proportions observed in the last exchange.

        Keyed by (responder, requester); feeds the Bit-Tuner once per
        iteration, after the final forward layer (Algorithm 3).
        """
        return dict(self._last_proportions)

    # ------------------------------------------------------------------
    def _charge_compute(
        self, worker: int, wall_seconds: float, codec_seconds: float
    ) -> None:
        """Charge policy time, discounting codec work by the speedup."""
        codec_seconds = min(codec_seconds, wall_seconds)
        other = wall_seconds - codec_seconds
        self.runtime.add_compute(
            worker, other + codec_seconds / self.codec_speedup
        )
