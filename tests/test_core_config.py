"""Unit tests for configuration objects."""

import pytest

from repro.core.config import ECGraphConfig, ModelConfig


class TestModelConfig:
    def test_layer_dims(self):
        config = ModelConfig(num_layers=3, hidden_dim=16)
        assert config.layer_dims(100, 7) == [100, 16, 16, 7]

    def test_single_layer(self):
        config = ModelConfig(num_layers=1)
        assert config.layer_dims(10, 3) == [10, 3]

    @pytest.mark.parametrize("kwargs", [
        {"num_layers": 0},
        {"hidden_dim": 0},
        {"model": "gat2"},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ModelConfig(**kwargs)


class TestECGraphConfig:
    def test_paper_defaults(self):
        config = ECGraphConfig()
        assert config.fp_mode == "reqec"
        assert config.bp_mode == "resec"
        assert config.trend_period == 10
        assert config.selector_granularity == "vertex"
        assert config.tuner_raise == 0.6
        assert config.tuner_lower == 0.4

    @pytest.mark.parametrize("kwargs", [
        {"fp_mode": "zip"},
        {"bp_mode": "zip"},
        {"selector_granularity": "edge"},
        {"trend_period": 1},
        {"delayed_rounds": 0},
        {"tuner_raise": 0.3, "tuner_lower": 0.4},
        {"codec_speedup": 0.0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ECGraphConfig(**kwargs)

    def test_presets(self):
        base = ECGraphConfig()
        assert base.as_non_cp().fp_mode == "raw"
        assert base.as_non_cp().bp_mode == "raw"
        cp = base.as_cp_only()
        assert cp.fp_mode == "compress" and cp.bp_mode == "compress"
        assert not cp.adaptive_bits
        assert base.as_reqec_only().bp_mode == "raw"
        assert base.as_resec_only().fp_mode == "raw"

    def test_presets_keep_other_fields(self):
        base = ECGraphConfig(fp_bits=8, learning_rate=0.5)
        assert base.as_cp_only().fp_bits == 8
        assert base.as_non_cp().learning_rate == 0.5

    def test_frozen(self):
        config = ECGraphConfig()
        with pytest.raises(AttributeError):
            config.fp_bits = 8
