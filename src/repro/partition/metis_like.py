"""METIS-like multilevel edge-cut partitioner.

The paper uses METIS as its quality-partitioning option (Fig. 11). We
reimplement the multilevel scheme it popularized:

1. **Coarsen** — repeatedly contract a heavy-edge matching until the graph
   is small;
2. **Initial partition** — greedy growth on the coarsest graph;
3. **Uncoarsen + refine** — project the assignment back and run
   boundary-vertex Kernighan-Lin/Fiduccia-Mattheyses style moves with a
   balance constraint at every level.

This is deliberately a faithful *algorithmic* reproduction rather than a
binding to the METIS C library: the experiments only rely on the relative
edge-cut gap between Hash and a locality-aware method.
"""

from __future__ import annotations

import time

import numpy as np

from repro.graph.csr import CSRGraph, from_edge_list
from repro.graph.store.base import GraphStore
from repro.partition.base import Partition

__all__ = ["MetisLikePartitioner"]


class MetisLikePartitioner:
    """Multilevel heavy-edge-matching partitioner with KL refinement."""

    name = "metis"

    def __init__(
        self,
        seed: int = 0,
        coarsen_until: int = 256,
        refine_passes: int = 4,
        imbalance: float = 1.1,
    ):
        """Args:
        seed: Seed for matching and growth tie-breaking.
        coarsen_until: Stop coarsening when at most this many vertices
            remain (or no matching progress is made).
        refine_passes: Refinement sweeps per level.
        imbalance: Allowed max part size as a multiple of the ideal.
        """
        if imbalance < 1.0:
            raise ValueError("imbalance must be >= 1")
        self.seed = seed
        self.coarsen_until = max(coarsen_until, 8)
        self.refine_passes = refine_passes
        self.imbalance = imbalance

    # ------------------------------------------------------------------
    def partition(
        self, graph: CSRGraph | GraphStore, num_parts: int
    ) -> Partition:
        start = time.perf_counter()
        if isinstance(graph, GraphStore):
            # Multilevel coarsening is a whole-graph in-memory algorithm;
            # out-of-core inputs are materialized up front. Scale-bound
            # deployments should partition with hash or bfs instead.
            graph = graph.to_csr()
        rng = np.random.default_rng(self.seed)
        if num_parts == 1:
            assignment = np.zeros(graph.num_vertices, dtype=np.int64)
            return Partition(assignment, 1, self.name,
                             time.perf_counter() - start)

        levels: list[tuple[CSRGraph, np.ndarray, np.ndarray]] = []
        current = graph
        vertex_weight = np.ones(graph.num_vertices, dtype=np.int64)
        while current.num_vertices > self.coarsen_until:
            coarse, mapping, coarse_weight = self._coarsen(
                current, vertex_weight, rng
            )
            if coarse.num_vertices >= current.num_vertices:
                break  # matching made no progress (e.g. all isolated)
            levels.append((current, mapping, vertex_weight))
            current, vertex_weight = coarse, coarse_weight

        assignment = self._initial_partition(
            current, vertex_weight, num_parts, rng
        )
        assignment = self._refine(
            current, vertex_weight, assignment, num_parts, rng
        )

        for fine_graph, mapping, fine_weight in reversed(levels):
            assignment = assignment[mapping]
            assignment = self._refine(
                fine_graph, fine_weight, assignment, num_parts, rng
            )

        return Partition(
            assignment=assignment,
            num_parts=num_parts,
            method=self.name,
            seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    def _coarsen(
        self,
        graph: CSRGraph,
        vertex_weight: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[CSRGraph, np.ndarray, np.ndarray]:
        """Contract a heavy-edge matching; returns (coarse, mapping, weight).

        ``mapping[v]`` is the coarse vertex containing fine vertex ``v``.
        """
        n = graph.num_vertices
        match = np.full(n, -1, dtype=np.int64)
        visit_order = rng.permutation(n)
        for v in visit_order:
            if match[v] != -1:
                continue
            best_u = -1
            best_w = -1.0
            nbrs = graph.neighbors(int(v))
            weights = graph.edge_weights(int(v))
            for u, w in zip(nbrs, weights):
                u = int(u)
                if u != v and match[u] == -1 and w > best_w:
                    best_w = float(w)
                    best_u = u
            if best_u >= 0:
                match[v] = best_u
                match[best_u] = v
            else:
                match[v] = v

        mapping = np.full(n, -1, dtype=np.int64)
        next_id = 0
        for v in range(n):
            if mapping[v] != -1:
                continue
            mapping[v] = next_id
            partner = match[v]
            if partner != v and mapping[partner] == -1:
                mapping[partner] = next_id
            next_id += 1

        coarse_weight = np.zeros(next_id, dtype=np.int64)
        np.add.at(coarse_weight, mapping, vertex_weight)

        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
        csrc = mapping[src]
        cdst = mapping[graph.indices]
        ew = (
            np.ones(graph.num_edges, dtype=np.float64)
            if graph.weights is None
            else graph.weights.astype(np.float64)
        )
        keep = csrc != cdst  # drop collapsed self-edges
        csrc, cdst, ew = csrc[keep], cdst[keep], ew[keep]
        # Merge parallel edges by accumulating weights.
        keys = csrc * next_id + cdst
        order = np.argsort(keys, kind="stable")
        keys, csrc, cdst, ew = keys[order], csrc[order], cdst[order], ew[order]
        unique_keys, starts = np.unique(keys, return_index=True)
        merged_w = np.add.reduceat(ew, starts) if keys.size else ew
        merged_src = csrc[starts] if keys.size else csrc
        merged_dst = cdst[starts] if keys.size else cdst
        edges = np.stack([merged_src, merged_dst], axis=1)
        coarse = from_edge_list(edges, next_id, weights=merged_w)
        return coarse, mapping, coarse_weight

    # ------------------------------------------------------------------
    def _initial_partition(
        self,
        graph: CSRGraph,
        vertex_weight: np.ndarray,
        num_parts: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Greedy region growth on the coarsest graph."""
        n = graph.num_vertices
        total = int(vertex_weight.sum())
        target = total / num_parts
        assignment = np.full(n, -1, dtype=np.int64)
        load = np.zeros(num_parts, dtype=np.int64)
        order = rng.permutation(n)
        cursor = 0
        for part in range(num_parts):
            # Find an unassigned seed.
            while cursor < n and assignment[order[cursor]] != -1:
                cursor += 1
            if cursor >= n:
                break
            frontier = [int(order[cursor])]
            while frontier and load[part] < target:
                v = frontier.pop()
                if assignment[v] != -1:
                    continue
                assignment[v] = part
                load[part] += int(vertex_weight[v])
                for u in graph.neighbors(v):
                    if assignment[u] == -1:
                        frontier.append(int(u))
        # Scatter leftovers to the lightest parts.
        for v in np.flatnonzero(assignment == -1):
            part = int(np.argmin(load))
            assignment[v] = part
            load[part] += int(vertex_weight[v])
        return assignment

    # ------------------------------------------------------------------
    def _refine(
        self,
        graph: CSRGraph,
        vertex_weight: np.ndarray,
        assignment: np.ndarray,
        num_parts: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Boundary-vertex greedy refinement with a balance constraint."""
        assignment = assignment.copy()
        total = int(vertex_weight.sum())
        max_load = int(np.ceil(self.imbalance * total / num_parts))
        load = np.zeros(num_parts, dtype=np.int64)
        np.add.at(load, assignment, vertex_weight)

        n = graph.num_vertices
        for _ in range(self.refine_passes):
            moved = 0
            for v in rng.permutation(n):
                v = int(v)
                here = int(assignment[v])
                gain = np.zeros(num_parts, dtype=np.float64)
                nbrs = graph.neighbors(v)
                weights = graph.edge_weights(v)
                if nbrs.size == 0:
                    continue
                for u, w in zip(nbrs, weights):
                    gain[assignment[u]] += float(w)
                gain_move = gain - gain[here]
                gain_move[here] = 0.0
                w_v = int(vertex_weight[v])
                feasible = load + w_v <= max_load
                feasible[here] = False
                gain_move[~feasible] = -np.inf
                best = int(np.argmax(gain_move))
                if gain_move[best] > 0:
                    assignment[v] = best
                    load[here] -= w_v
                    load[best] += w_v
                    moved += 1
            if moved == 0:
                break
        return assignment
