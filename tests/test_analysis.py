"""Unit tests for the analysis package (costs, theory, reporting,
convergence summaries)."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    compare_speedups,
    convergence_target,
    summarize,
)
from repro.analysis.costs import CostParameters, ecgraph_costs, ml_centered_costs
from repro.analysis.reporting import format_series, format_speedup, format_table
from repro.analysis.theory import (
    estimate_alpha,
    simulate_error_feedback,
    theorem1_bound,
)
from repro.cluster.engine import EpochBreakdown
from repro.compression.quantization import BucketQuantizer
from repro.core.results import ConvergenceRun, EpochResult


def _params(**overrides):
    fields = dict(
        avg_degree=50.0,
        avg_dim=128.0,
        input_dim=100.0,
        num_layers=3,
        num_iterations=100,
        avg_remote_neighbors=5.0,
        bits=2,
    )
    fields.update(overrides)
    return CostParameters(**fields)


class TestCostModel:
    def test_ml_memory_exponential_in_layers(self):
        two = ml_centered_costs(_params(num_layers=2)).memory
        three = ml_centered_costs(_params(num_layers=3)).memory
        assert three == pytest.approx(two * 50.0)

    def test_ecgraph_memory_constant_in_layers(self):
        two = ecgraph_costs(_params(num_layers=2)).memory
        four = ecgraph_costs(_params(num_layers=4)).memory
        assert two == four

    def test_ecgraph_compute_linear_in_layers(self):
        two = ecgraph_costs(_params(num_layers=2)).computation
        four = ecgraph_costs(_params(num_layers=4)).computation
        assert four == pytest.approx(2 * two)

    def test_compression_divides_communication(self):
        full = ecgraph_costs(_params(bits=32)).communication
        compressed = ecgraph_costs(_params(bits=2)).communication
        assert compressed == pytest.approx(full / 16)

    def test_table2_crossover_direction(self):
        """For deep models on dense graphs the ML-centered memory explodes
        past EC-Graph's — the paper's core scalability argument."""
        p = _params(num_layers=4)
        assert ml_centered_costs(p).memory > 1000 * ecgraph_costs(p).memory

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            _params(bits=64)


class TestTheorem1:
    def test_bound_positive_and_finite(self):
        bound = theorem1_bound(alpha=0.3, grad_norm_bound=2.0,
                               num_layers=3, layer=1)
        assert 0 < bound < np.inf

    def test_bound_grows_toward_lower_layers(self):
        upper = theorem1_bound(0.3, 1.0, num_layers=4, layer=4)
        lower = theorem1_bound(0.3, 1.0, num_layers=4, layer=1)
        assert lower > upper  # (1 + alpha)^(L - l) factor

    def test_alpha_domain_enforced(self):
        with pytest.raises(ValueError):
            theorem1_bound(alpha=0.9, grad_norm_bound=1.0,
                           num_layers=2, layer=1)
        with pytest.raises(ValueError):
            theorem1_bound(alpha=0.3, grad_norm_bound=1.0,
                           num_layers=2, layer=1, rho=0.5)

    def test_estimated_alpha_decreases_with_bits(self):
        a2 = estimate_alpha(BucketQuantizer(2), samples=16)
        a8 = estimate_alpha(BucketQuantizer(8), samples=16)
        assert a8 < a2 < 1.0

    def test_measured_residual_below_bound(self):
        """The headline check: replaying ResEC-BP on bounded gradient
        streams keeps the residual below the Theorem 1 bound."""
        quantizer = BucketQuantizer(4)
        alpha = max(estimate_alpha(quantizer, samples=32), 1e-3)
        rng = np.random.default_rng(0)
        grads = [rng.standard_normal((16, 8)).astype(np.float32)
                 for _ in range(60)]
        trace = simulate_error_feedback(quantizer, grads)
        grad_bound = np.sqrt(trace.max_gradient_sq())
        bound = theorem1_bound(alpha, grad_bound, num_layers=3, layer=3)
        assert trace.max_residual_sq() <= bound

    def test_trace_lengths(self):
        trace = simulate_error_feedback(
            BucketQuantizer(2), [np.ones((2, 2), dtype=np.float32)] * 5
        )
        assert len(trace.residual_norms) == 5
        assert len(trace.gradient_norms) == 5


class TestReporting:
    def test_table_contains_cells(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", "y"]], title="T")
        assert "T" in text and "2.5000" in text and "x" in text

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_series_subsamples(self):
        points = [(i, i / 100) for i in range(100)]
        text = format_series("curve", points, max_points=10)
        assert "curve" in text
        assert "99:0.990" in text  # last point always kept

    def test_empty_series(self):
        assert "(empty)" in format_series("x", [])

    def test_speedup(self):
        assert format_speedup(1.0, 2.5) == "2.50x"
        assert format_speedup(0.0, 1.0) == "n/a"


def _fake_run(name, accuracies, epoch_seconds=1.0, preprocessing=0.5):
    run = ConvergenceRun(name=name, preprocessing_seconds=preprocessing)
    for i, acc in enumerate(accuracies):
        run.epochs.append(
            EpochResult(
                epoch=i, loss=1.0 - acc, train_accuracy=acc,
                val_accuracy=acc, test_accuracy=acc,
                breakdown=EpochBreakdown(
                    compute_seconds=epoch_seconds / 2,
                    comm_seconds=epoch_seconds / 2,
                    total_seconds=epoch_seconds,
                    bytes_sent=1000,
                    category_bytes={},
                ),
            )
        )
    run.final_test_accuracy = accuracies[-1] if accuracies else None
    return run


class TestConvergenceSummaries:
    def test_target_is_slack_of_best(self):
        runs = [_fake_run("a", [0.5, 0.9]), _fake_run("b", [0.6])]
        assert convergence_target(runs, slack=0.9) == pytest.approx(0.81)

    def test_summary_time_to_target(self):
        run = _fake_run("a", [0.2, 0.5, 0.8, 0.9])
        summary = summarize(run, target=0.8)
        assert summary.epochs_to_target == 3
        assert summary.seconds_to_target == pytest.approx(0.5 + 3.0)

    def test_summary_never_converged(self):
        run = _fake_run("a", [0.1, 0.2])
        summary = summarize(run, target=0.9)
        assert summary.epochs_to_target is None
        assert summary.seconds_to_target is None

    def test_speedups(self):
        ref = summarize(_fake_run("ref", [0.9]), 0.8)
        slow = summarize(_fake_run("slow", [0.1, 0.1, 0.9]), 0.8)
        never = summarize(_fake_run("never", [0.1]), 0.8)
        speedups = compare_speedups(ref, [slow, never])
        assert speedups["slow"] > 1.0
        assert speedups["never"] is None

    def test_run_helpers(self):
        run = _fake_run("a", [0.3, 0.6, 0.5])
        assert run.best_test_accuracy() == 0.6
        assert run.best_epoch() == 1
        assert run.avg_epoch_seconds() == pytest.approx(1.0)
        assert run.end_to_end_seconds() == pytest.approx(3.5)
        assert run.total_bytes() == 3000
        assert run.accuracy_curve()[1] == (1, 0.6)
        assert run.time_to_accuracy(0.99) is None
