"""Configuration of the telemetry subsystem.

Telemetry is **off by default**: a disabled :class:`ObsConfig` builds a
null :class:`~repro.obs.telemetry.Telemetry` whose spans and metric
updates are no-ops, so the tier-1 benchmarks measure exactly what they
measured before the subsystem existed. Enabling it costs one branch plus
a ``perf_counter`` pair per span and a dict update per metric.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ObsConfig", "OBS_DISABLED"]


@dataclass(frozen=True)
class ObsConfig:
    """Every knob of the observability pipeline.

    Attributes:
        enabled: Master switch; when False every collector is a no-op.
        trace: Record nested spans (``epoch > iteration phases``).
        metrics: Maintain the counter/gauge/histogram registry.
        health: Run the compression-health monitors (candidate-win
            fractions, Bit-Tuner trajectory, Theorem-1 residual checks).
        profile: Run the stage timeline profiler (per-epoch wall /
            modelled time per engine stage, straggler attribution).
        ledger: Keep the per-channel traffic ledger in the halo
            transport (bytes, frames, retries, degradations and
            effective bit-width per (responder, consumer, layer,
            direction) channel).
        max_spans: Hard cap on recorded spans; once reached further
            spans are counted but dropped (guards long runs).
        epoch_snapshots: Attach a per-epoch metrics snapshot to each
            :class:`~repro.core.results.EpochResult`.
        health_rho: ``rho`` handed to the Theorem 1 bound (must be > 1).
    """

    enabled: bool = False
    trace: bool = True
    metrics: bool = True
    health: bool = True
    profile: bool = True
    ledger: bool = True
    max_spans: int = 500_000
    epoch_snapshots: bool = True
    health_rho: float = 1.5

    def __post_init__(self):
        if self.max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        if self.health_rho <= 1.0:
            raise ValueError("health_rho must be > 1")


# Shared immutable default used by ECGraphConfig; frozen, so one
# instance can safely back every un-instrumented run.
OBS_DISABLED = ObsConfig()
