"""Unit tests for the R-MAT generator."""

import numpy as np
import pytest

from repro.graph.rmat import RMATSpec, generate_rmat_graph, rmat_edges


class TestSpec:
    @pytest.mark.parametrize("kwargs", [
        {"scale": 0},
        {"edge_factor": 0},
        {"a": 0.5, "b": 0.4, "c": 0.2},
        {"a": -0.1},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            RMATSpec(**kwargs)

    def test_vertex_count(self):
        assert RMATSpec(scale=8).num_vertices == 256


class TestEdges:
    def test_endpoints_in_range(self):
        spec = RMATSpec(scale=8, edge_factor=4, seed=1)
        edges = rmat_edges(spec, np.random.default_rng(1))
        assert edges.min() >= 0
        assert edges.max() < 256

    def test_no_self_loops(self):
        spec = RMATSpec(scale=7, seed=2)
        edges = rmat_edges(spec, np.random.default_rng(2))
        assert (edges[:, 0] != edges[:, 1]).all()

    def test_skew_produces_hubs(self):
        """Graph500 quadrants concentrate degree: the max degree should
        dwarf the mean (the hub structure that stresses partitioners)."""
        spec = RMATSpec(scale=10, edge_factor=8, seed=3)
        graph = generate_rmat_graph(spec).adjacency
        degrees = graph.degree()
        assert degrees.max() > 8 * degrees.mean()

    def test_uniform_quadrants_not_skewed(self):
        spec = RMATSpec(scale=10, edge_factor=8, a=0.25, b=0.25, c=0.25,
                        seed=3)
        graph = generate_rmat_graph(spec).adjacency
        degrees = graph.degree()
        assert degrees.max() < 6 * degrees.mean()


class TestGraph:
    def test_symmetric(self):
        graph = generate_rmat_graph(RMATSpec(scale=6, seed=4))
        edges = set(graph.adjacency.iter_edges())
        assert all((v, u) in edges for u, v in edges)

    def test_deterministic(self):
        a = generate_rmat_graph(RMATSpec(scale=6, seed=5))
        b = generate_rmat_graph(RMATSpec(scale=6, seed=5))
        np.testing.assert_array_equal(a.adjacency.indices,
                                      b.adjacency.indices)

    def test_trains_end_to_end(self):
        """The adversarial graph must still flow through the trainer."""
        from repro.cluster.topology import ClusterSpec
        from repro.core.config import ECGraphConfig, ModelConfig
        from repro.core.trainer import ECGraphTrainer

        graph = generate_rmat_graph(RMATSpec(scale=7, seed=6))
        trainer = ECGraphTrainer(
            graph, ModelConfig(num_layers=2, hidden_dim=4),
            ClusterSpec(num_workers=3), ECGraphConfig(),
        )
        run = trainer.train(5)
        assert np.isfinite(run.epochs[-1].loss)
