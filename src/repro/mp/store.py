"""SharedStore: named shared-memory arrays with headers and teardown.

One store owns a set of named float/int arrays, each backed by its own
``multiprocessing.shared_memory`` segment. The creating process (the
supervisor) allocates the segments and is the only one that unlinks
them; worker processes attach read-write views by name. Every segment
carries a small header:

    magic ``ECGS`` | version | dtype string | ndim | shape[4] | generation

so an attaching process can validate it is mapping what the supervisor
described (a stale name from a crashed earlier run fails loudly instead
of aliasing garbage), and so in-place updates can be versioned via the
``generation`` counter without reallocating.

Teardown rules (the part that keeps ``/dev/shm`` clean):

* ``close()`` is idempotent — double-close is a no-op, never an error;
* the creator registers an ``atexit`` hook so segments are unlinked
  even when the owning process dies by exception or interrupt;
* attachers never unlink and never touch Python's ``resource_tracker``
  (registration is suppressed while mapping) — a worker killed with
  SIGKILL therefore leaves no residue and no spurious tracker unlink
  of a live segment.
"""

from __future__ import annotations

import atexit
import secrets
import struct
import weakref
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path

import numpy as np

__all__ = ["SharedStore", "StoreLayout", "disarm_inherited_stores"]

# Creator-mode stores alive in this process. A forked child inherits the
# supervisor's creator store (and its atexit close->unlink hook) by
# address-space copy; worker_main calls :func:`disarm_inherited_stores`
# first thing so a child exiting never unlinks segments the supervisor
# is still serving.
_CREATOR_STORES: "weakref.WeakSet[SharedStore]" = weakref.WeakSet()


def disarm_inherited_stores() -> int:
    """Neutralize creator stores inherited across a ``fork``.

    Must be called at the top of a forked worker's main function —
    before any exit path — so the child's ``atexit``/``__del__`` hooks
    cannot unlink shared segments that the creating (parent) process
    still owns. Returns the number of stores disarmed.
    """
    count = 0
    for store in list(_CREATOR_STORES):
        store.disarm()
        count += 1
    return count

_MAGIC = b"ECGS"
_VERSION = 1
# magic 4s | version u16 | dtype 8s | ndim u16 | shape 4*u64 | generation u64
_HEADER = struct.Struct("<4sH8sH4QQ")
HEADER_BYTES = _HEADER.size


def _encode_header(dtype: np.dtype, shape: tuple[int, ...],
                   generation: int) -> bytes:
    if len(shape) > 4:
        raise ValueError("SharedStore arrays support at most 4 dimensions")
    dts = np.dtype(dtype).str.encode("ascii")
    if len(dts) > 8:
        raise ValueError(f"dtype string too long: {dts!r}")
    padded = list(shape) + [0] * (4 - len(shape))
    return _HEADER.pack(_MAGIC, _VERSION, dts.ljust(8, b"\0"),
                        len(shape), *padded, generation)


def _decode_header(buf: memoryview) -> tuple[np.dtype, tuple[int, ...], int]:
    magic, version, dts, ndim, *rest = _HEADER.unpack(bytes(buf[:HEADER_BYTES]))
    if magic != _MAGIC:
        raise ValueError("shared segment is not a SharedStore array "
                         f"(bad magic {magic!r})")
    if version != _VERSION:
        raise ValueError(f"SharedStore header version {version} != {_VERSION}")
    shape = tuple(int(d) for d in rest[:ndim])
    generation = int(rest[4])
    return np.dtype(dts.rstrip(b"\0").decode("ascii")), shape, generation


class StoreLayout:
    """Name -> (shape, dtype) manifest shipped to attaching processes.

    ``files`` lists the mmap-aliased entries (name -> npy path): those
    are not shared-memory segments at all — every process maps the same
    on-disk file read-only and the kernel page cache does the sharing.
    """

    def __init__(
        self,
        token: str,
        arrays: dict[str, tuple[tuple[int, ...], str]],
        files: dict[str, str] | None = None,
    ) -> None:
        self.token = token
        self.arrays = arrays
        self.files = dict(files or {})


class SharedStore:
    """A set of named shared-memory numpy arrays (creator or attacher).

    Args:
        token: Run-unique segment-name prefix. ``None`` (creator mode
            default) draws a fresh random token.
        create: Creator mode allocates and later unlinks the segments;
            attach mode (``create=False``) maps existing ones by name.
    """

    def __init__(self, token: str | None = None, create: bool = True) -> None:
        self.token = token or f"ecg{secrets.token_hex(4)}"
        self.create = create
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._views: dict[str, np.ndarray] = {}
        self._files: dict[str, str] = {}
        self._closed = False
        self._atexit_registered = False
        if create:
            _CREATOR_STORES.add(self)

    # ------------------------------------------------------------------
    def _segment_name(self, name: str) -> str:
        slug = name.replace("/", "-")
        return f"{self.token}-{slug}"

    def allocate(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: np.dtype | type = np.float32,
    ) -> np.ndarray:
        """Create one named array (creator mode); returns its view."""
        if not self.create:
            raise RuntimeError("attach-mode stores cannot allocate")
        if self._closed:
            raise RuntimeError("store is closed")
        if name in self._segments:
            raise ValueError(f"array {name!r} already allocated")
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        shm = shared_memory.SharedMemory(
            name=self._segment_name(name), create=True,
            size=HEADER_BYTES + max(nbytes, 1),
        )
        shm.buf[:HEADER_BYTES] = _encode_header(dtype, tuple(shape), 0)
        self._segments[name] = shm
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf,
                          offset=HEADER_BYTES)
        view.fill(0)
        self._views[name] = view
        if not self._atexit_registered:
            atexit.register(self.close)
            self._atexit_registered = True
        return view

    def map_npy(self, name: str, path: str | Path) -> np.ndarray:
        """Alias an on-disk npy file as a read-only named array.

        Unlike :meth:`allocate`, nothing is copied into ``/dev/shm``:
        the file (e.g. one chunk of an mmap
        :class:`~repro.graph.store.mmapstore.MmapFeatureStore`) is
        memory-mapped read-only, and attaching processes map the same
        file, so supervisor and workers share its pages through the
        kernel page cache. The store never unlinks the file — the graph
        store on disk owns it.
        """
        if self._closed:
            raise RuntimeError("store is closed")
        if name in self._views:
            raise ValueError(f"array {name!r} already allocated")
        view = np.load(str(path), mmap_mode="r")
        self._views[name] = view
        self._files[name] = str(path)
        return view

    def attach(self, name: str) -> np.ndarray:
        """Map one existing array by name (attach mode); returns its view."""
        if self._closed:
            raise RuntimeError("store is closed")
        if name in self._views:
            return self._views[name]
        if self.create:
            shm = shared_memory.SharedMemory(name=self._segment_name(name))
        else:
            shm = self._attach_untracked(self._segment_name(name))
        dtype, shape, _ = _decode_header(shm.buf)
        self._segments[name] = shm
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf,
                          offset=HEADER_BYTES)
        self._views[name] = view
        return view

    @staticmethod
    def _attach_untracked(segment_name: str) -> shared_memory.SharedMemory:
        # The supervisor owns the segment's lifetime, and forked workers
        # share its resource-tracker process, whose cache is a *set*: if
        # attachers registered too, their register/unregister pairs would
        # cancel the creator's single entry and the final unlink would
        # double-unregister (tracker KeyError noise). Python 3.13 adds
        # ``track=False`` for exactly this; until then, suppress
        # registration around the map.
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=segment_name)
        finally:
            resource_tracker.register = original

    def attach_all(self, layout: StoreLayout) -> None:
        """Attach every array in a :class:`StoreLayout` manifest.

        Shared-memory entries are mapped by segment name; mmap-aliased
        entries re-map the same on-disk npy file read-only.
        """
        for name, (shape, dtype) in layout.arrays.items():
            if name in layout.files:
                view = self.map_npy(name, layout.files[name])
            else:
                view = self.attach(name)
            if view.shape != tuple(shape) or view.dtype != np.dtype(dtype):
                raise ValueError(
                    f"shared array {name!r} is {view.dtype}{view.shape}, "
                    f"manifest says {dtype}{tuple(shape)}"
                )

    def layout(self) -> StoreLayout:
        """Manifest of every allocated array, for attaching processes."""
        return StoreLayout(
            self.token,
            {
                name: (tuple(view.shape), view.dtype.str)
                for name, view in self._views.items()
            },
            files=self._files,
        )

    # ------------------------------------------------------------------
    def view(self, name: str) -> np.ndarray:
        """Zero-copy numpy view of a mapped array."""
        if self._closed:
            raise RuntimeError("store is closed")
        return self._views[name]

    def __contains__(self, name: str) -> bool:
        return name in self._views

    def names(self) -> list[str]:
        return list(self._views)

    def generation(self, name: str) -> int:
        """Read an array's generation counter from its header."""
        if name in self._files:
            raise ValueError(
                f"{name!r} is an mmap-aliased file; it has no header"
            )
        shm = self._segments[name]
        _, _, generation = _decode_header(shm.buf)
        return generation

    def bump_generation(self, name: str) -> int:
        """Increment an array's generation counter; returns the new value."""
        if name in self._files:
            raise ValueError(
                f"{name!r} is an mmap-aliased file; it has no header"
            )
        shm = self._segments[name]
        dtype, shape, generation = _decode_header(shm.buf)
        generation += 1
        shm.buf[:HEADER_BYTES] = _encode_header(dtype, shape, generation)
        return generation

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the mappings; creator mode also unlinks. Idempotent."""
        if self._closed:
            return
        self._closed = True
        # Views alias the segment buffers; drop them before closing so
        # SharedMemory.close() doesn't fail on exported pointers.
        # File-backed views simply unmap; the npy files are never
        # unlinked (the graph store on disk owns them).
        self._views.clear()
        self._files.clear()
        for _, shm in sorted(self._segments.items()):
            try:
                shm.close()
            except Exception:
                pass
            if self.create:
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
                except Exception:
                    pass
        self._segments.clear()
        if self._atexit_registered:
            try:
                atexit.unregister(self.close)
            except Exception:
                pass
            self._atexit_registered = False

    def disarm(self) -> None:
        """Forget the segments without unlinking them.

        Used in forked children that inherited a creator store: the
        mappings are released (child address space only) but the
        segments stay live for the parent. Afterwards the store behaves
        as closed.
        """
        if self._closed:
            return
        self._closed = True
        self._views.clear()
        self._files.clear()
        for _, shm in sorted(self._segments.items()):
            try:
                shm.close()
            except Exception:
                pass
        self._segments.clear()
        if self._atexit_registered:
            try:
                atexit.unregister(self.close)
            except Exception:
                pass
            self._atexit_registered = False

    def __enter__(self) -> "SharedStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
