"""ASCII table/series rendering used by every benchmark.

The benchmarks print the same rows and series the paper's tables and
figures report; these helpers keep the formatting consistent and make
the output easy to diff against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "format_table",
    "format_series",
    "format_speedup",
    "telemetry_table",
]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width ASCII table.

    Cells are stringified; floats get 4 significant decimals unless they
    are already strings. Columns are sized to their widest cell.
    """
    def _cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    str_rows = [[_cell(c) for c in row] for row in rows]
    str_headers = [str(h) for h in headers]
    widths = [len(h) for h in str_headers]
    for row in str_rows:
        if len(row) != len(str_headers):
            raise ValueError(
                f"row width {len(row)} does not match {len(str_headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def _line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(_line(str_headers))
    lines.append(separator)
    lines.extend(_line(row) for row in str_rows)
    return "\n".join(lines)


def format_series(
    name: str,
    points: Sequence[tuple[float, float]],
    x_label: str = "epoch",
    y_label: str = "accuracy",
    max_points: int = 20,
) -> str:
    """Render an (x, y) series compactly, subsampled to ``max_points``.

    Used for the accuracy-vs-epoch curves of Figs. 6 and 7.
    """
    if not points:
        return f"{name}: (empty)"
    if len(points) > max_points:
        step = max(1, len(points) // max_points)
        sampled = list(points[::step])
        if sampled[-1] != points[-1]:
            sampled.append(points[-1])
    else:
        sampled = list(points)
    body = "  ".join(f"{x:g}:{y:.3f}" for x, y in sampled)
    return f"{name} [{x_label}:{y_label}]  {body}"


def format_speedup(base_seconds: float, other_seconds: float) -> str:
    """``"2.31x"``-style speedup of ``base`` over ``other``.

    Reads as "base is N times faster than other"; values below 1 mean
    base is slower.
    """
    if base_seconds <= 0:
        return "n/a"
    return f"{other_seconds / base_seconds:.2f}x"


def telemetry_table(report) -> str:
    """Per-phase time/bytes table for an instrumented run.

    ``report`` is a :class:`~repro.obs.TelemetryReport` (duck-typed via
    ``phase_totals`` / ``metrics`` so this module stays importable
    without the obs package loaded). Phases are ordered by total time,
    largest first; a second section breaks inter-machine traffic down
    per category from the lifetime metrics snapshot.
    """
    phase_rows = []
    for name, (count, seconds) in sorted(
        report.phase_totals.items(), key=lambda item: item[1][1], reverse=True
    ):
        mean_ms = 1e3 * seconds / count if count else 0.0
        phase_rows.append([name, count, f"{seconds:.4f}", f"{mean_ms:.3f}"])
    lines = [
        format_table(
            ["phase", "count", "seconds", "mean_ms"],
            phase_rows,
            title="Telemetry: wall time by phase (nested spans overlap)",
        )
    ]

    snap = report.metrics
    byte_totals = snap.counters_by_label("comm_bytes", "category")
    if byte_totals:
        message_totals = snap.counters_by_label("comm_messages", "category")
        comm_rows = [
            [category, int(nbytes), int(message_totals.get(category, 0))]
            for category, nbytes in sorted(
                byte_totals.items(), key=lambda item: item[1], reverse=True
            )
        ]
        comm_rows.append(
            [
                "total",
                int(sum(byte_totals.values())),
                int(sum(message_totals.values())),
            ]
        )
        lines.append(
            format_table(
                ["category", "bytes", "messages"],
                comm_rows,
                title="Telemetry: inter-machine traffic",
            )
        )
    return "\n\n".join(lines)
