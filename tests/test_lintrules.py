"""Tests for the ``repro lint`` AST-based invariant checker.

Fixtures are laid out as ``<tmp>/repro/<package>/<file>.py`` so the
package-scoped rules (ECG001 engine/mp/core, ECG003 engine/mp/
membership, ECG005 compression + graph/io.py) resolve scope exactly as
they do for ``src/repro/...`` — :func:`package_parts` keys on the last
``repro`` directory component, not on ``src``.
"""

import json
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.lintrules import ALL_RULES, format_json, format_text, run_lint
from repro.lintrules.base import package_parts, parse_pragmas


def write_module(tmp_path: Path, relpath: str, source: str) -> Path:
    path = tmp_path / "repro" / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


def lint_one(tmp_path: Path, relpath: str, source: str, **kwargs):
    return run_lint([write_module(tmp_path, relpath, source)], **kwargs)


def codes(report) -> list[str]:
    return [f.code for f in report.active]


class TestScoping:
    def test_package_parts_after_last_repro_dir(self):
        assert package_parts(Path("src/repro/engine/transport.py")) == (
            "engine", "transport.py",
        )
        assert package_parts(Path("tmp/repro/mp/worker.py")) == (
            "mp", "worker.py",
        )
        assert package_parts(Path("scripts/helper.py")) == ("helper.py",)

    def test_rule_registry_has_seven_rules(self):
        assert len(ALL_RULES) == 7
        assert sorted(cls.code for cls in ALL_RULES) == [
            f"ECG00{i}" for i in range(1, 8)
        ]


class TestECG001WallClock:
    def test_flags_time_call_in_engine(self, tmp_path):
        report = lint_one(
            tmp_path, "engine/bad.py",
            "import time\n\n\ndef f():\n    return time.perf_counter()\n",
        )
        assert codes(report) == ["ECG001"]

    def test_flags_from_time_import(self, tmp_path):
        report = lint_one(
            tmp_path, "mp/bad.py", "from time import monotonic\n",
        )
        assert codes(report) == ["ECG001"]

    def test_flags_datetime_now(self, tmp_path):
        report = lint_one(
            tmp_path, "core/bad.py",
            "import datetime\nSTAMP = datetime.datetime.now()\n",
        )
        assert codes(report) == ["ECG001"]

    def test_sleep_and_monotonic_now_are_clean(self, tmp_path):
        report = lint_one(
            tmp_path, "engine/good.py",
            "import time\n"
            "from repro.obs.tracing import monotonic_now\n\n\n"
            "def f():\n"
            "    time.sleep(0.01)\n"
            "    return monotonic_now()\n",
        )
        assert codes(report) == []

    def test_out_of_scope_package_is_quiet(self, tmp_path):
        report = lint_one(
            tmp_path, "obs/clock.py",
            "import time\n\n\ndef f():\n    return time.perf_counter()\n",
        )
        assert codes(report) == []


class TestECG002Random:
    def test_flags_legacy_np_random_call(self, tmp_path):
        report = lint_one(
            tmp_path, "graph/bad.py",
            "import numpy as np\nX = np.random.rand(4)\n",
        )
        assert codes(report) == ["ECG002"]

    def test_flags_stdlib_module_rng(self, tmp_path):
        report = lint_one(
            tmp_path, "faults/bad.py",
            "import random\nV = random.random()\n",
        )
        assert codes(report) == ["ECG002"]

    def test_flags_from_random_import(self, tmp_path):
        report = lint_one(
            tmp_path, "faults/bad2.py", "from random import shuffle\n",
        )
        assert codes(report) == ["ECG002"]

    def test_default_rng_and_random_instance_are_clean(self, tmp_path):
        report = lint_one(
            tmp_path, "graph/good.py",
            "import random\n"
            "import numpy as np\n\n"
            "rng = np.random.default_rng(7)\n"
            "coin = random.Random(7)\n"
            "X = rng.normal(size=3)\n",
        )
        assert codes(report) == []


class TestECG003Iteration:
    def test_flags_items_on_state_dict(self, tmp_path):
        report = lint_one(
            tmp_path, "engine/bad.py",
            "def f(channels):\n"
            "    for key, ch in channels.items():\n"
            "        ch.send()\n",
        )
        assert codes(report) == ["ECG003"]

    def test_flags_bare_name_with_dict_evidence(self, tmp_path):
        report = lint_one(
            tmp_path, "mp/bad.py",
            "workers = {}\n"
            "total = [workers[k] for k in workers]\n",
        )
        assert codes(report) == ["ECG003"]

    def test_sorted_wrapper_is_clean(self, tmp_path):
        report = lint_one(
            tmp_path, "membership/good.py",
            "def f(partitions):\n"
            "    for key in sorted(partitions):\n"
            "        yield key\n"
            "    for key, p in sorted(partitions.items()):\n"
            "        yield p\n",
        )
        assert codes(report) == []

    def test_list_iteration_without_dict_evidence_is_clean(self, tmp_path):
        report = lint_one(
            tmp_path, "engine/good.py",
            "def f(workers):\n"
            "    return [w.loss for w in workers]\n",
        )
        assert codes(report) == []

    def test_out_of_scope_package_is_quiet(self, tmp_path):
        report = lint_one(
            tmp_path, "analysis/report.py",
            "def f(channels):\n"
            "    return dict(channels.items())\n",
        )
        assert codes(report) == []


class TestECG004Lifecycle:
    BAD = (
        "from multiprocessing import shared_memory\n\n\n"
        "class Leaky:\n"
        "    def open(self):\n"
        "        self.shm = shared_memory.SharedMemory(create=True, size=8)\n"
    )

    def test_flags_class_without_close(self, tmp_path):
        report = lint_one(tmp_path, "mp/bad.py", self.BAD)
        assert codes(report) == ["ECG004"]

    def test_close_satisfies(self, tmp_path):
        report = lint_one(
            tmp_path, "mp/good.py",
            self.BAD + "\n    def close(self):\n        self.shm.close()\n",
        )
        assert codes(report) == []

    def test_shutdown_satisfies(self, tmp_path):
        report = lint_one(
            tmp_path, "mp/good2.py",
            self.BAD + "\n    def shutdown(self):\n        self.shm.close()\n",
        )
        assert codes(report) == []

    def test_del_alone_does_not_satisfy(self, tmp_path):
        report = lint_one(
            tmp_path, "mp/bad2.py",
            self.BAD + "\n    def __del__(self):\n        self.shm.close()\n",
        )
        assert codes(report) == ["ECG004"]


class TestECG005Decode:
    def test_flags_decoder_without_validation(self, tmp_path):
        report = lint_one(
            tmp_path, "compression/bad.py",
            "def decode_frame(buf):\n"
            "    return buf[4:]\n",
        )
        assert codes(report) == ["ECG005"]

    def test_raising_value_error_is_clean(self, tmp_path):
        report = lint_one(
            tmp_path, "compression/good.py",
            "def decode_frame(buf):\n"
            "    if len(buf) < 4:\n"
            "        raise ValueError('truncated frame')\n"
            "    return buf[4:]\n",
        )
        assert codes(report) == []

    def test_flags_swallowed_exception(self, tmp_path):
        report = lint_one(
            tmp_path, "graph/io.py",
            "def load(path):\n"
            "    try:\n"
            "        return open(path).read()\n"
            "    except Exception:\n"
            "        pass\n",
        )
        assert codes(report) == ["ECG005"]

    def test_decoder_outside_scope_is_quiet(self, tmp_path):
        report = lint_one(
            tmp_path, "engine/codec.py",
            "def decode_frame(buf):\n"
            "    return buf[4:]\n",
        )
        assert codes(report) == []


class TestECG006Serialization:
    def test_flags_pickle_import_and_calls(self, tmp_path):
        report = lint_one(
            tmp_path, "cluster/bad.py",
            "import pickle\n\n\n"
            "def save(obj):\n"
            "    return pickle.dumps(obj)\n",
        )
        assert codes(report) == ["ECG006", "ECG006"]

    def test_flags_eval_and_allow_pickle(self, tmp_path):
        report = lint_one(
            tmp_path, "core/bad.py",
            "import numpy as np\n\n\n"
            "def load(path, expr):\n"
            "    eval(expr)\n"
            "    return np.load(path, allow_pickle=True)\n",
        )
        assert codes(report) == ["ECG006", "ECG006"]

    def test_plain_np_load_is_clean(self, tmp_path):
        report = lint_one(
            tmp_path, "core/good.py",
            "import numpy as np\n\n\n"
            "def load(path):\n"
            "    return np.load(path, allow_pickle=False)\n",
        )
        assert codes(report) == []


class TestECG007ConfigDrift:
    def test_flags_unvalidated_undocumented_field(self, tmp_path):
        report = lint_one(
            tmp_path, "core/bad.py",
            "from dataclasses import dataclass\n\n\n"
            "@dataclass\n"
            "class SweepConfig:\n"
            "    '''A config.\n\n    Attributes:\n"
            "        rate: documented and validated.\n    '''\n\n"
            "    rate: float = 0.1\n"
            "    depth: int = 2\n\n"
            "    def __post_init__(self):\n"
            "        if self.rate <= 0:\n"
            "            raise ValueError('rate must be positive')\n",
        )
        # depth: missing from docstring AND from __post_init__.
        assert codes(report) == ["ECG007", "ECG007"]

    def test_validated_documented_fields_are_clean(self, tmp_path):
        report = lint_one(
            tmp_path, "core/good.py",
            "from dataclasses import dataclass\n\n\n"
            "@dataclass\n"
            "class SweepConfig:\n"
            "    '''A config.\n\n    Attributes:\n"
            "        rate: learning rate.\n"
            "        verbose: chatty mode.\n    '''\n\n"
            "    rate: float = 0.1\n"
            "    verbose: bool = False\n\n"
            "    def __post_init__(self):\n"
            "        if self.rate <= 0:\n"
            "            raise ValueError('rate must be positive')\n",
        )
        # bool fields are exempt from validation (but not from docs).
        assert codes(report) == []

    def test_non_config_dataclass_is_quiet(self, tmp_path):
        report = lint_one(
            tmp_path, "core/other.py",
            "from dataclasses import dataclass\n\n\n"
            "@dataclass\n"
            "class Snapshot:\n"
            "    epoch: int = 0\n",
        )
        assert codes(report) == []


class TestPragmas:
    def test_trailing_pragma_suppresses_with_reason(self, tmp_path):
        report = lint_one(
            tmp_path, "engine/ok.py",
            "def f(channels):\n"
            "    for k, ch in channels.items():  "
            "# ecg: ignore[ECG003] plan order is canonical here\n"
            "        ch.send()\n",
        )
        assert codes(report) == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0].reason == "plan order is canonical here"
        assert report.exit_code == 0

    def test_standalone_pragma_applies_to_next_line(self, tmp_path):
        report = lint_one(
            tmp_path, "engine/ok2.py",
            "def f(channels):\n"
            "    # ecg: ignore[ECG003] plan order is canonical here\n"
            "    for k, ch in channels.items():\n"
            "        ch.send()\n",
        )
        assert codes(report) == []
        assert len(report.suppressed) == 1

    def test_pragma_without_reason_is_ecg000(self, tmp_path):
        report = lint_one(
            tmp_path, "engine/bad.py",
            "def f(channels):\n"
            "    for k, ch in channels.items():  # ecg: ignore[ECG003]\n"
            "        ch.send()\n",
        )
        # The malformed pragma suppresses nothing: the ECG003 stands and
        # the pragma itself is flagged.
        assert sorted(codes(report)) == ["ECG000", "ECG003"]
        assert report.exit_code == 1

    def test_stale_pragma_is_ecg000(self, tmp_path):
        report = lint_one(
            tmp_path, "engine/stale.py",
            "X = 1  # ecg: ignore[ECG003] nothing fires here\n",
        )
        assert codes(report) == ["ECG000"]

    def test_pragma_in_docstring_is_text_not_suppression(self):
        pragmas = parse_pragmas(
            '"""Docs quoting # ecg: ignore[ECG001] example."""\n'
            "Y = 2  # ecg: ignore[ECG001] real one\n"
        )
        assert len(pragmas) == 1
        assert pragmas[0].line == 2
        assert not pragmas[0].standalone

    def test_wrong_code_pragma_does_not_suppress(self, tmp_path):
        report = lint_one(
            tmp_path, "engine/wrong.py",
            "def f(channels):\n"
            "    for k, ch in channels.items():  "
            "# ecg: ignore[ECG001] wrong rule named\n"
            "        ch.send()\n",
        )
        # ECG003 stands; the ECG001 pragma is stale on that line.
        assert sorted(codes(report)) == ["ECG000", "ECG003"]


class TestSelectIgnoreAndFormats:
    SOURCE = (
        "import pickle\n"
        "import time\n\n\n"
        "def f():\n"
        "    return time.perf_counter()\n"
    )

    def test_select_narrows_rules(self, tmp_path):
        report = lint_one(
            tmp_path, "engine/multi.py", self.SOURCE, select=["ECG006"],
        )
        assert codes(report) == ["ECG006"]

    def test_ignore_drops_rules(self, tmp_path):
        report = lint_one(
            tmp_path, "engine/multi.py", self.SOURCE, ignore=["ECG001"],
        )
        assert codes(report) == ["ECG006"]

    def test_select_does_not_stale_other_rule_pragmas(self, tmp_path):
        # A pragma for a rule excluded by --select is out of scope, not
        # stale: narrowing a run must never manufacture ECG000 findings
        # (regression: `repro lint src --select ECG003` flagged the
        # sanctioned ECG006 pragmas in cluster/nfs.py as stale).
        report = lint_one(
            tmp_path, "cluster/ok.py",
            "import pickle  # ecg: ignore[ECG006] in-process only\n",
            select=["ECG003"],
        )
        assert codes(report) == []
        assert report.exit_code == 0

    def test_unknown_code_raises(self, tmp_path):
        with pytest.raises(ValueError, match="ECG999"):
            lint_one(tmp_path, "engine/x.py", "X = 1\n", select=["ECG999"])

    def test_json_schema(self, tmp_path):
        report = lint_one(tmp_path, "engine/multi.py", self.SOURCE)
        payload = json.loads(format_json(report))
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert payload["exit_code"] == 1
        assert payload["counts"] == {"active": 2, "suppressed": 0}
        assert {r["code"] for r in payload["rules"]} == {
            f"ECG00{i}" for i in range(1, 8)
        }
        for finding in payload["findings"]:
            assert set(finding) == {
                "code", "message", "path", "line", "col",
                "suppressed", "reason",
            }

    def test_text_format_summary_line(self, tmp_path):
        report = lint_one(tmp_path, "engine/clean.py", "X = 1\n")
        text = format_text(report)
        assert "checked 1 files with 7 rules: 0 finding(s)" in text

    def test_syntax_error_is_ecg000(self, tmp_path):
        report = lint_one(tmp_path, "engine/broken.py", "def f(:\n")
        assert codes(report) == ["ECG000"]
        assert report.exit_code == 1


class TestCLI:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        write_module(tmp_path, "engine/clean.py", "X = 1\n")
        rc = main(["lint", str(tmp_path)])
        assert rc == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        write_module(
            tmp_path, "engine/bad.py",
            "import time\nT = time.time()\n",
        )
        rc = main(["lint", str(tmp_path)])
        assert rc == 1
        assert "ECG001" in capsys.readouterr().out

    def test_exit_two_on_unknown_rule(self, tmp_path, capsys):
        write_module(tmp_path, "engine/clean.py", "X = 1\n")
        rc = main(["lint", str(tmp_path), "--select", "ECG999"])
        assert rc == 2

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        rc = main(["lint", str(tmp_path / "nope")])
        assert rc == 2

    def test_json_artifact_out(self, tmp_path, capsys):
        write_module(
            tmp_path, "engine/bad.py",
            "import time\nT = time.time()\n",
        )
        artifact = tmp_path / "out" / "lint.json"
        rc = main([
            "lint", str(tmp_path / "repro"),
            "--format", "json", "--out", str(artifact),
        ])
        assert rc == 1
        payload = json.loads(artifact.read_text())
        assert payload["exit_code"] == 1
        assert payload["counts"]["active"] == 1


class TestRepoInvariantsPinned:
    """Regression pins for the concrete bugs this rule set surfaced."""

    def test_src_tree_lints_clean(self):
        report = run_lint([Path(__file__).parent.parent / "src"])
        assert codes(report) == [], format_text(report)
        # The sanctioned exceptions stay visible as reasoned pragmas.
        assert report.suppressed, "expected reasoned pragmas in src/"
        assert all(f.reason for f in report.suppressed)

    def test_supervisor_ships_versions_in_sorted_order(self):
        # The stale-kernel ship loop iterated _shipped_version in dict
        # insertion order, which diverges from worker id order after a
        # membership event; the fix pins sorted(worker_id) order.
        import inspect

        from repro.mp.supervisor import ProcessExecutor

        source = inspect.getsource(ProcessExecutor.on_epoch_start)
        assert "sorted(self._shipped_version.items())" in source

    def test_model_config_rejects_unknown_activation(self):
        from repro.core.config import ModelConfig

        with pytest.raises(ValueError, match="swishy"):
            ModelConfig(activation="swishy")

    def test_ecgraph_config_rejects_out_of_range_bits(self):
        from repro.core.config import ECGraphConfig

        with pytest.raises(ValueError, match="fp_bits"):
            ECGraphConfig(fp_bits=0)
        with pytest.raises(ValueError, match="bp_bits"):
            ECGraphConfig(bp_bits=17)

    def test_ecgraph_config_rejects_unknown_optimizer(self):
        from repro.core.config import ECGraphConfig

        with pytest.raises(ValueError, match="optimizer"):
            ECGraphConfig(optimizer="adamw2")

    def test_fault_config_rejects_negative_seed(self):
        from repro.faults.config import FaultConfig

        with pytest.raises(ValueError, match="seed"):
            FaultConfig(seed=-1)
