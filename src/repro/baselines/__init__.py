"""Baseline systems reimplemented on the shared simulated substrate:
standalone DGL/PyG, DistGNN (delayed aggregation), DistDGL (online
sampling), AGL and AliGraph-FG (ML-centered), plus EC-Graph's own
ablation arms.
"""

from repro.baselines.ml_centered import MLCenteredTrainer, capped_khop_subgraph
from repro.baselines.systems import (
    SYSTEMS,
    default_fanouts,
    run_system,
    system_names,
)

__all__ = [
    "MLCenteredTrainer",
    "capped_khop_subgraph",
    "SYSTEMS",
    "default_fanouts",
    "run_system",
    "system_names",
]
