"""Unit tests for classification metrics."""

import numpy as np
import pytest

from repro.nn.metrics import accuracy, confusion_matrix, f1_scores, macro_f1, micro_f1


class TestAccuracy:
    def test_all_correct(self):
        y = np.array([0, 1, 2])
        assert accuracy(y, y) == 1.0

    def test_half_correct(self):
        assert accuracy(np.array([0, 1]), np.array([0, 0])) == 0.5

    def test_masked(self):
        pred = np.array([0, 1, 2, 0])
        true = np.array([0, 0, 2, 1])
        mask = np.array([True, False, True, False])
        assert accuracy(pred, true, mask) == 1.0

    def test_empty_returns_zero(self):
        assert accuracy(np.array([]), np.array([])) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(3), np.zeros(4))


class TestConfusionMatrix:
    def test_diagonal_for_perfect(self):
        y = np.array([0, 1, 2, 1])
        cm = confusion_matrix(y, y, 3)
        np.testing.assert_array_equal(np.diag(cm), [1, 2, 1])
        assert cm.sum() == 4

    def test_off_diagonal_placement(self):
        # True class 0 predicted as 2 -> row 0, column 2.
        cm = confusion_matrix(np.array([2]), np.array([0]), 3)
        assert cm[0, 2] == 1


class TestF1:
    def test_perfect_f1_is_one(self):
        y = np.array([0, 1, 0, 1])
        np.testing.assert_allclose(f1_scores(y, y, 2), [1.0, 1.0])

    def test_absent_class_scores_zero(self):
        pred = np.array([0, 0])
        true = np.array([0, 0])
        scores = f1_scores(pred, true, 3)
        assert scores[0] == 1.0
        assert scores[1] == 0.0 and scores[2] == 0.0

    def test_micro_equals_accuracy_single_label(self):
        rng = np.random.default_rng(0)
        true = rng.integers(0, 4, 100)
        pred = rng.integers(0, 4, 100)
        assert micro_f1(pred, true, 4) == pytest.approx(accuracy(pred, true))

    def test_macro_penalizes_minority_errors(self):
        # 90 of class 0 correct, 10 of class 1 all wrong.
        true = np.array([0] * 90 + [1] * 10)
        pred = np.array([0] * 100)
        assert micro_f1(pred, true, 2) == pytest.approx(0.9)
        assert macro_f1(pred, true, 2) < 0.6
