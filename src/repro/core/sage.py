"""Distributed GraphSAGE (mean aggregator, concatenation variant).

The paper evaluates GraphSAGE alongside GCN, noting both "enjoy similar
performance improvements" from EC-Graph's optimizations. The SAGE layer
keeps separate transforms for the vertex itself and the neighbour mean:

    Z_i = H_i W_self + mean_{j in N(i)} H_j  W_neigh + b

which is the concatenation form ``[H_i || mean] W`` written with the
weight matrix split in two. The halo exchange pattern is identical to
GCN — embeddings forward, embedding gradients backward — so every
EC-Graph policy (compression, ReqEC-FP, ResEC-BP, delayed) applies
unchanged.

The layer math lives in :class:`repro.engine.backends.SAGEBackend`;
``SAGETrainer`` is the facade that selects it, sharing the staged
forward/backward plumbing with GCN and GAT.
"""

from __future__ import annotations

from repro.core.trainer import ECGraphTrainer
from repro.engine import SAGEBackend
from repro.engine.backends import self_weight_name

__all__ = ["SAGETrainer", "self_weight_name"]


class SAGETrainer(ECGraphTrainer):
    """Full-batch distributed GraphSAGE-mean training.

    ``weight_name(l)`` holds ``W_neigh`` and :func:`self_weight_name`
    holds ``W_self``; the base setup (row normalization is selected
    automatically for ``model='sage'``) provides the local mean
    aggregation rows, and the backend adds the transposed-weight rows
    needed by the asymmetric backward aggregation.
    """

    def setup(self) -> None:
        if self._setup_done:
            return
        if self.model_config.model != "sage":
            raise ValueError(
                "SAGETrainer requires ModelConfig(model='sage'); got "
                f"{self.model_config.model!r}"
            )
        super().setup()

    def _make_backend(self) -> SAGEBackend:
        return SAGEBackend()

    def _sage_layer_forward(self, state, h_cat, w_self, w_neigh, bias,
                            is_last: bool):
        """Compatibility shim over the backend's layer kernel."""
        return self._backend.sage_layer_forward(
            state, h_cat, w_self, w_neigh, bias, is_last=is_last
        )
