"""Regression tests for execution-resource teardown.

The original bug: :class:`~repro.engine.transport.HaloTransport` lazily
creates a ``ThreadPoolExecutor`` for the ``exchange_threads`` fan-out,
but an exception escaping mid-epoch (fault abort, diverged watchdog)
left the pool running — every failed run stranded four ``nac`` threads.
``TrainerCore.run_epoch`` now owns teardown via try/finally semantics
(:meth:`~repro.engine.core.TrainerCore.shutdown` on any
``BaseException``), and the trainer facade exposes ``close()`` /
context-manager support on top of it.
"""

from __future__ import annotations

import threading

import pytest

from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.trainer import ECGraphTrainer, _reset_thread_warning
from repro.graph.generators import GraphSpec, generate_graph


@pytest.fixture(scope="module")
def graph():
    return generate_graph(GraphSpec(
        name="shutdown", num_vertices=72, avg_degree=5.0, feature_dim=8,
        num_classes=3, homophily=0.9, feature_noise=0.8,
        train=30, val=12, test=24, seed=13,
    ))


def _nac_threads() -> list[threading.Thread]:
    return [
        t for t in threading.enumerate()
        if t.name.startswith("nac") and t.is_alive()
    ]


def _threaded_trainer(graph):
    _reset_thread_warning()
    trainer = ECGraphTrainer(
        graph, ModelConfig(num_layers=2, hidden_dim=16),
        ClusterSpec(num_workers=3, num_servers=1),
        ECGraphConfig(
            seed=0, halo_buffer_pool=True, exchange_threads=4,
        ),
    )
    with pytest.warns(RuntimeWarning, match="GIL"):
        trainer.setup()
    return trainer


class TestFailingEpochStrandsNoThreads:
    def test_exception_mid_epoch_tears_down_the_pool(self, graph):
        assert _nac_threads() == []
        trainer = _threaded_trainer(graph)
        trainer.run_epoch(0)
        assert _nac_threads(), "fan-out pool should be live mid-training"

        boom = RuntimeError("injected mid-epoch failure")

        def explode(*args, **kwargs):
            raise boom

        trainer.engine.backward.run = explode
        with pytest.raises(RuntimeError, match="injected"):
            trainer.run_epoch(1)
        assert _nac_threads() == []

    def test_clean_close_tears_down_the_pool(self, graph):
        trainer = _threaded_trainer(graph)
        trainer.run_epoch(0)
        assert _nac_threads()
        trainer.close()
        assert _nac_threads() == []
        trainer.close()  # idempotent

    def test_pool_recreates_after_mid_training_shutdown(self, graph):
        # shutdown() mid-training is legal on the sync path: the pool
        # re-creates lazily on the next exchange.
        trainer = _threaded_trainer(graph)
        first = trainer.run_epoch(0).loss
        trainer.engine.shutdown()
        assert _nac_threads() == []
        second = trainer.run_epoch(1).loss
        assert first == first and second == second  # not NaN
        assert _nac_threads()
        trainer.close()
        assert _nac_threads() == []
