"""Synthetic attributed-graph generators.

The paper's experiments run on public graphs (Cora, Pubmed, Reddit,
OGBN-Products, OGBN-Papers) that cannot be downloaded in this offline
environment, so we generate graphs with matched statistics instead (see
DESIGN.md section 2). GCN behaviour on these benchmarks is driven by

* **homophily** — most edges connect same-class vertices; this is what a
  localized spectral convolution exploits,
* **degree** — the paper's key axis: high-degree graphs (Reddit, 492) are
  far more sensitive to message quantization than sparse ones (Cora, 3.9),
* **feature informativeness** — noisy class-conditional features.

The generator therefore plants a community structure (a degree-corrected
stochastic block model) and attaches Gaussian class-centroid features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.attributed import AttributedGraph, make_split_masks
from repro.graph.csr import from_edge_list

__all__ = ["GraphSpec", "generate_graph", "planted_partition_edges",
           "class_features", "power_law_degrees"]


@dataclass(frozen=True)
class GraphSpec:
    """Parameters for one synthetic attributed graph.

    Attributes:
        name: Dataset name used in reports.
        num_vertices: Vertex count ``n``.
        avg_degree: Target mean (undirected) degree; the generated directed
            graph stores both arcs, so ``num_edges ~ n * avg_degree``.
        feature_dim: Dimensionality of ``X_V``.
        num_classes: Number of planted communities / label classes.
        homophily: Probability that a sampled edge stays inside the class.
        feature_noise: Std-dev of the Gaussian noise added to the class
            centroid for each vertex (centroids have unit-ish norm).
        power_law: If > 0, degrees follow a Pareto-like distribution with
            this shape parameter (smaller = heavier tail); 0 gives
            near-uniform degrees.
        label_noise: Fraction of vertices whose *observed* label is
            resampled uniformly at random. Structure and features follow
            the true labels, so this sets an irreducible accuracy ceiling
            of ``1 - label_noise * (1 - 1/num_classes)`` — the knob used
            to match each paper dataset's published test accuracy.
        train / val / test: Split sizes (vertex counts).
        seed: Generator seed; two calls with equal specs give equal graphs.
    """

    name: str
    num_vertices: int
    avg_degree: float
    feature_dim: int
    num_classes: int
    homophily: float = 0.8
    feature_noise: float = 1.0
    power_law: float = 0.0
    label_noise: float = 0.0
    train: int = 0
    val: int = 0
    test: int = 0
    seed: int = 0

    def __post_init__(self):
        if self.num_vertices <= 1:
            raise ValueError("need at least two vertices")
        if not 0.0 <= self.homophily <= 1.0:
            raise ValueError("homophily must be in [0, 1]")
        if self.num_classes < 2:
            raise ValueError("need at least two classes")
        if self.avg_degree <= 0:
            raise ValueError("avg_degree must be positive")
        if not 0.0 <= self.label_noise < 1.0:
            raise ValueError("label_noise must be in [0, 1)")


def power_law_degrees(
    num_vertices: int,
    avg_degree: float,
    shape: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample integer target degrees with a heavy-tailed distribution.

    A Pareto sample is rescaled to the requested mean and clipped to
    ``[1, num_vertices - 1]``. ``shape`` around 1.5-2.5 resembles social
    graphs; larger shapes concentrate the distribution.
    """
    if shape <= 0:
        raise ValueError("shape must be positive")
    raw = rng.pareto(shape, size=num_vertices) + 1.0
    scaled = raw * (avg_degree / raw.mean())
    return np.clip(np.round(scaled), 1, num_vertices - 1).astype(np.int64)


def planted_partition_edges(
    labels: np.ndarray,
    degrees: np.ndarray,
    homophily: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample undirected edges from a degree-corrected planted partition.

    Each vertex v draws ``degrees[v]`` neighbour stubs; each stub picks a
    same-class partner with probability ``homophily`` and a uniformly random
    other vertex otherwise. Self-loops and duplicate arcs are dropped. The
    returned ``(m, 2)`` array contains each undirected edge once with
    ``src < dst``.
    """
    n = labels.shape[0]
    num_classes = int(labels.max()) + 1
    members = [np.flatnonzero(labels == c) for c in range(num_classes)]
    src_list = []
    dst_list = []
    # The expected undirected edge count is sum(degrees)/2: each stub
    # creates one endpoint of an undirected edge.
    stubs = np.maximum(degrees // 2, 1)
    for v in range(n):
        k = int(stubs[v])
        same = rng.random(k) < homophily
        partners = np.empty(k, dtype=np.int64)
        n_same = int(same.sum())
        if n_same:
            pool = members[labels[v]]
            partners[same] = pool[rng.integers(0, pool.size, size=n_same)]
        n_diff = k - n_same
        if n_diff:
            partners[~same] = rng.integers(0, n, size=n_diff)
        keep = partners != v
        src_list.append(np.full(int(keep.sum()), v, dtype=np.int64))
        dst_list.append(partners[keep])
    src = np.concatenate(src_list) if src_list else np.empty(0, dtype=np.int64)
    dst = np.concatenate(dst_list) if dst_list else np.empty(0, dtype=np.int64)
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    keys = lo * n + hi
    _, keep_idx = np.unique(keys, return_index=True)
    return np.stack([lo[keep_idx], hi[keep_idx]], axis=1)


def class_features(
    labels: np.ndarray,
    feature_dim: int,
    noise: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Gaussian class-centroid features, scaled to roughly unit entries.

    Centroids are drawn once per class with entries ``N(0, 1)/sqrt(d)``;
    each vertex gets its class centroid plus ``N(0, noise^2/d)`` noise, so
    feature magnitudes are comparable across dimensionalities and the
    signal-to-noise ratio is governed only by ``noise``.
    """
    num_classes = int(labels.max()) + 1
    scale = 1.0 / np.sqrt(feature_dim)
    centroids = rng.standard_normal((num_classes, feature_dim)) * scale
    features = centroids[labels] + rng.standard_normal(
        (labels.shape[0], feature_dim)
    ) * (noise * scale)
    return features.astype(np.float32)


def generate_graph(spec: GraphSpec) -> AttributedGraph:
    """Generate the attributed graph described by ``spec``.

    The output adjacency is symmetric (both arcs stored), which matches the
    undirected citation/social graphs of the paper's evaluation.
    """
    rng = np.random.default_rng(spec.seed)
    labels = rng.integers(0, spec.num_classes, size=spec.num_vertices)
    # Guarantee every class is inhabited so the classifier head is well posed.
    labels[:spec.num_classes] = np.arange(spec.num_classes)

    if spec.power_law > 0:
        degrees = power_law_degrees(
            spec.num_vertices, spec.avg_degree, spec.power_law, rng
        )
    else:
        jitter = rng.integers(-1, 2, size=spec.num_vertices)
        degrees = np.clip(
            np.round(spec.avg_degree + jitter), 1, spec.num_vertices - 1
        ).astype(np.int64)

    undirected = planted_partition_edges(labels, degrees, spec.homophily, rng)
    both_arcs = np.concatenate([undirected, undirected[:, ::-1]], axis=0)
    adjacency = from_edge_list(both_arcs, spec.num_vertices, deduplicate=True)

    features = class_features(labels, spec.feature_dim, spec.feature_noise, rng)

    observed_labels = labels
    if spec.label_noise > 0.0:
        observed_labels = labels.copy()
        flip = rng.random(spec.num_vertices) < spec.label_noise
        observed_labels[flip] = rng.integers(
            0, spec.num_classes, size=int(flip.sum())
        )

    train = spec.train or max(spec.num_classes * 20, spec.num_vertices // 10)
    val = spec.val or max(spec.num_vertices // 20, spec.num_classes)
    test = spec.test or max(spec.num_vertices // 5, spec.num_classes)
    total = train + val + test
    if total > spec.num_vertices:
        # Shrink proportionally; tiny graphs in unit tests hit this path.
        ratio = spec.num_vertices / (total + 1)
        train = max(int(train * ratio), 1)
        val = max(int(val * ratio), 1)
        test = max(int(test * ratio), 1)
    masks = make_split_masks(spec.num_vertices, train, val, test, rng)

    return AttributedGraph(
        adjacency=adjacency,
        features=features,
        labels=observed_labels,
        train_mask=masks[0],
        val_mask=masks[1],
        test_mask=masks[2],
        num_classes=spec.num_classes,
        name=spec.name,
        meta={
            "generator": "planted_partition",
            "homophily": spec.homophily,
            "power_law": spec.power_law,
            "label_noise": spec.label_noise,
            "seed": spec.seed,
            "target_avg_degree": spec.avg_degree,
        },
    )
