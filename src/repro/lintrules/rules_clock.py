"""ECG001 — the simulated cluster clock is the only time oracle.

Epoch timings in EC-Graph come from the :class:`NetworkModel`'s modelled
transfer/compute seconds, not from the host's wall clock: that is what
makes runs reproducible and lets the golden configs pin modelled epoch
seconds bit-for-bit. A stray ``time.time()`` or ``perf_counter()`` read
inside the engine, the multiprocess backend, or the policy core leaks
host jitter into results (or, worse, into control flow).

The one sanctioned seam is :func:`repro.obs.tracing.monotonic_now` —
real wall time measured *around* codec work and then charged into the
simulated clock after dividing by ``codec_speedup`` — plus the
observability layer itself (``obs/``), which exists to measure the
host. This rule therefore flags direct wall-clock reads in ``engine/``,
``mp/`` and ``core/``:

* attribute calls: ``time.time``, ``time.perf_counter``,
  ``time.monotonic``, ``time.process_time`` (and their ``_ns`` twins),
  ``datetime.now``/``utcnow``/``today``;
* ``from time import perf_counter``-style imports that smuggle the
  clock in under a local name.

``time.sleep`` is deliberately not flagged (it delays, it does not
measure), and ``monotonic_now`` is the endorsed replacement.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintrules.base import Finding, ModuleInfo, Rule, dotted_name

__all__ = ["WallClockRule"]

_CLOCK_ATTRS = {
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
}
_DATETIME_ATTRS = {"now", "utcnow", "today"}
_SCOPED_PACKAGES = ("engine", "mp", "core")


class WallClockRule(Rule):
    """No wall-clock reads in ``engine/``, ``mp/``, ``core/``."""

    code = "ECG001"
    name = "wall-clock-read"
    summary = (
        "wall-clock read in simulated-clock code; route timing through "
        "repro.obs.tracing.monotonic_now and charge it to the NetworkModel"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_packages(*_SCOPED_PACKAGES):
            return
        for node in self.walk(module):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                root, _, attr = name.rpartition(".")
                if root.split(".")[-1] == "time" and attr in _CLOCK_ATTRS:
                    yield module.finding(
                        self.code,
                        f"wall-clock read {name}() in {module.package}/; "
                        "use repro.obs.tracing.monotonic_now (charged via "
                        "codec_speedup) or the NetworkModel clock",
                        node,
                    )
                elif (
                    root.split(".")[-1] in ("datetime", "date")
                    and attr in _DATETIME_ATTRS
                ):
                    yield module.finding(
                        self.code,
                        f"wall-clock read {name}() in {module.package}/; "
                        "the simulated NetworkModel clock is the time oracle",
                        node,
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time" and node.level == 0:
                    clocks = [
                        alias.name for alias in node.names
                        if alias.name in _CLOCK_ATTRS
                    ]
                    if clocks:
                        yield module.finding(
                            self.code,
                            "importing wall clocks from time "
                            f"({', '.join(clocks)}) in {module.package}/; "
                            "use repro.obs.tracing.monotonic_now",
                            node,
                        )
