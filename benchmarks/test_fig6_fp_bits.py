"""Fig. 6 — forward-pass compression vs ReqEC-FP at different bit widths.

For each dataset, prints test-accuracy-vs-epoch series for:

* ``Non-cp``   — no compression,
* ``Cp-fp-B``  — compression only (backward stays raw, isolating FP),
* ``ReqEC-FP-B`` — compression with requesting-end compensation.

Expected shape (paper section V-B): low-bit compression alone fails to
converge (dramatically so on high-degree graphs like Reddit), while
ReqEC-FP recovers near-baseline accuracy at the same width; 8-bit
compression converges but later/lower than ReqEC-FP.
"""

from __future__ import annotations

from _helpers import HIDDEN, bench_graph, dataset_header, run_once

from repro.analysis.reporting import format_series, format_table
from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.trainer import ECGraphTrainer

DATASETS = ("cora", "reddit", "ogbn-products")
BITS = (1, 2, 8)
EPOCHS = 60
WORKERS = 6


def _run(graph, hidden, config, name):
    trainer = ECGraphTrainer(
        graph, ModelConfig(num_layers=2, hidden_dim=hidden),
        ClusterSpec(num_workers=WORKERS), config,
    )
    return trainer.train(EPOCHS, name=name)


def _experiment():
    results = {}
    for dataset in DATASETS:
        graph = bench_graph(dataset)
        hidden = HIDDEN[dataset]
        runs = [_run(graph, hidden,
                     ECGraphConfig(fp_mode="raw", bp_mode="raw"), "Non-cp")]
        for bits in BITS:
            runs.append(_run(
                graph, hidden,
                ECGraphConfig(fp_mode="compress", bp_mode="raw",
                              fp_bits=bits, adaptive_bits=False),
                f"Cp-fp-{bits}",
            ))
            runs.append(_run(
                graph, hidden,
                ECGraphConfig(fp_mode="reqec", bp_mode="raw",
                              fp_bits=bits, adaptive_bits=False),
                f"ReqEC-FP-{bits}",
            ))
        results[dataset] = runs
    return results


def test_fig6_fp_bits(benchmark):
    results = run_once(benchmark, _experiment)
    print()
    for dataset, runs in results.items():
        print(f"--- Fig. 6: {dataset} ---")
        print(dataset_header(dataset))
        for run in runs:
            print(format_series(f"{run.name:12s}", run.accuracy_curve()))
        rows = [
            [run.name, run.best_test_accuracy(),
             run.epochs[-1].test_accuracy]
            for run in runs
        ]
        print(format_table(["config", "best acc", "final acc"], rows))
        print()

    # Shape assertions: on the high-degree graph, 1-bit compression alone
    # degrades markedly while ReqEC-FP-1 stays near the baseline.
    reddit = {run.name: run for run in results["reddit"]}
    baseline = reddit["Non-cp"].best_test_accuracy()
    assert reddit["Cp-fp-1"].best_test_accuracy() < baseline - 0.03
    assert reddit["ReqEC-FP-1"].best_test_accuracy() > (
        reddit["Cp-fp-1"].best_test_accuracy()
    )
    assert reddit["ReqEC-FP-1"].best_test_accuracy() > baseline - 0.05

    # Low-degree graphs tolerate aggressive compression (paper: Cora
    # converges with 2 bits).
    cora = {run.name: run for run in results["cora"]}
    assert cora["Cp-fp-2"].best_test_accuracy() > (
        cora["Non-cp"].best_test_accuracy() - 0.10
    )
