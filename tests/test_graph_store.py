"""Unit tests for the graph/feature store layer (``repro.graph.store``):
feature-store backends agree byte-for-byte, the LRU chunk cache evicts
what it promises, the external sorter matches ``np.unique`` on every
path (in-memory and spilled-to-disk), adjacency iteration respects the
edge-bounded block contract, and on-disk stores survive a round trip
through the manifest."""

import json

import numpy as np
import pytest

from repro.graph.attributed import AttributedGraph, make_split_masks
from repro.graph.csr import CSRGraph
from repro.graph.generators import GraphSpec, generate_graph
from repro.graph.normalize import gcn_normalize, row_normalize
from repro.graph.store import (
    ChunkCache,
    ExternalSorter,
    GraphStoreBundle,
    MemoryFeatureStore,
    MemoryGraphStore,
    NormalizedGraphStore,
    as_bundle,
    as_topology,
    memory_bundle,
    open_bundle,
    read_manifest,
    to_mmap_bundle,
)
from repro.graph.store.base import DEFAULT_MAX_BLOCK_EDGES


@pytest.fixture(scope="module")
def graph():
    spec = GraphSpec(
        name="store-test", num_vertices=300, avg_degree=8,
        feature_dim=12, num_classes=4, seed=11,
    )
    return generate_graph(spec)


@pytest.fixture(scope="module")
def mmap_root(graph, tmp_path_factory):
    root = tmp_path_factory.mktemp("store") / "g"
    # Odd chunk size so the last chunk is ragged and row ranges
    # straddle chunk boundaries.
    to_mmap_bundle(graph, root, chunk_vertices=97)
    return root


class TestFeatureStoreBackends:
    """Memory and mmap feature stores expose identical bytes."""

    def test_rows_slice_blocks_match(self, graph, mmap_root):
        mem = MemoryFeatureStore(graph.features)
        disk = open_bundle(mmap_root).feature_store
        assert mem.shape == disk.shape
        assert mem.dtype == disk.dtype
        rng = np.random.default_rng(0)
        ids = rng.integers(0, graph.num_vertices, size=64)
        np.testing.assert_array_equal(mem.rows(ids), disk.rows(ids))
        # A slice crossing the 97-row chunk boundary.
        np.testing.assert_array_equal(mem.slice(90, 110), disk.slice(90, 110))
        np.testing.assert_array_equal(mem.to_array(), disk.to_array())

    def test_iter_blocks_cover_everything_in_order(self, graph, mmap_root):
        disk = open_bundle(mmap_root).feature_store
        cursor = 0
        parts = []
        for start, stop, block in disk.iter_blocks():
            assert start == cursor
            assert block.shape[0] == stop - start
            parts.append(np.asarray(block))
            cursor = stop
        assert cursor == graph.num_vertices
        np.testing.assert_array_equal(np.concatenate(parts), graph.features)

    def test_rows_unsorted_and_duplicate_ids(self, graph, mmap_root):
        disk = open_bundle(mmap_root).feature_store
        ids = np.array([299, 0, 97, 97, 5, 200])
        np.testing.assert_array_equal(disk.rows(ids), graph.features[ids])

    def test_contiguous_ids_are_zero_copy(self, graph):
        # The documented fast path: contiguous ascending ids come back
        # as a view of the resident array, not a gather copy.
        mem = MemoryFeatureStore(graph.features)
        view = mem.rows(np.array([10, 11, 12]))
        assert view.base is graph.features
        gathered = mem.rows(np.array([12, 10]))
        assert gathered.base is not graph.features


class TestChunkCache:
    def test_lru_eviction_and_stats(self):
        loads = []

        def loader(key):
            return lambda: loads.append(key) or np.full(4, key)

        cache = ChunkCache(budget=2)
        cache.get(0, loader(0))
        cache.get(1, loader(1))
        cache.get(0, loader(0))          # hit; 1 becomes LRU
        cache.get(2, loader(2))          # evicts 1
        cache.get(1, loader(1))          # miss again
        assert loads == [0, 1, 2, 1]
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 4
        assert stats["evictions"] >= 2

    def test_drop_all_forces_reload(self):
        cache = ChunkCache(budget=4)
        calls = {"n": 0}

        def loader():
            calls["n"] += 1
            return np.zeros(1)

        cache.get(0, loader)
        cache.drop_all()
        cache.get(0, loader)
        assert calls["n"] == 2


class TestExternalSorter:
    @staticmethod
    def _drain(sorter, unique=True):
        blocks = list(sorter.sorted_blocks(unique=unique))
        if not blocks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(blocks)

    @pytest.mark.parametrize("on_disk", [False, True])
    def test_matches_numpy_unique(self, on_disk, tmp_path):
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 5_000, size=20_000)
        workdir = tmp_path / "runs" if on_disk else None
        # Tiny run/merge blocks force many spills and multi-level merges.
        sorter = ExternalSorter(workdir=workdir, run_size=777, merge_block=256)
        for start in range(0, keys.size, 1_000):
            sorter.append(keys[start:start + 1_000])
        np.testing.assert_array_equal(self._drain(sorter), np.unique(keys))

    def test_duplicates_kept_when_not_unique(self, tmp_path):
        keys = np.array([5, 3, 5, 1, 3, 5], dtype=np.int64)
        sorter = ExternalSorter(workdir=tmp_path, run_size=2, merge_block=2)
        sorter.append(keys)
        out = self._drain(sorter, unique=False)
        np.testing.assert_array_equal(out, np.sort(keys))

    def test_empty_and_single_run(self):
        assert self._drain(ExternalSorter()).size == 0
        sorter = ExternalSorter()
        sorter.append(np.array([2, 2, 1]))
        np.testing.assert_array_equal(self._drain(sorter), [1, 2])

    def test_single_use(self):
        sorter = ExternalSorter()
        sorter.append(np.array([1]))
        self._drain(sorter)
        with pytest.raises(RuntimeError):
            list(sorter.sorted_blocks())
        with pytest.raises(RuntimeError):
            sorter.append(np.array([2]))

    def test_blocks_are_sorted_and_bounded(self, tmp_path):
        rng = np.random.default_rng(3)
        sorter = ExternalSorter(workdir=tmp_path, run_size=500, merge_block=128)
        sorter.append(rng.integers(0, 10_000, size=5_000))
        previous = None
        for block in sorter.sorted_blocks():
            assert np.all(np.diff(block) > 0)
            if previous is not None:
                assert block[0] > previous
            previous = int(block[-1])


class TestAdjacencyIteration:
    def test_blocks_reassemble_csr(self, graph, mmap_root):
        for store in (
            MemoryGraphStore(graph.adjacency),
            open_bundle(mmap_root).adjacency,
        ):
            cursor = 0
            indices_parts = []
            for start, stop, indices, _weights in store.iter_adjacency():
                assert start == cursor
                expected = int(store.indptr[stop] - store.indptr[start])
                assert indices.shape[0] == expected
                indices_parts.append(np.asarray(indices))
                cursor = stop
            assert cursor == graph.num_vertices
            np.testing.assert_array_equal(
                np.concatenate(indices_parts), graph.adjacency.indices
            )

    def test_blocks_respect_edge_bound(self, graph):
        store = MemoryGraphStore(graph.adjacency)
        degrees = store.degrees()
        for start, stop, indices, _ in store.iter_adjacency():
            # A block may exceed the bound only when a single row does.
            if stop - start > 1:
                assert indices.shape[0] <= max(
                    DEFAULT_MAX_BLOCK_EDGES, int(degrees[start:stop].max())
                )

    def test_edge_bounded_spans_partition_range(self, graph):
        store = MemoryGraphStore(graph.adjacency)
        spans = list(store._edge_bounded_spans(0, graph.num_vertices, 64))
        assert spans[0][0] == 0
        assert spans[-1][1] == graph.num_vertices
        for (_, a_hi), (b_lo, _) in zip(spans, spans[1:]):
            assert a_hi == b_lo
        for lo, hi in spans:
            edges = int(store.indptr[hi] - store.indptr[lo])
            assert edges <= 64 or hi - lo == 1

    def test_neighbors_match_csr(self, graph, mmap_root):
        store = open_bundle(mmap_root).adjacency
        for v in (0, 96, 97, 150, graph.num_vertices - 1):
            np.testing.assert_array_equal(
                store.neighbors(v), graph.adjacency.neighbors(v)
            )


class TestNormalizedStore:
    @pytest.mark.parametrize("scheme,reference", [
        ("gcn", gcn_normalize), ("row", row_normalize),
    ])
    def test_matches_eager_normalization(self, graph, scheme, reference):
        store = NormalizedGraphStore(
            MemoryGraphStore(graph.adjacency), scheme=scheme
        )
        expected = reference(graph.adjacency, add_self_loops=True)
        got = store.to_csr()
        np.testing.assert_array_equal(got.indptr, expected.indptr)
        np.testing.assert_array_equal(got.indices, expected.indices)
        np.testing.assert_allclose(got.weights, expected.weights, rtol=1e-12)

    def test_unknown_scheme(self, graph):
        with pytest.raises(KeyError, match="unknown normalization"):
            NormalizedGraphStore(MemoryGraphStore(graph.adjacency), "bad")


class TestBundle:
    def test_materialize_roundtrip(self, graph):
        out = memory_bundle(graph).materialize()
        np.testing.assert_array_equal(
            out.adjacency.indptr, graph.adjacency.indptr
        )
        np.testing.assert_array_equal(
            out.adjacency.indices, graph.adjacency.indices
        )
        np.testing.assert_array_equal(out.features, graph.features)
        np.testing.assert_array_equal(out.labels, graph.labels)
        np.testing.assert_array_equal(out.train_mask, graph.train_mask)
        assert out.num_classes == graph.num_classes

    def test_mmap_materialize_matches_source(self, graph, mmap_root):
        out = open_bundle(mmap_root).materialize()
        np.testing.assert_array_equal(out.features, graph.features)
        np.testing.assert_array_equal(
            out.adjacency.indices, graph.adjacency.indices
        )
        np.testing.assert_array_equal(out.val_mask, graph.val_mask)

    def test_split_sizes_match_masks(self, graph, mmap_root):
        bundle = open_bundle(mmap_root)
        assert bundle.split_sizes() == (
            int(graph.train_mask.sum()),
            int(graph.val_mask.sum()),
            int(graph.test_mask.sum()),
        )

    def test_as_bundle_and_as_topology_accept_everything(self, graph):
        bundle = as_bundle(graph)
        assert isinstance(bundle, GraphStoreBundle)
        assert as_bundle(bundle) is bundle
        topo = as_topology(graph.adjacency)
        assert topo.num_edges == graph.adjacency.num_edges
        assert as_topology(topo) is topo


class TestManifest:
    def test_read_manifest_roundtrip(self, mmap_root):
        manifest = read_manifest(mmap_root)
        assert manifest["num_vertices"] == 300
        assert manifest["chunk_vertices"] == 97
        assert "features" in manifest["columns"]

    def test_missing_store(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_manifest(tmp_path / "nope")

    def test_corrupt_manifest_rejected(self, graph, tmp_path):
        root = tmp_path / "g"
        to_mmap_bundle(graph, root, chunk_vertices=128)
        manifest_path = root / "manifest.json"
        body = json.loads(manifest_path.read_text())
        body["magic"] = "NOTASTORE"
        manifest_path.write_text(json.dumps(body))
        with pytest.raises(ValueError, match="magic"):
            read_manifest(root)


class TestSharedStoreMapNpy:
    def test_workers_see_store_chunk_without_copy(self, graph, mmap_root):
        from repro.mp.store import SharedStore

        chunk = next(iter((mmap_root).rglob("*.npy")))
        expected = np.load(chunk)
        with SharedStore(create=True) as shared:
            view = shared.map_npy("chunk0", chunk)
            assert isinstance(view, np.memmap)
            np.testing.assert_array_equal(view, expected)
            again = shared.attach("chunk0")
            np.testing.assert_array_equal(again, expected)


def _tiny_graph():
    indptr = np.array([0, 2, 3, 4], dtype=np.int64)
    indices = np.array([1, 2, 0, 0], dtype=np.int64)
    adjacency = CSRGraph(indptr, indices)
    features = np.arange(6, dtype=np.float32).reshape(3, 2)
    labels = np.array([0, 1, 0])
    train, val, test = make_split_masks(3, 1, 1, 1, np.random.default_rng(0))
    return AttributedGraph(
        adjacency=adjacency, features=features, labels=labels,
        train_mask=train, val_mask=val, test_mask=test,
        num_classes=2, name="tiny",
    )


class TestDegenerateShapes:
    def test_single_chunk_store(self, tmp_path):
        graph = _tiny_graph()
        bundle = to_mmap_bundle(graph, tmp_path / "g", chunk_vertices=1024)
        np.testing.assert_array_equal(
            bundle.feature_store.to_array(), graph.features
        )
        np.testing.assert_array_equal(
            bundle.adjacency.to_csr().indices, graph.adjacency.indices
        )

    def test_chunk_per_vertex(self, tmp_path):
        graph = _tiny_graph()
        bundle = to_mmap_bundle(graph, tmp_path / "g", chunk_vertices=1)
        np.testing.assert_array_equal(
            bundle.feature_store.rows(np.array([2, 0])), graph.features[[2, 0]]
        )
        blocks = list(bundle.adjacency.iter_adjacency())
        np.testing.assert_array_equal(
            np.concatenate([b[2] for b in blocks]), graph.adjacency.indices
        )
