"""Save/load attributed graphs as ``.npz`` archives.

In the paper, workers load their subgraphs from NFS after partitioning.
The simulated NFS (:mod:`repro.cluster.nfs`) stores graphs in this format,
and examples use it to cache generated datasets between runs.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.graph.attributed import AttributedGraph
from repro.graph.csr import CSRGraph

__all__ = ["save_graph", "load_graph"]

_FORMAT_VERSION = 1


def save_graph(graph: AttributedGraph, path: str | Path) -> None:
    """Serialize ``graph`` to a compressed ``.npz`` archive at ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format_version": np.int64(_FORMAT_VERSION),
        "indptr": graph.adjacency.indptr,
        "indices": graph.adjacency.indices,
        "features": graph.features,
        "labels": graph.labels,
        "train_mask": graph.train_mask,
        "val_mask": graph.val_mask,
        "test_mask": graph.test_mask,
        "num_classes": np.int64(graph.num_classes),
        "name": np.str_(graph.name),
        "meta_json": np.str_(json.dumps(graph.meta, default=str)),
    }
    if graph.adjacency.weights is not None:
        payload["weights"] = graph.adjacency.weights
    np.savez_compressed(path, **payload)


def load_graph(path: str | Path) -> AttributedGraph:
    """Load a graph previously written by :func:`save_graph`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"graph archive not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported graph archive version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        weights = archive["weights"] if "weights" in archive.files else None
        adjacency = CSRGraph(archive["indptr"], archive["indices"], weights)
        return AttributedGraph(
            adjacency=adjacency,
            features=archive["features"],
            labels=archive["labels"],
            train_mask=archive["train_mask"],
            val_mask=archive["val_mask"],
            test_mask=archive["test_mask"],
            num_classes=int(archive["num_classes"]),
            name=str(archive["name"]),
            meta=json.loads(str(archive["meta_json"])),
        )
