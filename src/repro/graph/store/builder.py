"""StoreBuilder: one writer seam over the memory and mmap backends.

The streaming generators produce per-vertex columns (features, labels,
masks) as sequential row blocks and CSR columns as edge-position
scatters; the builder routes both either into resident arrays (memory
backend — the result materializes to a plain
:class:`~repro.graph.attributed.AttributedGraph`-backed bundle) or into
an on-disk chunk directory via
:class:`~repro.graph.store.mmapstore.MmapStoreWriter`.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graph.attributed import AttributedGraph
from repro.graph.csr import CSRGraph
from repro.graph.store.base import GraphStoreBundle
from repro.graph.store.external import ChunkedEdgeArray
from repro.graph.store.memory import memory_bundle
from repro.graph.store.mmapstore import (
    DEFAULT_CHUNK_VERTICES,
    DEFAULT_RESIDENT_BLOCKS,
    MmapStoreWriter,
    open_bundle,
    release_pages,
)

__all__ = ["StoreBuilder"]

_COLUMNS = ("features", "labels", "train_mask", "val_mask", "test_mask")


class _MemoryColumn:
    """Sequential block appender accumulating into one resident array."""

    def __init__(
        self,
        sink: dict[str, np.ndarray],
        component: str,
        dtype: np.dtype | type,
    ) -> None:
        self._sink = sink
        self._component = component
        self._dtype = np.dtype(dtype)
        self._blocks: list[np.ndarray] = []

    def append(self, block: np.ndarray) -> None:
        self._blocks.append(np.ascontiguousarray(block, dtype=self._dtype))

    def close(self) -> None:
        self._sink[self._component] = (
            np.concatenate(self._blocks)
            if self._blocks
            else np.empty(0, dtype=self._dtype)
        )


class StoreBuilder:
    """Assemble one attributed graph into a chosen store backend.

    Args:
        num_vertices: Vertex count of the graph being built.
        backend: ``"memory"`` (default, resident arrays) or ``"mmap"``.
        out_dir: Store directory (required for the mmap backend).
        chunk_vertices: Rows per chunk file (mmap backend).
        max_resident_blocks: LRU budget of the stores returned by
            :meth:`finish` (mmap backend).
    """

    def __init__(
        self,
        num_vertices: int,
        backend: str = "memory",
        out_dir: str | Path | None = None,
        chunk_vertices: int = DEFAULT_CHUNK_VERTICES,
        max_resident_blocks: int = DEFAULT_RESIDENT_BLOCKS,
    ) -> None:
        if backend not in ("memory", "mmap"):
            raise ValueError(f"unknown store backend {backend!r}")
        if backend == "mmap" and out_dir is None:
            raise ValueError("the mmap backend requires out_dir")
        self.backend = backend
        self.num_vertices = int(num_vertices)
        self._max_resident = int(max_resident_blocks)
        self._writer: MmapStoreWriter | None = None
        self._arrays: dict[str, np.ndarray] = {}
        self._indptr: np.ndarray | None = None
        self._index_sink: ChunkedEdgeArray | None = None
        self._weight_sink: ChunkedEdgeArray | None = None
        if backend == "mmap":
            self._writer = MmapStoreWriter(
                out_dir, self.num_vertices, chunk_vertices
            )

    # -- per-vertex columns -------------------------------------------
    def column_writer(
        self,
        component: str,
        row_shape: tuple[int, ...],
        dtype: np.dtype | type,
    ) -> object:
        if self._writer is not None:
            return self._writer.column_writer(component, row_shape, dtype)
        return _MemoryColumn(self._arrays, component, dtype)

    def set_column(self, component: str, array: np.ndarray) -> None:
        """Write one already-resident array (labels, masks) as a column."""
        if self._writer is not None:
            self._writer.write_column(component, array)
        else:
            self._arrays[component] = array

    # -- topology ------------------------------------------------------
    def set_indptr(self, indptr: np.ndarray) -> None:
        self._indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        if self._writer is not None:
            self._writer.set_indptr(self._indptr)

    def indices_sink(self) -> ChunkedEdgeArray:
        if self._indptr is None:
            raise RuntimeError("set_indptr must be called first")
        if self._writer is not None:
            self._index_sink = ChunkedEdgeArray(
                self._writer.edge_chunk_offsets(),
                self._writer.edge_buffers("indices", np.int64),
            )
        else:
            self._index_sink = ChunkedEdgeArray.in_memory(
                int(self._indptr[-1]), np.int64
            )
        return self._index_sink

    def weights_sink(self) -> ChunkedEdgeArray:
        if self._indptr is None:
            raise RuntimeError("set_indptr must be called first")
        if self._writer is not None:
            self._weight_sink = ChunkedEdgeArray(
                self._writer.edge_chunk_offsets(),
                self._writer.edge_buffers("weights", np.float32),
            )
        else:
            self._weight_sink = ChunkedEdgeArray.in_memory(
                int(self._indptr[-1]), np.float32
            )
        return self._weight_sink

    # -- assembly ------------------------------------------------------
    def finish(
        self, num_classes: int, name: str, meta: dict[str, object] | None = None
    ) -> GraphStoreBundle:
        if self._indptr is None or self._index_sink is None:
            raise RuntimeError("topology was never written")
        if self._writer is not None:
            for sink in (self._index_sink, self._weight_sink):
                if sink is None:
                    continue
                sink.flush()
                for buf in sink.buffers:
                    release_pages(buf)
            self._writer.finalize(num_classes, name, meta)
            return open_bundle(
                self._writer.root, max_resident_blocks=self._max_resident
            )
        missing = [c for c in _COLUMNS if c not in self._arrays]
        if missing:
            raise RuntimeError(f"columns never written: {missing}")
        adjacency = CSRGraph(
            self._indptr,
            self._index_sink.buffers[0],
            None
            if self._weight_sink is None
            else self._weight_sink.buffers[0],
        )
        graph = AttributedGraph(
            adjacency=adjacency,
            features=self._arrays["features"],
            labels=self._arrays["labels"],
            train_mask=self._arrays["train_mask"],
            val_mask=self._arrays["val_mask"],
            test_mask=self._arrays["test_mask"],
            num_classes=num_classes,
            name=name,
            meta=dict(meta or {}),
        )
        return memory_bundle(graph)
