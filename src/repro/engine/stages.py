"""The staged training pipeline: plan → forward → backward → optimize → eval.

Each stage is a small object bound to one
:class:`~repro.engine.context.ExchangeContext` and one
:class:`~repro.engine.backends.ModelBackend`; the
:class:`~repro.engine.core.TrainerCore` drives them in order once per
iteration. The stages own everything the architectures share — pulls,
halo exchanges, the loss scan, pushes, Bit-Tuner feedback, telemetry
spans — while the backend supplies the per-layer math, so a new model
plugs in as a backend and a new pipeline step plugs in as a stage (see
``docs/engine.md``).

Span structure and accounting are kept exactly as the monolithic
trainer emitted them: per-layer ``layer``/``kernel`` spans, the
``loss`` span, pulls before halo exchanges within each layer, and the
parameter push inside the ``backward`` phase.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.engine import ClusterRuntime, EpochBreakdown
from repro.core.results import EpochResult
from repro.engine.backends import ModelBackend
from repro.engine.context import ExchangeContext
from repro.engine.transport import HaloTransport

__all__ = [
    "Stage",
    "HaloPlanStage",
    "ForwardStage",
    "BackwardStage",
    "OptimizeStage",
    "EvalStage",
]


class Stage:
    """Base class: a pipeline step bound to one context and backend."""

    def __init__(self, ctx: ExchangeContext, backend: ModelBackend) -> None:
        self.ctx = ctx
        self.backend = backend


class HaloPlanStage(Stage):
    """Per-iteration halo planning: sampling hooks refresh the sampled
    adjacencies and the per-channel exchange subsets before the forward
    pass touches the wire (full-batch backends are a no-op)."""

    def run(self, t: int) -> None:
        self.ctx.executor.on_epoch_start(t)


class ForwardStage(Stage):
    """Layer-by-layer forward pass plus the loss/metric scan.

    Per layer: pull the layer's parameters, fetch the halo embeddings
    through the forward policy, then run the backend's local kernel on
    every worker under its compute clock. After the last layer, the
    softmax cross-entropy scan seeds ``grad_rows`` (scaled by the
    *global* train count so server-side summation is exact) and the
    Bit-Tuner consumes the exchange's predicted-win proportions.
    """

    def run(self, t: int) -> tuple[float, dict[str, tuple[int, int]]]:
        ctx, backend = self.ctx, self.backend
        obs = ctx.telemetry
        num_layers = ctx.params.num_layers
        ctx.executor.begin_iteration()

        for layer in range(1, num_layers + 1):
            with obs.span("layer", layer=layer, direction="fp"):
                names = backend.layer_param_names(layer)
                pulled: dict[int, dict[str, np.ndarray]] = {}
                for state in ctx.active_workers():
                    pulled[state.worker_id] = ctx.servers.pull(
                        state.worker_id, names
                    )

                halos = self._halos(layer, t)

                with obs.span("kernel", layer=layer, direction="fp"):
                    ctx.executor.forward_kernels(
                        t, layer, pulled, halos,
                        is_last=(layer == num_layers),
                    )

        # Loss and metrics from the final logits; gradients are scaled by
        # the *global* train count so server-side summation is exact.
        with obs.span("loss"):
            total_loss, counters = ctx.executor.loss_scan(t)

        ctx.update_tuner()

        summary = {
            split: (correct, count)
            for split, (correct, count) in counters.items()
        }
        return total_loss, summary

    def _halos(self, layer: int, t: int) -> list[np.ndarray]:
        """Halo embeddings feeding ``layer`` (H^{layer-1} remote rows)."""
        ctx, backend = self.ctx, self.backend
        if layer == 1:
            if ctx.config.cache_first_hop:
                return [state.halo_features for state in ctx.workers]
            return ctx.exchange(
                "fp",
                0,
                t,
                rows_of=lambda s: s.features,
                dim=ctx.graph.feature_dim,
                subset=backend.exchange_subset(1, "fp"),
            )
        return ctx.exchange(
            "fp",
            layer - 1,
            t,
            rows_of=lambda s, _l=layer: ctx.executor.layer_rows(s, _l - 1),
            dim=ctx.params.dims[layer - 1],
            subset=backend.exchange_subset(layer, "fp"),
        )


class BackwardStage(Stage):
    """Reverse layer loop; the backend owns each layer's gradient math
    (including its halo exchange — forward-style gradient fetches for
    GCN/SAGE, reverse partial-gradient pushes for GAT)."""

    def run(self, t: int) -> dict[int, dict[str, np.ndarray]]:
        ctx, backend = self.ctx, self.backend
        obs = ctx.telemetry
        grads: dict[int, dict[str, np.ndarray]] = {
            state.worker_id: {} for state in ctx.active_workers()
        }
        for layer in range(ctx.params.num_layers, 0, -1):
            with obs.span("layer", layer=layer, direction="bp"):
                backend.backward_layer(t, layer, grads)
        return grads


class OptimizeStage(Stage):
    """Push every worker's gradient shares and apply the server update."""

    def run(self, grads: dict[int, dict[str, np.ndarray]]) -> None:
        ctx = self.ctx
        for state in ctx.active_workers():
            ctx.servers.push(state.worker_id, grads[state.worker_id])
        ctx.servers.apply_updates()


class EvalStage(Stage):
    """Epoch bookkeeping and exact evaluation.

    ``run`` folds the forward pass's counters into an
    :class:`~repro.core.results.EpochResult` (plus telemetry gauges);
    ``evaluate_exact`` runs the Table-V measurement — one raw-policy
    forward on a scratch runtime so neither traffic accounting nor
    compensation state is disturbed.
    """

    def run(
        self,
        t: int,
        loss: float,
        counters: dict[str, tuple[int, int]],
        breakdown: EpochBreakdown,
    ) -> EpochResult:
        ctx = self.ctx

        def _ratio(split: str) -> float:
            correct, count = counters[split]
            return correct / count if count else 0.0

        telemetry = None
        obs = ctx.telemetry
        if obs.enabled:
            obs.metrics.set_gauge("loss", loss)
            obs.metrics.set_gauge("train_accuracy", _ratio("train"))
            obs.metrics.set_gauge("val_accuracy", _ratio("val"))
            telemetry = obs.end_epoch(t)

        return EpochResult(
            epoch=t,
            loss=loss,
            train_accuracy=_ratio("train"),
            val_accuracy=_ratio("val"),
            test_accuracy=_ratio("test"),
            breakdown=breakdown,
            telemetry=telemetry,
        )

    def evaluate_exact(self) -> dict[str, float]:
        """Accuracy of the current parameters with exact communication."""
        from repro.core.messages import RawPolicy

        ctx, backend = self.ctx, self.backend
        scratch_runtime = ClusterRuntime(ctx.spec)
        scratch_transport = HaloTransport(
            scratch_runtime, ctx.workers, ctx.config.codec_speedup
        )
        raw = RawPolicy()
        num_layers = ctx.params.num_layers

        outputs: list[np.ndarray] = [state.features for state in ctx.workers]
        for layer in range(1, num_layers + 1):
            params = {
                name: ctx.servers.get(name)
                for name in backend.layer_param_names(layer)
            }
            if layer == 1 and ctx.config.cache_first_hop:
                halos = [state.halo_features for state in ctx.workers]
            else:
                halos = scratch_transport.exchange(
                    layer=layer - 1,
                    t=0,
                    rows_of=lambda s: outputs[s.worker_id],
                    policy=raw,
                    category="eval",
                    dim=outputs[0].shape[1],
                )
            new_outputs = []
            for state in ctx.workers:
                h_cat = np.concatenate(
                    [outputs[state.worker_id], halos[state.worker_id]],
                    axis=0,
                )
                new_outputs.append(backend.eval_layer(
                    state, h_cat, params, layer,
                    is_last=(layer == num_layers),
                ))
            outputs = new_outputs

        metrics = {}
        for split, mask_of in (
            ("train", lambda s: s.train_mask),
            ("val", lambda s: s.val_mask),
            ("test", lambda s: s.test_mask),
        ):
            correct = count = 0
            for state in ctx.workers:
                mask = mask_of(state)
                predictions = outputs[state.worker_id].argmax(axis=1)
                correct += int((predictions[mask] == state.labels[mask]).sum())
                count += int(mask.sum())
            metrics[split] = correct / count if count else 0.0
        return metrics
