"""Compressed sparse row (CSR) adjacency storage.

Every subsystem in this repository — partitioners, the cluster engine, the
GNN math and the baselines — shares this one adjacency representation. The
graph is directed; an undirected graph stores both arcs. ``indptr`` and
``indices`` follow the scipy convention: the in/out-neighbours of vertex
``v`` are ``indices[indptr[v]:indptr[v + 1]]``.

The GCN aggregation in the paper (Eq. 2) multiplies by the *transpose* of
the normalized adjacency, so :class:`CSRGraph` keeps optional per-edge
weights and supports cheap transposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["CSRGraph", "from_edge_list", "from_scipy"]


@dataclass
class CSRGraph:
    """A directed graph in CSR form.

    Attributes:
        indptr: ``(n + 1,)`` int64 row pointers.
        indices: ``(m,)`` int32/int64 column ids (edge targets per row).
        weights: Optional ``(m,)`` float32 edge weights aligned with
            ``indices``; ``None`` means all edges weigh 1.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray | None = None
    _sorted_rows: bool = field(default=False, repr=False)

    def __post_init__(self):
        self.indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D")
        if self.indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if self.indptr[-1] != self.indices.shape[0]:
            raise ValueError(
                f"indptr[-1]={self.indptr[-1]} does not match "
                f"{self.indices.shape[0]} stored edges"
            )
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.num_vertices
        ):
            raise ValueError("edge target out of range")
        if self.weights is not None:
            self.weights = np.ascontiguousarray(self.weights, dtype=np.float32)
            if self.weights.shape != self.indices.shape:
                raise ValueError("weights must align with indices")

    # ------------------------------------------------------------------
    # Basic shape queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.indptr.shape[0] - 1

    @property
    def num_edges(self) -> int:
        return self.indices.shape[0]

    @property
    def average_degree(self) -> float:
        n = self.num_vertices
        return self.num_edges / n if n else 0.0

    def degree(self, vertex: int | None = None) -> np.ndarray | int:
        """Out-degree of one vertex, or the full degree vector."""
        if vertex is None:
            return np.diff(self.indptr)
        return int(self.indptr[vertex + 1] - self.indptr[vertex])

    def neighbors(self, vertex: int) -> np.ndarray:
        """View of the neighbour ids of ``vertex`` (do not mutate)."""
        return self.indices[self.indptr[vertex]:self.indptr[vertex + 1]]

    def edge_weights(self, vertex: int) -> np.ndarray:
        """Weights of the edges leaving ``vertex`` (ones if unweighted)."""
        lo, hi = self.indptr[vertex], self.indptr[vertex + 1]
        if self.weights is None:
            return np.ones(hi - lo, dtype=np.float32)
        return self.weights[lo:hi]

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Yield ``(src, dst)`` pairs in row order."""
        for v in range(self.num_vertices):
            for u in self.neighbors(v):
                yield v, int(u)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def transpose(self) -> "CSRGraph":
        """Return the reverse graph (in-neighbour lists), weights carried."""
        n, m = self.num_vertices, self.num_edges
        counts = np.bincount(self.indices, minlength=n)
        indptr_t = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr_t[1:])
        indices_t = np.empty(m, dtype=np.int64)
        weights_t = None if self.weights is None else np.empty(m, dtype=np.float32)
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.indptr))
        order = np.argsort(self.indices, kind="stable")
        indices_t[:] = src[order]
        if weights_t is not None:
            weights_t[:] = self.weights[order]
        return CSRGraph(indptr_t, indices_t, weights_t)

    def with_self_loops(self) -> "CSRGraph":
        """Return a copy with a self-loop added to every vertex.

        Vertices that already have a self-loop are left as-is so repeated
        application is idempotent. Existing weights are kept; new loops get
        weight 1.
        """
        n = self.num_vertices
        has_loop = np.zeros(n, dtype=bool)
        for v in range(n):
            if np.any(self.neighbors(v) == v):
                has_loop[v] = True
        extra = np.count_nonzero(~has_loop)
        if extra == 0:
            return CSRGraph(
                self.indptr.copy(),
                self.indices.copy(),
                None if self.weights is None else self.weights.copy(),
            )
        new_counts = np.diff(self.indptr) + (~has_loop)
        indptr_new = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(new_counts, out=indptr_new[1:])
        indices_new = np.empty(self.num_edges + extra, dtype=np.int64)
        weights_new = (
            None
            if self.weights is None
            else np.empty(self.num_edges + extra, dtype=np.float32)
        )
        for v in range(n):
            lo_old, hi_old = self.indptr[v], self.indptr[v + 1]
            lo_new = indptr_new[v]
            span = hi_old - lo_old
            indices_new[lo_new:lo_new + span] = self.indices[lo_old:hi_old]
            if weights_new is not None:
                weights_new[lo_new:lo_new + span] = self.weights[lo_old:hi_old]
            if not has_loop[v]:
                indices_new[lo_new + span] = v
                if weights_new is not None:
                    weights_new[lo_new + span] = 1.0
        return CSRGraph(indptr_new, indices_new, weights_new)

    def to_scipy(self):
        """Export as a :class:`scipy.sparse.csr_matrix`."""
        from scipy.sparse import csr_matrix

        data = (
            np.ones(self.num_edges, dtype=np.float32)
            if self.weights is None
            else self.weights
        )
        n = self.num_vertices
        return csr_matrix((data, self.indices, self.indptr), shape=(n, n))

    def sorted_rows(self) -> "CSRGraph":
        """Return a copy whose neighbour lists are sorted ascending."""
        indices = self.indices.copy()
        weights = None if self.weights is None else self.weights.copy()
        for v in range(self.num_vertices):
            lo, hi = self.indptr[v], self.indptr[v + 1]
            order = np.argsort(indices[lo:hi], kind="stable")
            indices[lo:hi] = indices[lo:hi][order]
            if weights is not None:
                weights[lo:hi] = weights[lo:hi][order]
        out = CSRGraph(self.indptr.copy(), indices, weights)
        out._sorted_rows = True
        return out

    def has_edge(self, src: int, dst: int) -> bool:
        """Whether the arc ``src -> dst`` exists."""
        row = self.neighbors(src)
        if self._sorted_rows:
            pos = np.searchsorted(row, dst)
            return bool(pos < row.size and row[pos] == dst)
        return bool(np.any(row == dst))


def from_edge_list(
    edges: Iterable[tuple[int, int]] | np.ndarray,
    num_vertices: int,
    weights: Sequence[float] | np.ndarray | None = None,
    deduplicate: bool = False,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from an edge list.

    Args:
        edges: Iterable of ``(src, dst)`` pairs or an ``(m, 2)`` array.
        num_vertices: Total number of vertices ``n``; every endpoint must be
            in ``[0, n)``.
        weights: Optional per-edge weights aligned with ``edges``.
        deduplicate: Drop duplicate arcs, keeping the first occurrence.
    """
    edge_array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if edge_array.size == 0:
        edge_array = np.empty((0, 2), dtype=np.int64)
    edge_array = edge_array.astype(np.int64, copy=False)
    if edge_array.ndim != 2 or edge_array.shape[1] != 2:
        raise ValueError(f"edges must be (m, 2), got {edge_array.shape}")
    if edge_array.size and (
        edge_array.min() < 0 or edge_array.max() >= num_vertices
    ):
        raise ValueError("edge endpoint out of range")

    weight_array = None
    if weights is not None:
        weight_array = np.asarray(weights, dtype=np.float32)
        if weight_array.shape != (edge_array.shape[0],):
            raise ValueError("weights must align with edges")

    if deduplicate and edge_array.shape[0]:
        keys = edge_array[:, 0].astype(np.int64) * num_vertices + edge_array[:, 1]
        _, keep = np.unique(keys, return_index=True)
        keep.sort()
        edge_array = edge_array[keep]
        if weight_array is not None:
            weight_array = weight_array[keep]

    order = np.argsort(edge_array[:, 0], kind="stable")
    edge_array = edge_array[order]
    if weight_array is not None:
        weight_array = weight_array[order]

    counts = np.bincount(edge_array[:, 0], minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(indptr, edge_array[:, 1].astype(np.int64), weight_array)


def from_scipy(matrix) -> CSRGraph:
    """Build a :class:`CSRGraph` from any scipy sparse matrix."""
    csr = matrix.tocsr()
    if csr.shape[0] != csr.shape[1]:
        raise ValueError("adjacency matrix must be square")
    weights = np.asarray(csr.data, dtype=np.float32)
    if np.allclose(weights, 1.0):
        weights = None
    return CSRGraph(
        np.asarray(csr.indptr, dtype=np.int64),
        np.asarray(csr.indices, dtype=np.int64),
        weights,
    )
