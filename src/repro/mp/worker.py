"""The worker-process main loop (``execution="multiprocess"``).

Each worker process is forked from the supervisor after setup, so it
inherits a full copy of the bound :class:`~repro.engine.context.ExchangeContext`
and backend — partitioned features, adjacency rows, halo plans, caches —
by address-space snapshot. From then on the only things that flow in are:

* pipe commands (one strict request→reply round per engine step, with
  pulled parameters / backward weights / kernel-state refreshes as
  payloads), and
* shared-memory blocks (halo inputs written by the supervisor's
  exchange scatter; layer outputs / gradient rows / dH partials written
  back by the worker for the supervisor's exchanges to serve).

The worker runs only the pure per-layer kernels (the exact same
:class:`~repro.engine.backends.ModelBackend` methods the inline
executor calls); every policy, fault, metering and tuner decision stays
on the supervisor, which is what keeps multiprocess runs bit-identical
to sync. Kernel wall time is measured here — kernel only, shared-memory
copies excluded — and shipped back for the supervisor to charge to the
simulated cluster clock.

A worker that hits an exception replies ``("err", traceback, 0.0)`` and
keeps serving rounds (the supervisor raises); EOF on the pipe or a
``stop`` command ends the loop. The first thing the loop does is
:func:`~repro.mp.store.disarm_inherited_stores`, so a dying worker can
never unlink shared segments the supervisor still owns.
"""

from __future__ import annotations

import traceback
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.mp.store import SharedStore, disarm_inherited_stores
from repro.nn.losses import softmax_cross_entropy
from repro.obs.tracing import monotonic_now

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

    from repro.core.worker import WorkerState
    from repro.engine.backends import ModelBackend
    from repro.engine.context import ExchangeContext

__all__ = ["worker_main"]


def _resolve_halo(
    ref: tuple[Any, ...], state: WorkerState, store: SharedStore
) -> np.ndarray:
    """Materialize a halo reference from a round's dispatch message."""
    kind = ref[0]
    if kind == "shm":
        return store.attach(ref[1])
    if kind == "own":
        # The cached first-hop features, inherited at fork (and current:
        # crash recovery respawns the process after rebuilding them).
        return state.halo_features
    # "data": small/irregular rows shipped inline over the pipe.
    return ref[1]


def _dispatch(
    msg: tuple[Any, ...],
    state: WorkerState,
    backend: ModelBackend,
    ctx: ExchangeContext,
    store: SharedStore,
) -> tuple[Any, float]:
    num_layers = ctx.params.num_layers
    op = msg[0]

    if op == "fwd":
        _, layer, is_last, pulled, halo_ref, h_block = msg
        halo = _resolve_halo(halo_ref, state, store)
        prev = backend.layer_input(state, layer)
        start = monotonic_now()
        h_cat = np.concatenate([prev, halo], axis=0)
        backend.forward_layer(state, h_cat, pulled, layer, is_last=is_last)
        wall = monotonic_now() - start
        if h_block is not None:
            np.copyto(store.attach(h_block),
                      backend.layer_output(state, layer))
        return None, wall

    if op == "loss":
        _, g_block = msg
        logits = backend.final_logits(state)
        start = monotonic_now()
        result = softmax_cross_entropy(
            logits, state.labels, state.train_mask
        )
        local = int(state.train_mask.sum())
        scale = local / ctx.global_train_count if local else 0.0
        state.grad_rows[num_layers] = (
            result.grad * scale
        ).astype(np.float32)
        loss_term = result.loss * scale
        counters = {
            "train": [result.correct, result.count],
            "val": [0, 0],
            "test": [0, 0],
        }
        predictions = logits.argmax(axis=1)
        for split, mask in (
            ("val", state.val_mask),
            ("test", state.test_mask),
        ):
            counters[split][0] = int(
                (predictions[mask] == state.labels[mask]).sum()
            )
            counters[split][1] = int(mask.sum())
        wall = monotonic_now() - start
        if g_block is not None:
            np.copyto(store.attach(g_block), state.grad_rows[num_layers])
        return (loss_term, counters), wall

    if op == "bpl":
        _, layer, weights, export_block = msg
        start = monotonic_now()
        shares = backend.backward_local(state, layer, weights)
        wall = monotonic_now() - start
        if export_block is not None:
            np.copyto(store.attach(export_block),
                      backend.bp_halo_rows(state, layer))
        return shares, wall

    if op == "bpr":
        _, layer, weights, halo_ref, g_block = msg
        halo = _resolve_halo(halo_ref, state, store)
        start = monotonic_now()
        backend.backward_reduce(state, layer, halo, weights)
        wall = monotonic_now() - start
        if g_block is not None:
            np.copyto(store.attach(g_block), state.grad_rows[layer - 1])
        return None, wall

    if op == "begin":
        backend.begin_iteration()
        return None, 0.0

    if op == "kstate":
        backend.apply_kernel_refresh(state.worker_id, msg[1])
        return None, 0.0

    raise ValueError(f"unknown worker op {op!r}")


def worker_main(
    worker_id: int,
    conn: Connection,
    token: str,
    ctx: ExchangeContext,
    backend: ModelBackend,
) -> None:
    """Serve kernel rounds for one worker until ``stop`` or EOF."""
    disarm_inherited_stores()
    store = SharedStore(token, create=False)
    state = ctx.workers[worker_id]
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, KeyboardInterrupt):
                break
            if msg[0] == "stop":
                break
            try:
                payload, wall = _dispatch(msg, state, backend, ctx, store)
            except Exception:
                conn.send(("err", traceback.format_exc(), 0.0))
                continue
            conn.send(("ok", payload, wall))
    finally:
        store.close()
        conn.close()
