"""Partition quality statistics.

These quantities drive the communication cost model: the number of *cut*
edges determines how many embedding messages cross machine boundaries each
layer, and ``avg_remote_neighbors`` is the paper's ``g_rmt`` in Table II.

All statistics stream adjacency blocks through the store API
(:mod:`repro.graph.store`), so they work unchanged on out-of-core graphs:
nothing here materializes the global column array or a per-vertex Python
set. Memory is bounded by ``O(n)`` bookkeeping plus one adjacency block.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.store.base import GraphStore, as_topology
from repro.partition.base import Partition

__all__ = [
    "PartitionStats",
    "partition_stats",
    "part_loads",
    "remote_neighbor_lists",
]


@dataclass(frozen=True)
class PartitionStats:
    """Quality metrics for one partition of one graph.

    Attributes:
        num_parts: Number of parts.
        edge_cut: Number of edges whose endpoints live on different parts.
        edge_cut_ratio: ``edge_cut / num_edges``.
        max_part_size / min_part_size: Extremes of the part sizes.
        balance: ``max_part_size / ideal`` where ideal is ``n / num_parts``.
        avg_remote_neighbors: Mean number of *distinct* remote 1-hop
            neighbours per vertex (the paper's ``g_rmt``).
        total_halo: Sum over parts of the distinct remote vertices each
            part must fetch per layer.
    """

    num_parts: int
    edge_cut: int
    edge_cut_ratio: float
    max_part_size: int
    min_part_size: int
    balance: float
    avg_remote_neighbors: float
    total_halo: int


def _block_sources(
    indptr: np.ndarray, start: int, stop: int
) -> np.ndarray:
    """Source vertex of every edge in rows ``[start, stop)``."""
    counts = np.diff(indptr[start:stop + 1])
    return np.repeat(np.arange(start, stop, dtype=np.int64), counts)


def partition_stats(
    graph: CSRGraph | GraphStore, partition: Partition
) -> PartitionStats:
    """Compute :class:`PartitionStats` for ``partition`` over ``graph``."""
    store = as_topology(graph)
    if partition.num_vertices != store.num_vertices:
        raise ValueError("partition and graph vertex counts differ")
    assignment = partition.assignment
    n = store.num_vertices

    edge_cut = 0
    remote_per_vertex = np.zeros(n, dtype=np.int64)
    # halo_seen[p, u] marks that part p needs remote vertex u; summing
    # the rows gives the distinct-halo sizes without per-part sets.
    halo_seen = np.zeros((partition.num_parts, n), dtype=bool)
    for start, stop, indices, _ in store.iter_adjacency():
        src = _block_sources(store.indptr, start, stop)
        cut = assignment[src] != assignment[indices]
        edge_cut += int(np.count_nonzero(cut))
        if not cut.any():
            continue
        cut_src = src[cut]
        cut_dst = indices[cut]
        # Rows never span blocks, so deduplicating (src, dst) pairs
        # inside the block is exact per-vertex distinctness.
        pair_keys = np.unique(cut_src * n + cut_dst)
        uniq_src = pair_keys // n
        uniq_dst = pair_keys % n
        remote_per_vertex += np.bincount(uniq_src, minlength=n)
        halo_seen[assignment[uniq_src], uniq_dst] = True

    sizes = partition.part_sizes()
    ideal = n / partition.num_parts
    num_edges = store.num_edges
    return PartitionStats(
        num_parts=partition.num_parts,
        edge_cut=edge_cut,
        edge_cut_ratio=edge_cut / num_edges if num_edges else 0.0,
        max_part_size=int(sizes.max()) if sizes.size else 0,
        min_part_size=int(sizes.min()) if sizes.size else 0,
        balance=float(sizes.max() / ideal) if ideal else 0.0,
        avg_remote_neighbors=float(remote_per_vertex.mean()),
        total_halo=int(halo_seen.sum()),
    )


def part_loads(
    graph: CSRGraph | GraphStore, assignment: np.ndarray, num_parts: int
) -> np.ndarray:
    """Per-part compute-load proxy: owned vertices plus incident edges.

    The elastic membership layer uses this to pick the least-loaded
    survivor when a dead worker's partition needs a new home — edge
    count dominates both the aggregation FLOPs and the halo traffic a
    part generates, and vertex count covers the dense layer work.

    Only the row pointers are read, so this is free even for out-of-core
    stores.
    """
    store = as_topology(graph)
    if assignment.shape[0] != store.num_vertices:
        raise ValueError("assignment does not match the graph")
    degrees = store.degrees().astype(np.int64)
    vertices = np.bincount(assignment, minlength=num_parts)
    edges = np.bincount(
        assignment, weights=degrees.astype(np.float64), minlength=num_parts
    ).astype(np.int64)
    return vertices + edges


def remote_neighbor_lists(
    graph: CSRGraph | GraphStore, partition: Partition
) -> list[dict[int, np.ndarray]]:
    """Per-part map: remote part id -> sorted vertex ids needed from it.

    ``result[i][j]`` lists the global vertex ids owned by part ``j`` whose
    embeddings part ``i`` needs each layer. This is exactly the request
    pattern the Neighbor Access Controller issues.
    """
    store = as_topology(graph)
    assignment = partition.assignment
    n = store.num_vertices

    # Distinct (requesting part, remote vertex) pairs, accumulated as
    # per-block deduplicated keys and deduplicated once more globally.
    key_blocks: list[np.ndarray] = []
    for start, stop, indices, _ in store.iter_adjacency():
        src = _block_sources(store.indptr, start, stop)
        cut = assignment[src] != assignment[indices]
        if cut.any():
            key_blocks.append(
                np.unique(assignment[src[cut]] * n + indices[cut])
            )
    requests: list[dict[int, np.ndarray]] = [
        {} for _ in range(partition.num_parts)
    ]
    if not key_blocks:
        return requests
    keys = np.unique(np.concatenate(key_blocks))
    req_part = keys // n
    wanted = keys % n  # ascending within each requesting part
    owners = assignment[wanted]
    for part in range(partition.num_parts):
        in_part = req_part == part
        part_wanted = wanted[in_part]
        part_owners = owners[in_part]
        for owner in np.unique(part_owners):
            requests[part][int(owner)] = part_wanted[
                part_owners == owner
            ].astype(np.int64)
    return requests
