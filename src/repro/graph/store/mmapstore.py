"""Memory-mapped store backend: npy chunk files + manifest + LRU residency.

On-disk layout (one directory per graph)::

    manifest.json            magic "ECGSTORE", version, shapes, chunking
    indptr.npy               (n+1,) int64 row pointers
    indices-00000.npy ...    column ids, chunked by vertex ranges
    weights-00000.npy ...    optional, aligned with indices
    features-00000.npy ...   feature rows, chunked by the same ranges
    labels-00000.npy ...     and likewise labels / the three split masks

Chunk ``c`` always covers vertex rows ``[c*cv, min((c+1)*cv, n))`` —
edge chunks are aligned to the same vertex boundaries, so a vertex's
adjacency row never spans two files and row-range reads touch exactly
the chunks that contain them.

Residency: each store keeps an :class:`ChunkCache` of open ``np.memmap``
objects with a block budget. Eviction advises the kernel to drop the
chunk's pages (``MADV_DONTNEED``), so peak RSS is bounded by the budget
times the chunk size rather than the on-disk matrix size — file-backed
pages are re-read transparently if the chunk is touched again.
"""

from __future__ import annotations

import json
import mmap as _mmap_mod
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator

import numpy as np

from repro.graph.store.base import (
    DEFAULT_MAX_BLOCK_EDGES,
    FeatureStore,
    GraphStore,
    GraphStoreBundle,
)

if TYPE_CHECKING:
    from repro.graph.attributed import AttributedGraph

__all__ = [
    "ChunkCache",
    "MmapFeatureStore",
    "MmapGraphStore",
    "MmapStoreWriter",
    "open_bundle",
    "to_mmap_bundle",
    "read_manifest",
]

MANIFEST_MAGIC = "ECGSTORE"
MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"
DEFAULT_CHUNK_VERTICES = 65_536
DEFAULT_RESIDENT_BLOCKS = 4

_PER_VERTEX = ("features", "labels", "train_mask", "val_mask", "test_mask")


def _chunk_path(root: Path, component: str, chunk: int) -> Path:
    return root / f"{component}-{chunk:05d}.npy"


def release_pages(array: np.ndarray) -> None:
    """Advise the kernel to drop a memmap's resident pages.

    A no-op for non-memmap arrays and on platforms without
    ``MADV_DONTNEED``. File-backed read-only pages are clean, so the
    kernel simply re-reads them on the next access — correctness is
    unaffected, only residency."""
    mm = getattr(array, "_mmap", None)
    if mm is None or not hasattr(_mmap_mod, "MADV_DONTNEED"):
        return
    try:
        mm.madvise(_mmap_mod.MADV_DONTNEED)
    except (ValueError, OSError):
        pass


class ChunkCache:
    """LRU cache of open chunk memmaps with a residency budget."""

    def __init__(self, budget: int) -> None:
        if budget < 1:
            raise ValueError("residency budget must be >= 1")
        self.budget = int(budget)
        self._cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: int, loader: Callable[[], np.ndarray]) -> np.ndarray:
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.hits += 1
            return cached
        self.misses += 1
        array = loader()
        self._cache[key] = array
        while len(self._cache) > self.budget:
            _, evicted = self._cache.popitem(last=False)
            self.evictions += 1
            release_pages(evicted)
        return array

    def drop_all(self) -> None:
        for array in self._cache.values():
            release_pages(array)
        self._cache.clear()

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "resident_blocks": len(self._cache),
            "budget_blocks": self.budget,
        }


def read_manifest(root: str | Path) -> dict:
    """Load and validate a store manifest; clear errors on bad files."""
    root = Path(root)
    path = root / MANIFEST_NAME
    if not path.exists():
        raise FileNotFoundError(f"no store manifest at {path}")
    try:
        manifest = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"corrupt store manifest {path}: {exc}") from None
    if manifest.get("magic") != MANIFEST_MAGIC:
        raise ValueError(
            f"{path} is not a graph store manifest "
            f"(magic {manifest.get('magic')!r}, expected {MANIFEST_MAGIC!r})"
        )
    if manifest.get("version") != MANIFEST_VERSION:
        raise ValueError(
            f"unsupported store manifest version {manifest.get('version')} "
            f"(expected {MANIFEST_VERSION})"
        )
    return manifest


class MmapFeatureStore(FeatureStore):
    """Row-chunked npy files behind the :class:`FeatureStore` API."""

    def __init__(
        self,
        root: str | Path,
        component: str,
        shape: tuple[int, ...],
        dtype: np.dtype,
        chunk_rows: int,
        max_resident_blocks: int = DEFAULT_RESIDENT_BLOCKS,
    ) -> None:
        self._root = Path(root)
        self._component = component
        self._shape = tuple(int(s) for s in shape)
        self._dtype = np.dtype(dtype)
        self._chunk_rows = int(chunk_rows)
        self.cache = ChunkCache(max_resident_blocks)

    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def num_chunks(self) -> int:
        n = self._shape[0]
        return max((n + self._chunk_rows - 1) // self._chunk_rows, 1)

    def _chunk(self, chunk: int) -> np.ndarray:
        path = _chunk_path(self._root, self._component, chunk)
        return self.cache.get(chunk, lambda: np.load(path, mmap_mode="r"))

    def chunk_paths(self) -> list[Path]:
        """On-disk npy file per chunk, in row order.

        Consumers that want to share the raw blocks across processes
        (e.g. :meth:`repro.mp.store.SharedStore.map_npy`) alias these
        files instead of copying rows.
        """
        return [
            _chunk_path(self._root, self._component, chunk)
            for chunk in range(self.num_chunks)
        ]

    def slice(self, start: int, stop: int) -> np.ndarray:
        if not 0 <= start <= stop <= self._shape[0]:
            raise IndexError(f"rows [{start}, {stop}) out of range")
        if start == stop:
            return np.empty((0,) + self._shape[1:], dtype=self._dtype)
        cv = self._chunk_rows
        first, last = start // cv, (stop - 1) // cv
        if first == last:
            block = self._chunk(first)
            return block[start - first * cv:stop - first * cv]
        out = np.empty((stop - start,) + self._shape[1:], dtype=self._dtype)
        for chunk in range(first, last + 1):
            lo = max(start, chunk * cv)
            hi = min(stop, (chunk + 1) * cv)
            block = self._chunk(chunk)
            out[lo - start:hi - start] = block[lo - chunk * cv:hi - chunk * cv]
        return out

    def iter_blocks(self) -> Iterator[tuple[int, int, np.ndarray]]:
        n = self._shape[0]
        cv = self._chunk_rows
        for chunk in range(self.num_chunks):
            start = chunk * cv
            stop = min(start + cv, n)
            if start >= stop:
                break
            yield start, stop, self._chunk(chunk)

    def _gather(self, ids: np.ndarray) -> np.ndarray:
        # Group by chunk so each touched chunk is loaded exactly once.
        out = np.empty((ids.size,) + self._shape[1:], dtype=self._dtype)
        chunks = ids // self._chunk_rows
        order = np.argsort(chunks, kind="stable")
        sorted_chunks = chunks[order]
        bounds = np.flatnonzero(np.diff(sorted_chunks)) + 1
        for group in np.split(order, bounds):
            chunk = int(chunks[group[0]])
            block = self._chunk(chunk)
            out[group] = block[ids[group] - chunk * self._chunk_rows]
        return out


class MmapGraphStore(GraphStore):
    """Vertex-chunked CSR topology over npy files."""

    def __init__(
        self,
        root: str | Path,
        num_vertices: int,
        chunk_vertices: int,
        weighted: bool,
        max_resident_blocks: int = DEFAULT_RESIDENT_BLOCKS,
    ) -> None:
        self._root = Path(root)
        self._indptr = np.load(self._root / "indptr.npy", mmap_mode="r")
        if self._indptr.shape[0] != num_vertices + 1:
            raise ValueError(
                f"indptr has {self._indptr.shape[0]} entries, manifest "
                f"says {num_vertices + 1}"
            )
        self._chunk_vertices = int(chunk_vertices)
        self._weighted = bool(weighted)
        self.cache = ChunkCache(max_resident_blocks)
        self._weight_cache = ChunkCache(max_resident_blocks)

    @property
    def indptr(self) -> np.ndarray:
        return self._indptr

    @property
    def has_weights(self) -> bool:
        return self._weighted

    @property
    def chunk_vertices(self) -> int:
        return self._chunk_vertices

    @property
    def num_chunks(self) -> int:
        n = self.num_vertices
        cv = self._chunk_vertices
        return max((n + cv - 1) // cv, 1)

    def _indices_chunk(self, chunk: int) -> np.ndarray:
        path = _chunk_path(self._root, "indices", chunk)
        return self.cache.get(chunk, lambda: np.load(path, mmap_mode="r"))

    def _weights_chunk(self, chunk: int) -> np.ndarray:
        path = _chunk_path(self._root, "weights", chunk)
        return self._weight_cache.get(
            chunk, lambda: np.load(path, mmap_mode="r")
        )

    def adjacency_block(
        self, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray | None]:
        if not 0 <= start <= stop <= self.num_vertices:
            raise IndexError(f"rows [{start}, {stop}) out of range")
        cv = self._chunk_vertices
        lo_edge = int(self._indptr[start])
        hi_edge = int(self._indptr[stop])
        if lo_edge == hi_edge:
            empty = np.empty(0, dtype=np.int64)
            return empty, (
                np.empty(0, dtype=np.float32) if self._weighted else None
            )
        first, last = start // cv, (stop - 1) // cv
        if first == last:
            base = int(self._indptr[first * cv])
            indices = self._indices_chunk(first)[lo_edge - base:hi_edge - base]
            weights = None
            if self._weighted:
                weights = self._weights_chunk(first)[
                    lo_edge - base:hi_edge - base
                ]
            return indices, weights
        indices = np.empty(hi_edge - lo_edge, dtype=np.int64)
        weights = (
            np.empty(hi_edge - lo_edge, dtype=np.float32)
            if self._weighted
            else None
        )
        for chunk in range(first, last + 1):
            row_lo = max(start, chunk * cv)
            row_hi = min(stop, (chunk + 1) * cv)
            e_lo = int(self._indptr[row_lo])
            e_hi = int(self._indptr[row_hi])
            base = int(self._indptr[chunk * cv])
            indices[e_lo - lo_edge:e_hi - lo_edge] = self._indices_chunk(chunk)[
                e_lo - base:e_hi - base
            ]
            if weights is not None:
                weights[e_lo - lo_edge:e_hi - lo_edge] = self._weights_chunk(
                    chunk
                )[e_lo - base:e_hi - base]
        return indices, weights

    def iter_adjacency(
        self,
    ) -> Iterator[tuple[int, int, np.ndarray, np.ndarray | None]]:
        n = self.num_vertices
        cv = self._chunk_vertices
        for chunk in range(self.num_chunks):
            start = chunk * cv
            stop = min(start + cv, n)
            if start >= stop:
                break
            # The outer loop walks storage chunks (sub-spans are then
            # zero-copy views of one cached memmap); the inner split
            # bounds block size on skewed chunks.
            for lo, hi in self._edge_bounded_spans(
                start, stop, DEFAULT_MAX_BLOCK_EDGES
            ):
                indices, weights = self.adjacency_block(lo, hi)
                yield lo, hi, indices, weights


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
class _ColumnWriter:
    """Sequential row appender spanning chunk files for one component."""

    def __init__(
        self,
        root: Path,
        component: str,
        num_rows: int,
        row_shape: tuple[int, ...],
        dtype: np.dtype,
        chunk_rows: int,
    ) -> None:
        self._root = root
        self._component = component
        self._num_rows = num_rows
        self._row_shape = row_shape
        self._dtype = np.dtype(dtype)
        self._chunk_rows = chunk_rows
        self._row = 0
        self._open_chunk = -1
        self._mm: np.ndarray | None = None

    def _open(self, chunk: int) -> None:
        self._flush()
        rows = min((chunk + 1) * self._chunk_rows, self._num_rows) - (
            chunk * self._chunk_rows
        )
        self._mm = np.lib.format.open_memmap(
            _chunk_path(self._root, self._component, chunk),
            mode="w+",
            dtype=self._dtype,
            shape=(rows,) + self._row_shape,
        )
        self._open_chunk = chunk

    def _flush(self) -> None:
        if self._mm is not None:
            self._mm.flush()
            release_pages(self._mm)
            self._mm = None

    def append(self, block: np.ndarray) -> None:
        block = np.ascontiguousarray(block, dtype=self._dtype)
        offset = 0
        while offset < block.shape[0]:
            chunk = self._row // self._chunk_rows
            if chunk != self._open_chunk:
                self._open(chunk)
            chunk_lo = chunk * self._chunk_rows
            room = min(
                (chunk + 1) * self._chunk_rows, self._num_rows
            ) - self._row
            take = min(room, block.shape[0] - offset)
            if take <= 0:
                raise ValueError(
                    f"{self._component}: wrote past {self._num_rows} rows"
                )
            pos = self._row - chunk_lo
            self._mm[pos:pos + take] = block[offset:offset + take]
            self._row += take
            offset += take

    def close(self) -> None:
        if self._row != self._num_rows:
            raise ValueError(
                f"{self._component}: wrote {self._row} of "
                f"{self._num_rows} rows"
            )
        self._flush()


class MmapStoreWriter:
    """Build an on-disk store directory chunk by chunk.

    Usage: construct with the vertex count and chunking, append
    per-vertex columns sequentially (``column_writer``), set the row
    pointers (``set_indptr``), obtain edge-aligned chunk buffers for the
    CSR fill (``edge_buffers``), then ``finalize`` to write the
    manifest.
    """

    def __init__(
        self,
        root: str | Path,
        num_vertices: int,
        chunk_vertices: int = DEFAULT_CHUNK_VERTICES,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.num_vertices = int(num_vertices)
        self.chunk_vertices = int(chunk_vertices)
        if self.chunk_vertices < 1:
            raise ValueError("chunk_vertices must be >= 1")
        self._columns: dict[str, dict] = {}
        self._indptr: np.ndarray | None = None
        self._weighted = False

    @property
    def num_chunks(self) -> int:
        n = self.num_vertices
        cv = self.chunk_vertices
        return max((n + cv - 1) // cv, 1)

    def column_writer(
        self,
        component: str,
        row_shape: tuple[int, ...],
        dtype: np.dtype | type,
    ) -> _ColumnWriter:
        dtype = np.dtype(dtype)
        self._columns[component] = {
            "shape": [self.num_vertices, *row_shape],
            "dtype": dtype.str,
        }
        return _ColumnWriter(
            self.root, component, self.num_vertices, tuple(row_shape),
            dtype, self.chunk_vertices,
        )

    def write_column(self, component: str, array: np.ndarray) -> None:
        """Convenience: write one resident array as a chunked column."""
        writer = self.column_writer(component, array.shape[1:], array.dtype)
        writer.append(array)
        writer.close()

    def set_indptr(self, indptr: np.ndarray) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        if indptr.shape != (self.num_vertices + 1,):
            raise ValueError("indptr shape does not match num_vertices")
        np.save(self.root / "indptr.npy", indptr)
        self._indptr = indptr

    def edge_chunk_offsets(self) -> np.ndarray:
        """Edge offset of each chunk boundary (length num_chunks + 1)."""
        if self._indptr is None:
            raise RuntimeError("set_indptr must be called first")
        bounds = np.minimum(
            np.arange(self.num_chunks + 1, dtype=np.int64)
            * self.chunk_vertices,
            self.num_vertices,
        )
        return self._indptr[bounds]

    def edge_buffers(
        self, component: str, dtype: np.dtype | type
    ) -> list[np.ndarray]:
        """Writable edge-aligned chunk memmaps for the CSR fill."""
        offsets = self.edge_chunk_offsets()
        dtype = np.dtype(dtype)
        if component == "weights":
            self._weighted = True
        buffers = []
        for chunk in range(self.num_chunks):
            size = int(offsets[chunk + 1] - offsets[chunk])
            buffers.append(
                np.lib.format.open_memmap(
                    _chunk_path(self.root, component, chunk),
                    mode="w+",
                    dtype=dtype,
                    shape=(size,),
                )
            )
        return buffers

    def finalize(
        self,
        num_classes: int,
        name: str,
        meta: dict[str, object] | None = None,
    ) -> Path:
        if self._indptr is None:
            raise RuntimeError("set_indptr must be called before finalize")
        manifest = {
            "magic": MANIFEST_MAGIC,
            "version": MANIFEST_VERSION,
            "num_vertices": self.num_vertices,
            "num_edges": int(self._indptr[-1]),
            "chunk_vertices": self.chunk_vertices,
            "weighted": self._weighted,
            "num_classes": int(num_classes),
            "name": name,
            "meta": dict(meta or {}),
            "columns": self._columns,
        }
        path = self.root / MANIFEST_NAME
        path.write_text(json.dumps(manifest, indent=2, default=str) + "\n")
        return path


# ----------------------------------------------------------------------
# Bundle-level open/convert
# ----------------------------------------------------------------------
def open_bundle(
    root: str | Path,
    max_resident_blocks: int = DEFAULT_RESIDENT_BLOCKS,
) -> GraphStoreBundle:
    """Open an on-disk store directory as a :class:`GraphStoreBundle`."""
    root = Path(root)
    manifest = read_manifest(root)
    n = int(manifest["num_vertices"])
    cv = int(manifest["chunk_vertices"])
    columns = manifest["columns"]
    missing = [c for c in _PER_VERTEX if c not in columns]
    if missing:
        raise ValueError(f"store at {root} lacks columns: {missing}")

    def feature_store(component: str) -> MmapFeatureStore:
        spec = columns[component]
        return MmapFeatureStore(
            root, component, tuple(spec["shape"]), np.dtype(spec["dtype"]),
            chunk_rows=cv, max_resident_blocks=max_resident_blocks,
        )

    topology = MmapGraphStore(
        root, n, cv, weighted=bool(manifest.get("weighted", False)),
        max_resident_blocks=max_resident_blocks,
    )
    return GraphStoreBundle(
        adjacency=topology,
        feature_store=feature_store("features"),
        label_store=feature_store("labels"),
        train_mask_store=feature_store("train_mask"),
        val_mask_store=feature_store("val_mask"),
        test_mask_store=feature_store("test_mask"),
        num_classes=int(manifest["num_classes"]),
        name=manifest.get("name", "unnamed"),
        meta=manifest.get("meta", {}),
    )


def to_mmap_bundle(
    graph: "AttributedGraph | GraphStoreBundle",
    root: str | Path,
    chunk_vertices: int = DEFAULT_CHUNK_VERTICES,
    max_resident_blocks: int = DEFAULT_RESIDENT_BLOCKS,
) -> GraphStoreBundle:
    """Spill an :class:`AttributedGraph` (or bundle) to disk and reopen.

    Bytes are copied block by block through the store APIs, so the peak
    extra memory is one chunk, not the full graph.
    """
    from repro.graph.store.base import as_bundle

    bundle = as_bundle(graph)
    writer = MmapStoreWriter(root, bundle.num_vertices, chunk_vertices)
    for component, store in (
        ("features", bundle.feature_store),
        ("labels", bundle.label_store),
        ("train_mask", bundle.train_mask_store),
        ("val_mask", bundle.val_mask_store),
        ("test_mask", bundle.test_mask_store),
    ):
        column = writer.column_writer(
            component, store.shape[1:], store.dtype
        )
        for _, _, block in store.iter_blocks():
            column.append(block)
        column.close()

    topology = bundle.adjacency
    writer.set_indptr(np.asarray(topology.indptr))
    index_buffers = writer.edge_buffers("indices", np.int64)
    weight_buffers = (
        writer.edge_buffers("weights", np.float32)
        if topology.has_weights
        else None
    )
    offsets = writer.edge_chunk_offsets()
    cv = writer.chunk_vertices
    for chunk in range(writer.num_chunks):
        start = chunk * cv
        stop = min(start + cv, bundle.num_vertices)
        if start >= stop:
            break
        indices, weights = topology.adjacency_block(start, stop)
        index_buffers[chunk][:] = indices
        index_buffers[chunk].flush()
        release_pages(index_buffers[chunk])
        if weight_buffers is not None:
            weight_buffers[chunk][:] = weights
            weight_buffers[chunk].flush()
            release_pages(weight_buffers[chunk])
    del index_buffers, weight_buffers, offsets
    writer.finalize(bundle.num_classes, bundle.name, bundle.meta)
    return open_bundle(root, max_resident_blocks=max_resident_blocks)
