"""Unit tests for activations and their derivatives.

Each derivative is checked against a central finite difference — these
derivatives gate the distributed backward pass, so an error here corrupts
every gradient in the system.
"""

import numpy as np
import pytest

from repro.nn.activations import (
    elu,
    get_activation,
    identity,
    leaky_relu,
    relu,
    sigmoid,
    tanh,
)

ALL = [relu, leaky_relu, tanh, sigmoid, identity, elu]


@pytest.mark.parametrize("act", ALL, ids=lambda a: a.name)
def test_derivative_matches_finite_difference(act):
    rng = np.random.default_rng(1)
    # Stay away from the ReLU kink at 0 where the derivative jumps.
    z = rng.uniform(0.2, 3.0, size=(40,)) * rng.choice([-1.0, 1.0], size=40)
    eps = 1e-4
    numeric = (act.forward(z + eps) - act.forward(z - eps)) / (2 * eps)
    analytic = act.derivative(z)
    np.testing.assert_allclose(analytic, numeric, atol=1e-3)


class TestRelu:
    def test_forward_clamps_negatives(self):
        z = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
        np.testing.assert_array_equal(relu(z), [0.0, 0.0, 0.0, 0.5, 2.0])

    def test_derivative_is_indicator(self):
        z = np.array([-1.0, 1.0])
        np.testing.assert_array_equal(relu.derivative(z), [0.0, 1.0])

    def test_preserves_dtype(self):
        z = np.ones(4, dtype=np.float32)
        assert relu(z).dtype == np.float32


class TestSigmoid:
    def test_range(self):
        z = np.linspace(-30, 30, 101)
        s = sigmoid(z)
        assert np.all(s > 0) and np.all(s < 1)

    def test_extreme_values_stable(self):
        z = np.array([-1000.0, 1000.0])
        s = sigmoid(z)
        assert np.isfinite(s).all()
        np.testing.assert_allclose(s, [0.0, 1.0], atol=1e-12)

    def test_symmetry(self):
        z = np.array([0.7, -0.7])
        s = sigmoid(z)
        assert abs(s[0] + s[1] - 1.0) < 1e-6


class TestTanh:
    def test_odd_function(self):
        z = np.array([0.3, 1.5])
        np.testing.assert_allclose(tanh(z), -tanh(-z))


class TestLeakyRelu:
    def test_negative_slope(self):
        z = np.array([-10.0])
        np.testing.assert_allclose(leaky_relu(z), [-0.1])


class TestElu:
    def test_continuous_at_zero(self):
        eps = 1e-6
        assert abs(elu(np.array([eps]))[0] - elu(np.array([-eps]))[0]) < 1e-5

    def test_saturates_at_minus_alpha(self):
        assert elu(np.array([-100.0]))[0] == pytest.approx(-1.0, abs=1e-6)


class TestIdentity:
    def test_passthrough(self):
        z = np.array([1.0, -2.0])
        np.testing.assert_array_equal(identity(z), z)
        np.testing.assert_array_equal(identity.derivative(z), [1.0, 1.0])


class TestRegistry:
    @pytest.mark.parametrize("name", [a.name for a in ALL])
    def test_lookup(self, name):
        assert get_activation(name).name == name

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="relu"):
            get_activation("swish")

    def test_callable_interface(self):
        z = np.array([-1.0, 2.0])
        np.testing.assert_array_equal(relu(z), relu.forward(z))
