"""Configuration objects for EC-Graph training runs."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.bit_tuner import (
    DEFAULT_LOWER_THRESHOLD,
    DEFAULT_RAISE_THRESHOLD,
)
from repro.faults.config import FAULTS_DISABLED, FaultConfig
from repro.nn.activations import ACTIVATION_NAMES
from repro.nn.optim import OPTIMIZER_NAMES
from repro.obs.config import OBS_DISABLED, ObsConfig

__all__ = ["ModelConfig", "ECGraphConfig"]

_FP_MODES = ("raw", "compress", "reqec", "delayed")
_BP_MODES = ("raw", "compress", "resec", "delayed")
_GRANULARITIES = ("vertex", "matrix", "element")
_EXECUTION_MODES = ("sync", "multiprocess")
_TABLE_MODES = ("table", "bounds")


@dataclass(frozen=True)
class ModelConfig:
    """Architecture of the GNN being trained.

    Attributes:
        num_layers: ``L``; the paper sweeps 2-4.
        hidden_dim: Width of every hidden layer (16 for the citation
            graphs, 256 for the OGBN graphs in the paper).
        activation: Hidden activation name (``relu`` in the paper).
        model: ``gcn`` (symmetric normalization) or ``sage`` (row
            normalization / mean aggregator).
        use_bias: Add a learned bias after aggregation.
    """

    num_layers: int = 2
    hidden_dim: int = 16
    activation: str = "relu"
    model: str = "gcn"
    use_bias: bool = True

    def __post_init__(self):
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if self.hidden_dim < 1:
            raise ValueError("hidden_dim must be >= 1")
        if self.activation not in ACTIVATION_NAMES:
            raise ValueError(
                f"unknown activation {self.activation!r}; "
                f"known: {', '.join(ACTIVATION_NAMES)}"
            )
        if self.model not in ("gcn", "sage"):
            raise ValueError(f"unknown model {self.model!r}")

    def layer_dims(self, input_dim: int, num_classes: int) -> list[int]:
        """Dimensions ``[d0, hidden, ..., hidden, num_classes]``."""
        return [input_dim] + [self.hidden_dim] * (self.num_layers - 1) + [
            num_classes
        ]


@dataclass(frozen=True)
class ECGraphConfig:
    """Every knob of the EC-Graph training pipeline.

    The defaults reproduce the paper's EC-Graph configuration: ReqEC-FP
    with the adaptive Bit-Tuner in the forward direction and ResEC-BP in
    the backward direction, ``T_tr = 10``, vertex-wise selection.

    Attributes:
        fp_mode: Forward halo exchange: ``raw`` (Non-cp), ``compress``
            (Cp-fp), ``reqec`` (ReqEC-FP) or ``delayed`` (DistGNN-style
            partial aggregation).
        bp_mode: Backward halo exchange: ``raw``, ``compress`` (Cp-bp),
            ``resec`` (ResEC-BP) or ``delayed``.
        fp_bits / bp_bits: Initial quantization widths ``B``.
        adaptive_bits: Enable the Bit-Tuner (only meaningful with
            ``fp_mode == "reqec"``).
        trend_period: ``T_tr`` — exact embeddings + changing rate shipped
            every this many iterations.
        selector_granularity: ``vertex`` (paper default), ``matrix`` or
            ``element``.
        tuner_raise / tuner_lower: Bit-Tuner thresholds on the predicted
            proportion (paper: 0.6 / 0.4).
        delayed_rounds: ``r`` for the delayed modes (DistGNN uses 5).
        cache_first_hop: Cache remote 1-hop neighbour *features* at setup
            (the paper's first basic optimization).
        transform_first: Compute ``X W`` before aggregating when the input
            dimension exceeds the output (the paper's second basic
            optimization, borrowed from DGL).
        table_mode: ``table`` ships bucket values explicitly (paper), or
            ``bounds`` ships only (lo, hi).
        learning_rate / optimizer: Server-side optimizer settings.
        weight_decay: L2 regularization applied by the servers.
        codec_speedup: Divide measured Python codec time by this factor to
            emulate the paper's C++ compression kernels (see DESIGN.md).
        halo_buffer_pool: Reuse halo buffers across exchanges (zeroed in
            place) instead of allocating fresh ones; see
            ``docs/performance.md``. Off by default.
        exchange_threads: Fan independent halo-exchange channels out over
            this many threads (0/1 = sequential). Bit-identical results
            and traffic accounting; engages only on the fault-free,
            telemetry-off path. Deprecated in practice: the committed
            bench shows the GIL makes this *slower* than sequential
            (``BENCH_core.json`` speedup_optimized 0.70x); prefer
            ``execution="multiprocess"`` — the trainer emits a one-time
            ``RuntimeWarning`` when threads are requested under sync
            execution.
        execution: ``"sync"`` runs every worker inline in this process
            (the historical simulation); ``"multiprocess"`` runs worker
            kernels in real OS processes over shared-memory embedding /
            gradient stores (see ``docs/execution.md``). Loss curves and
            traffic accounting are bit-identical between the two.
        seed: Seed for parameter initialization and sampling.
        obs: Telemetry configuration (:class:`~repro.obs.ObsConfig`);
            disabled by default so instrumented hot paths stay free.
        faults: Fault-injection schedule and tolerance policy
            (:class:`~repro.faults.FaultConfig`); disabled by default,
            in which case training is bit-identical to a fault-free
            build.
    """

    fp_mode: str = "reqec"
    bp_mode: str = "resec"
    fp_bits: int = 4
    bp_bits: int = 4
    adaptive_bits: bool = True
    trend_period: int = 10
    selector_granularity: str = "vertex"
    tuner_raise: float = DEFAULT_RAISE_THRESHOLD
    tuner_lower: float = DEFAULT_LOWER_THRESHOLD
    delayed_rounds: int = 5
    cache_first_hop: bool = True
    transform_first: bool = True
    table_mode: str = "table"
    learning_rate: float = 0.01
    optimizer: str = "adam"
    weight_decay: float = 0.0
    codec_speedup: float = 20.0
    halo_buffer_pool: bool = False
    exchange_threads: int = 0
    execution: str = "sync"
    seed: int = 0
    obs: ObsConfig = OBS_DISABLED
    faults: FaultConfig = FAULTS_DISABLED

    def __post_init__(self):
        if self.fp_mode not in _FP_MODES:
            raise ValueError(f"fp_mode must be one of {_FP_MODES}")
        if self.bp_mode not in _BP_MODES:
            raise ValueError(f"bp_mode must be one of {_BP_MODES}")
        if not 1 <= self.fp_bits <= 16:
            raise ValueError(f"fp_bits must be in [1, 16], got {self.fp_bits}")
        if not 1 <= self.bp_bits <= 16:
            raise ValueError(f"bp_bits must be in [1, 16], got {self.bp_bits}")
        if self.selector_granularity not in _GRANULARITIES:
            raise ValueError(
                f"selector_granularity must be one of {_GRANULARITIES}"
            )
        if self.trend_period < 2:
            raise ValueError("trend_period must be >= 2")
        if self.delayed_rounds < 1:
            raise ValueError("delayed_rounds must be >= 1")
        if not 0.0 <= self.tuner_lower < self.tuner_raise <= 1.0:
            raise ValueError("need 0 <= tuner_lower < tuner_raise <= 1")
        if self.table_mode not in _TABLE_MODES:
            raise ValueError(f"table_mode must be one of {_TABLE_MODES}")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.optimizer not in OPTIMIZER_NAMES:
            raise ValueError(
                f"unknown optimizer {self.optimizer!r}; "
                f"known: {', '.join(OPTIMIZER_NAMES)}"
            )
        if self.weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        if self.codec_speedup <= 0:
            raise ValueError("codec_speedup must be positive")
        if self.exchange_threads < 0:
            raise ValueError("exchange_threads must be non-negative")
        if self.execution not in _EXECUTION_MODES:
            raise ValueError(f"execution must be one of {_EXECUTION_MODES}")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")

    # Convenience presets matching the paper's named configurations.
    def as_non_cp(self) -> "ECGraphConfig":
        """Non-cp: raw float messages in both directions."""
        return replace(self, fp_mode="raw", bp_mode="raw")

    def as_cp_only(self) -> "ECGraphConfig":
        """Cp-fp/Cp-bp: compression without compensation."""
        return replace(
            self, fp_mode="compress", bp_mode="compress", adaptive_bits=False
        )

    def as_reqec_only(self) -> "ECGraphConfig":
        """ReqEC-FP on, backward direction raw."""
        return replace(self, fp_mode="reqec", bp_mode="raw")

    def as_resec_only(self) -> "ECGraphConfig":
        """ResEC-BP on, forward direction raw."""
        return replace(self, fp_mode="raw", bp_mode="resec")
