"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    GraphSpec,
    class_features,
    generate_graph,
    planted_partition_edges,
    power_law_degrees,
)


def _spec(**overrides):
    fields = dict(
        name="t",
        num_vertices=300,
        avg_degree=8.0,
        feature_dim=10,
        num_classes=3,
        seed=5,
    )
    fields.update(overrides)
    return GraphSpec(**fields)


class TestSpecValidation:
    def test_bad_homophily(self):
        with pytest.raises(ValueError):
            _spec(homophily=1.5)

    def test_too_few_classes(self):
        with pytest.raises(ValueError):
            _spec(num_classes=1)

    def test_bad_label_noise(self):
        with pytest.raises(ValueError):
            _spec(label_noise=1.0)

    def test_nonpositive_degree(self):
        with pytest.raises(ValueError):
            _spec(avg_degree=0.0)


class TestPowerLawDegrees:
    def test_mean_close_to_target(self):
        rng = np.random.default_rng(0)
        degrees = power_law_degrees(5000, 20.0, 2.0, rng)
        assert abs(degrees.mean() - 20.0) < 4.0

    def test_bounds(self):
        rng = np.random.default_rng(0)
        degrees = power_law_degrees(100, 10.0, 1.5, rng)
        assert degrees.min() >= 1
        assert degrees.max() <= 99

    def test_heavy_tail(self):
        rng = np.random.default_rng(0)
        degrees = power_law_degrees(5000, 20.0, 1.5, rng)
        assert degrees.max() > 5 * degrees.mean()


class TestPlantedPartition:
    def test_homophily_respected(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 3, 600)
        degrees = np.full(600, 10, dtype=np.int64)
        edges = planted_partition_edges(labels, degrees, 0.9, rng)
        same = (labels[edges[:, 0]] == labels[edges[:, 1]]).mean()
        assert same > 0.75

    def test_low_homophily(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 3, 600)
        degrees = np.full(600, 10, dtype=np.int64)
        edges = planted_partition_edges(labels, degrees, 0.1, rng)
        same = (labels[edges[:, 0]] == labels[edges[:, 1]]).mean()
        assert same < 0.6

    def test_no_self_loops_or_duplicates(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, 100)
        degrees = np.full(100, 6, dtype=np.int64)
        edges = planted_partition_edges(labels, degrees, 0.8, rng)
        assert (edges[:, 0] != edges[:, 1]).all()
        keys = edges[:, 0] * 100 + edges[:, 1]
        assert len(np.unique(keys)) == len(keys)

    def test_canonical_orientation(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, 50)
        degrees = np.full(50, 4, dtype=np.int64)
        edges = planted_partition_edges(labels, degrees, 0.8, rng)
        assert (edges[:, 0] < edges[:, 1]).all()


class TestClassFeatures:
    def test_same_class_closer_than_cross_class(self):
        rng = np.random.default_rng(0)
        labels = np.array([0] * 50 + [1] * 50)
        x = class_features(labels, 32, noise=0.5, rng=rng)
        within = np.linalg.norm(x[:50] - x[:50].mean(0), axis=1).mean()
        centroid_gap = np.linalg.norm(x[:50].mean(0) - x[50:].mean(0))
        assert centroid_gap > within * 0.5

    def test_dtype(self):
        rng = np.random.default_rng(0)
        x = class_features(np.zeros(4, dtype=np.int64) , 8, 1.0, rng)
        assert x.dtype == np.float32


class TestGenerateGraph:
    def test_symmetric_adjacency(self):
        g = generate_graph(_spec())
        edges = set(g.adjacency.iter_edges())
        assert all((v, u) in edges for u, v in edges)

    def test_degree_near_target(self):
        g = generate_graph(_spec(num_vertices=2000, avg_degree=12.0))
        assert abs(g.adjacency.average_degree - 12.0) < 4.0

    def test_deterministic(self):
        a = generate_graph(_spec())
        b = generate_graph(_spec())
        np.testing.assert_array_equal(a.adjacency.indices, b.adjacency.indices)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_seed_changes_graph(self):
        a = generate_graph(_spec(seed=1))
        b = generate_graph(_spec(seed=2))
        assert not np.array_equal(a.labels, b.labels)

    def test_all_classes_inhabited(self):
        g = generate_graph(_spec(num_classes=5))
        assert len(np.unique(g.labels)) == 5

    def test_masks_disjoint(self):
        g = generate_graph(_spec())
        assert not (g.train_mask & g.val_mask).any()
        assert not (g.train_mask & g.test_mask).any()

    def test_label_noise_flips_some_labels(self):
        clean = generate_graph(_spec(label_noise=0.0))
        noisy = generate_graph(_spec(label_noise=0.4))
        differ = (clean.labels != noisy.labels).mean()
        assert 0.2 < differ < 0.5  # ~0.4 * (1 - 1/3)

    def test_small_graph_split_shrinks(self):
        g = generate_graph(
            _spec(num_vertices=30, train=20, val=20, test=20, num_classes=2)
        )
        train, val, test = g.split_sizes()
        assert train + val + test <= 30
        assert min(train, val, test) >= 1

    def test_meta_records_generator(self):
        g = generate_graph(_spec(homophily=0.77))
        assert g.meta["homophily"] == 0.77
        assert g.meta["generator"] == "planted_partition"
