"""B-bit bucket quantization — the paper's ``C_bits`` operator (section IV-A).

A matrix is compressed by dividing its value domain into ``2^B`` equal
buckets; every element is replaced by the ``B``-bit id of the bucket that
contains it, and the reply message carries the bucket representative
values so the requesting end can decode. Bucket ids are bit-packed, so a
``d``-dimensional float32 embedding shrinks from ``32 d`` bits to
``B d + 2^B * 32`` bits (the table cost amortizes over the vertices in a
message, as the paper notes).

Two table modes are provided:

* ``"table"`` (paper-faithful): the responder ships the ``2^B``
  representative values explicitly, exactly as Fig. 3 describes;
* ``"bounds"``: only ``(lo, hi)`` are shipped and the requester derives
  the midpoints — an obvious engineering refinement used by the
  ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["pack_bits", "unpack_bits", "QuantizedMatrix", "BucketQuantizer"]

SUPPORTED_BITS = (1, 2, 4, 8, 16)


def pack_bits(values: np.ndarray, bits: int) -> np.ndarray:
    """Pack unsigned ``bits``-wide integers into a dense uint8 buffer.

    Values are laid out little-endian-bit-first; :func:`unpack_bits`
    inverts the layout exactly. Values must fit in ``bits`` bits.
    """
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    flat = np.ascontiguousarray(values, dtype=np.uint32).ravel()
    if flat.size and int(flat.max()) >= (1 << bits):
        raise ValueError(f"value {int(flat.max())} does not fit in {bits} bits")
    shifts = np.arange(bits, dtype=np.uint32)
    bit_matrix = ((flat[:, None] >> shifts) & 1).astype(np.uint8)
    return np.packbits(bit_matrix.ravel(), bitorder="little")


def unpack_bits(buffer: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Invert :func:`pack_bits`, recovering ``count`` integers."""
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    raw = np.unpackbits(
        np.ascontiguousarray(buffer, dtype=np.uint8),
        count=count * bits,
        bitorder="little",
    )
    bit_matrix = raw.reshape(count, bits).astype(np.uint32)
    powers = (np.uint32(1) << np.arange(bits, dtype=np.uint32))
    return bit_matrix @ powers


@dataclass
class QuantizedMatrix:
    """A bucket-quantized matrix ready for the wire.

    Attributes:
        shape: Original matrix shape.
        bits: Bucket id width ``B``.
        packed: Bit-packed bucket ids (uint8 buffer).
        lo / hi: Value-domain bounds used by the quantizer.
        bucket_values: ``(2^B,)`` representative values (bucket midpoints).
        table_mode: ``"table"`` or ``"bounds"`` — what actually travels.
    """

    shape: tuple[int, ...]
    bits: int
    packed: np.ndarray
    lo: float
    hi: float
    bucket_values: np.ndarray
    table_mode: str = "table"

    @property
    def num_elements(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count

    def decode(self) -> np.ndarray:
        """Reconstruct the approximate matrix."""
        ids = unpack_bits(self.packed, self.bits, self.num_elements)
        return self.bucket_values[ids].reshape(self.shape).astype(np.float32)

    def payload_bytes(self) -> int:
        """Bytes this message occupies on the wire.

        Matches :mod:`repro.cluster.serialize` exactly: a 16-byte frame
        header, an 8-byte shape, 9 bytes of bits/lo/hi metadata, the
        packed ids, and — in ``table`` mode — the ``2^B`` float32 bucket
        representatives (``bounds`` mode derives them from lo/hi).
        """
        header = 16 + 8 + 9  # frame + shape + (bits, lo, hi)
        ids = self.packed.size
        table = self.bucket_values.size * 4 if self.table_mode == "table" else 0
        return header + ids + table


class BucketQuantizer:
    """The paper's ``C_bits``: uniform bucket quantization with B bits.

    The forward pass quantizes embeddings whose domain the paper treats as
    ``[0, 1]``; gradients are not normalized, so the responding end first
    computes ``(min, max)`` (Algorithm 6 lines 4-5). This implementation
    always derives the domain from the data unless explicit bounds are
    given, which covers both uses.
    """

    def __init__(self, bits: int, table_mode: str = "table"):
        if bits not in SUPPORTED_BITS:
            raise ValueError(
                f"bits must be one of {SUPPORTED_BITS}, got {bits}"
            )
        if table_mode not in ("table", "bounds"):
            raise ValueError(f"unknown table_mode {table_mode!r}")
        self.bits = bits
        self.table_mode = table_mode

    @property
    def num_buckets(self) -> int:
        return 1 << self.bits

    def encode(
        self,
        matrix: np.ndarray,
        lo: float | None = None,
        hi: float | None = None,
    ) -> QuantizedMatrix:
        """Quantize ``matrix`` into bucket ids plus representatives.

        Args:
            matrix: Any-shape float array.
            lo / hi: Optional explicit domain; defaults to the data range.
                A degenerate domain (``lo == hi``) still round-trips: all
                elements land in bucket 0 whose representative is ``lo``.
        """
        data = np.asarray(matrix, dtype=np.float32)
        if data.size == 0:
            empty = np.zeros(0, dtype=np.uint8)
            reps = np.zeros(self.num_buckets, dtype=np.float32)
            return QuantizedMatrix(data.shape, self.bits, empty, 0.0, 0.0,
                                   reps, self.table_mode)
        domain_lo = float(data.min()) if lo is None else float(lo)
        domain_hi = float(data.max()) if hi is None else float(hi)
        if domain_hi < domain_lo:
            raise ValueError(f"invalid domain: [{domain_lo}, {domain_hi}]")

        buckets = self.num_buckets
        span = domain_hi - domain_lo
        if span <= 0.0:
            ids = np.zeros(data.size, dtype=np.uint32)
            reps = np.full(buckets, domain_lo, dtype=np.float32)
        else:
            width = span / buckets
            scaled = (data.ravel() - domain_lo) / width
            ids = np.clip(scaled.astype(np.int64), 0, buckets - 1).astype(
                np.uint32
            )
            # Representative = midpoint of the bucket bounds (Fig. 3).
            reps = (
                domain_lo + (np.arange(buckets, dtype=np.float64) + 0.5) * width
            ).astype(np.float32)
        packed = pack_bits(ids, self.bits)
        return QuantizedMatrix(
            shape=data.shape,
            bits=self.bits,
            packed=packed,
            lo=domain_lo,
            hi=domain_hi,
            bucket_values=reps,
            table_mode=self.table_mode,
        )

    def quantize(self, matrix: np.ndarray, **kwargs) -> np.ndarray:
        """Encode then immediately decode (the error operator ``C_bits``)."""
        return self.encode(matrix, **kwargs).decode()

    def max_error(self, lo: float, hi: float) -> float:
        """Worst-case absolute error for a value inside ``[lo, hi]``.

        With midpoint representatives this is half the bucket width.
        """
        return (hi - lo) / (2 * self.num_buckets)
