"""Graph substrate: CSR storage, attributed graphs, normalization,
synthetic generators matched to the paper's datasets, subgraph extraction
and (de)serialization.
"""

from repro.graph.attributed import AttributedGraph, make_split_masks
from repro.graph.csr import CSRGraph, from_edge_list, from_scipy
from repro.graph.datasets import (
    PAPER_STATS,
    DatasetStats,
    dataset_names,
    dataset_spec,
    load_dataset,
    scale_factor,
)
from repro.graph.generators import GraphSpec, generate_graph
from repro.graph.io import load_graph, save_graph
from repro.graph.normalize import gcn_normalize, normalized_adjacency, row_normalize
from repro.graph.rmat import RMATSpec, generate_rmat_graph
from repro.graph.subgraph import (
    LocalSubgraph,
    induced_subgraph,
    khop_neighborhood,
    khop_sampled_neighborhood,
)

__all__ = [
    "AttributedGraph",
    "make_split_masks",
    "CSRGraph",
    "from_edge_list",
    "from_scipy",
    "PAPER_STATS",
    "DatasetStats",
    "dataset_names",
    "dataset_spec",
    "load_dataset",
    "scale_factor",
    "GraphSpec",
    "generate_graph",
    "load_graph",
    "save_graph",
    "RMATSpec",
    "generate_rmat_graph",
    "gcn_normalize",
    "normalized_adjacency",
    "row_normalize",
    "LocalSubgraph",
    "induced_subgraph",
    "khop_neighborhood",
    "khop_sampled_neighborhood",
]
