"""Distributed Graph Attention Network (GAT) on the EC-Graph substrate.

The paper (section III-B) claims EC-Graph generalizes beyond GCN to any
model exchanging the same message types: "GAT fetches embeddings from
in-neighbors in FP and embedding gradients from out-neighbors in BP".
This module delivers that claim: a multi-head, head-averaging GAT whose
forward halo exchange is the ordinary embedding fetch (so ReqEC-FP
applies unchanged), and whose backward pass uses the NAC's *reverse*
exchange — consumers push partial gradients of the remote embeddings
they attended over back to the owners (so ResEC-BP applies to those
messages).

Per layer and head ``k``, with ``U_k = H W_k``, attention logits
``r_ij = LeakyReLU(a_src_k . U_k_i + a_dst_k . U_k_j)`` over the edges
``i <- j`` (self-loops included), attention ``alpha_k = softmax_j(r)``
and output ``Z_i = mean_k sum_j alpha_k_ij U_k_j + b`` (head averaging
keeps the layer-dimension ladder unchanged, as in the GAT paper's final
layers). All gradients are derived by hand and verified against finite
differences in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.core.models import bias_name, weight_name
from repro.core.trainer import ECGraphTrainer
from repro.core.worker import WorkerState
from repro.nn.init import glorot_uniform
from repro.nn.losses import softmax_cross_entropy

__all__ = ["GATTrainer", "attn_src_name", "attn_dst_name",
           "head_weight_name"]

_LEAKY_SLOPE = 0.2


def attn_src_name(layer: int, head: int = 0) -> str:
    """Parameter key of a head's source attention vector ``a_src``."""
    return f"asrc{layer}" if head == 0 else f"asrc{layer}h{head}"


def attn_dst_name(layer: int, head: int = 0) -> str:
    """Parameter key of a head's target attention vector ``a_dst``."""
    return f"adst{layer}" if head == 0 else f"adst{layer}h{head}"


def head_weight_name(layer: int, head: int = 0) -> str:
    """Parameter key of a head's transform ``W``; head 0 reuses ``W{l}``."""
    return weight_name(layer) if head == 0 else f"W{layer}h{head}"


def _leaky(x: np.ndarray) -> np.ndarray:
    return np.where(x > 0.0, x, _LEAKY_SLOPE * x)


def _leaky_grad(x: np.ndarray) -> np.ndarray:
    return np.where(x > 0.0, 1.0, _LEAKY_SLOPE).astype(np.float32)


class _EdgeSpace:
    """Per-worker edge arrays derived from the local adjacency structure.

    Attributes:
        src: Edge source (local row id) per edge, aligned with ``col``.
        col: Edge target in the worker's compact (local + halo) space.
        num_local / num_cat: Row/column counts of the local adjacency.
    """

    def __init__(self, state: WorkerState):
        indptr = state.a_local.indptr
        self.col = state.a_local.indices.astype(np.int64)
        self.src = np.repeat(
            np.arange(state.num_local, dtype=np.int64), np.diff(indptr)
        )
        self.num_local = state.num_local
        self.num_cat = state.num_local + state.num_halo

    def segment_softmax(self, logits: np.ndarray) -> np.ndarray:
        """Softmax of edge logits within each source vertex's edge set."""
        seg_max = np.full(self.num_local, -np.inf, dtype=np.float64)
        np.maximum.at(seg_max, self.src, logits)
        shifted = np.exp(logits - seg_max[self.src])
        seg_sum = np.zeros(self.num_local, dtype=np.float64)
        np.add.at(seg_sum, self.src, shifted)
        return (shifted / seg_sum[self.src]).astype(np.float32)


class _GATCache:
    """Forward state one worker keeps per layer for the backward pass.

    ``u_cat`` / ``logits`` / ``alpha`` are lists with one entry per
    attention head.
    """

    def __init__(self, h_cat, u_cat, logits, alpha, z, output):
        self.h_cat = h_cat
        self.u_cat = u_cat
        self.logits = logits  # raw (pre-LeakyReLU) attention scores
        self.alpha = alpha
        self.z = z
        self.output = output


class GATTrainer(ECGraphTrainer):
    """Full-batch distributed GAT training (``num_heads`` averaged heads).

    Reuses the ECGraphTrainer's setup (partitioning, worker states,
    parameter servers, policies, NAC) and replaces the per-layer math.
    The forward policy (raw / compress / ReqEC-FP) governs the embedding
    fetches exactly as for GCN; the backward policy (raw / compress /
    ResEC-BP) governs the reverse partial-gradient pushes.
    """

    def __init__(self, *args, num_heads: int = 1, **kwargs):
        if num_heads < 1:
            raise ValueError("num_heads must be >= 1")
        super().__init__(*args, **kwargs)
        self.num_heads = num_heads

    def setup(self) -> None:
        if self._setup_done:
            return
        super().setup()
        # Attention (and extra-head weight) parameters join the servers
        # next to each layer's W/b. Head 0 reuses the base W so a
        # one-head GAT shares the GCN parameter layout.
        rng = np.random.default_rng(self.config.seed + 7)
        for layer in range(self.params.num_layers):
            d_in, d_out = self.params.dims[layer], self.params.dims[layer + 1]
            for head in range(self.num_heads):
                if head > 0:
                    self.servers.register(
                        head_weight_name(layer, head),
                        glorot_uniform((d_in, d_out), rng),
                    )
                self.servers.register(
                    attn_src_name(layer, head),
                    glorot_uniform((d_out,), rng) * 0.5,
                )
                self.servers.register(
                    attn_dst_name(layer, head),
                    glorot_uniform((d_out,), rng) * 0.5,
                )
        self._edges = [_EdgeSpace(state) for state in self.workers]
        self._gat_caches: list[list[_GATCache | None]] = []

    # ------------------------------------------------------------------
    def _layer_params(self, layer: int) -> list[str]:
        names = []
        for head in range(self.num_heads):
            names.extend([
                head_weight_name(layer - 1, head),
                attn_src_name(layer - 1, head),
                attn_dst_name(layer - 1, head),
            ])
        if self.params.use_bias:
            names.append(bias_name(layer - 1))
        return names

    def _head_params(self, params: dict, layer: int, head: int):
        return (
            params[head_weight_name(layer - 1, head)],
            params[attn_src_name(layer - 1, head)],
            params[attn_dst_name(layer - 1, head)],
        )

    def _gat_layer_forward(self, worker: int, h_cat, params: dict,
                           layer: int, is_last: bool) -> _GATCache:
        """One multi-head GAT layer on a worker's local vertices."""
        edges = self._edges[worker]
        u_heads, logit_heads, alpha_heads = [], [], []
        z = None
        for head in range(self.num_heads):
            weight, a_src, a_dst = self._head_params(params, layer, head)
            u_cat = (h_cat @ weight).astype(np.float32)
            s = u_cat[:edges.num_local] @ a_src
            d = u_cat @ a_dst
            logits = s[edges.src] + d[edges.col]
            alpha = edges.segment_softmax(_leaky(logits))
            z_head = np.zeros(
                (edges.num_local, u_cat.shape[1]), dtype=np.float32
            )
            np.add.at(z_head, edges.src, alpha[:, None] * u_cat[edges.col])
            z = z_head if z is None else z + z_head
            u_heads.append(u_cat)
            logit_heads.append(logits)
            alpha_heads.append(alpha)
        z = (z / self.num_heads).astype(np.float32)
        bias = params.get(bias_name(layer - 1))
        if bias is not None:
            z = z + bias
        output = z if is_last else self.params.activation(z).astype(np.float32)
        return _GATCache(h_cat, u_heads, logit_heads, alpha_heads, z, output)

    def _forward(self, t: int):
        num_layers = self.params.num_layers
        self._gat_caches = [
            [None] * (num_layers + 1) for _ in self.workers
        ]
        for state in self.workers:
            state.reset_iteration(num_layers)

        counters = {"train": [0, 0], "val": [0, 0], "test": [0, 0]}
        total_loss = 0.0

        for layer in range(1, num_layers + 1):
            names = self._layer_params(layer)
            pulled = {
                state.worker_id: self.servers.pull(state.worker_id, names)
                for state in self.workers
            }
            halos = self._forward_halos_gat(layer, t)
            for state in self.workers:
                i = state.worker_id
                prev = (
                    state.features
                    if layer == 1
                    else self._gat_caches[i][layer - 1].output
                )
                with self.runtime.worker_compute(i):
                    h_cat = np.concatenate([prev, halos[i]], axis=0)
                    cache = self._gat_layer_forward(
                        i, h_cat, pulled[i], layer,
                        is_last=(layer == num_layers),
                    )
                self._gat_caches[i][layer] = cache

        for state in self.workers:
            i = state.worker_id
            logits = self._gat_caches[i][num_layers].output
            with self.runtime.worker_compute(i):
                result = softmax_cross_entropy(
                    logits, state.labels, state.train_mask
                )
                local = int(state.train_mask.sum())
                scale = local / self._global_train_count if local else 0.0
                state.grad_rows[num_layers] = (result.grad * scale).astype(
                    np.float32
                )
                total_loss += result.loss * scale
                counters["train"][0] += result.correct
                counters["train"][1] += result.count
                predictions = logits.argmax(axis=1)
                for split, mask in (("val", state.val_mask),
                                    ("test", state.test_mask)):
                    counters[split][0] += int(
                        (predictions[mask] == state.labels[mask]).sum()
                    )
                    counters[split][1] += int(mask.sum())

        if self.config.fp_mode == "reqec":
            for pair, proportion in self.nac.last_proportions().items():
                self.tuner.update(pair, proportion)
        return total_loss, {
            split: (c, n) for split, (c, n) in counters.items()
        }

    def _forward_halos_gat(self, layer: int, t: int):
        if layer == 1 and self.config.cache_first_hop:
            return [state.halo_features for state in self.workers]
        if layer == 1:
            return self.nac.exchange(
                layer=0, t=t, rows_of=lambda s: s.features,
                policy=self._fp_policy, category="fp_embeddings",
                dim=self.graph.feature_dim,
            )
        return self.nac.exchange(
            layer=layer - 1, t=t,
            rows_of=lambda s, _l=layer: self._gat_caches[s.worker_id][
                _l - 1
            ].output,
            policy=self._fp_policy, category="fp_embeddings",
            dim=self.params.dims[layer - 1],
        )

    # ------------------------------------------------------------------
    def _backward(self, t: int) -> None:
        num_layers = self.params.num_layers
        grads: dict[int, dict[str, np.ndarray]] = {
            state.worker_id: {} for state in self.workers
        }

        for layer in range(num_layers, 0, -1):
            head_params = [
                (
                    self.servers.get(head_weight_name(layer - 1, head)),
                    self.servers.get(attn_src_name(layer - 1, head)),
                    self.servers.get(attn_dst_name(layer - 1, head)),
                )
                for head in range(self.num_heads)
            ]

            # Each worker computes its partial dH over the cat space
            # (summed over heads) plus its parameter-gradient shares.
            dh_partials: list[np.ndarray] = []
            for state in self.workers:
                i = state.worker_id
                edges = self._edges[i]
                cache = self._gat_caches[i][layer]
                # Head averaging: each head sees G / num_heads.
                g = state.grad_rows[layer] / self.num_heads
                with self.runtime.worker_compute(i):
                    dh = np.zeros_like(cache.h_cat)
                    g_src = g[edges.src]
                    for head, (weight, a_src, a_dst) in enumerate(head_params):
                        u_cat = cache.u_cat[head]
                        alpha = cache.alpha[head]
                        logits = cache.logits[head]
                        du = np.zeros_like(u_cat)
                        u_col = u_cat[edges.col]
                        # Through the weighted sum Z_i = sum alpha U_j.
                        np.add.at(du, edges.col, alpha[:, None] * g_src)
                        # Through the attention coefficients.
                        dalpha = np.einsum("ed,ed->e", g_src, u_col)
                        seg_dot = np.zeros(edges.num_local, dtype=np.float64)
                        np.add.at(seg_dot, edges.src, alpha * dalpha)
                        de = alpha * (dalpha - seg_dot[edges.src])
                        dr = (de * _leaky_grad(logits)).astype(np.float32)
                        ds = np.zeros(edges.num_local, dtype=np.float32)
                        np.add.at(ds, edges.src, dr)
                        dd = np.zeros(edges.num_cat, dtype=np.float32)
                        np.add.at(dd, edges.col, dr)
                        du[:edges.num_local] += ds[:, None] * a_src[None, :]
                        du += dd[:, None] * a_dst[None, :]

                        grads[i][attn_src_name(layer - 1, head)] = (
                            ds @ u_cat[:edges.num_local]
                        ).astype(np.float32)
                        grads[i][attn_dst_name(layer - 1, head)] = (
                            dd @ u_cat
                        ).astype(np.float32)
                        grads[i][head_weight_name(layer - 1, head)] = (
                            cache.h_cat.T @ du
                        ).astype(np.float32)
                        dh += du @ weight.T
                    if self.params.use_bias:
                        grads[i][bias_name(layer - 1)] = (
                            state.grad_rows[layer].sum(axis=0)
                        ).astype(np.float32)
                dh_partials.append(dh)

            if layer > 1:
                # Owners collect the halo partials of dH (the paper's
                # "embedding gradients from out-neighbors").
                remote_sums = self.nac.reverse_exchange(
                    layer=layer, t=t,
                    halo_rows_of=lambda s: dh_partials[s.worker_id][
                        s.num_local:
                    ],
                    policy=self._bp_policy, category="bp_gradients",
                    dim=self.params.dims[layer - 1],
                )
                for state in self.workers:
                    i = state.worker_id
                    cache_prev = self._gat_caches[i][layer - 1]
                    with self.runtime.worker_compute(i):
                        dh_total = (
                            dh_partials[i][:state.num_local] + remote_sums[i]
                        )
                        state.grad_rows[layer - 1] = (
                            dh_total * self.params.activation.derivative(
                                cache_prev.z
                            )
                        ).astype(np.float32)

        for state in self.workers:
            self.servers.push(state.worker_id, grads[state.worker_id])
        self.servers.apply_updates()

    # ------------------------------------------------------------------
    def evaluate_exact(self) -> dict[str, float]:
        """Exact-communication GAT inference (mirrors the GCN version)."""
        from repro.cluster.engine import ClusterRuntime
        from repro.core.messages import RawPolicy
        from repro.core.nac import NeighborAccessController

        self.setup()
        scratch_runtime = ClusterRuntime(self.spec)
        scratch_nac = NeighborAccessController(
            scratch_runtime, self.workers, self.config.codec_speedup
        )
        raw = RawPolicy()
        num_layers = self.params.num_layers

        outputs = [state.features for state in self.workers]
        for layer in range(1, num_layers + 1):
            params = {
                name: self.servers.get(name)
                for name in self._layer_params(layer)
            }
            if layer == 1 and self.config.cache_first_hop:
                halos = [state.halo_features for state in self.workers]
            else:
                halos = scratch_nac.exchange(
                    layer=layer - 1, t=0,
                    rows_of=lambda s: outputs[s.worker_id],
                    policy=raw, category="eval",
                    dim=outputs[0].shape[1],
                )
            new_outputs = []
            for state in self.workers:
                i = state.worker_id
                h_cat = np.concatenate([outputs[i], halos[i]], axis=0)
                cache = self._gat_layer_forward(
                    i, h_cat, params, layer,
                    is_last=(layer == num_layers),
                )
                new_outputs.append(cache.output)
            outputs = new_outputs

        metrics = {}
        for split, mask_of in (("train", lambda s: s.train_mask),
                               ("val", lambda s: s.val_mask),
                               ("test", lambda s: s.test_mask)):
            correct = count = 0
            for state in self.workers:
                mask = mask_of(state)
                predictions = outputs[state.worker_id].argmax(axis=1)
                correct += int((predictions[mask] == state.labels[mask]).sum())
                count += int(mask.sum())
            metrics[split] = correct / count if count else 0.0
        return metrics
