"""Unit tests for the binary wire format — and validation that the
policies' *computed* message sizes agree with real encoded bytes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cluster.serialize import (
    HEADER_BYTES,
    decode_exact,
    decode_quantized,
    decode_raw,
    decode_selector,
    encode_exact,
    encode_quantized,
    encode_raw,
    encode_selector,
)
from repro.compression.quantization import BucketQuantizer


@pytest.fixture
def matrix():
    rng = np.random.default_rng(0)
    return rng.standard_normal((17, 9)).astype(np.float32)


class TestRawFrames:
    def test_roundtrip(self, matrix):
        np.testing.assert_array_equal(decode_raw(encode_raw(matrix)), matrix)

    def test_vector_roundtrip(self):
        v = np.arange(5, dtype=np.float32)
        np.testing.assert_array_equal(decode_raw(encode_raw(v)), v)

    def test_frame_size_matches_policy_accounting(self, matrix):
        from repro.core.messages import ChannelKey, RawPolicy

        frame = encode_raw(matrix)
        message = RawPolicy().respond(
            ChannelKey(1, 0, 1), matrix, t=0
        )
        assert len(frame) == message.nbytes

    def test_bad_magic_rejected(self, matrix):
        frame = bytearray(encode_raw(matrix))
        frame[0] ^= 0xFF
        with pytest.raises(ValueError, match="magic"):
            decode_raw(bytes(frame))

    def test_truncated_frame_rejected(self, matrix):
        frame = encode_raw(matrix)
        with pytest.raises(ValueError, match="truncated"):
            decode_raw(frame[:-4])

    def test_wrong_kind_rejected(self, matrix):
        frame = encode_raw(matrix)
        with pytest.raises(ValueError, match="kind"):
            decode_quantized(frame)


class TestQuantFrames:
    @pytest.mark.parametrize("bits", [1, 2, 4, 8])
    @pytest.mark.parametrize("mode", ["table", "bounds"])
    def test_roundtrip(self, matrix, bits, mode):
        quantized = BucketQuantizer(bits, mode).encode(matrix)
        decoded = decode_quantized(encode_quantized(quantized))
        np.testing.assert_allclose(
            decoded.decode(), quantized.decode(), atol=1e-6
        )
        assert decoded.bits == bits
        assert decoded.table_mode == mode

    @pytest.mark.parametrize("bits", [1, 2, 4, 8])
    @pytest.mark.parametrize("mode", ["table", "bounds"])
    def test_computed_size_close_to_real(self, matrix, bits, mode):
        """payload_bytes() is what the traffic meter charges; it must
        track the real wire size to within a few header bytes."""
        quantized = BucketQuantizer(bits, mode).encode(matrix)
        real = len(encode_quantized(quantized))
        computed = quantized.payload_bytes()
        assert abs(real - computed) <= 16

    def test_bounds_mode_rebuilds_midpoints(self, matrix):
        quantized = BucketQuantizer(4, "bounds").encode(matrix)
        decoded = decode_quantized(encode_quantized(quantized))
        np.testing.assert_allclose(
            decoded.bucket_values, quantized.bucket_values, atol=1e-5
        )


class TestExactFrames:
    def test_roundtrip(self, matrix):
        rate = matrix * 0.1
        rows_out, rate_out = decode_exact(encode_exact(matrix, rate))
        np.testing.assert_array_equal(rows_out, matrix)
        np.testing.assert_array_equal(rate_out, rate)

    def test_size_matches_reqec_accounting(self, matrix):
        frame = encode_exact(matrix, matrix * 0.1)
        assert len(frame) == HEADER_BYTES + 8 + 2 * matrix.nbytes
        # The ReqEC policy charges header + 2x raw (shape words inside
        # its 16-byte header allowance).
        from repro.core.bit_tuner import BitTuner
        from repro.core.messages import ChannelKey
        from repro.core.reqec_fp import ReqECPolicy

        policy = ReqECPolicy(BitTuner(initial_bits=2, enabled=False),
                             trend_period=2)
        message = policy.respond(ChannelKey(1, 0, 1), matrix, t=1)
        assert abs(message.nbytes - len(frame)) <= 16

    def test_shape_mismatch_rejected(self, matrix):
        with pytest.raises(ValueError):
            encode_exact(matrix, matrix[:-1])


class TestSelectorFrames:
    def test_roundtrip(self, matrix):
        rng = np.random.default_rng(1)
        selection = rng.integers(0, 3, size=matrix.shape[0]).astype(np.uint8)
        quantized = BucketQuantizer(4).encode(matrix[selection != 1])
        frame = encode_selector(selection, quantized, proportion=0.42)
        sel_out, quant_out, proportion = decode_selector(frame)
        np.testing.assert_array_equal(sel_out, selection)
        np.testing.assert_allclose(
            quant_out.decode(), quantized.decode(), atol=1e-6
        )
        assert proportion == pytest.approx(0.42)

    def test_size_matches_reqec_accounting(self, matrix):
        """The selector-message size charged by ReqEC-FP tracks the real
        frame length."""
        from repro.core.bit_tuner import BitTuner
        from repro.core.messages import ChannelKey
        from repro.core.reqec_fp import ReqECPolicy

        policy = ReqECPolicy(BitTuner(initial_bits=4, enabled=False),
                             trend_period=4)
        key = ChannelKey(1, 0, 1)
        policy.respond(key, matrix, t=3)  # boundary primes the trend
        message = policy.respond(key, matrix + 0.05, t=4)
        assert message.payload[0] == "cps"
        _, selection, quantized, lo, hi, bits = message.payload
        frame = encode_selector(
            selection, quantized, message.meta["proportion"]
        )
        assert abs(len(frame) - message.nbytes) <= 32


class TestPropertyRoundTrips:
    @given(
        data=arrays(
            np.float32,
            st.tuples(st.integers(1, 12), st.integers(1, 6)),
            elements=st.floats(-50, 50, width=32),
        ),
        bits=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_quant_frame_roundtrip_property(self, data, bits):
        quantized = BucketQuantizer(bits).encode(data)
        decoded = decode_quantized(encode_quantized(quantized))
        np.testing.assert_allclose(
            decoded.decode(), quantized.decode(), atol=1e-6
        )


class TestCorruptFrames:
    """Corrupted frames (the fault injector flips wire bytes) must fail
    as wire-format ValueErrors, never as raw numpy buffer errors."""

    def _quant_frame(self, matrix, bits=4, mode="bounds"):
        return encode_quantized(BucketQuantizer(bits, mode).encode(matrix))

    def test_flipped_bits_byte_invalid_width(self, matrix):
        frame = bytearray(self._quant_frame(matrix))
        frame[24] = 0  # bits field: header (16) + shape (8)
        with pytest.raises(ValueError, match="invalid bit width"):
            decode_quantized(bytes(frame))
        frame[24] = 200
        with pytest.raises(ValueError, match="invalid bit width"):
            decode_quantized(bytes(frame))

    def test_flipped_bits_byte_wrong_payload_size(self, matrix):
        # 7 is a legal width, but the packed ids were sized for 4 bits.
        frame = bytearray(self._quant_frame(matrix, bits=4))
        frame[24] = 7
        with pytest.raises(ValueError, match="needs exactly"):
            decode_quantized(bytes(frame))

    def test_truncated_bucket_table(self, matrix):
        # Inflating the bits field makes the promised 2^B table far
        # larger than the bytes that follow.
        frame = bytearray(self._quant_frame(matrix, bits=4, mode="table"))
        frame[24] = 16
        with pytest.raises(ValueError, match="bucket table"):
            decode_quantized(bytes(frame))

    def test_short_packed_ids(self, matrix):
        import struct

        frame = self._quant_frame(matrix)
        payload = frame[16:-3]  # drop trailing packed bytes ...
        header = struct.pack("<HHIQ", 0xEC6A, 2, 0, len(payload))
        with pytest.raises(ValueError, match="needs exactly"):
            decode_quantized(header + payload)  # ... with a fixed header

    def test_truncated_before_metadata(self):
        import struct

        payload = struct.pack("<II", 3, 4)  # shape word only
        header = struct.pack("<HHIQ", 0xEC6A, 2, 0, len(payload))
        with pytest.raises(ValueError, match="truncated before"):
            decode_quantized(header + payload)

    def test_corrupt_selector_sel_bytes(self, matrix):
        rng = np.random.default_rng(2)
        selection = rng.integers(0, 3, size=matrix.shape[0]).astype(np.uint8)
        quantized = BucketQuantizer(4).encode(matrix[selection != 1])
        frame = bytearray(encode_selector(selection, quantized, 0.5))
        # sel_bytes field: header (16) + shape (8) + proportion (4).
        frame[28] = frame[28] + 1 & 0xFF
        with pytest.raises(ValueError, match="selector bytes"):
            decode_selector(bytes(frame))

    def test_corrupt_nested_quant_in_selector(self, matrix):
        rng = np.random.default_rng(3)
        selection = rng.integers(0, 3, size=matrix.shape[0]).astype(np.uint8)
        quantized = BucketQuantizer(4).encode(matrix[selection != 1])
        frame = bytearray(encode_selector(selection, quantized, 0.5))
        sel_bytes = (2 * selection.size + 7) // 8
        nested = 16 + 8 + 8 + sel_bytes  # nested QUANT frame's magic
        frame[nested] ^= 0xFF
        with pytest.raises(ValueError, match="bad magic"):
            decode_selector(bytes(frame))
