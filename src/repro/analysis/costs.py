"""The paper's Table II cost model, plus empirical validation hooks.

Table II compares the ML-centered architecture against EC-Graph on three
axes for one target vertex:

=================  =========================  ================================
quantity           ML-centered                EC-Graph
=================  =========================  ================================
memory             ``O(g^L * d)``             ``O(g * d)``
computation        ``O(g^(L-1) * d^2)``       ``O(L * d^2)``
communication      ``O(g^L * d0)`` (once)     ``O(T L g_rmt d / (32 / B))``
=================  =========================  ================================

The functions below evaluate the formulas with concrete parameters so the
Table II benchmark can print model-vs-measured columns (measured numbers
come from the trainers' traffic meters and cached-subgraph sizes).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostParameters", "ml_centered_costs", "ecgraph_costs",
           "CostEstimate"]


@dataclass(frozen=True)
class CostParameters:
    """Symbols of Table II.

    Attributes:
        avg_degree: ``g`` — mean vertex degree.
        avg_dim: ``d`` — representative embedding width.
        input_dim: ``d0`` — raw feature width.
        num_layers: ``L``.
        num_iterations: ``T``.
        avg_remote_neighbors: ``g_rmt`` — mean distinct remote 1-hop
            neighbours per vertex under the chosen partition.
        bits: ``B`` — quantization width (32 means no compression).
    """

    avg_degree: float
    avg_dim: float
    input_dim: float
    num_layers: int
    num_iterations: int
    avg_remote_neighbors: float
    bits: int = 32

    def __post_init__(self):
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if not 1 <= self.bits <= 32:
            raise ValueError("bits must be in [1, 32]")


@dataclass(frozen=True)
class CostEstimate:
    """Per-target-vertex cost estimates (floats in abstract units)."""

    memory: float
    computation: float
    communication: float


def ml_centered_costs(p: CostParameters) -> CostEstimate:
    """Table II, ML-centered column.

    Memory caches the L-hop neighbourhood's features (``g^L d``);
    computation runs the GNN over the cached tree (``g^(L-1) d^2``);
    communication pulls the L-hop information once (``g^L d0``).
    """
    g_pow_l = p.avg_degree ** p.num_layers
    return CostEstimate(
        memory=g_pow_l * p.avg_dim,
        computation=(p.avg_degree ** (p.num_layers - 1)) * p.avg_dim ** 2,
        communication=g_pow_l * p.input_dim,
    )


def ecgraph_costs(p: CostParameters) -> CostEstimate:
    """Table II, EC-Graph column.

    Memory holds only the 1-hop rows (``g d``); computation is ``L`` dense
    transforms (``L d^2``); communication ships ``g_rmt`` rows of width
    ``d`` per layer per iteration, divided by the compression factor
    ``32 / B``.
    """
    compression = 32.0 / p.bits
    return CostEstimate(
        memory=p.avg_degree * p.avg_dim,
        computation=p.num_layers * p.avg_dim ** 2,
        communication=(
            p.num_iterations
            * p.num_layers
            * p.avg_remote_neighbors
            * p.avg_dim
            / compression
        ),
    )
