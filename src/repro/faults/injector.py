"""Deterministic fault injector and fault/tolerance counters.

The injector answers, for every fault-prone event in the simulator,
"what goes wrong here?" — and counts both the faults it injects and the
tolerance machinery they trigger (retries, degradations, recoveries).

Message fates are *stateless* draws: each (epoch, layer, responder,
requester, attempt) tuple is hashed with the configured seed into its
own :class:`numpy.random.Generator`, so a fault schedule does not depend
on the order the exchange loop visits channels, and a retransmission of
the same message gets an independent fate. Scheduled faults (stragglers,
outages, crashes) are looked up directly from the config.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, fields

import numpy as np

from repro.faults.config import FaultConfig

__all__ = ["FaultCounters", "FaultInjector", "FATE_OK", "FATE_DROP",
           "FATE_CORRUPT", "FATE_DELAY"]

FATE_OK = "ok"
FATE_DROP = "drop"
FATE_CORRUPT = "corrupt"
FATE_DELAY = "delay"


@dataclass
class FaultCounters:
    """Everything that went wrong, and everything that absorbed it."""

    drops: int = 0
    corruptions: int = 0
    delays: int = 0
    retries: int = 0
    retry_bytes: int = 0
    degraded_predicted: int = 0
    degraded_cached: int = 0
    degraded_zero: int = 0
    residual_compensations: int = 0
    ps_retries: int = 0
    crashes: int = 0
    params_rolled_back: int = 0
    corrupt_checkpoints: int = 0
    extra_seconds: float = 0.0
    # Elastic membership (permanent loss / adoption / watchdog).
    permanent_failures: int = 0
    adoptions: int = 0
    rejoins: int = 0
    watchdog_trips: int = 0
    watchdog_rollbacks: int = 0
    watchdog_escalations: int = 0

    @property
    def degraded(self) -> int:
        """Channels that fell back to an approximation this run."""
        return (
            self.degraded_predicted + self.degraded_cached + self.degraded_zero
        )

    @property
    def faults_injected(self) -> int:
        return (
            self.drops + self.corruptions + self.delays + self.crashes
            + self.permanent_failures
        )

    def as_dict(self) -> dict:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["degraded"] = self.degraded
        out["faults_injected"] = self.faults_injected
        return out


class FaultInjector:
    """Seeded oracle for every injected fault in one training run.

    The trainer creates one injector per run (when
    ``config.faults.enabled``), attaches it to the cluster runtime, the
    NAC and the parameter servers, and advances its epoch clock from
    ``run_epoch``. Crashes are consumed exactly once even if an epoch is
    re-entered.
    """

    def __init__(self, config: FaultConfig):
        if not config.enabled:
            raise ValueError(
                "FaultInjector requires an enabled FaultConfig; disabled "
                "runs must not construct one"
            )
        self.config = config
        self.counters = FaultCounters()
        self._epoch = 0
        self._consumed_crashes: set[tuple[int, int]] = set()
        self._consumed_losses: set[tuple[int, int]] = set()
        self._consumed_rejoins: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Epoch clock
    # ------------------------------------------------------------------
    def start_epoch(self, t: int) -> None:
        self._epoch = t

    @property
    def epoch(self) -> int:
        return self._epoch

    # ------------------------------------------------------------------
    # Message fates
    # ------------------------------------------------------------------
    def _uniform(self, *parts: int) -> float:
        seed = (self.config.seed, self._epoch) + parts
        return float(np.random.default_rng(seed).random())

    def message_fate(
        self,
        layer: int,
        responder: int,
        requester: int,
        category: str,
        attempt: int,
    ) -> str:
        """Fate of one delivery attempt of a worker-to-worker message."""
        cfg = self.config
        if not cfg.any_message_faults:
            return FATE_OK
        u = self._uniform(
            zlib.crc32(category.encode()), layer + 1, responder, requester,
            attempt,
        )
        if u < cfg.drop_prob:
            self.counters.drops += 1
            return FATE_DROP
        if u < cfg.drop_prob + cfg.corrupt_prob:
            self.counters.corruptions += 1
            return FATE_CORRUPT
        if u < cfg.drop_prob + cfg.corrupt_prob + cfg.delay_prob:
            self.counters.delays += 1
            return FATE_DELAY
        return FATE_OK

    def backoff_seconds(self, attempt: int) -> float:
        """Stall before retransmission ``attempt`` (1-based)."""
        cfg = self.config
        return cfg.backoff_base_s * cfg.backoff_factor ** max(attempt - 1, 0)

    # ------------------------------------------------------------------
    # Stragglers
    # ------------------------------------------------------------------
    def compute_scale(self, worker: int) -> float:
        """Compute-time multiplier for ``worker`` at the current epoch."""
        cfg = self.config
        if cfg.straggler_factor == 1.0 or worker not in cfg.straggler_workers:
            return 1.0
        if cfg.straggler_epochs is not None:
            start, stop = cfg.straggler_epochs
            if not start <= self._epoch < stop:
                return 1.0
        return cfg.straggler_factor

    # ------------------------------------------------------------------
    # Parameter-server outages
    # ------------------------------------------------------------------
    def server_outage_attempts(self, server: int) -> int:
        """Failed attempts each shard message to ``server`` pays now."""
        if (self._epoch, server) in self.config.server_outages:
            return self.config.outage_attempts
        return 0

    # ------------------------------------------------------------------
    # Crashes
    # ------------------------------------------------------------------
    def take_crashes(self, t: int) -> list[int]:
        """Workers crashing just before epoch ``t`` (consumed once)."""
        crashed = []
        for epoch, worker in self.config.crash_schedule:
            if epoch == t and (epoch, worker) not in self._consumed_crashes:
                self._consumed_crashes.add((epoch, worker))
                crashed.append(worker)
        return crashed

    # ------------------------------------------------------------------
    # Elastic membership
    # ------------------------------------------------------------------
    def take_permanent_failures(self, t: int) -> list[int]:
        """Workers lost for good just before epoch ``t`` (consumed once)."""
        lost = []
        for epoch, worker in self.config.permanent_failures:
            if epoch == t and (epoch, worker) not in self._consumed_losses:
                self._consumed_losses.add((epoch, worker))
                lost.append(worker)
        return lost

    def take_rejoins(self, t: int) -> list[int]:
        """Workers rejoining just before epoch ``t`` (consumed once)."""
        rejoined = []
        for epoch, worker in self.config.rejoin_schedule:
            if epoch == t and (epoch, worker) not in self._consumed_rejoins:
                self._consumed_rejoins.add((epoch, worker))
                rejoined.append(worker)
        return rejoined
