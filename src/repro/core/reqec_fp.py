"""ReqEC-FP: requesting-end error compensation for the forward pass
(paper section IV-B, Algorithms 3 and 4).

Every ``T_tr`` iterations (a *trend group*) the responding worker ships
the exact embedding rows together with the per-coordinate changing-rate
matrix ``M_cr = (H_now - H_last) / T_tr``. In between, both ends can form
three approximations of the current rows:

* ``compressed`` — bucket-quantized rows (id 0),
* ``predicted`` — ``H_last + M_cr * (t mod T_tr + 1)`` (id 1), computable
  on the requesting end with **no payload at all**,
* ``average`` — the mean of the two (id 2).

The responder evaluates the L1 error of each candidate against the truth
it holds, selects per vertex (or per element / per matrix) the best one,
and ships only the 2-bit selector plus the quantized rows the requester
cannot predict. The proportion of predicted selections drives the
adaptive :class:`~repro.core.bit_tuner.BitTuner`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.quantization import BucketQuantizer
from repro.core.bit_tuner import BitTuner
from repro.core.messages import ChannelKey, ChannelMessage, ReceiveResult
from repro.obs.tracing import monotonic_now

__all__ = ["TrendState", "ReqECPolicy", "SELECT_COMPRESSED",
           "SELECT_PREDICTED", "SELECT_AVERAGE"]

SELECT_COMPRESSED = 0
SELECT_PREDICTED = 1
SELECT_AVERAGE = 2

_HEADER_BYTES = 24  # frame header + shape word (see cluster.serialize)


@dataclass
class TrendState:
    """Last exact snapshot and changing rate for one channel."""

    h_last: np.ndarray
    m_cr: np.ndarray
    boundary_t: int


class ReqECPolicy:
    """Forward-pass exchange with requesting-end compensation.

    One instance serves all channels of a training run; per-channel trend
    state is kept for both ends (in the real system they are separate
    processes whose states stay in sync through the boundary messages).
    """

    def __init__(
        self,
        tuner: BitTuner,
        trend_period: int = 10,
        granularity: str = "vertex",
        table_mode: str = "table",
    ):
        if granularity not in ("vertex", "matrix", "element"):
            raise ValueError(f"unknown granularity {granularity!r}")
        self.tuner = tuner
        self.trend_period = trend_period
        self.granularity = granularity
        self.table_mode = table_mode
        # Optional CompressionHealthMonitor; the trainer attaches it when
        # telemetry is enabled so every selector outcome is sampled.
        self.health = None
        self._responder_trend: dict[ChannelKey, TrendState] = {}
        self._requester_trend: dict[ChannelKey, TrendState] = {}
        self._quantizers: dict[int, BucketQuantizer] = {}

    @property
    def name(self) -> str:
        return f"reqec(T={self.trend_period},{self.granularity})"

    def _quantizer(self, bits: int) -> BucketQuantizer:
        if bits not in self._quantizers:
            self._quantizers[bits] = BucketQuantizer(bits, self.table_mode)
        return self._quantizers[bits]

    def _is_boundary(self, t: int) -> bool:
        return (t + 1) % self.trend_period == 0

    # ------------------------------------------------------------------
    # Responding end (Algorithm 4)
    # ------------------------------------------------------------------
    def respond(
        self,
        key: ChannelKey,
        rows: np.ndarray,
        t: int,
        rows_idx: np.ndarray | None = None,
    ) -> ChannelMessage:
        if rows_idx is not None:
            raise NotImplementedError(
                "ReqEC-FP keeps dense per-channel trend state; sampled "
                "training uses the compression or ResEC policies instead"
            )
        rows = np.ascontiguousarray(rows, dtype=np.float32)
        state = self._responder_trend.get(key)

        if self._is_boundary(t):
            if state is not None and state.h_last.shape == rows.shape:
                m_cr = (rows - state.h_last) / self.trend_period
            else:
                m_cr = np.zeros_like(rows)
            self._responder_trend[key] = TrendState(
                h_last=rows.copy(), m_cr=m_cr, boundary_t=t
            )
            return ChannelMessage(
                payload=("exact", rows.copy(), m_cr.copy()),
                nbytes=_HEADER_BYTES + 2 * rows.nbytes,
            )

        bits = self.tuner.bits(key.pair)
        quantizer = self._quantizer(bits)
        start = monotonic_now()

        if state is None:
            # No trend snapshot yet (first trend group): compressed only.
            quantized = quantizer.encode(rows)
            elapsed = monotonic_now() - start
            if self.health is not None:
                self.health.record_selection(
                    key.pair, (rows.shape[0], 0, 0), bits, t
                )
            return ChannelMessage(
                payload=("cps_only", quantized),
                nbytes=quantized.payload_bytes(),
                codec_seconds=elapsed,
                meta={"proportion": 0.0, "bits": bits},
            )

        steps = t % self.trend_period + 1
        h_pdt = state.h_last + state.m_cr * steps
        # Quantize exactly once: the bucket ids score the compressed
        # candidate AND — sliced at the non-predicted rows — form the
        # subset payload, since ids depend only on (value, lo, hi, bits).
        ids, reps, lo, hi = quantizer.encode_ids(rows)
        h_cps = reps[ids].reshape(rows.shape).astype(np.float32)
        h_avg = 0.5 * (h_pdt + h_cps)

        selection, proportion = self._select(rows, h_cps, h_pdt, h_avg)
        payload, nbytes = self._build_compressed_payload(
            rows, selection, quantizer, ids, reps, lo, hi
        )
        elapsed = monotonic_now() - start
        if self.health is not None:
            counts = np.bincount(selection.ravel(), minlength=3)
            self.health.record_selection(key.pair, counts, bits, t)
        return ChannelMessage(
            payload=("cps", selection, payload, lo, hi, bits),
            nbytes=nbytes,
            codec_seconds=elapsed,
            meta={"proportion": proportion, "bits": bits},
        )

    def _select(
        self,
        truth: np.ndarray,
        h_cps: np.ndarray,
        h_pdt: np.ndarray,
        h_avg: np.ndarray,
    ) -> tuple[np.ndarray, float]:
        """Pick the best candidate at the configured granularity.

        Returns the selection array (shape depends on granularity) and
        the proportion of predicted selections.
        """
        err_cps = np.abs(h_cps - truth)
        err_pdt = np.abs(h_pdt - truth)
        err_avg = np.abs(h_avg - truth)
        if self.granularity == "vertex":
            s = np.stack(
                [err_cps.sum(axis=1), err_pdt.sum(axis=1), err_avg.sum(axis=1)],
                axis=1,
            )
            selection = s.argmin(axis=1).astype(np.uint8)
        elif self.granularity == "matrix":
            s = np.array([err_cps.sum(), err_pdt.sum(), err_avg.sum()])
            selection = np.full(
                truth.shape[0], int(s.argmin()), dtype=np.uint8
            )
        else:  # element
            s = np.stack([err_cps, err_pdt, err_avg], axis=2)
            selection = s.argmin(axis=2).astype(np.uint8)
        proportion = float((selection == SELECT_PREDICTED).mean())
        return selection, proportion

    def _build_compressed_payload(
        self,
        rows: np.ndarray,
        selection: np.ndarray,
        quantizer: BucketQuantizer,
        ids: np.ndarray,
        reps: np.ndarray,
        lo: float,
        hi: float,
    ):
        """Ship only what the requester cannot predict; size the wire.

        Vertex/matrix granularity ships whole rows for non-predicted
        vertices; element granularity ships individual elements. The
        already-computed bucket ids are sliced and re-packed — quantizing
        a value subset with the full-matrix (lo, hi) yields exactly these
        ids, so no second quantization pass is needed.
        """
        mask = selection != SELECT_PREDICTED
        id_matrix = ids.reshape(rows.shape)
        if self.granularity == "element":
            sub_ids = id_matrix[mask]
            sub_shape = sub_ids.shape
            selector_bits = 2 * selection.size
        else:
            sub = id_matrix[mask]
            sub_ids = sub.ravel()
            sub_shape = sub.shape
            selector_bits = 2 * selection.shape[0]
        quantized = quantizer.from_ids(sub_ids, sub_shape, reps, lo, hi)
        selector_bytes = -(-selector_bits // 8)
        # Frame + shape + (proportion, selector length) + selector bits
        # + the nested quantized frame — see cluster.serialize.
        nbytes = 16 + 8 + 8 + selector_bytes + quantized.payload_bytes()
        return quantized, nbytes

    # ------------------------------------------------------------------
    # Requesting end (Algorithm 3)
    # ------------------------------------------------------------------
    def receive(
        self,
        key: ChannelKey,
        message: ChannelMessage,
        t: int,
        rows_idx: np.ndarray | None = None,
    ) -> ReceiveResult:
        kind = message.payload[0]
        if kind == "exact":
            _, rows, m_cr = message.payload
            self._requester_trend[key] = TrendState(
                h_last=rows.copy(), m_cr=m_cr.copy(), boundary_t=t
            )
            return ReceiveResult(rows=rows.copy())

        if kind == "cps_only":
            start = monotonic_now()
            rows = message.payload[1].decode()
            return ReceiveResult(
                rows=rows,
                codec_seconds=monotonic_now() - start,
                meta=dict(message.meta),
            )

        _, selection, quantized, lo, hi, bits = message.payload
        state = self._requester_trend.get(key)
        if state is None:
            raise RuntimeError(
                f"channel {key} received a selector message before any "
                "exact trend snapshot"
            )
        start = monotonic_now()
        steps = t % self.trend_period + 1
        h_pdt = state.h_last + state.m_cr * steps
        rows = self._reconstruct(selection, quantized, h_pdt)
        return ReceiveResult(
            rows=rows,
            codec_seconds=monotonic_now() - start,
            meta=dict(message.meta),
        )

    def _reconstruct(
        self, selection: np.ndarray, quantized, h_pdt: np.ndarray
    ) -> np.ndarray:
        """Merge predicted rows with the shipped quantized payload."""
        out = h_pdt.astype(np.float32).copy()
        mask = selection != SELECT_PREDICTED
        if not mask.any():
            return out
        decoded = quantized.decode()
        if self.granularity == "element":
            cps_values = decoded
            avg_mask_flat = selection[mask] == SELECT_AVERAGE
            merged = cps_values.copy()
            merged[avg_mask_flat] = 0.5 * (
                cps_values[avg_mask_flat] + h_pdt[mask][avg_mask_flat]
            )
            out[mask] = merged
            return out
        cps_rows = decoded
        sub_selection = selection[mask]
        merged = cps_rows.copy()
        avg_rows = sub_selection == SELECT_AVERAGE
        if avg_rows.any():
            merged[avg_rows] = 0.5 * (cps_rows[avg_rows] + h_pdt[mask][avg_rows])
        out[mask] = merged
        return out

    # ------------------------------------------------------------------
    # Fault tolerance (driven by the NAC)
    # ------------------------------------------------------------------
    def fallback_rows(self, key: ChannelKey, t: int) -> np.ndarray | None:
        """Requester-end stale-halo approximation of the current rows.

        When a message is undeliverable, the requester can still form
        the *predicted* candidate from its last trend snapshot with no
        payload at all — the same machinery Algorithm 3 uses between
        boundaries, extrapolated from however old the snapshot is.
        """
        state = self._requester_trend.get(key)
        if state is None:
            return None
        steps = t - state.boundary_t
        return (state.h_last + state.m_cr * steps).astype(np.float32)

    def on_delivery_failure(
        self,
        key: ChannelKey,
        message: ChannelMessage,
        rows_idx: np.ndarray | None = None,
    ) -> bool:
        """Keep both ends consistent after a lost message.

        A lost boundary snapshot is the dangerous case: the responder
        would start shipping selector messages the requester cannot
        reconstruct. Rolling the responder's trend state back makes the
        channel fall back to compressed-only messages until the next
        boundary resynchronizes both ends.
        """
        del rows_idx
        if message.payload[0] == "exact":
            self._responder_trend.pop(key, None)
        return False

    def invalidate_worker(self, worker: int) -> None:
        """Drop trend state touching ``worker`` (crash recovery).

        Channels the crashed worker responds on *or* requests from must
        restart their trend group: the rebuilt process holds neither the
        snapshot nor the changing rate, and the surviving end must not
        reconstruct against state the other side no longer has.
        """
        for table in (self._responder_trend, self._requester_trend):
            stale = [
                key for key in table
                if worker in (key.responder, key.requester)
            ]
            for key in stale:
                del table[key]

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all per-channel state (between independent runs)."""
        self._responder_trend.clear()
        self._requester_trend.clear()
