"""The EC-Graph distributed full-batch trainer (paper Algorithms 1-2).

One trainer object runs the whole simulated cluster: it partitions the
graph, builds the per-worker states, registers the model on the parameter
servers, and then drives synchronous training iterations:

* forward: per layer, workers pull the layer's parameters, exchange halo
  embeddings through the configured forward policy (raw / compressed /
  ReqEC-FP / delayed), and run the local GCN kernel;
* backward: per layer, workers exchange halo embedding-gradients through
  the backward policy (raw / compressed / ResEC-BP / delayed), accumulate
  weight/bias gradient shares and push them; servers apply Adam.

The same class also covers the baselines that differ only in exchange
policy (Non-cp, Cp-fp/Cp-bp, DistGNN's delayed aggregation) and the
single-machine standalone configuration (one worker = no halo at all).

Since the staged-engine refactor the iteration itself runs in
:mod:`repro.engine`: ``setup()`` assembles a single
:class:`~repro.engine.context.ExchangeContext` (policies, Bit-Tuner,
transport, fault injector, telemetry, recovery hooks) and a
:class:`~repro.engine.core.TrainerCore` driving the
``HaloPlanStage -> ForwardStage -> BackwardStage -> OptimizeStage ->
EvalStage`` pipeline over a :class:`~repro.engine.backends.ModelBackend`.
``ECGraphTrainer`` remains the stable public facade — construction
arguments, ``run_epoch``/``train``/``evaluate_exact``, the policy and
counter attributes, and the private hooks the test suite exercises all
behave exactly as before, bit-identically.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.engine import ClusterRuntime
from repro.cluster.param_server import ParameterServerGroup
from repro.cluster.topology import ClusterSpec
from repro.core.bit_tuner import BitTuner
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.models import GNNParameters, build_parameters
from repro.core.nac import NeighborAccessController
from repro.core.policies import make_exchange_policy
from repro.core.results import ConvergenceRun, EpochResult
from repro.core.worker import WorkerState, build_worker_states
from repro.engine import (
    ExchangeContext,
    GCNBackend,
    ModelBackend,
    RecoveryManager,
    TrainerCore,
)
from repro.faults.injector import FaultCounters, FaultInjector
from repro.graph.attributed import AttributedGraph
from repro.graph.normalize import normalized_adjacency
from repro.graph.store.base import GraphStoreBundle
from repro.nn.optim import make_optimizer
from repro.obs.telemetry import Telemetry
from repro.obs.tracing import monotonic_now
from repro.partition import make_partitioner
from repro.partition.base import Partition

__all__ = ["ECGraphTrainer"]

# One-time flag for the GIL-contention warning below (module-level so a
# whole benchmark sweep warns once, not once per trainer).
_GIL_THREADS_WARNED = False


def _reset_thread_warning() -> None:
    """Re-arm the one-time exchange-threads warning (test hook)."""
    global _GIL_THREADS_WARNED
    _GIL_THREADS_WARNED = False


class ECGraphTrainer:
    """Distributed full-batch GCN/GraphSAGE training on a simulated cluster."""

    def __init__(
        self,
        graph: AttributedGraph | GraphStoreBundle,
        model_config: ModelConfig,
        cluster_spec: ClusterSpec,
        config: ECGraphConfig | None = None,
        partitioner: str = "hash",
        partition: Partition | None = None,
        fp_policy=None,
        bp_policy=None,
    ):
        """Args:
        graph: Attributed input graph — a resident
            :class:`AttributedGraph` (the historical path, bit-identical
            to every pinned golden run) or a
            :class:`~repro.graph.store.GraphStoreBundle` whose features
            and adjacency may live out-of-core; worker shards are then
            gathered through the store row/block APIs and the normalized
            adjacency stays a lazy view.
        model_config: GNN architecture.
        cluster_spec: Simulated cluster shape.
        config: EC-Graph pipeline settings (defaults reproduce the
            paper's full configuration).
        partitioner: Partitioner name used when ``partition`` is None.
        partition: Pre-computed partition (reused across benchmark runs).
        fp_policy / bp_policy: Explicit exchange-policy objects that
            override the config's ``fp_mode``/``bp_mode`` (used to plug
            in baseline codecs via :class:`~repro.core.policies.CodecPolicy`).
        """
        self.graph = graph
        self.model_config = model_config
        self.spec = cluster_spec
        self.config = config or ECGraphConfig()
        self.obs = Telemetry(self.config.obs)
        self._partitioner_name = partitioner
        self._given_partition = partition

        self.runtime: ClusterRuntime | None = None
        self.servers: ParameterServerGroup | None = None
        self.workers: list[WorkerState] = []
        self.params: GNNParameters | None = None
        self.tuner: BitTuner | None = None
        self.nac: NeighborAccessController | None = None
        self.partition: Partition | None = None
        self.engine: TrainerCore | None = None
        self._fp_policy = fp_policy
        self._bp_policy = bp_policy
        self._fp_policy_override = fp_policy is not None
        self._bp_policy_override = bp_policy is not None
        self._preprocessing_seconds = 0.0
        self._global_train_count = 0
        self._setup_done = False
        self._lr_schedule = None
        self._injector: FaultInjector | None = None
        self._normalized = None
        self._ctx: ExchangeContext | None = None
        self._backend: ModelBackend | None = None
        self._recovery: RecoveryManager | None = None

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def setup(self) -> None:
        """Partition, build workers, register parameters, prime caches."""
        if self._setup_done:
            return
        start = monotonic_now()

        if self._given_partition is not None:
            self.partition = self._given_partition
        else:
            partitioner = make_partitioner(
                self._partitioner_name, seed=self.config.seed
            )
            self.partition = partitioner.partition(
                self.graph.adjacency, self.spec.num_workers
            )
        if self.partition.num_parts != self.spec.num_workers:
            raise ValueError(
                f"partition has {self.partition.num_parts} parts but the "
                f"cluster has {self.spec.num_workers} workers"
            )

        scheme = "gcn" if self.model_config.model == "gcn" else "row"
        normalized = normalized_adjacency(self.graph.adjacency, scheme)
        self._normalized = normalized
        self.workers = build_worker_states(self.graph, normalized, self.partition)

        self.runtime = ClusterRuntime(self.spec, telemetry=self.obs)
        self.servers = ParameterServerGroup(
            self.runtime,
            lambda: make_optimizer(
                self.config.optimizer,
                self.config.learning_rate,
                weight_decay=self.config.weight_decay,
            ),
            reduce="sum",
        )
        self.params = build_parameters(
            self.model_config,
            self.graph.feature_dim,
            self.graph.num_classes,
            seed=self.config.seed,
        )
        for name, tensor in self.params.tensors.items():
            self.servers.register(name, tensor.copy())

        self.tuner = BitTuner(
            initial_bits=self.config.fp_bits,
            raise_threshold=self.config.tuner_raise,
            lower_threshold=self.config.tuner_lower,
            enabled=self.config.adaptive_bits,
        )
        if not self._fp_policy_override:
            self._fp_policy = make_exchange_policy("fp", self.config, self.tuner)
        if not self._bp_policy_override:
            self._bp_policy = make_exchange_policy("bp", self.config)
        multiprocess = self.config.execution == "multiprocess"
        if multiprocess and self.config.faults.elastic:
            raise ValueError(
                "execution='multiprocess' does not support elastic "
                "membership yet: partition adoption rebinds worker state "
                "that forked processes have already snapshotted. Use "
                "execution='sync' for elastic runs."
            )
        exchange_threads = self.config.exchange_threads
        if multiprocess:
            # Thread fan-out is pointless under real processes (and
            # threads must not leak across fork): force the serial path.
            exchange_threads = 0
        elif exchange_threads > 0:
            global _GIL_THREADS_WARNED
            if not _GIL_THREADS_WARNED:
                _GIL_THREADS_WARNED = True
                import warnings

                warnings.warn(
                    "exchange_threads > 0 runs the halo fan-out in "
                    "Python threads, which contend on the GIL: the "
                    "committed benchmark (BENCH_core.json, "
                    "epoch.speedup_optimized) measured this 'optimized' "
                    "config at 0.70x the sequential path. Use "
                    "execution='multiprocess' for real parallelism; see "
                    "docs/execution.md.",
                    RuntimeWarning,
                    stacklevel=2,
                )
        self.nac = NeighborAccessController(
            self.runtime, self.workers, self.config.codec_speedup,
            buffer_pool=self.config.halo_buffer_pool,
            threads=exchange_threads,
        )
        if self.config.faults.enabled:
            self._injector = FaultInjector(self.config.faults)
            self.runtime.fault_injector = self._injector
            self.nac.injector = self._injector
        self._wire_telemetry()

        self._global_train_count = int(self.graph.train_mask.sum())
        if self._global_train_count == 0:
            raise ValueError("graph has no training vertices")

        if self.config.cache_first_hop:
            self._cache_halo_features()

        self._build_engine()

        self._preprocessing_seconds = (
            monotonic_now() - start + self.partition.seconds
        )
        # Feature-cache traffic happens once, in preprocessing: convert
        # the charged bytes into time and fold them in.
        cache_bytes = self.runtime.meter.epoch_bytes()
        if cache_bytes:
            self._preprocessing_seconds += self.runtime.meter.epoch_comm_seconds(
                self.spec.network, self.spec.num_machines
            )
            self.runtime.end_epoch()  # drain the setup epoch
            self.runtime._epoch_history.clear()
            # Keep the metrics epoch scope aligned with the meter's:
            # setup traffic belongs to preprocessing, not to epoch 0
            # (it stays in the lifetime scope either way).
            self.obs.metrics.reset_epoch()
        self._setup_done = True

    def _make_backend(self) -> ModelBackend:
        """Architecture hook: subclasses supply their own backend."""
        return GCNBackend()

    def _build_engine(self) -> None:
        """Assemble the ExchangeContext and the staged TrainerCore."""
        self._backend = self._make_backend()
        executor = None
        if self.config.execution == "multiprocess":
            from repro.mp import ProcessExecutor

            executor = ProcessExecutor()
        self._ctx = ExchangeContext(
            config=self.config,
            model_config=self.model_config,
            graph=self.graph,
            spec=self.spec,
            runtime=self.runtime,
            servers=self.servers,
            workers=self.workers,
            params=self.params,
            tuner=self.tuner,
            fp_policy=self._fp_policy,
            bp_policy=self._bp_policy,
            transport=self.nac,
            telemetry=self.obs,
            injector=self._injector,
            global_train_count=self._global_train_count,
            executor=executor,
        )
        self._recovery = RecoveryManager(self._ctx, self)
        if self.config.faults.elastic and self._injector is not None:
            from repro.membership import (
                ConvergenceWatchdog,
                MembershipView,
                PartitionReassigner,
            )

            membership = MembershipView(
                self.spec.num_workers, self.config.faults
            )
            reassigner = PartitionReassigner(
                self._ctx, self._backend, self._normalized,
                self.partition, membership,
            )
            watchdog = ConvergenceWatchdog(self.config.faults)
            self._recovery.attach_elasticity(membership, reassigner, watchdog)
            self._ctx.membership = membership
        self.engine = TrainerCore(
            self._ctx, self._backend, recovery=self._recovery
        )

    def _wire_telemetry(self) -> None:
        """Attach the health monitor and topology gauges (enabled only)."""
        if not self.obs.enabled:
            return
        if self.obs.health is not None:
            self.obs.health.set_model(self.model_config.num_layers)
            self.tuner.observer = self.obs.health.record_bits
            for policy in (self._fp_policy, self._bp_policy):
                if hasattr(policy, "health"):
                    policy.health = self.obs.health
        for state in self.workers:
            for name, value in state.stats().items():
                self.obs.metrics.set_gauge(
                    f"worker_{name}", value, worker=state.worker_id
                )

    def _cache_halo_features(self) -> None:
        """The paper's first basic optimization: cache remote 1-hop
        neighbour features on each worker once, before training."""
        for state in self.workers:
            halo = np.zeros(
                (state.num_halo, self.graph.feature_dim), dtype=np.float32
            )
            for owner, slots in state.halo_slots.items():
                responder = self.workers[owner]
                rows = responder.features[responder.serves[state.worker_id]]
                halo[slots] = rows
                self.runtime.send_worker_to_worker(
                    owner, state.worker_id, rows.nbytes + 16, "feature_cache"
                )
            state.halo_features = halo

    # ------------------------------------------------------------------
    # Compatibility hooks: the historical private surface, delegated to
    # the staged engine (the test suite and subclasses exercise these).
    # ------------------------------------------------------------------
    def _adjacency(self, state: WorkerState, layer: int):
        """Adjacency rows used by ``state`` at ``layer`` (1-based)."""
        return self._backend.adjacency(state, layer)

    def _exchange_subset(
        self, layer: int, direction: str
    ) -> dict[tuple[int, int], np.ndarray] | None:
        """Per-channel row subsets for a sampled exchange (None = all)."""
        return self._backend.exchange_subset(layer, direction)

    def _on_epoch_start(self, t: int) -> None:
        """Called before each iteration (sampling hooks)."""
        self.engine.halo_plan.run(t)

    def _forward(self, t: int) -> tuple[float, dict[str, tuple[int, int]]]:
        """Run the forward pass; returns (loss, per-mask correct/count)."""
        return self.engine.forward.run(t)

    def _backward(self, t: int) -> None:
        grads = self.engine.backward.run(t)
        self.engine.optimize.run(grads)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run_epoch(self, t: int) -> EpochResult:
        """One synchronous training iteration (forward + backward)."""
        self.setup()
        return self.engine.run_epoch(t, lr_schedule=self._lr_schedule)

    def close(self) -> None:
        """Release execution resources: worker processes and shared
        memory under ``execution="multiprocess"``, the halo fan-out
        thread pool under ``execution="sync"``. Idempotent; the trainer
        remains usable for supervisor-side reads (counters, params)."""
        if self.engine is not None:
            self.engine.shutdown()
        elif self.nac is not None:
            self.nac.close()

    def __enter__(self) -> "ECGraphTrainer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Fault tolerance: checkpointed crash recovery
    # ------------------------------------------------------------------
    @property
    def fault_counters(self) -> FaultCounters | None:
        """Injected-fault and tolerance counters (None when disabled)."""
        return self._injector.counters if self._injector else None

    @property
    def membership_events(self) -> list[dict]:
        """Elastic-membership timeline (empty when elasticity is off)."""
        if self._recovery is None or self._recovery.membership is None:
            return []
        return [e.as_dict() for e in self._recovery.membership.events]

    @property
    def _param_snapshot(self) -> tuple[int, dict[str, np.ndarray]] | None:
        """In-memory parameter snapshot (held by the recovery manager)."""
        return self._recovery.param_snapshot if self._recovery else None

    def _maybe_checkpoint(self, t: int) -> None:
        """Auto-checkpoint the server parameters after epoch ``t``."""
        self._recovery.maybe_checkpoint(t)

    def _recover_workers(self, crashed: list[int]) -> None:
        """Rebuild crashed workers and resynchronize the exchange state."""
        self._recovery.recover_workers(crashed)

    def _restore_latest_checkpoint(self) -> bool:
        """Load the newest readable parameter checkpoint into the servers."""
        return self._recovery.restore_latest_checkpoint()

    def train(
        self,
        num_epochs: int,
        patience: int | None = None,
        target_accuracy: float | None = None,
        name: str | None = None,
        lr_schedule=None,
    ) -> ConvergenceRun:
        """Train for up to ``num_epochs`` iterations.

        Args:
            num_epochs: Maximum iterations ``T``.
            patience: Stop when validation accuracy has not improved for
                this many epochs (None disables early stopping).
            target_accuracy: Stop as soon as test accuracy reaches this.
            name: Run label for reports.
            lr_schedule: Optional ``epoch -> learning rate`` callable
                (see :mod:`repro.nn.lr_schedule`); ``None`` keeps the
                configured constant rate, the paper's setting.
        """
        self._lr_schedule = lr_schedule
        self.setup()
        run = ConvergenceRun(
            name=name or f"ecgraph[{self.config.fp_mode}/{self.config.bp_mode}]",
            preprocessing_seconds=self._preprocessing_seconds,
            meta={
                "fp_mode": self.config.fp_mode,
                "bp_mode": self.config.bp_mode,
                "fp_bits": self.config.fp_bits,
                "bp_bits": self.config.bp_bits,
                "num_workers": self.spec.num_workers,
                "dataset": self.graph.name,
                "num_layers": self.model_config.num_layers,
            },
        )
        best_val = -1.0
        stale = 0
        for t in range(num_epochs):
            result = self.run_epoch(t)
            run.epochs.append(result)
            if target_accuracy is not None and (
                result.test_accuracy >= target_accuracy
            ):
                break
            if patience is not None:
                if result.val_accuracy > best_val + 1e-6:
                    best_val = result.val_accuracy
                    stale = 0
                else:
                    stale += 1
                    if stale >= patience:
                        break
        run.final_test_accuracy = self.evaluate_exact()["test"]
        if self.obs.enabled:
            run.telemetry = self.obs.report()
        return run

    def evaluate_exact(self) -> dict[str, float]:
        """Accuracy of the current parameters with exact communication.

        Runs one raw-policy forward pass on a scratch runtime so neither
        traffic accounting nor compensation state is disturbed — this is
        the Table V measurement.
        """
        self.setup()
        return self.engine.evaluate_exact()

    @property
    def preprocessing_seconds(self) -> float:
        """Setup cost: partitioning, worker build, feature caching."""
        return self._preprocessing_seconds
