"""Extension — model generality: GCN vs GraphSAGE vs GAT under EC-Graph.

The paper claims its optimizations transfer to other GNNs exchanging the
same message types, evaluating GraphSAGE ("similar performance
improvements", section V-A) and describing GAT's integration (section
III-B). This bench runs all three models with raw vs error-compensated
exchange and reports the traffic reduction and accuracy retention per
model — the paper's generality claim, quantified.
"""

from __future__ import annotations

from _helpers import HIDDEN, bench_graph, dataset_header, fmt_bytes, run_once

from repro.analysis.reporting import format_table
from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.gat import GATTrainer
from repro.core.sage import SAGETrainer
from repro.core.trainer import ECGraphTrainer

DATASET = "cora"
EPOCHS = 60
WORKERS = 4

RAW = ECGraphConfig(fp_mode="raw", bp_mode="raw")
EC = ECGraphConfig(fp_mode="reqec", bp_mode="resec", fp_bits=2, bp_bits=2,
                   adaptive_bits=False)


def _build(model_name, config):
    graph = bench_graph(DATASET)
    spec = ClusterSpec(num_workers=WORKERS)
    if model_name == "gcn":
        model = ModelConfig(num_layers=2, hidden_dim=HIDDEN[DATASET])
        return ECGraphTrainer(graph, model, spec, config)
    if model_name == "sage":
        model = ModelConfig(num_layers=2, hidden_dim=HIDDEN[DATASET],
                            model="sage")
        return SAGETrainer(graph, model, spec, config)
    model = ModelConfig(num_layers=2, hidden_dim=HIDDEN[DATASET])
    return GATTrainer(graph, model, spec, config)


def _experiment():
    results = {}
    for model_name in ("gcn", "sage", "gat"):
        for label, config in (("raw", RAW), ("ec", EC)):
            run = _build(model_name, config).train(
                EPOCHS, name=f"{model_name}-{label}"
            )
            results[(model_name, label)] = run
    return results


def test_models_generality(benchmark):
    results = run_once(benchmark, _experiment)
    print()
    print(dataset_header(DATASET))
    rows = []
    for model_name in ("gcn", "sage", "gat"):
        raw = results[(model_name, "raw")]
        ec = results[(model_name, "ec")]
        rows.append([
            model_name,
            raw.best_test_accuracy(),
            ec.best_test_accuracy(),
            fmt_bytes(raw.total_bytes()),
            fmt_bytes(ec.total_bytes()),
            f"{raw.total_bytes() / max(ec.total_bytes(), 1):.2f}x",
        ])
    print(format_table(
        ["model", "raw acc", "EC acc", "raw traffic", "EC traffic",
         "traffic reduction"],
        rows,
        title="EC-Graph generality across GNN models (B=2)",
    ))

    # Shape: for every model, EC keeps accuracy within noise of raw and
    # reduces traffic by a real factor.
    for model_name in ("gcn", "sage", "gat"):
        raw = results[(model_name, "raw")]
        ec = results[(model_name, "ec")]
        assert ec.best_test_accuracy() >= raw.best_test_accuracy() - 0.05
        assert ec.total_bytes() < 0.6 * raw.total_bytes()
