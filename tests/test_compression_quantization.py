"""Unit + property tests for bucket quantization (the paper's C_bits)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.compression.quantization import (
    SUPPORTED_BITS,
    BucketQuantizer,
    pack_bits,
    unpack_bits,
)


class TestPackBits:
    @pytest.mark.parametrize("bits", [1, 2, 3, 4, 7, 8, 11, 16])
    def test_roundtrip(self, bits):
        rng = np.random.default_rng(bits)
        values = rng.integers(0, 1 << bits, size=100, dtype=np.uint32)
        packed = pack_bits(values, bits)
        recovered = unpack_bits(packed, bits, 100)
        np.testing.assert_array_equal(recovered, values)

    def test_packed_size(self):
        values = np.arange(16, dtype=np.uint32) % 4
        packed = pack_bits(values, 2)
        assert packed.size == 4  # 16 values * 2 bits = 32 bits = 4 bytes

    def test_value_too_large_rejected(self):
        with pytest.raises(ValueError, match="fit"):
            pack_bits(np.array([4], dtype=np.uint32), 2)

    def test_bad_bits_rejected(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([0], dtype=np.uint32), 0)
        with pytest.raises(ValueError):
            unpack_bits(np.zeros(1, dtype=np.uint8), 17, 1)

    def test_empty(self):
        packed = pack_bits(np.array([], dtype=np.uint32), 4)
        assert unpack_bits(packed, 4, 0).size == 0

    @given(
        values=st.lists(st.integers(0, 255), min_size=0, max_size=200),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property_8bit(self, values):
        arr = np.array(values, dtype=np.uint32)
        np.testing.assert_array_equal(
            unpack_bits(pack_bits(arr, 8), 8, arr.size), arr
        )


class TestBucketQuantizer:
    @pytest.mark.parametrize("bits", SUPPORTED_BITS)
    def test_error_bounded_by_half_bucket(self, bits):
        rng = np.random.default_rng(0)
        x = rng.uniform(-3, 5, size=(40, 16)).astype(np.float32)
        q = BucketQuantizer(bits)
        decoded = q.quantize(x)
        bound = q.max_error(float(x.min()), float(x.max())) + 1e-5
        assert np.abs(decoded - x).max() <= bound

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((50, 8)).astype(np.float32)
        errors = [
            np.abs(BucketQuantizer(b).quantize(x) - x).mean()
            for b in (1, 2, 4, 8)
        ]
        assert all(a > b for a, b in zip(errors, errors[1:]))

    def test_constant_matrix_exact(self):
        x = np.full((3, 3), 0.7, dtype=np.float32)
        decoded = BucketQuantizer(2).quantize(x)
        np.testing.assert_allclose(decoded, 0.7, atol=1e-6)

    def test_explicit_domain(self):
        x = np.array([[0.5]], dtype=np.float32)
        q = BucketQuantizer(1)
        encoded = q.encode(x, lo=0.0, hi=1.0)
        assert encoded.lo == 0.0 and encoded.hi == 1.0
        # 0.5 lands in bucket 1 of [0, 0.5)[0.5, 1); midpoint 0.75.
        assert encoded.decode()[0, 0] == pytest.approx(0.75)

    def test_same_domain_same_ids_for_subsets(self):
        """Re-encoding a row subset with the full-matrix domain must give
        the same decoded values (the ReqEC selector depends on this)."""
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 1, size=(10, 4)).astype(np.float32)
        q = BucketQuantizer(4)
        full = q.encode(x)
        subset = q.encode(x[3:6], lo=full.lo, hi=full.hi)
        np.testing.assert_array_equal(full.decode()[3:6], subset.decode())

    def test_empty_matrix(self):
        q = BucketQuantizer(4)
        encoded = q.encode(np.zeros((0, 8), dtype=np.float32))
        assert encoded.decode().shape == (0, 8)

    def test_unsupported_bits_rejected(self):
        with pytest.raises(ValueError):
            BucketQuantizer(3)

    def test_invalid_domain_rejected(self):
        with pytest.raises(ValueError):
            BucketQuantizer(2).encode(np.ones((2, 2)), lo=1.0, hi=0.0)

    def test_payload_smaller_than_raw(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((200, 64)).astype(np.float32)
        for bits in (1, 2, 4, 8):
            encoded = BucketQuantizer(bits).encode(x)
            assert encoded.payload_bytes() < x.nbytes

    def test_bounds_mode_smaller_than_table_mode(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((50, 32)).astype(np.float32)
        table = BucketQuantizer(8, "table").encode(x)
        bounds = BucketQuantizer(8, "bounds").encode(x)
        assert bounds.payload_bytes() < table.payload_bytes()

    @given(
        x=arrays(
            np.float32,
            st.tuples(st.integers(1, 20), st.integers(1, 8)),
            elements=st.floats(-100, 100, width=32),
        ),
        bits=st.sampled_from(SUPPORTED_BITS),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_error_bound(self, x, bits):
        q = BucketQuantizer(bits)
        decoded = q.quantize(x)
        span = float(x.max() - x.min())
        bound = span / (2 * (1 << bits)) + 1e-4 * max(1.0, span)
        assert np.abs(decoded - x).max() <= bound

    @given(
        x=arrays(
            np.float32,
            st.tuples(st.integers(1, 12), st.integers(1, 6)),
            elements=st.floats(-10, 10, width=32),
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_decode_within_domain(self, x):
        q = BucketQuantizer(4)
        decoded = q.quantize(x)
        assert decoded.min() >= x.min() - 1e-4
        assert decoded.max() <= x.max() + 1e-4

    def test_quantization_idempotent(self):
        """Quantizing an already-quantized matrix is a fixed point when
        the domain is unchanged (values sit at bucket midpoints)."""
        rng = np.random.default_rng(5)
        x = rng.uniform(0, 1, size=(20, 5)).astype(np.float32)
        q = BucketQuantizer(4)
        once = q.quantize(x, lo=0.0, hi=1.0)
        twice = q.quantize(once, lo=0.0, hi=1.0)
        np.testing.assert_allclose(once, twice, atol=1e-6)
