"""Traffic breakdowns: where the bytes of a training run went.

The paper's core argument is about message volume; these helpers slice a
run's traffic per category (forward embeddings, backward gradients,
parameter pulls/pushes, sampling, caches) so experiments can show *which*
traffic a technique removed, not just the total.
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.reporting import format_table
from repro.cluster.network import TrafficMeter, TrafficSnapshot
from repro.core.results import ConvergenceRun

__all__ = [
    "traffic_by_category",
    "traffic_table",
    "dominant_category",
    "measure_traffic",
    "snapshot_table",
]


def traffic_by_category(run: ConvergenceRun) -> dict[str, int]:
    """Total bytes per message category over a whole run."""
    totals: dict[str, int] = defaultdict(int)
    for epoch in run.epochs:
        for category, nbytes in epoch.breakdown.category_bytes.items():
            totals[category] += nbytes
    return dict(totals)


def dominant_category(run: ConvergenceRun) -> str | None:
    """The category carrying the most bytes (None for a silent run)."""
    totals = traffic_by_category(run)
    if not totals:
        return None
    return max(totals, key=totals.get)


def traffic_table(runs: list[ConvergenceRun]) -> str:
    """ASCII table: one row per run, one column per observed category.

    Categories are ordered by their total across runs, largest first,
    so the table leads with what matters.
    """
    per_run = {run.name: traffic_by_category(run) for run in runs}
    grand: dict[str, int] = defaultdict(int)
    for totals in per_run.values():
        for category, nbytes in totals.items():
            grand[category] += nbytes
    categories = sorted(grand, key=grand.get, reverse=True)

    def _fmt(nbytes: int) -> str:
        if nbytes >= 1 << 20:
            return f"{nbytes / (1 << 20):.1f}MB"
        if nbytes >= 1 << 10:
            return f"{nbytes / (1 << 10):.1f}KB"
        return f"{nbytes}B"

    rows = []
    for run in runs:
        totals = per_run[run.name]
        rows.append(
            [run.name]
            + [_fmt(totals.get(category, 0)) for category in categories]
            + [_fmt(sum(totals.values()))]
        )
    return format_table(
        ["run"] + categories + ["total"], rows,
        title="Traffic by category",
    )


def measure_traffic(meter: TrafficMeter, fn) -> TrafficSnapshot:
    """Run ``fn()`` and return only the traffic it caused.

    Brackets the call with :meth:`TrafficMeter.snapshot` so a meter that
    is shared across runs (setup caches, earlier experiments) does not
    leak lifetime totals into the measurement.
    """
    before = meter.snapshot()
    fn()
    return meter.snapshot().delta(before)


def snapshot_table(snapshots: dict[str, TrafficSnapshot]) -> str:
    """ASCII table of named traffic snapshots (or deltas), one per row.

    Categories are ordered by their total across snapshots, largest
    first — the same convention as :func:`traffic_table`.
    """
    grand: dict[str, int] = defaultdict(int)
    for snap in snapshots.values():
        for category, nbytes in snap.category_bytes.items():
            grand[category] += nbytes
    categories = sorted(grand, key=grand.get, reverse=True)
    rows = [
        [name]
        + [snap.category_bytes.get(category, 0) for category in categories]
        + [snap.total_bytes, snap.total_messages]
        for name, snap in snapshots.items()
    ]
    return format_table(
        ["phase"] + categories + ["bytes", "messages"], rows,
        title="Traffic snapshots",
    )
