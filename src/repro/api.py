"""High-level one-call API.

Most users want "train this GNN on this graph on a k-machine cluster with
EC-Graph"; this module provides exactly that without touching the trainer
internals.
"""

from __future__ import annotations

from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.results import ConvergenceRun
from repro.core.trainer import ECGraphTrainer
from repro.graph.attributed import AttributedGraph

__all__ = ["train_ecgraph"]


def train_ecgraph(
    graph: AttributedGraph,
    num_workers: int = 6,
    num_layers: int = 2,
    hidden_dim: int = 16,
    num_epochs: int = 100,
    config: ECGraphConfig | None = None,
    cluster: ClusterSpec | None = None,
    partitioner: str = "hash",
    patience: int | None = None,
    name: str | None = None,
) -> ConvergenceRun:
    """Train a GCN on ``graph`` with the EC-Graph pipeline.

    Args:
        graph: Attributed input graph (see :mod:`repro.graph.datasets`).
        num_workers: Cluster size (ignored when ``cluster`` is given).
        num_layers / hidden_dim: GCN architecture (paper defaults).
        num_epochs: Maximum training iterations.
        config: Full pipeline configuration; defaults to the paper's
            EC-Graph setting (ReqEC-FP + Bit-Tuner forward, ResEC-BP
            backward, ``T_tr = 10``).
        cluster: Explicit cluster topology; defaults to one worker per
            machine over Gigabit Ethernet.
        partitioner: ``hash`` (paper default), ``bfs`` or ``metis``.
        patience: Early-stopping patience on validation accuracy.
        name: Label attached to the returned run.

    Returns:
        A :class:`ConvergenceRun` with per-epoch accuracy, loss, modelled
        epoch time and traffic, plus the exact-communication final test
        accuracy.
    """
    spec = cluster or ClusterSpec(num_workers=num_workers)
    trainer = ECGraphTrainer(
        graph,
        ModelConfig(num_layers=num_layers, hidden_dim=hidden_dim),
        spec,
        config or ECGraphConfig(),
        partitioner=partitioner,
    )
    return trainer.train(num_epochs, patience=patience, name=name)
