"""Named chaos scenarios for the ``repro chaos`` CLI and tests.

Each scenario is a recipe turning ``(num_epochs, num_workers, seed)``
into a concrete :class:`~repro.faults.config.FaultConfig`, so the same
names work across datasets and cluster sizes. This module deliberately
imports nothing from :mod:`repro.core` — the runner that trains with a
scenario lives in :mod:`repro.faults.chaos`.
"""

from __future__ import annotations

from repro.faults.config import FaultConfig

__all__ = ["SCENARIOS", "scenario_names", "build_scenario"]


def _drops(epochs: int, workers: int, seed: int) -> FaultConfig:
    """5% of halo messages vanish; retries + stale-halo degradation."""
    del epochs, workers
    return FaultConfig(enabled=True, seed=seed, drop_prob=0.05)


def _lossy(epochs: int, workers: int, seed: int) -> FaultConfig:
    """Drops, checksum failures and late deliveries together."""
    del epochs, workers
    return FaultConfig(
        enabled=True, seed=seed,
        drop_prob=0.04, corrupt_prob=0.03, delay_prob=0.05,
        delay_seconds=0.02,
    )


def _stragglers(epochs: int, workers: int, seed: int) -> FaultConfig:
    """The last worker runs 4x slower over the middle half of the run."""
    slow = max(workers - 1, 0)
    start, stop = epochs // 4, max(epochs // 4 + epochs // 2, 1)
    return FaultConfig(
        enabled=True, seed=seed,
        straggler_workers=(slow,), straggler_factor=4.0,
        straggler_epochs=(start, stop),
    )


def _outage(epochs: int, workers: int, seed: int) -> FaultConfig:
    """Parameter server 0 is unreachable for two mid-run epochs."""
    del workers
    mid = max(epochs // 2, 1)
    return FaultConfig(
        enabled=True, seed=seed,
        server_outages=((mid - 1, 0), (mid, 0)),
    )


def _crash(epochs: int, workers: int, seed: int) -> FaultConfig:
    """One worker dies mid-run and recovers from the latest checkpoint."""
    victim = min(1, workers - 1)
    return FaultConfig(
        enabled=True, seed=seed,
        crash_schedule=((max(epochs // 2, 1), victim),),
        checkpoint_every=1,
    )


def _mixed(epochs: int, workers: int, seed: int) -> FaultConfig:
    """The acceptance scenario: 5% drops plus one worker crash."""
    victim = min(1, workers - 1)
    return FaultConfig(
        enabled=True, seed=seed,
        drop_prob=0.05,
        crash_schedule=((max(epochs // 2, 1), victim),),
        checkpoint_every=1,
    )


def _worker_loss(epochs: int, workers: int, seed: int) -> FaultConfig:
    """One worker dies permanently mid-run; a survivor adopts its
    partition and training continues on the remaining membership."""
    victim = min(1, workers - 1)
    return FaultConfig(
        enabled=True, seed=seed, elastic=True,
        permanent_failures=((max(epochs // 2, 1), victim),),
        checkpoint_every=1,
    )


def _cascading_loss(epochs: int, workers: int, seed: int) -> FaultConfig:
    """Two workers die permanently in sequence; the quorum threshold is
    relaxed so even a 3-worker smoke run keeps going after both losses."""
    first = max(epochs // 3, 1)
    second = max(2 * epochs // 3, first + 1)
    victims = []
    for victim in (min(1, workers - 1), min(2, workers - 1)):
        if victim not in victims:
            victims.append(victim)
    failures = tuple(
        (epoch, victim)
        for epoch, victim in zip((first, second), victims)
    )
    return FaultConfig(
        enabled=True, seed=seed, elastic=True,
        permanent_failures=failures,
        quorum_fraction=0.25,
        checkpoint_every=1,
    )


def _lose_and_rejoin(epochs: int, workers: int, seed: int) -> FaultConfig:
    """A worker is lost mid-run, then rejoins and reclaims its original
    partition from the survivor that adopted it."""
    victim = min(1, workers - 1)
    lost = max(epochs // 3, 1)
    back = max(2 * epochs // 3, lost + 1)
    return FaultConfig(
        enabled=True, seed=seed, elastic=True,
        permanent_failures=((lost, victim),),
        rejoin_schedule=((back, victim),),
        checkpoint_every=1,
    )


SCENARIOS = {
    "drops": _drops,
    "lossy": _lossy,
    "stragglers": _stragglers,
    "outage": _outage,
    "crash": _crash,
    "mixed": _mixed,
    "worker-loss": _worker_loss,
    "cascading-loss": _cascading_loss,
    "lose-and-rejoin": _lose_and_rejoin,
}


def scenario_names() -> list[str]:
    return list(SCENARIOS)


def build_scenario(
    name: str, num_epochs: int, num_workers: int, seed: int = 0
) -> FaultConfig:
    """Instantiate a named scenario for a concrete run shape."""
    try:
        recipe = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None
    if num_epochs < 1:
        raise ValueError("num_epochs must be >= 1")
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    return recipe(num_epochs, num_workers, seed)
