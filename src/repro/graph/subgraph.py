"""Subgraph extraction utilities.

Two operations back the two system families in the paper:

* :func:`induced_subgraph` — the *graph-centered* path: each worker holds
  exactly the vertices a partitioner assigned to it, plus the cut edges
  that point at remote vertices (the remote endpoints stay remote).
* :func:`khop_neighborhood` — the *ML-centered* path (AliGraph/AGL): a
  target vertex pulls its entire L-hop neighbourhood so the worker can run
  the GNN without communicating; this is the memory/computation redundancy
  the paper's Table II quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["LocalSubgraph", "induced_subgraph", "khop_neighborhood",
           "khop_sampled_neighborhood"]


@dataclass
class LocalSubgraph:
    """A worker-local view of a partitioned graph.

    The subgraph keeps the *global* structure relevant to its local
    vertices: local rows of the adjacency, with columns relabelled into a
    compact space ``[0, num_local + num_remote)`` where local vertices come
    first, then remote (halo) vertices in sorted global order.

    Attributes:
        local_vertices: Global ids of the vertices owned by this worker.
        remote_vertices: Global ids of remote 1-hop neighbours (the halo).
        indptr / indices / weights: CSR rows for the local vertices, with
            column ids in the compact space.
        global_to_compact: Mapping from global vertex id to compact id for
            all vertices appearing in this subgraph.
    """

    local_vertices: np.ndarray
    remote_vertices: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray | None
    global_to_compact: dict[int, int]

    @property
    def num_local(self) -> int:
        return self.local_vertices.shape[0]

    @property
    def num_remote(self) -> int:
        return self.remote_vertices.shape[0]

    @property
    def num_edges(self) -> int:
        return self.indices.shape[0]

    def compact_ids(self, global_ids: np.ndarray) -> np.ndarray:
        """Translate global vertex ids into this worker's compact space."""
        return np.fromiter(
            (self.global_to_compact[int(g)] for g in global_ids),
            dtype=np.int64,
            count=len(global_ids),
        )


def induced_subgraph(graph: CSRGraph, local_vertices: np.ndarray) -> LocalSubgraph:
    """Extract the worker-local subgraph for a set of owned vertices.

    All edges leaving the owned vertices are kept; edges pointing at
    non-owned vertices make those targets part of the remote halo.
    """
    local_vertices = np.asarray(local_vertices, dtype=np.int64)
    if local_vertices.size != np.unique(local_vertices).size:
        raise ValueError("local vertex set contains duplicates")
    local_set = set(int(v) for v in local_vertices)

    remote: set[int] = set()
    for v in local_vertices:
        for u in graph.neighbors(int(v)):
            u = int(u)
            if u not in local_set:
                remote.add(u)
    remote_vertices = np.array(sorted(remote), dtype=np.int64)

    mapping: dict[int, int] = {}
    for compact, g in enumerate(local_vertices):
        mapping[int(g)] = compact
    offset = local_vertices.shape[0]
    for compact, g in enumerate(remote_vertices):
        mapping[int(g)] = offset + compact

    counts = np.array(
        [graph.degree(int(v)) for v in local_vertices], dtype=np.int64
    )
    indptr = np.zeros(local_vertices.shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = np.empty(int(counts.sum()), dtype=np.int64)
    weights = None if graph.weights is None else np.empty(
        int(counts.sum()), dtype=np.float32
    )
    for row, v in enumerate(local_vertices):
        lo, hi = indptr[row], indptr[row + 1]
        nbrs = graph.neighbors(int(v))
        indices[lo:hi] = [mapping[int(u)] for u in nbrs]
        if weights is not None:
            indices_slice = graph.indptr[int(v)]
            weights[lo:hi] = graph.weights[
                indices_slice:indices_slice + (hi - lo)
            ]
    return LocalSubgraph(
        local_vertices=local_vertices,
        remote_vertices=remote_vertices,
        indptr=indptr,
        indices=indices,
        weights=weights,
        global_to_compact=mapping,
    )


def khop_neighborhood(
    graph: CSRGraph, targets: np.ndarray, hops: int
) -> np.ndarray:
    """Global ids of all vertices within ``hops`` of ``targets``.

    This is the vertex set an ML-centered worker must cache to train a
    ``hops``-layer GNN on ``targets`` without communication. The result
    includes the targets themselves and is sorted.
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    frontier = set(int(v) for v in np.asarray(targets).ravel())
    visited = set(frontier)
    for _ in range(hops):
        next_frontier: set[int] = set()
        for v in frontier:
            for u in graph.neighbors(v):
                u = int(u)
                if u not in visited:
                    visited.add(u)
                    next_frontier.add(u)
        frontier = next_frontier
        if not frontier:
            break
    return np.array(sorted(visited), dtype=np.int64)


def khop_sampled_neighborhood(
    graph: CSRGraph,
    targets: np.ndarray,
    fanouts: list[int],
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """Layer-wise sampled neighbourhoods (DistDGL/AGL style).

    ``fanouts[i]`` bounds how many neighbours each frontier vertex keeps at
    hop ``i``. Returns one array of *new* vertex ids per hop, so the union
    of targets and all returned arrays is the sampled computation graph.
    """
    frontier = np.unique(np.asarray(targets, dtype=np.int64).ravel())
    visited = set(int(v) for v in frontier)
    layers: list[np.ndarray] = []
    for fanout in fanouts:
        if fanout <= 0:
            raise ValueError("fanouts must be positive")
        new_ids: set[int] = set()
        for v in frontier:
            nbrs = graph.neighbors(int(v))
            if nbrs.size > fanout:
                nbrs = rng.choice(nbrs, size=fanout, replace=False)
            for u in nbrs:
                u = int(u)
                if u not in visited:
                    visited.add(u)
                    new_ids.add(u)
        layer = np.array(sorted(new_ids), dtype=np.int64)
        layers.append(layer)
        frontier = layer
        if frontier.size == 0:
            frontier = np.empty(0, dtype=np.int64)
    return layers
