"""Unit tests for cluster topology."""

import pytest

from repro.cluster.topology import ClusterSpec


class TestClusterSpec:
    def test_one_worker_per_machine_default(self):
        spec = ClusterSpec(num_workers=6)
        assert spec.num_machines == 6
        assert spec.worker_machine(3) == 3

    def test_packed_workers(self):
        spec = ClusterSpec(num_workers=6, workers_per_machine=2)
        assert spec.num_machines == 3
        assert spec.worker_machine(0) == 0
        assert spec.worker_machine(1) == 0
        assert spec.worker_machine(2) == 1

    def test_uneven_packing_rounds_up(self):
        spec = ClusterSpec(num_workers=5, workers_per_machine=2)
        assert spec.num_machines == 3

    def test_colocated_servers(self):
        spec = ClusterSpec(num_workers=4, num_servers=6)
        assert spec.server_machine(0) == 0
        assert spec.server_machine(5) == 1  # 5 % 4

    def test_dedicated_servers(self):
        spec = ClusterSpec(num_workers=2, num_servers=2, colocate_servers=False)
        assert spec.server_machine(0) == 2
        assert spec.server_machine(1) == 3

    def test_worker_out_of_range(self):
        spec = ClusterSpec(num_workers=2)
        with pytest.raises(IndexError):
            spec.worker_machine(2)

    def test_server_out_of_range(self):
        spec = ClusterSpec(num_workers=2, num_servers=1)
        with pytest.raises(IndexError):
            spec.server_machine(1)

    @pytest.mark.parametrize("kwargs", [
        {"num_workers": 0},
        {"num_workers": 1, "num_servers": 0},
        {"num_workers": 1, "workers_per_machine": 0},
        {"num_workers": 1, "compute_speed": 0.0},
    ])
    def test_invalid_specs(self, kwargs):
        with pytest.raises(ValueError):
            ClusterSpec(**kwargs)
