"""Save/load attributed graphs as ``.npz`` archives.

In the paper, workers load their subgraphs from NFS after partitioning.
The simulated NFS (:mod:`repro.cluster.nfs`) stores graphs in this format,
and examples use it to cache generated datasets between runs.

Wire format: a zip archive of npy members carrying a magic marker
(``ECGRAPH``) and a format version, so a foreign npz — or a truncated
copy of a real one — fails with a :class:`ValueError` that names the
problem instead of a ``KeyError`` deep in the loader. Archives written
with ``compress=False`` store members uncompressed (zip ``STORED``), in
which case ``load_graph(path, mmap_mode="r")`` maps the big arrays
straight off disk instead of reading them into memory — each STORED
member is a plain npy file at a fixed byte offset inside the zip.
"""

from __future__ import annotations

import json
import struct
import zipfile
from pathlib import Path

import numpy as np

from repro.graph.attributed import AttributedGraph
from repro.graph.csr import CSRGraph

__all__ = ["save_graph", "load_graph"]

_MAGIC = "ECGRAPH"
_FORMAT_VERSION = 1

# Members every archive must carry; anything missing means a truncated
# or foreign file, and the loader says so instead of KeyError-ing.
_REQUIRED = (
    "format_version", "indptr", "indices", "features", "labels",
    "train_mask", "val_mask", "test_mask", "num_classes", "name",
    "meta_json",
)
# The large members worth memory-mapping (per-vertex / per-edge data).
_MAPPABLE = (
    "indptr", "indices", "weights", "features", "labels",
    "train_mask", "val_mask", "test_mask",
)


def save_graph(
    graph: AttributedGraph, path: str | Path, compress: bool = True
) -> None:
    """Serialize ``graph`` to an ``.npz`` archive at ``path``.

    ``compress=False`` writes members uncompressed (zip ``STORED``),
    trading disk for the ability to ``load_graph(..., mmap_mode="r")``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "magic": np.str_(_MAGIC),
        "format_version": np.int64(_FORMAT_VERSION),
        "indptr": graph.adjacency.indptr,
        "indices": graph.adjacency.indices,
        "features": graph.features,
        "labels": graph.labels,
        "train_mask": graph.train_mask,
        "val_mask": graph.val_mask,
        "test_mask": graph.test_mask,
        "num_classes": np.int64(graph.num_classes),
        "name": np.str_(graph.name),
        "meta_json": np.str_(json.dumps(graph.meta, default=str)),
    }
    if graph.adjacency.weights is not None:
        payload["weights"] = graph.adjacency.weights
    writer = np.savez_compressed if compress else np.savez
    writer(path, **payload)


def _validate_members(path: Path, files: set[str]) -> None:
    if "magic" not in files or "format_version" not in files:
        raise ValueError(
            f"{path} is not a graph archive written by save_graph "
            "(missing magic/version members)"
        )
    missing = [m for m in _REQUIRED if m not in files]
    if missing:
        raise ValueError(
            f"graph archive {path} is truncated or corrupt: "
            f"missing members {missing}"
        )


def _mmap_member(path: Path, zf: zipfile.ZipFile, member: str) -> np.ndarray:
    """Memory-map one STORED npy member at its offset inside the zip."""
    info = zf.getinfo(member)
    if info.compress_type != zipfile.ZIP_STORED:
        raise ValueError(
            f"{path} stores {member!r} compressed; mmap loading needs an "
            "archive written with save_graph(..., compress=False)"
        )
    with open(path, "rb") as fh:
        fh.seek(info.header_offset)
        header = fh.read(30)
        if len(header) != 30 or header[:4] != b"PK\x03\x04":
            raise ValueError(
                f"graph archive {path} is corrupt: bad local file header "
                f"for member {member!r}"
            )
        name_len, extra_len = struct.unpack("<HH", header[26:30])
        fh.seek(info.header_offset + 30 + name_len + extra_len)
        try:
            version = np.lib.format.read_magic(fh)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
            else:
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
        except ValueError as exc:
            raise ValueError(
                f"graph archive {path} is corrupt: member {member!r} is "
                f"not a valid npy file ({exc})"
            ) from None
        offset = fh.tell()
    return np.memmap(
        path, dtype=dtype, mode="r", offset=offset, shape=shape,
        order="F" if fortran else "C",
    )


def load_graph(
    path: str | Path, mmap_mode: str | None = None
) -> AttributedGraph:
    """Load a graph previously written by :func:`save_graph`.

    ``mmap_mode="r"`` memory-maps the per-vertex and per-edge arrays
    read-only instead of copying them into RAM — only valid for
    archives written with ``compress=False``. Corrupt, truncated or
    foreign files raise :class:`ValueError` describing the problem.
    """
    if mmap_mode not in (None, "r"):
        raise ValueError(
            f"unsupported mmap_mode {mmap_mode!r}: only 'r' is supported"
        )
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"graph archive not found: {path}")
    try:
        archive = np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, OSError, ValueError) as exc:
        raise ValueError(f"corrupt graph archive {path}: {exc}") from None
    with archive:
        files = set(archive.files)
        _validate_members(path, files)
        if str(archive["magic"]) != _MAGIC:
            raise ValueError(
                f"{path} is not a graph archive "
                f"(magic {str(archive['magic'])!r}, expected {_MAGIC!r})"
            )
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported graph archive version {version} "
                f"(expected {_FORMAT_VERSION})"
            )

        def member(key: str) -> np.ndarray:
            if mmap_mode == "r" and key in _MAPPABLE:
                return _mmap_member(path, archive.zip, f"{key}.npy")
            return archive[key]

        weights = member("weights") if "weights" in files else None
        adjacency = CSRGraph(member("indptr"), member("indices"), weights)
        return AttributedGraph(
            adjacency=adjacency,
            features=member("features"),
            labels=member("labels"),
            train_mask=member("train_mask"),
            val_mask=member("val_mask"),
            test_mask=member("test_mask"),
            num_classes=int(archive["num_classes"]),
            name=str(archive["name"]),
            meta=json.loads(str(archive["meta_json"])),
        )
