"""Integration tests for the sampling-mode trainer (EC-Graph-S / DistDGL)."""

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.sampling_trainer import SampledECGraphTrainer
from repro.core.trainer import ECGraphTrainer


def _sampled(graph, fanouts, workers=3, online=False, config=None,
             epochs=10, layers=2):
    trainer = SampledECGraphTrainer(
        graph,
        ModelConfig(num_layers=layers, hidden_dim=8),
        ClusterSpec(num_workers=workers),
        fanouts=fanouts,
        config=config or ECGraphConfig(fp_mode="compress", bp_mode="resec"),
        online=online,
    )
    return trainer, trainer.train(epochs)


class TestValidation:
    def test_fanout_count_must_match_layers(self, small_graph):
        with pytest.raises(ValueError, match="fanouts"):
            _sampled(small_graph, fanouts=[5])

    def test_reqec_rejected(self, small_graph):
        with pytest.raises(ValueError, match="full-batch"):
            SampledECGraphTrainer(
                small_graph, ModelConfig(num_layers=2),
                ClusterSpec(num_workers=2), fanouts=[5, 5],
                config=ECGraphConfig(fp_mode="reqec"),
            )

    def test_zero_fanout_rejected(self, small_graph):
        with pytest.raises(ValueError):
            _sampled(small_graph, fanouts=[5, 0])


class TestSampling:
    def test_trains_to_reasonable_accuracy(self, medium_graph):
        _, run = _sampled(medium_graph, fanouts=[8, 4], epochs=40)
        assert run.best_test_accuracy() > 0.6

    def test_sampling_reduces_traffic(self, medium_graph):
        full = ECGraphTrainer(
            medium_graph, ModelConfig(num_layers=2, hidden_dim=8),
            ClusterSpec(num_workers=3),
            ECGraphConfig(fp_mode="raw", bp_mode="raw"),
        )
        full_run = full.train(5)
        config = ECGraphConfig(fp_mode="raw", bp_mode="raw")
        _, sampled_run = _sampled(
            medium_graph, fanouts=[3, 3], config=config, epochs=5
        )
        assert sampled_run.total_bytes() < full_run.total_bytes()

    def test_huge_fanout_equals_full_batch_traffic_shape(self, small_graph):
        """With fanouts above the max degree, sampling keeps every edge,
        so per-epoch loss matches the full-batch trainer exactly."""
        config = ECGraphConfig(fp_mode="raw", bp_mode="raw", seed=4)
        full = ECGraphTrainer(
            small_graph, ModelConfig(num_layers=2, hidden_dim=8),
            ClusterSpec(num_workers=3), config,
        )
        full_run = full.train(5)
        _, sampled_run = _sampled(
            small_graph, fanouts=[10_000, 10_000], config=config, epochs=5
        )
        for a, b in zip(full_run.epochs, sampled_run.epochs):
            assert a.loss == pytest.approx(b.loss, rel=1e-4, abs=1e-5)

    def test_online_resamples_each_epoch(self, medium_graph):
        trainer, _ = _sampled(
            medium_graph, fanouts=[4, 4], online=True, epochs=2,
            config=ECGraphConfig(fp_mode="raw", bp_mode="raw"),
        )
        first = [m.copy() for m in
                 [trainer._sampled_adj[0][1].indices]]
        trainer.run_epoch(2)
        second = trainer._sampled_adj[0][1].indices
        assert not np.array_equal(first[0], second)

    def test_offline_keeps_sample_fixed(self, medium_graph):
        trainer, _ = _sampled(
            medium_graph, fanouts=[4, 4], online=False, epochs=2,
            config=ECGraphConfig(fp_mode="raw", bp_mode="raw"),
        )
        first = trainer._sampled_adj[0][1].indices.copy()
        trainer.run_epoch(2)
        np.testing.assert_array_equal(first, trainer._sampled_adj[0][1].indices)

    def test_online_charges_sampling_traffic(self, medium_graph):
        _, online_run = _sampled(
            medium_graph, fanouts=[4, 4], online=True, epochs=5,
            config=ECGraphConfig(fp_mode="raw", bp_mode="raw"),
        )
        sampled_categories = online_run.epochs[0].breakdown.category_bytes
        assert "sampling" in sampled_categories

    def test_row_scaling_unbiased(self, medium_graph):
        """Sampled aggregation row sums approximate the full row sums."""
        trainer, _ = _sampled(
            medium_graph, fanouts=[5, 5], epochs=1,
            config=ECGraphConfig(fp_mode="raw", bp_mode="raw"),
        )
        state = trainer.workers[0]
        full_sums = np.asarray(state.a_local.sum(axis=1)).ravel()
        trials = []
        for _ in range(30):
            trainer._resample()
            sampled = trainer._sampled_adj[0][1]
            trials.append(np.asarray(sampled.sum(axis=1)).ravel())
        mean_sums = np.mean(trials, axis=0)
        # Unbiased estimator: mean over resamples tracks the full sums.
        np.testing.assert_allclose(mean_sums, full_sums, rtol=0.35, atol=0.05)

    def test_resec_with_sampling_converges(self, medium_graph):
        config = ECGraphConfig(
            fp_mode="compress", bp_mode="resec", fp_bits=4, bp_bits=4
        )
        _, run = _sampled(medium_graph, fanouts=[8, 4], config=config,
                          epochs=40)
        assert run.best_test_accuracy() > 0.6
