"""Adjacency normalization for GCN-style aggregation.

The paper's Eq. 2 uses the symmetric GCN normalization
``A_hat = D^{-1/2} (A + I) D^{-1/2}`` where ``D`` is the degree matrix of
``A + I``. GraphSAGE-mean corresponds to row normalization.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["gcn_normalize", "row_normalize", "normalized_adjacency"]


def gcn_normalize(graph: CSRGraph, add_self_loops: bool = True) -> CSRGraph:
    """Symmetric GCN normalization ``D^{-1/2} (A + I) D^{-1/2}``.

    The degree used is the degree of the (self-loop augmented) graph, i.e.
    row sums of ``A + I``. Isolated vertices receive a normalized self-loop
    of weight 1 so their embedding is preserved through aggregation.
    """
    base = graph.with_self_loops() if add_self_loops else graph
    n = base.num_vertices
    # Degree of A (+I): in the GCN convention degrees come from row sums.
    degree = np.diff(base.indptr).astype(np.float64)
    inv_sqrt = np.zeros(n, dtype=np.float64)
    nonzero = degree > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(degree[nonzero])
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(base.indptr))
    base_weights = (
        np.ones(base.num_edges, dtype=np.float64)
        if base.weights is None
        else base.weights.astype(np.float64)
    )
    weights = base_weights * inv_sqrt[src] * inv_sqrt[base.indices]
    return CSRGraph(base.indptr.copy(), base.indices.copy(),
                    weights.astype(np.float32))


def row_normalize(graph: CSRGraph, add_self_loops: bool = False) -> CSRGraph:
    """Row normalization ``D^{-1} A`` (GraphSAGE-mean aggregation)."""
    base = graph.with_self_loops() if add_self_loops else graph
    n = base.num_vertices
    degree = np.diff(base.indptr).astype(np.float64)
    inv = np.zeros(n, dtype=np.float64)
    nonzero = degree > 0
    inv[nonzero] = 1.0 / degree[nonzero]
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(base.indptr))
    base_weights = (
        np.ones(base.num_edges, dtype=np.float64)
        if base.weights is None
        else base.weights.astype(np.float64)
    )
    weights = base_weights * inv[src]
    return CSRGraph(base.indptr.copy(), base.indices.copy(),
                    weights.astype(np.float32))


_NORMALIZATIONS = {"gcn": gcn_normalize, "row": row_normalize}


def normalized_adjacency(graph, scheme: str = "gcn"):
    """Normalize ``graph`` with the named scheme (``gcn`` or ``row``).

    Accepts a resident :class:`CSRGraph` (returns a materialized
    normalized :class:`CSRGraph`, the historical behaviour) or a
    :class:`~repro.graph.store.GraphStore` (returns a lazy
    :class:`~repro.graph.store.normalized.NormalizedGraphStore` view that
    computes the same weights block by block — bit-identical when
    materialized).
    """
    from repro.graph.store.base import GraphStore

    if isinstance(graph, GraphStore):
        from repro.graph.store.normalized import NormalizedGraphStore

        return NormalizedGraphStore(graph, scheme)
    try:
        normalize = _NORMALIZATIONS[scheme]
    except KeyError:
        known = ", ".join(sorted(_NORMALIZATIONS))
        raise KeyError(f"unknown normalization {scheme!r}; known: {known}") from None
    return normalize(graph, add_self_loops=True)
