"""Baseline halo-exchange policies: plain compression and delayed
aggregation.

``CompressPolicy`` is the paper's ``Cp-fp``/``Cp-bp`` configuration —
bucket quantization with *no* compensation. ``DelayedPolicy`` reproduces
DistGNN's *delayed remote partial aggregation*: only one of ``r``
round-robin blocks of each channel is refreshed per iteration; the
requester aggregates stale rows for the rest, trading staleness for
traffic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.compression.quantization import BucketQuantizer
from repro.core.messages import ChannelKey, ChannelMessage, ReceiveResult
from repro.obs.tracing import monotonic_now

if TYPE_CHECKING:
    from repro.core.bit_tuner import BitTuner
    from repro.core.config import ECGraphConfig

__all__ = [
    "CompressPolicy",
    "DelayedPolicy",
    "CodecPolicy",
    "make_exchange_policy",
]

_HEADER_BYTES = 24  # frame header + shape word (see cluster.serialize)


def make_exchange_policy(
    direction: str, config: "ECGraphConfig", tuner: "BitTuner | None" = None
) -> object:
    """Build the halo-exchange policy one direction of ``config`` asks for.

    This is the single mode-to-policy mapping; the trainer's
    :class:`~repro.engine.context.ExchangeContext` consults it for both
    the forward (``fp_mode``) and backward (``bp_mode``) directions.
    ``reqec`` requires the run's :class:`~repro.core.bit_tuner.BitTuner`.
    """
    from repro.core.messages import RawPolicy
    from repro.core.reqec_fp import ReqECPolicy
    from repro.core.resec_bp import ResECPolicy

    if direction == "fp":
        mode = config.fp_mode
        if mode == "raw":
            return RawPolicy()
        if mode == "compress":
            return CompressPolicy(config.fp_bits, config.table_mode)
        if mode == "reqec":
            if tuner is None:
                raise ValueError("reqec forward policy requires a BitTuner")
            return ReqECPolicy(
                tuner,
                trend_period=config.trend_period,
                granularity=config.selector_granularity,
                table_mode=config.table_mode,
            )
        return DelayedPolicy(config.delayed_rounds)
    if direction == "bp":
        mode = config.bp_mode
        if mode == "raw":
            return RawPolicy()
        if mode == "compress":
            return CompressPolicy(config.bp_bits, config.table_mode)
        if mode == "resec":
            return ResECPolicy(config.bp_bits, config.table_mode)
        return DelayedPolicy(config.delayed_rounds)
    raise ValueError(f"unknown exchange direction {direction!r}")


class CompressPolicy:
    """Bucket-quantize every message; no error compensation."""

    def __init__(self, bits: int, table_mode: str = "table"):
        self._quantizer = BucketQuantizer(bits, table_mode)

    @property
    def name(self) -> str:
        return f"compress{self._quantizer.bits}"

    @property
    def bits(self) -> int:
        return self._quantizer.bits

    def respond(
        self,
        key: ChannelKey,
        rows: np.ndarray,
        t: int,
        rows_idx: np.ndarray | None = None,
    ) -> ChannelMessage:
        start = monotonic_now()
        quantized = self._quantizer.encode(rows)
        elapsed = monotonic_now() - start
        return ChannelMessage(
            payload=quantized,
            nbytes=quantized.payload_bytes(),
            codec_seconds=elapsed,
        )

    def receive(
        self,
        key: ChannelKey,
        message: ChannelMessage,
        t: int,
        rows_idx: np.ndarray | None = None,
    ) -> ReceiveResult:
        start = monotonic_now()
        rows = message.payload.decode()
        elapsed = monotonic_now() - start
        return ReceiveResult(rows=rows, codec_seconds=elapsed)

    def reset(self) -> None:
        """Plain compression is stateless; nothing to clear."""


class CodecPolicy:
    """Adapt any :class:`repro.compression.codec.Codec` into an exchange
    policy.

    Lets the baseline compressors the paper cites — top-k sparsification
    [32], 1-bit quantization [31], float16 — drive the halo exchange so
    the codec-comparison benchmark can pit them against bucket
    quantization on equal footing.
    """

    def __init__(self, codec):
        self._codec = codec

    @property
    def name(self) -> str:
        return f"codec:{self._codec.name}"

    def respond(
        self,
        key: ChannelKey,
        rows: np.ndarray,
        t: int,
        rows_idx: np.ndarray | None = None,
    ) -> ChannelMessage:
        start = monotonic_now()
        encoded = self._codec.encode(np.ascontiguousarray(rows,
                                                          dtype=np.float32))
        elapsed = monotonic_now() - start
        return ChannelMessage(
            payload=encoded,
            nbytes=encoded.payload_bytes,
            codec_seconds=elapsed,
        )

    def receive(
        self,
        key: ChannelKey,
        message: ChannelMessage,
        t: int,
        rows_idx: np.ndarray | None = None,
    ) -> ReceiveResult:
        start = monotonic_now()
        rows = self._codec.decode(message.payload)
        return ReceiveResult(
            rows=rows, codec_seconds=monotonic_now() - start
        )

    def reset(self) -> None:
        """Codec adapters are stateless; nothing to clear."""


class DelayedPolicy:
    """DistGNN-style delayed partial refresh of remote rows.

    Channel state lives on the requesting end: a cache of the last rows
    received per channel vertex. Iteration ``t`` refreshes only the block
    of vertices with ``index % r == t % r`` (raw floats); iteration 0
    ships everything so the cache starts exact.
    """

    def __init__(self, rounds: int):
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.rounds = rounds
        self._cache: dict[ChannelKey, np.ndarray] = {}

    @property
    def name(self) -> str:
        return f"delayed{self.rounds}"

    def _block(self, count: int, t: int) -> np.ndarray:
        """Indices refreshed at iteration ``t`` for a ``count``-row channel."""
        return np.arange(count)[np.arange(count) % self.rounds == t % self.rounds]

    def respond(
        self,
        key: ChannelKey,
        rows: np.ndarray,
        t: int,
        rows_idx: np.ndarray | None = None,
    ) -> ChannelMessage:
        data = np.ascontiguousarray(rows, dtype=np.float32)
        if t == 0 or key not in self._cache:
            payload = ("full", data.copy())
            nbytes = _HEADER_BYTES + data.nbytes
        else:
            block = self._block(data.shape[0], t)
            payload = ("block", block, data[block].copy())
            nbytes = _HEADER_BYTES + data[block].nbytes + block.size * 4
        return ChannelMessage(payload=payload, nbytes=nbytes)

    def receive(
        self,
        key: ChannelKey,
        message: ChannelMessage,
        t: int,
        rows_idx: np.ndarray | None = None,
    ) -> ReceiveResult:
        kind = message.payload[0]
        if kind == "full":
            self._cache[key] = message.payload[1].copy()
        else:
            _, block, rows = message.payload
            cache = self._cache.get(key)
            if cache is None:
                raise RuntimeError(
                    f"delayed channel {key} received a block before any "
                    "full refresh"
                )
            cache[block] = rows
        return ReceiveResult(rows=self._cache[key].copy())

    def reset(self) -> None:
        self._cache.clear()
