"""Shared infrastructure for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures on the
simulated substrate and prints the same rows/series the paper reports.
Graphs come from the ``bench`` profile of the dataset registry (scaled-down
stand-ins; see DESIGN.md section 2); scale factors are printed so the
output is honest about the substitution.

Set ``REPRO_BENCH_PROFILE=tiny`` for a fast smoke pass or ``full`` for the
largest sizes the simulator handles.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.core.results import ConvergenceRun
from repro.graph.attributed import AttributedGraph
from repro.graph.datasets import load_dataset, scale_factor

PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "bench")

# Model sizes per dataset, following the paper (hidden 16 for the citation
# graphs, 256 for OGBN — scaled to 32 here to keep bench time sane).
HIDDEN = {
    "cora": 16,
    "pubmed": 16,
    "reddit": 16,
    "ogbn-products": 32,
    "ogbn-papers": 32,
}

# Default layer count per dataset (paper section V-A: 2/2/2/3/3).
LAYERS = {
    "cora": 2,
    "pubmed": 2,
    "reddit": 2,
    "ogbn-products": 3,
    "ogbn-papers": 3,
}


@lru_cache(maxsize=None)
def bench_graph(name: str, seed: int = 0) -> AttributedGraph:
    """Load (and cache) one bench-profile dataset."""
    return load_dataset(name, profile=PROFILE, seed=seed)


def dataset_header(name: str) -> str:
    """One line stating the substitution applied to a paper dataset."""
    graph = bench_graph(name)
    factor = scale_factor(name, PROFILE)
    return (
        f"{name}: simulated stand-in, {graph.num_vertices:,} vertices "
        f"(paper: {graph.meta['paper_vertices']:,}; scale 1/{factor:.0f}), "
        f"avg degree {graph.adjacency.average_degree:.1f}"
    )


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value.

    The experiments are end-to-end training runs; repeating them for
    statistical timing would multiply bench time without adding signal,
    so every table/figure bench uses a single round.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def fmt_bytes(num_bytes: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(num_bytes) < 1024:
            return f"{num_bytes:.1f}{unit}"
        num_bytes /= 1024
    return f"{num_bytes:.1f}TB"


def seconds_or_dash(value: float | None) -> str:
    return f"{value:.3f}" if value is not None else "-"


def epochs_or_dash(run: ConvergenceRun, target: float) -> str:
    for result in run.epochs:
        if result.test_accuracy >= target:
            return str(result.epoch + 1)
    return "-"
