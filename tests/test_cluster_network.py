"""Unit tests for the network model and traffic meter."""

import pytest

from repro.cluster.network import (
    GIGABIT,
    NetworkModel,
    TrafficMeter,
    TrafficSnapshot,
)


class TestNetworkModel:
    def test_gigabit_default(self):
        assert GIGABIT.bandwidth_bytes_per_s == pytest.approx(125e6)

    def test_transfer_time_linear_in_bytes(self):
        net = NetworkModel(bandwidth_bytes_per_s=100.0, latency_s=0.0)
        assert net.transfer_seconds(200) == pytest.approx(2.0)

    def test_latency_per_message(self):
        net = NetworkModel(bandwidth_bytes_per_s=1e9, latency_s=0.01)
        assert net.transfer_seconds(0, num_messages=3) == pytest.approx(0.03)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_bytes_per_s=0)

    def test_negative_latency(self):
        with pytest.raises(ValueError):
            NetworkModel(latency_s=-1)

    def test_zero_messages_with_bytes_rejected(self):
        """Bytes without a message would silently skip the latency
        charge; the model demands ``bandwidth_seconds`` for that."""
        net = NetworkModel(bandwidth_bytes_per_s=100.0, latency_s=0.01)
        with pytest.raises(ValueError, match="bandwidth_seconds"):
            net.transfer_seconds(500, num_messages=0)

    def test_negative_messages_rejected(self):
        with pytest.raises(ValueError):
            GIGABIT.transfer_seconds(100, num_messages=-1)

    def test_zero_bytes_zero_messages_is_free(self):
        assert GIGABIT.transfer_seconds(0, num_messages=0) == 0.0

    def test_bandwidth_seconds_has_no_latency(self):
        net = NetworkModel(bandwidth_bytes_per_s=100.0, latency_s=0.01)
        assert net.bandwidth_seconds(500) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            net.bandwidth_seconds(-1)

    def test_loss_detection_timeout(self):
        net = NetworkModel(
            bandwidth_bytes_per_s=100.0, latency_s=0.01, timeout_factor=4.0
        )
        # 4 x (transfer(500) + ack latency) = 4 x (5.0 + 0.01 + 0.01)
        assert net.loss_detection_seconds(500) == pytest.approx(4.0 * 5.02)

    def test_timeout_factor_validated(self):
        with pytest.raises(ValueError):
            NetworkModel(timeout_factor=0.5)


class TestTrafficMeter:
    def test_intra_machine_free(self):
        meter = TrafficMeter()
        meter.charge(0, 0, 1000, "fp_embeddings")
        assert meter.total_bytes == 0
        assert meter.epoch_bytes() == 0

    def test_inter_machine_charged(self):
        meter = TrafficMeter()
        meter.charge(0, 1, 1000, "fp_embeddings")
        assert meter.total_bytes == 1000
        assert meter.total_messages == 1

    def test_per_machine_accounting(self):
        meter = TrafficMeter()
        meter.charge(0, 1, 100, "a")
        meter.charge(2, 0, 50, "b")
        sent, received, messages = meter.epoch_machine_bytes(0)
        assert sent == 100 and received == 50
        assert messages == 2

    def test_category_breakdown(self):
        meter = TrafficMeter()
        meter.charge(0, 1, 10, "fp_embeddings")
        meter.charge(0, 1, 30, "fp_embeddings")
        meter.charge(1, 0, 5, "bp_gradients")
        assert meter.epoch_category_bytes() == {
            "fp_embeddings": 40,
            "bp_gradients": 5,
        }

    def test_reset_epoch_keeps_totals(self):
        meter = TrafficMeter()
        meter.charge(0, 1, 77, "x")
        meter.reset_epoch()
        assert meter.epoch_bytes() == 0
        assert meter.total_bytes == 77
        assert meter.category_totals() == {"x": 77}

    def test_negative_bytes_rejected(self):
        meter = TrafficMeter()
        with pytest.raises(ValueError):
            meter.charge(0, 1, -5, "x")

    def test_comm_seconds_bottleneck_link(self):
        net = NetworkModel(bandwidth_bytes_per_s=100.0, latency_s=0.0)
        meter = TrafficMeter()
        meter.charge(0, 1, 100, "x")  # machine 0 sends 100, machine 1 recv
        meter.charge(0, 2, 300, "x")
        # Machine 0's link carries 400 sent; that's the bottleneck.
        assert meter.epoch_comm_seconds(net, 3) == pytest.approx(4.0)

    def test_comm_seconds_full_duplex(self):
        net = NetworkModel(bandwidth_bytes_per_s=100.0, latency_s=0.0)
        meter = TrafficMeter()
        meter.charge(0, 1, 200, "x")
        meter.charge(1, 0, 200, "x")
        # Send and receive overlap on a full-duplex link.
        assert meter.epoch_comm_seconds(net, 2) == pytest.approx(2.0)

    def test_comm_seconds_includes_latency(self):
        net = NetworkModel(bandwidth_bytes_per_s=1e12, latency_s=0.01)
        meter = TrafficMeter()
        meter.charge(0, 1, 1, "x")
        meter.charge(0, 1, 1, "x")
        # Each machine sees 2 one-sided message events; latency counts
        # once per message -> 2/2 * 0.01 on the bottleneck machine.
        assert meter.epoch_comm_seconds(net, 2) == pytest.approx(0.01, abs=1e-6)


class TestTrafficSnapshot:
    def test_snapshot_freezes_totals(self):
        meter = TrafficMeter()
        meter.charge(0, 1, 100, "fp")
        snap = meter.snapshot()
        meter.charge(0, 1, 50, "fp")
        assert snap.total_bytes == 100
        assert snap.category_bytes == {"fp": 100}
        assert meter.snapshot().total_bytes == 150

    def test_delta_between_snapshots(self):
        meter = TrafficMeter()
        meter.charge(0, 1, 100, "fp")
        before = meter.snapshot()
        meter.charge(0, 1, 30, "fp")
        meter.charge(1, 0, 20, "bp")
        delta = meter.snapshot().delta(before)
        assert delta.total_bytes == 50
        assert delta.total_messages == 2
        assert delta.category_bytes == {"fp": 30, "bp": 20}

    def test_delta_drops_zero_categories(self):
        before = TrafficSnapshot(10, 1, {"fp": 10})
        after = TrafficSnapshot(25, 2, {"fp": 10, "bp": 15})
        assert after.delta(before).category_bytes == {"bp": 15}

    def test_full_reset_clears_lifetime(self):
        meter = TrafficMeter()
        meter.charge(0, 1, 100, "fp")
        meter.reset()
        assert meter.total_bytes == 0
        assert meter.total_messages == 0
        assert meter.category_totals() == {}
        assert meter.epoch_bytes() == 0
