"""Unit tests for the paper-matched dataset registry."""

import pytest

from repro.graph.datasets import (
    PAPER_STATS,
    dataset_names,
    dataset_spec,
    load_dataset,
    scale_factor,
)


class TestRegistry:
    def test_five_datasets_in_paper_order(self):
        assert dataset_names() == [
            "cora", "pubmed", "reddit", "ogbn-products", "ogbn-papers",
        ]

    def test_paper_stats_table3(self):
        assert PAPER_STATS["cora"].num_vertices == 2708
        assert PAPER_STATS["reddit"].avg_degree == pytest.approx(491.99)
        assert PAPER_STATS["ogbn-papers"].num_edges == 3_231_371_744

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="cora"):
            dataset_spec("citeseer")

    def test_unknown_profile(self):
        with pytest.raises(KeyError, match="tiny"):
            dataset_spec("cora", profile="huge")


class TestScaleFactors:
    def test_cora_full_is_unscaled(self):
        assert scale_factor("cora", "full") == pytest.approx(1.0)

    def test_papers_heavily_scaled(self):
        assert scale_factor("ogbn-papers", "full") > 1000

    def test_tiny_scales_more_than_full(self):
        for name in dataset_names():
            assert scale_factor(name, "tiny") >= scale_factor(name, "full")


class TestLoadDataset:
    @pytest.mark.parametrize("name", dataset_names())
    def test_tiny_profile_loads(self, name):
        g = load_dataset(name, profile="tiny", seed=0)
        assert g.num_vertices > 0
        assert g.num_edges > 0
        assert g.meta["profile"] == "tiny"
        assert g.meta["paper_vertices"] == PAPER_STATS[name].num_vertices

    def test_reddit_has_much_higher_degree_than_cora(self):
        reddit = load_dataset("reddit", profile="tiny", seed=0)
        cora = load_dataset("cora", profile="tiny", seed=0)
        assert (
            reddit.adjacency.average_degree > 3 * cora.adjacency.average_degree
        )

    def test_deterministic(self):
        a = load_dataset("pubmed", profile="tiny", seed=3)
        b = load_dataset("pubmed", profile="tiny", seed=3)
        assert (a.labels == b.labels).all()

    def test_scaled_name_suffix(self):
        papers = load_dataset("ogbn-papers", profile="tiny")
        assert papers.name.endswith("-sim")

    def test_papers_noisier_than_reddit(self):
        # Papers' published accuracy is 44.6 % vs Reddit's 92.7 %: the
        # label-noise calibration must reflect that gap.
        papers = dataset_spec("ogbn-papers", "tiny")
        reddit = dataset_spec("reddit", "tiny")
        assert papers.label_noise > reddit.label_noise + 0.3
