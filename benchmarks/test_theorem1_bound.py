"""Theorem 1 — empirical validation of the ResEC-BP error bound.

Two experiments:

1. **Synthetic streams** — replay the error-feedback recursion over
   bounded random gradient streams for every bit width and compare the
   worst observed residual against the theorem's right-hand side.
2. **Real training** — train EC-Graph and read the live residual norms
   off the ResEC-BP channels, checking they remain bounded (no drift).
"""

from __future__ import annotations

import numpy as np

from _helpers import bench_graph, run_once

from repro.analysis.reporting import format_table
from repro.analysis.theory import (
    estimate_alpha,
    simulate_error_feedback,
    theorem1_bound,
)
from repro.cluster.topology import ClusterSpec
from repro.compression.quantization import BucketQuantizer
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.trainer import ECGraphTrainer


def _synthetic_rows():
    rng = np.random.default_rng(0)
    rows = []
    for bits in (2, 4, 8):
        quantizer = BucketQuantizer(bits)
        alpha = max(estimate_alpha(quantizer, samples=32), 1e-4)
        grads = [rng.standard_normal((32, 16)).astype(np.float32)
                 for _ in range(80)]
        trace = simulate_error_feedback(quantizer, grads)
        grad_bound = float(np.sqrt(trace.max_gradient_sq()))
        bound = theorem1_bound(alpha, grad_bound, num_layers=3, layer=2)
        measured = trace.max_residual_sq()
        rows.append([bits, f"{alpha:.4f}", f"{measured:.3f}",
                     f"{bound:.3f}", measured <= bound])
    return rows


def _training_residuals():
    graph = bench_graph("reddit")
    trainer = ECGraphTrainer(
        graph, ModelConfig(num_layers=3, hidden_dim=16),
        ClusterSpec(num_workers=4),
        ECGraphConfig(fp_mode="raw", bp_mode="resec", bp_bits=2),
    )
    norms_over_time = []
    for t in range(30):
        trainer.run_epoch(t)
        policy = trainer._bp_policy
        norms = [policy.residual_norm(key)
                 for key in policy._residual]
        norms_over_time.append(max(norms) if norms else 0.0)
    return norms_over_time


def test_theorem1_bound(benchmark):
    rows, norms = run_once(
        benchmark, lambda: (_synthetic_rows(), _training_residuals())
    )
    print()
    print(format_table(
        ["bits", "alpha", "max ||delta||^2", "theorem bound", "holds"],
        rows,
        title="Theorem 1: synthetic gradient streams",
    ))
    print("Training residual max-norm trace (first/last 5): "
          f"{['%.3f' % n for n in norms[:5]]} ... "
          f"{['%.3f' % n for n in norms[-5:]]}")

    # The bound holds for every width.
    assert all(row[-1] for row in rows)
    # Residuals in real training stay bounded: the late-training maximum
    # does not blow up relative to the early-training level.
    early = max(norms[:10]) + 1e-9
    late = max(norms[-10:])
    assert late < 10 * early
