"""Performance harness: codec micro-kernels, halo exchange, full epochs.

``python -m repro bench`` runs the suites and writes ``BENCH_core.json``
(per-kernel ns/element plus measured epoch seconds); ``--compare``
gates CI on a committed baseline. See ``docs/performance.md``.
"""

from repro.bench.harness import (
    compare_reports,
    load_report,
    parse_percent,
    speedup_flag_lines,
    stage_breakdown_lines,
    write_report,
)
from repro.bench.suites import bench_large, peak_rss_bytes, run_bench

__all__ = [
    "bench_large",
    "compare_reports",
    "load_report",
    "parse_percent",
    "peak_rss_bytes",
    "run_bench",
    "speedup_flag_lines",
    "stage_breakdown_lines",
    "write_report",
]
