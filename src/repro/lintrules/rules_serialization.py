"""ECG006 — no ``pickle``/``eval`` on wire or checkpoint bytes.

Unpickling attacker-controlled (or merely *stale*) bytes executes
arbitrary code; even between trusted processes it silently couples the
wire format to class layouts, so a checkpoint written before a refactor
deserializes into garbage instead of failing validation. The repo's
formats are deliberately dumb: npz archives with magic markers
(``graph/io.py``, ``core/checkpoint.py``), headered shared-memory
segments (``mp/store.py``), JSON for metadata.

Flagged anywhere under ``src/repro``:

* ``import pickle`` / ``dill`` / ``marshal`` / ``shelve`` and
  ``from pickle import ...``;
* calls to ``pickle.loads``/``dumps``/``load``/``dump`` (any alias);
* the builtins ``eval(...)`` and ``exec(...)``;
* ``np.load(..., allow_pickle=True)``.

The one sanctioned exception — the simulated in-process NFS
(``cluster/nfs.py``), whose blobs never cross a process or trust
boundary — carries reasoned pragmas rather than a scope carve-out, so
the exception stays visible in every lint summary.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintrules.base import Finding, ModuleInfo, Rule, dotted_name

__all__ = ["SerializationRule"]

_BANNED_MODULES = {"pickle", "cPickle", "dill", "marshal", "shelve"}
_PICKLE_CALLS = {"loads", "dumps", "load", "dump"}


class SerializationRule(Rule):
    """No pickle/eval/exec on bytes anywhere in ``src/repro``."""

    code = "ECG006"
    name = "pickle-eval"
    summary = (
        "pickle/eval/exec on wire or checkpoint bytes; use the "
        "validated npz / headered-segment formats"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in self.walk(module):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED_MODULES:
                        yield module.finding(
                            self.code,
                            f"import {alias.name}: arbitrary-code "
                            "deserialization; use validated npz/JSON "
                            "formats",
                            node,
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module and node.module.split(".")[0] in _BANNED_MODULES:
                    yield module.finding(
                        self.code,
                        f"from {node.module} import ...: arbitrary-code "
                        "deserialization on bytes",
                        node,
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                parts = name.split(".")
                if (
                    len(parts) == 2
                    and parts[0] in _BANNED_MODULES
                    and parts[1] in _PICKLE_CALLS
                ):
                    yield module.finding(
                        self.code,
                        f"{name}() deserializes/serializes via pickle",
                        node,
                    )
                elif name in ("eval", "exec"):
                    yield module.finding(
                        self.code,
                        f"builtin {name}() on dynamic input",
                        node,
                    )
                else:
                    for kw in node.keywords:
                        if (
                            kw.arg == "allow_pickle"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is True
                        ):
                            yield module.finding(
                                self.code,
                                f"{name or 'call'}(allow_pickle=True) "
                                "permits pickled arrays on load",
                                node,
                            )
