"""Activation functions and their derivatives.

The distributed backward pass (paper Eqs. 4-5) needs ``sigma'(Z)`` evaluated
at the *pre-activation* matrix that each worker stored during the forward
pass, so every activation here exposes both ``forward(z)`` and
``derivative(z)`` where ``z`` is the pre-activation input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "Activation",
    "relu",
    "leaky_relu",
    "tanh",
    "sigmoid",
    "identity",
    "elu",
    "get_activation",
]


@dataclass(frozen=True)
class Activation:
    """An activation function paired with its derivative.

    Attributes:
        name: Registry name of the activation.
        forward: Maps pre-activations ``Z`` to activations ``H``.
        derivative: Maps pre-activations ``Z`` to ``dH/dZ`` evaluated
            element-wise (the Hadamard factor in the backward pass).
    """

    name: str
    forward: Callable[[np.ndarray], np.ndarray]
    derivative: Callable[[np.ndarray], np.ndarray]

    def __call__(self, z: np.ndarray) -> np.ndarray:
        return self.forward(z)


def _relu_fwd(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


def _relu_bwd(z: np.ndarray) -> np.ndarray:
    return (z > 0.0).astype(z.dtype)


def _leaky_relu_fwd(z: np.ndarray, slope: float = 0.01) -> np.ndarray:
    return np.where(z > 0.0, z, slope * z)


def _leaky_relu_bwd(z: np.ndarray, slope: float = 0.01) -> np.ndarray:
    return np.where(z > 0.0, 1.0, slope).astype(z.dtype)


def _tanh_fwd(z: np.ndarray) -> np.ndarray:
    return np.tanh(z)


def _tanh_bwd(z: np.ndarray) -> np.ndarray:
    t = np.tanh(z)
    return 1.0 - t * t


def _sigmoid_fwd(z: np.ndarray) -> np.ndarray:
    # Numerically stable split over sign to avoid overflow in exp().
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def _sigmoid_bwd(z: np.ndarray) -> np.ndarray:
    s = _sigmoid_fwd(z)
    return s * (1.0 - s)


def _identity_fwd(z: np.ndarray) -> np.ndarray:
    return z


def _identity_bwd(z: np.ndarray) -> np.ndarray:
    return np.ones_like(z)


def _elu_fwd(z: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    return np.where(z > 0.0, z, alpha * (np.exp(np.minimum(z, 0.0)) - 1.0))


def _elu_bwd(z: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    return np.where(z > 0.0, 1.0, alpha * np.exp(np.minimum(z, 0.0)))


relu = Activation("relu", _relu_fwd, _relu_bwd)
leaky_relu = Activation("leaky_relu", _leaky_relu_fwd, _leaky_relu_bwd)
tanh = Activation("tanh", _tanh_fwd, _tanh_bwd)
sigmoid = Activation("sigmoid", _sigmoid_fwd, _sigmoid_bwd)
identity = Activation("identity", _identity_fwd, _identity_bwd)
elu = Activation("elu", _elu_fwd, _elu_bwd)

_REGISTRY = {
    act.name: act for act in (relu, leaky_relu, tanh, sigmoid, identity, elu)
}

# Public registry surface: the names configs may validate against.
ACTIVATION_NAMES: tuple[str, ...] = tuple(sorted(_REGISTRY))


def get_activation(name: str) -> Activation:
    """Look up an activation by name, failing loudly on typos."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown activation {name!r}; known: {known}") from None
