"""Unit tests for the attributed graph container and split masks."""

import numpy as np
import pytest

from repro.graph.attributed import AttributedGraph, make_split_masks
from repro.graph.csr import from_edge_list


def _graph(n=6, classes=2, **overrides):
    edges = [(v, (v + 1) % n) for v in range(n)]
    adjacency = from_edge_list(edges, n)
    rng = np.random.default_rng(0)
    fields = dict(
        adjacency=adjacency,
        features=rng.standard_normal((n, 4)).astype(np.float32),
        labels=rng.integers(0, classes, n),
        train_mask=np.array([True] * 2 + [False] * (n - 2)),
        val_mask=np.array([False] * 2 + [True] * 2 + [False] * (n - 4)),
        test_mask=np.array([False] * 4 + [True] * (n - 4)),
        num_classes=classes,
    )
    fields.update(overrides)
    return AttributedGraph(**fields)


class TestValidation:
    def test_valid_graph_constructs(self):
        g = _graph()
        assert g.num_vertices == 6
        assert g.feature_dim == 4

    def test_feature_rows_must_match(self):
        with pytest.raises(ValueError, match="features"):
            _graph(features=np.zeros((5, 4), dtype=np.float32))

    def test_label_shape_must_match(self):
        with pytest.raises(ValueError, match="labels"):
            _graph(labels=np.zeros(5, dtype=np.int64))

    def test_mask_shape_must_match(self):
        with pytest.raises(ValueError, match="train_mask"):
            _graph(train_mask=np.zeros(5, dtype=bool))

    def test_labelled_class_out_of_range_rejected(self):
        labels = np.zeros(6, dtype=np.int64)
        labels[0] = 9  # vertex 0 is in train_mask
        with pytest.raises(ValueError, match="class id"):
            _graph(labels=labels)

    def test_unlabelled_vertices_may_have_sentinel(self):
        labels = np.zeros(6, dtype=np.int64)
        labels[5] = -1
        g = _graph(
            labels=labels,
            test_mask=np.zeros(6, dtype=bool),
        )
        assert g.labels[5] == -1

    def test_nonpositive_classes_rejected(self):
        with pytest.raises(ValueError, match="num_classes"):
            _graph(num_classes=0)

    def test_features_cast_to_float32(self):
        g = _graph(features=np.ones((6, 4), dtype=np.float64))
        assert g.features.dtype == np.float32


class TestAccessors:
    def test_split_sizes(self):
        assert _graph().split_sizes() == (2, 2, 2)

    def test_summary_mentions_name_and_counts(self):
        text = _graph().summary()
        assert "unnamed" in text
        assert "|V|=6" in text


class TestSplitMasks:
    def test_disjoint_and_sized(self):
        rng = np.random.default_rng(1)
        train, val, test = make_split_masks(100, 60, 20, 15, rng)
        assert train.sum() == 60 and val.sum() == 20 and test.sum() == 15
        assert not (train & val).any()
        assert not (train & test).any()
        assert not (val & test).any()

    def test_oversized_split_rejected(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError, match="exceed"):
            make_split_masks(10, 6, 4, 2, rng)

    def test_deterministic_given_seed(self):
        a = make_split_masks(50, 10, 10, 10, np.random.default_rng(5))
        b = make_split_masks(50, 10, 10, 10, np.random.default_rng(5))
        for mask_a, mask_b in zip(a, b):
            np.testing.assert_array_equal(mask_a, mask_b)
