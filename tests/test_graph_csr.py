"""Unit tests for the CSR graph structure."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph, from_edge_list, from_scipy


class TestConstruction:
    def test_from_edge_list_basic(self, tiny_csr):
        assert tiny_csr.num_vertices == 5
        assert tiny_csr.num_edges == 6
        np.testing.assert_array_equal(tiny_csr.neighbors(0), [1, 2])
        np.testing.assert_array_equal(tiny_csr.neighbors(3), [4])

    def test_empty_graph(self):
        g = from_edge_list([], num_vertices=3)
        assert g.num_edges == 0
        assert g.degree(0) == 0

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(ValueError):
            from_edge_list([(0, 5)], num_vertices=3)

    def test_deduplicate(self):
        g = from_edge_list([(0, 1), (0, 1), (1, 0)], 2, deduplicate=True)
        assert g.num_edges == 2

    def test_weights_preserved_through_sorting(self):
        # Edges given out of source order; weights must follow them.
        edges = [(2, 0), (0, 1), (1, 2)]
        weights = [0.3, 0.1, 0.2]
        g = from_edge_list(edges, 3, weights=weights)
        assert g.edge_weights(0)[0] == pytest.approx(0.1)
        assert g.edge_weights(2)[0] == pytest.approx(0.3)

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            from_edge_list([(0, 1)], 2, weights=[0.5, 0.5])

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0]))

    def test_indptr_tail_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2]), np.array([0]))


class TestQueries:
    def test_degree_vector(self, tiny_csr):
        np.testing.assert_array_equal(tiny_csr.degree(), [2, 1, 1, 1, 1])

    def test_average_degree(self, tiny_csr):
        assert tiny_csr.average_degree == pytest.approx(6 / 5)

    def test_iter_edges_matches_neighbors(self, tiny_csr):
        edges = set(tiny_csr.iter_edges())
        assert (0, 1) in edges and (4, 3) in edges
        assert len(edges) == 6

    def test_has_edge(self, tiny_csr):
        assert tiny_csr.has_edge(0, 2)
        assert not tiny_csr.has_edge(2, 1)

    def test_has_edge_sorted_rows(self, tiny_csr):
        sorted_g = tiny_csr.sorted_rows()
        assert sorted_g.has_edge(0, 2)
        assert not sorted_g.has_edge(1, 0)

    def test_edge_weights_default_ones(self, tiny_csr):
        np.testing.assert_array_equal(tiny_csr.edge_weights(0), [1.0, 1.0])


class TestTranspose:
    def test_transpose_reverses_edges(self, tiny_csr):
        t = tiny_csr.transpose()
        forward = set(tiny_csr.iter_edges())
        backward = set(t.iter_edges())
        assert backward == {(v, u) for u, v in forward}

    def test_double_transpose_identity(self, tiny_csr):
        tt = tiny_csr.transpose().transpose()
        assert set(tt.iter_edges()) == set(tiny_csr.iter_edges())

    def test_transpose_carries_weights(self):
        g = from_edge_list([(0, 1), (1, 2)], 3, weights=[0.5, 0.9])
        t = g.transpose()
        # Edge 1->0 in transpose corresponds to 0->1 with weight 0.5.
        assert t.edge_weights(1)[0] == pytest.approx(0.5)
        assert t.edge_weights(2)[0] == pytest.approx(0.9)

    def test_symmetric_graph_fixed_point(self, ring_graph):
        t = ring_graph.transpose()
        assert set(t.iter_edges()) == set(ring_graph.iter_edges())


class TestSelfLoops:
    def test_adds_missing_loops(self, tiny_csr):
        g = tiny_csr.with_self_loops()
        assert g.num_edges == tiny_csr.num_edges + 5
        for v in range(5):
            assert g.has_edge(v, v)

    def test_idempotent(self, tiny_csr):
        once = tiny_csr.with_self_loops()
        twice = once.with_self_loops()
        assert twice.num_edges == once.num_edges

    def test_existing_loop_kept_once(self):
        g = from_edge_list([(0, 0), (0, 1)], 2)
        with_loops = g.with_self_loops()
        assert with_loops.num_edges == 3  # adds only vertex 1's loop

    def test_new_loops_weight_one(self):
        g = from_edge_list([(0, 1)], 2, weights=[0.25])
        looped = g.with_self_loops()
        row0 = dict(zip(looped.neighbors(0), looped.edge_weights(0)))
        assert row0[0] == pytest.approx(1.0)
        assert row0[1] == pytest.approx(0.25)


class TestScipyInterop:
    def test_roundtrip(self, tiny_csr):
        back = from_scipy(tiny_csr.to_scipy())
        assert set(back.iter_edges()) == set(tiny_csr.iter_edges())

    def test_weighted_roundtrip(self):
        g = from_edge_list([(0, 1), (1, 0)], 2, weights=[0.5, 2.0])
        back = from_scipy(g.to_scipy())
        assert back.edge_weights(0)[0] == pytest.approx(0.5)

    def test_nonsquare_rejected(self):
        from scipy.sparse import csr_matrix

        with pytest.raises(ValueError):
            from_scipy(csr_matrix((2, 3)))
