"""Ablation — how EC-Graph's advantage depends on the network.

The paper remarks that DistDGL's claimed linear speedups rely on a
100 Gbps fabric "where communication would not be a bottleneck", and
motivates EC-Graph for commodity Gigabit clusters. This bench sweeps the
interconnect bandwidth and reports the epoch-time ratio of Non-cp over
EC-Graph: compression should matter most at low bandwidth and fade as
the network gets faster — quantifying where the paper's design pays off.
"""

from __future__ import annotations

from _helpers import HIDDEN, bench_graph, dataset_header, run_once

from repro.analysis.reporting import format_table
from repro.cluster.network import NetworkModel
from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.trainer import ECGraphTrainer

DATASET = "reddit"
EPOCHS = 4
WORKERS = 6

# 100 Mbps commodity, 1 Gbps (the paper's clusters), 10 and 100 Gbps.
BANDWIDTHS = {
    "100Mbps": 12.5e6,
    "1Gbps": 125e6,
    "10Gbps": 1.25e9,
    "100Gbps": 12.5e9,
}


def _experiment():
    graph = bench_graph(DATASET)
    results = {}
    for label, bandwidth in BANDWIDTHS.items():
        spec = ClusterSpec(
            num_workers=WORKERS,
            network=NetworkModel(bandwidth_bytes_per_s=bandwidth,
                                 latency_s=1e-4),
        )
        for system, config in (
            ("noncp", ECGraphConfig(fp_mode="raw", bp_mode="raw")),
            ("ecgraph", ECGraphConfig()),
        ):
            trainer = ECGraphTrainer(
                graph, ModelConfig(num_layers=2,
                                   hidden_dim=HIDDEN[DATASET]),
                spec, config,
            )
            run = trainer.train(EPOCHS, name=f"{system}@{label}")
            comm = sum(e.breakdown.comm_seconds for e in run.epochs)
            results[(system, label)] = (run.avg_epoch_seconds(), comm)
    return results


def test_ablation_network(benchmark):
    results = run_once(benchmark, _experiment)
    print()
    print(dataset_header(DATASET))
    rows = []
    for label in BANDWIDTHS:
        noncp_epoch, noncp_comm = results[("noncp", label)]
        ec_epoch, ec_comm = results[("ecgraph", label)]
        rows.append([
            label,
            f"{noncp_epoch * 1e3:.2f}ms",
            f"{ec_epoch * 1e3:.2f}ms",
            f"{noncp_epoch / ec_epoch:.2f}x",
            f"{noncp_comm / max(ec_comm, 1e-12):.1f}x",
        ])
    print(format_table(
        ["network", "Non-cp epoch", "EC-Graph epoch",
         "epoch-time ratio", "comm-time ratio"],
        rows,
        title="EC-Graph advantage vs interconnect bandwidth",
    ))

    # Shape: the per-epoch advantage is largest on the slowest network
    # and decays monotonically toward fast fabrics.
    ratios = [
        results[("noncp", label)][0] / results[("ecgraph", label)][0]
        for label in BANDWIDTHS
    ]
    assert ratios[0] > ratios[-1]
    assert ratios[0] > 1.3  # compression clearly wins at 100 Mbps
    # At 100 Gbps communication is negligible; the systems converge to
    # within ~25 % of each other per epoch.
    assert ratios[-1] < 1.25
