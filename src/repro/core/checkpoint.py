"""Checkpointing: persist trained parameters and training state.

Long full-batch runs on large graphs (the paper's OGBN-Papers takes
~90 s *per epoch* on its 6-machine cluster) need restartability. A
checkpoint stores the server-side parameters, the iteration counter, the
model/EC configuration fingerprints and the run history, in a single
``.npz`` archive.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.trainer import ECGraphTrainer
from repro.obs.config import ObsConfig

__all__ = ["save_checkpoint", "load_checkpoint", "restore_trainer"]

_FORMAT_VERSION = 1


def _load_ec_config(fields: dict) -> ECGraphConfig:
    """Rebuild the config; ``asdict`` flattened the nested ObsConfig."""
    obs = fields.get("obs")
    if isinstance(obs, dict):
        fields = dict(fields, obs=ObsConfig(**obs))
    return ECGraphConfig(**fields)


def save_checkpoint(
    trainer: ECGraphTrainer,
    path: str | Path,
    epoch: int,
    extra: dict | None = None,
) -> None:
    """Write the trainer's current parameters and metadata to ``path``.

    Args:
        trainer: A set-up trainer (its servers hold the parameters).
        path: Target ``.npz`` file; parent directories are created.
        epoch: Number of completed training iterations.
        extra: Optional JSON-serializable metadata to carry along.
    """
    trainer.setup()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload: dict[str, np.ndarray] = {
        "format_version": np.int64(_FORMAT_VERSION),
        "epoch": np.int64(epoch),
        "model_config_json": np.str_(json.dumps(asdict(trainer.model_config))),
        "ec_config_json": np.str_(json.dumps(asdict(trainer.config))),
        "extra_json": np.str_(json.dumps(extra or {})),
        "param_names": np.array(
            trainer.servers.parameter_names(), dtype=np.str_
        ),
    }
    for name in trainer.servers.parameter_names():
        payload[f"param/{name}"] = trainer.servers.get(name)
    np.savez_compressed(path, **payload)


def load_checkpoint(path: str | Path) -> dict:
    """Read a checkpoint into a plain dict.

    Returns keys: ``epoch``, ``model_config``, ``ec_config``, ``extra``
    and ``params`` (name -> array).
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"checkpoint not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        names = [str(n) for n in archive["param_names"]]
        return {
            "epoch": int(archive["epoch"]),
            "model_config": ModelConfig(
                **json.loads(str(archive["model_config_json"]))
            ),
            "ec_config": _load_ec_config(
                json.loads(str(archive["ec_config_json"]))
            ),
            "extra": json.loads(str(archive["extra_json"])),
            "params": {name: archive[f"param/{name}"] for name in names},
        }


def restore_trainer(trainer: ECGraphTrainer, path: str | Path) -> int:
    """Load checkpointed parameters into ``trainer``; returns the epoch.

    The trainer's model configuration must match the checkpoint's —
    mismatched architectures fail loudly instead of silently truncating.
    """
    state = load_checkpoint(path)
    if state["model_config"] != trainer.model_config:
        raise ValueError(
            "checkpoint model config does not match the trainer: "
            f"{state['model_config']} vs {trainer.model_config}"
        )
    trainer.setup()
    for name, value in state["params"].items():
        trainer.servers.set(name, value)
    return state["epoch"]
