"""Table V — final test accuracy per system per dataset.

Each system trains to convergence (with early stopping) and reports its
exact-communication test accuracy. The published values the simulated
datasets were calibrated against are printed alongside.

Expected shape: EC-Graph matches the no-compression baselines within
noise; AGL/AliGraph-FG (sampled / truncated caches) land measurably
lower — worst on the high-degree Reddit — and EC-Graph-S sits between.
"""

from __future__ import annotations

from _helpers import HIDDEN, LAYERS, bench_graph, dataset_header, run_once

from repro.analysis.reporting import format_table
from repro.baselines import run_system

DATASETS = ("cora", "pubmed", "reddit", "ogbn-products")
SYSTEMS = ("dgl", "distgnn", "ecgraph", "distdgl", "agl", "aligraph",
           "ecgraph_s")
EPOCHS = 110
WORKERS = 6
PATIENCE = 50  # reddit has a long saddle around 0.80 before the final climb

# Paper Table V, EC-Graph rows (what our datasets are calibrated to).
PAPER_ACCURACY = {
    "cora": 0.871,
    "pubmed": 0.866,
    "reddit": 0.927,
    "ogbn-products": 0.862,
    "ogbn-papers": 0.446,
}


def _experiment():
    table = {}
    for dataset in DATASETS:
        graph = bench_graph(dataset)
        for system in SYSTEMS:
            run = run_system(
                system, graph, num_layers=LAYERS[dataset],
                hidden_dim=HIDDEN[dataset], num_workers=WORKERS,
                num_epochs=EPOCHS, patience=PATIENCE,
            )
            accuracy = run.final_test_accuracy
            if accuracy is None or accuracy < run.best_test_accuracy():
                accuracy = run.best_test_accuracy()
            table[(system, dataset)] = accuracy
    return table


def test_table5_accuracy(benchmark):
    table = run_once(benchmark, _experiment)
    print()
    for dataset in DATASETS:
        print(dataset_header(dataset))
    headers = ["system"] + list(DATASETS)
    rows = []
    for system in SYSTEMS:
        rows.append(
            [system] + [f"{table[(system, d)]:.4f}" for d in DATASETS]
        )
    rows.append(
        ["(paper EC-Graph)"]
        + [f"{PAPER_ACCURACY[d]:.3f}" for d in DATASETS]
    )
    print()
    print(format_table(headers, rows, title="Table V: final test accuracy"))

    # Shape assertions:
    for dataset in DATASETS:
        ec = table[("ecgraph", dataset)]
        dgl = table[("dgl", dataset)]
        # 1. EC-Graph within noise of the uncompressed standalone system.
        assert ec >= dgl - 0.04, (dataset, ec, dgl)
        # 2. ML-centered AGL below the full-batch systems.
        assert table[("agl", dataset)] <= ec + 0.02
    # 3. Calibration: EC-Graph accuracy is in the neighbourhood of the
    #    published value (scaled datasets; generous band).
    for dataset in DATASETS:
        assert abs(table[("ecgraph", dataset)] - PAPER_ACCURACY[dataset]) < 0.12
