"""Unit tests for the CodecPolicy adapter and trainer policy injection."""

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec
from repro.compression import Float16Codec, OneBitCodec, TopKCodec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.messages import ChannelKey
from repro.core.policies import CodecPolicy
from repro.core.trainer import ECGraphTrainer

KEY = ChannelKey(layer=1, responder=0, requester=1)


@pytest.fixture
def rows():
    rng = np.random.default_rng(0)
    return rng.standard_normal((15, 8)).astype(np.float32)


class TestCodecPolicy:
    def test_float16_roundtrip(self, rows):
        policy = CodecPolicy(Float16Codec())
        result = policy.receive(KEY, policy.respond(KEY, rows, 0), 0)
        np.testing.assert_allclose(result.rows, rows, atol=0.01)

    def test_topk_zeroes_small_entries(self, rows):
        policy = CodecPolicy(TopKCodec(k=2))
        result = policy.receive(KEY, policy.respond(KEY, rows, 0), 0)
        nonzero_per_row = (result.rows != 0).sum(axis=1)
        assert (nonzero_per_row <= 2).all()

    def test_onebit_extreme_ratio(self, rows):
        policy = CodecPolicy(OneBitCodec())
        message = policy.respond(KEY, rows, 0)
        assert message.nbytes < rows.nbytes / 10

    def test_name_includes_codec(self):
        assert CodecPolicy(OneBitCodec()).name == "codec:onebit"

    def test_codec_seconds_recorded(self, rows):
        message = CodecPolicy(TopKCodec(k=4)).respond(KEY, rows, 0)
        assert message.codec_seconds >= 0


class TestTrainerInjection:
    def test_fp_override_wins_over_config(self, small_graph):
        trainer = ECGraphTrainer(
            small_graph, ModelConfig(num_layers=2, hidden_dim=4),
            ClusterSpec(num_workers=2),
            ECGraphConfig(fp_mode="raw", bp_mode="raw"),
            fp_policy=CodecPolicy(Float16Codec()),
        )
        trainer.setup()
        assert trainer._fp_policy.name == "codec:float16"
        run = trainer.train(3)
        assert np.isfinite(run.epochs[-1].loss)

    def test_bp_override(self, small_graph):
        trainer = ECGraphTrainer(
            small_graph, ModelConfig(num_layers=2, hidden_dim=4),
            ClusterSpec(num_workers=2),
            ECGraphConfig(fp_mode="raw", bp_mode="raw"),
            bp_policy=CodecPolicy(OneBitCodec()),
        )
        run = trainer.train(3)
        assert np.isfinite(run.epochs[-1].loss)

    def test_float16_fp_matches_raw_closely(self, small_graph):
        """float16 forward exchange is near-lossless: losses track raw."""
        config = ECGraphConfig(fp_mode="raw", bp_mode="raw", seed=1)
        raw = ECGraphTrainer(
            small_graph, ModelConfig(num_layers=2, hidden_dim=4),
            ClusterSpec(num_workers=2), config,
        ).train(5)
        f16 = ECGraphTrainer(
            small_graph, ModelConfig(num_layers=2, hidden_dim=4),
            ClusterSpec(num_workers=2), config,
            fp_policy=CodecPolicy(Float16Codec()),
        ).train(5)
        for a, b in zip(raw.epochs, f16.epochs):
            assert a.loss == pytest.approx(b.loss, rel=1e-2)
