"""Cross-cutting hypothesis property tests.

These verify structural invariants that every subsystem relies on, over
randomly generated graphs and matrices rather than hand-picked cases.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bit_tuner import BIT_LADDER, BitTuner
from repro.graph.csr import from_edge_list
from repro.graph.normalize import gcn_normalize, row_normalize
from repro.graph.subgraph import induced_subgraph
from repro.partition.bfs import BFSPartitioner
from repro.partition.hashing import HashPartitioner
from repro.partition.metis_like import MetisLikePartitioner
from repro.partition.stats import partition_stats


@st.composite
def random_graph(draw, max_vertices=40, max_edges=120):
    """A random directed graph as (num_vertices, edge array)."""
    n = draw(st.integers(2, max_vertices))
    m = draw(st.integers(0, max_edges))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m, max_size=m,
        )
    )
    return n, np.array(edges, dtype=np.int64).reshape(-1, 2)


@st.composite
def symmetric_graph(draw, max_vertices=30, max_edges=80):
    """A random symmetric graph (both arcs stored, deduplicated)."""
    n, edges = draw(random_graph(max_vertices, max_edges))
    if edges.size:
        both = np.concatenate([edges, edges[:, ::-1]], axis=0)
    else:
        both = edges
    return n, both


class TestCSRProperties:
    @given(data=random_graph())
    @settings(max_examples=60, deadline=None)
    def test_edge_count_preserved(self, data):
        n, edges = data
        graph = from_edge_list(edges, n, deduplicate=True)
        unique = {(int(a), int(b)) for a, b in edges}
        assert graph.num_edges == len(unique)
        assert set(graph.iter_edges()) == unique

    @given(data=random_graph())
    @settings(max_examples=60, deadline=None)
    def test_transpose_involution(self, data):
        n, edges = data
        graph = from_edge_list(edges, n, deduplicate=True)
        double = graph.transpose().transpose()
        assert set(double.iter_edges()) == set(graph.iter_edges())

    @given(data=random_graph())
    @settings(max_examples=60, deadline=None)
    def test_degrees_sum_to_edges(self, data):
        n, edges = data
        graph = from_edge_list(edges, n, deduplicate=True)
        assert int(np.sum(graph.degree())) == graph.num_edges


class TestNormalizationProperties:
    @given(data=symmetric_graph())
    @settings(max_examples=40, deadline=None)
    def test_gcn_spectral_radius_bounded_by_one(self, data):
        # Row sums of D^{-1/2}(A+I)D^{-1/2} can exceed 1 on irregular
        # graphs (hubs with leaf neighbours); the invariant that makes
        # stacked GCN layers stable is the spectral radius <= 1.
        n, edges = data
        graph = from_edge_list(edges, n, deduplicate=True)
        dense = gcn_normalize(graph).to_scipy().toarray()
        eigenvalues = np.linalg.eigvalsh((dense + dense.T) / 2)
        assert np.abs(eigenvalues).max() <= 1.0 + 1e-4
        assert (dense >= 0).all()

    @given(data=symmetric_graph())
    @settings(max_examples=40, deadline=None)
    def test_gcn_preserves_symmetry(self, data):
        n, edges = data
        graph = from_edge_list(edges, n, deduplicate=True)
        dense = gcn_normalize(graph).to_scipy().toarray()
        np.testing.assert_allclose(dense, dense.T, atol=1e-5)

    @given(data=random_graph())
    @settings(max_examples=40, deadline=None)
    def test_row_normalize_stochastic_or_zero(self, data):
        n, edges = data
        graph = from_edge_list(edges, n, deduplicate=True)
        dense = row_normalize(graph).to_scipy().toarray()
        sums = dense.sum(axis=1)
        assert np.all((np.abs(sums - 1.0) < 1e-5) | (sums == 0.0))


class TestPartitionProperties:
    @given(
        data=symmetric_graph(),
        parts=st.integers(1, 5),
        method=st.sampled_from(["hash", "bfs", "metis"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_partition_is_total_function(self, data, parts, method):
        n, edges = data
        graph = from_edge_list(edges, n, deduplicate=True)
        partitioner = {
            "hash": HashPartitioner(),
            "bfs": BFSPartitioner(seed=0),
            "metis": MetisLikePartitioner(seed=0, coarsen_until=8),
        }[method]
        partition = partitioner.partition(graph, parts)
        assert partition.num_vertices == n
        covered = np.concatenate(
            [partition.part_vertices(p) for p in range(parts)]
        )
        assert len(covered) == n
        assert len(np.unique(covered)) == n

    @given(data=symmetric_graph(), parts=st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_edge_cut_bounds(self, data, parts):
        n, edges = data
        graph = from_edge_list(edges, n, deduplicate=True)
        partition = HashPartitioner().partition(graph, parts)
        stats = partition_stats(graph, partition)
        assert 0 <= stats.edge_cut <= graph.num_edges
        assert 0.0 <= stats.edge_cut_ratio <= 1.0


class TestSubgraphProperties:
    @given(data=symmetric_graph(), parts=st.integers(2, 4))
    @settings(max_examples=30, deadline=None)
    def test_halo_union_covers_cut_edges(self, data, parts):
        """Every cut-edge target appears in exactly the right halo."""
        n, edges = data
        graph = from_edge_list(edges, n, deduplicate=True)
        partition = HashPartitioner().partition(graph, parts)
        for part in range(parts):
            local = partition.part_vertices(part)
            sub = induced_subgraph(graph, local)
            expected_remote = set()
            local_set = set(local.tolist())
            for v in local:
                for u in graph.neighbors(int(v)):
                    if int(u) not in local_set:
                        expected_remote.add(int(u))
            assert set(sub.remote_vertices.tolist()) == expected_remote
            assert sub.num_edges == sum(
                graph.degree(int(v)) for v in local
            )


class TestBitTunerProperties:
    @given(
        proportions=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=60),
        start=st.sampled_from(BIT_LADDER),
    )
    @settings(max_examples=60, deadline=None)
    def test_widths_stay_on_ladder(self, proportions, start):
        tuner = BitTuner(initial_bits=start)
        pair = (0, 1)
        for p in proportions:
            width = tuner.update(pair, p)
            assert width in BIT_LADDER

    @given(proportions=st.lists(st.floats(0.0, 0.39), min_size=10,
                                max_size=10))
    @settings(max_examples=20, deadline=None)
    def test_sustained_low_proportion_reaches_floor(self, proportions):
        tuner = BitTuner(initial_bits=16)
        pair = (0, 1)
        for p in proportions:
            tuner.update(pair, p)
        assert tuner.bits(pair) == 1
