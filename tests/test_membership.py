"""Elastic membership: permanent loss, adoption, rejoin, watchdog.

Covers the `repro.membership` package end to end: the lease-based
MembershipView, live partition adoption with gradient-gap carry-over,
rejoin reclaim, quorum fail-fast, the convergence watchdog's
rollback/escalation response, checkpoint durability (fsync) and the
both-generations-corrupt fail-fast — plus the invariant that matters
most: an elastic-enabled run with *no* scheduled fault is bit-identical
to a non-elastic run (loss curve AND traffic meter).
"""

import math

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec
from repro.core.checkpoint import CheckpointError, save_checkpoint
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.trainer import ECGraphTrainer
from repro.faults import FaultConfig
from repro.faults.chaos import run_chaos
from repro.membership import (
    ConvergenceWatchdog,
    DivergenceError,
    MembershipView,
    QuorumLostError,
)
from repro.obs import ObsConfig

OBS = ObsConfig(enabled=True, trace=False, health=False, profile=False,
                epoch_snapshots=False)


def _train(graph, faults, epochs=12, workers=3, **config_overrides):
    """Train with a FaultConfig; returns (trainer, run)."""
    config = ECGraphConfig(faults=faults, **config_overrides)
    trainer = ECGraphTrainer(
        graph, ModelConfig(num_layers=2, hidden_dim=8),
        ClusterSpec(num_workers=workers), config,
    )
    return trainer, trainer.train(epochs)


def _event_kinds(trainer):
    return [e["kind"] for e in trainer.membership_events]


# ----------------------------------------------------------------------
# MembershipView unit behaviour
# ----------------------------------------------------------------------
class TestMembershipView:
    FAULTS = FaultConfig(enabled=True, elastic=True)

    def test_starts_fully_alive(self):
        view = MembershipView(4, self.FAULTS)
        assert view.alive_workers() == [0, 1, 2, 3]
        assert view.alive_count == 4
        assert all(view.is_alive(w) for w in range(4))

    def test_mark_dead_and_detection_stall(self):
        faults = FaultConfig(enabled=True, elastic=True,
                             heartbeat_interval_s=0.3, lease_grace_s=1.0)
        view = MembershipView(3, faults)
        stall = view.mark_dead(2, 1)
        # Detection quantizes the grace window up to whole heartbeats:
        # ceil(1.0 / 0.3) = 4 beats of 0.3 s.
        assert stall == pytest.approx(4 * 0.3)
        assert not view.is_alive(1)
        assert view.alive_workers() == [0, 2]

    def test_double_death_rejected(self):
        view = MembershipView(2, self.FAULTS)
        view.mark_dead(0, 1)
        with pytest.raises(ValueError, match="already dead"):
            view.mark_dead(1, 1)

    def test_mark_alive_roundtrip(self):
        view = MembershipView(2, self.FAULTS)
        assert not view.mark_alive(0, 1)  # never died: no-op
        view.mark_dead(1, 1)
        assert view.mark_alive(2, 1)
        assert view.alive_workers() == [0, 1]

    def test_quorum_fail_fast(self):
        faults = FaultConfig(enabled=True, elastic=True,
                             quorum_fraction=0.5)
        view = MembershipView(4, faults)
        view.mark_dead(0, 3)
        view.require_quorum(0)  # 3/4 alive: fine
        view.mark_dead(1, 2)
        view.require_quorum(1)  # 2/4 = exactly the quorum: fine
        view.mark_dead(2, 1)
        with pytest.raises(QuorumLostError, match="quorum lost"):
            view.require_quorum(2)  # 1/4 < 0.5
        assert view.events[-1].kind == "quorum_lost"

    def test_timeline_is_ordered_and_serializable(self):
        view = MembershipView(3, self.FAULTS)
        view.mark_dead(1, 2)
        view.record(1, "partition_adopted", 2, adopter=0, vertices=10)
        view.mark_alive(4, 2)
        kinds = [e.kind for e in view.events]
        assert kinds == ["worker_lost", "partition_adopted",
                         "worker_rejoined"]
        as_dicts = [e.as_dict() for e in view.events]
        assert as_dicts[1] == {"epoch": 1, "kind": "partition_adopted",
                               "worker": 2, "adopter": 0, "vertices": 10}


# ----------------------------------------------------------------------
# ConvergenceWatchdog unit behaviour
# ----------------------------------------------------------------------
class TestConvergenceWatchdog:
    FAULTS = FaultConfig(enabled=True, elastic=True,
                         watchdog_loss_factor=4.0, watchdog_window=3,
                         max_consecutive_rollbacks=2)

    def test_nan_trips_even_unarmed(self):
        dog = ConvergenceWatchdog(self.FAULTS)
        assert dog.observe(0, 1.0) is None
        assert dog.observe(1, float("nan")) == "nan_loss"
        assert dog.observe(2, 1.0, grad_norm=float("inf")) == "nan_grad"

    def test_divergence_only_while_armed(self):
        dog = ConvergenceWatchdog(self.FAULTS)
        for t in range(3):
            assert dog.observe(t, 1.0) is None
        # 100x the median, but unarmed: steady-state wobble never trips.
        assert dog.observe(3, 100.0) is None
        dog.arm(4, "membership_change")
        assert dog.observe(4, 1.0) is None
        assert dog.observe(5, 100.0) == "divergence"

    def test_armed_window_expires(self):
        dog = ConvergenceWatchdog(self.FAULTS)
        dog.arm(0, "membership_change")
        assert dog.is_armed(self.FAULTS.watchdog_window)
        assert not dog.is_armed(self.FAULTS.watchdog_window + 1)

    def test_healthy_epoch_resets_consecutive(self):
        dog = ConvergenceWatchdog(self.FAULTS)
        dog.observe(0, float("nan"))
        assert dog.consecutive == 1
        dog.observe(1, 1.0)
        assert dog.consecutive == 0
        assert not dog.exhausted

    def test_exhaustion_after_consecutive_trips(self):
        dog = ConvergenceWatchdog(self.FAULTS)
        dog.observe(0, float("nan"))
        assert not dog.exhausted
        dog.observe(1, float("nan"))
        assert dog.exhausted


# ----------------------------------------------------------------------
# Bit-identity: configured-but-inert elasticity must change nothing
# ----------------------------------------------------------------------
class TestElasticInertBitIdentity:
    @pytest.mark.parametrize("inert", [
        FaultConfig(enabled=True, elastic=True),
        FaultConfig(enabled=True, elastic=True, checkpoint_every=1),
        FaultConfig(enabled=True, elastic=True, quorum_fraction=0.9,
                    watchdog_window=2, lease_grace_s=5.0),
    ], ids=["bare", "checkpointed", "tuned"])
    def test_inert_elastic_run_bit_identical(self, small_graph, inert):
        """Elasticity with no scheduled fault must be invisible: the
        loss curve AND the traffic/time accounting match a non-elastic
        run exactly (not approximately)."""
        _, base = _train(small_graph, FaultConfig(enabled=True))
        trainer, run = _train(small_graph, inert)
        assert [e.loss for e in base.epochs] == [e.loss for e in run.epochs]
        assert base.total_bytes() == run.total_bytes()
        assert [e.breakdown.comm_seconds for e in base.epochs] == [
            e.breakdown.comm_seconds for e in run.epochs
        ]
        # The machinery is wired but recorded nothing.
        assert trainer.membership_events == []
        counters = trainer.fault_counters
        assert counters.permanent_failures == 0
        assert counters.watchdog_trips == 0

    def test_inert_run_is_deterministic(self, small_graph):
        faults = FaultConfig(enabled=True, elastic=True,
                             checkpoint_every=1)
        _, r1 = _train(small_graph, faults)
        _, r2 = _train(small_graph, faults)
        assert [e.loss for e in r1.epochs] == [e.loss for e in r2.epochs]


# ----------------------------------------------------------------------
# Permanent loss and adoption
# ----------------------------------------------------------------------
class TestPermanentLossAdoption:
    def _lose(self, graph, lose_at=5, victim=1, epochs=12, **kw):
        faults = FaultConfig(
            enabled=True, elastic=True, checkpoint_every=1,
            permanent_failures=((lose_at, victim),), **kw,
        )
        return _train(graph, faults, epochs=epochs)

    def test_survives_all_epochs(self, small_graph):
        trainer, run = self._lose(small_graph)
        assert len(run.epochs) == 12
        assert np.isfinite(run.epochs[-1].loss)
        counters = trainer.fault_counters
        assert counters.permanent_failures == 1
        assert counters.adoptions == 1
        assert counters.faults_injected >= 1

    def test_partition_moves_to_a_survivor(self, small_graph):
        trainer, _ = self._lose(small_graph, victim=1)
        reassigner = trainer._recovery.reassigner
        membership = trainer._recovery.membership
        assert not membership.is_alive(1)
        # Nothing is assigned to the dead worker any more...
        assert not (reassigner.assignment == 1).any()
        # ...the adopter holds the orphaned vertices...
        adopter = membership.custodian[1]
        assert adopter != 1 and membership.is_alive(adopter)
        moved = reassigner.original == 1
        assert (reassigner.assignment[moved] == adopter).all()
        # ...and the dead slot is an empty shell, not a hole.
        assert trainer.workers[1].num_local == 0

    def test_detection_stall_charged_to_survivors(self, small_graph):
        trainer, _ = self._lose(small_graph, lease_grace_s=2.0,
                                heartbeat_interval_s=0.5)
        membership = trainer._recovery.membership
        stall = membership.detection_seconds()
        assert stall == pytest.approx(2.0)
        extra = trainer.fault_counters.extra_seconds
        # Each of the 2 survivors waited out the lease, plus the
        # adopter's recovery stall.
        assert extra >= 2 * stall

    def test_event_timeline(self, small_graph):
        trainer, _ = self._lose(small_graph)
        kinds = _event_kinds(trainer)
        assert kinds[:3] == ["worker_lost", "partition_adopted",
                             "exchange_rebuilt"]
        lost = trainer.membership_events[0]
        assert lost["worker"] == 1
        assert lost["detection_seconds"] > 0

    def test_loss_is_deterministic(self, small_graph):
        t1, r1 = self._lose(small_graph)
        t2, r2 = self._lose(small_graph)
        assert [e.loss for e in r1.epochs] == [e.loss for e in r2.epochs]
        assert t1.fault_counters.as_dict() == t2.fault_counters.as_dict()

    def test_quorum_loss_fails_fast(self, small_graph):
        faults = FaultConfig(
            enabled=True, elastic=True, checkpoint_every=1,
            quorum_fraction=0.5,
            permanent_failures=((3, 1), (5, 2)),
        )
        config = ECGraphConfig(faults=faults)
        trainer = ECGraphTrainer(
            small_graph, ModelConfig(num_layers=2, hidden_dim=8),
            ClusterSpec(num_workers=3), config,
        )
        # Losing 2 of 3 leaves 1/3 < 0.5: the second loss must abort.
        with pytest.raises(QuorumLostError):
            trainer.train(10)

    def test_relaxed_quorum_survives_cascade(self, small_graph):
        faults = FaultConfig(
            enabled=True, elastic=True, checkpoint_every=1,
            quorum_fraction=0.25,
            permanent_failures=((3, 1), (6, 2)),
        )
        trainer, run = _train(small_graph, faults, epochs=12)
        assert len(run.epochs) == 12
        assert trainer.fault_counters.adoptions == 2
        assert trainer._recovery.membership.alive_workers() == [0]


# ----------------------------------------------------------------------
# Rejoin
# ----------------------------------------------------------------------
class TestRejoin:
    def _cycle(self, graph, lose_at=3, back_at=7, victim=1, epochs=12):
        faults = FaultConfig(
            enabled=True, elastic=True, checkpoint_every=1,
            permanent_failures=((lose_at, victim),),
            rejoin_schedule=((back_at, victim),),
        )
        return _train(graph, faults, epochs=epochs)

    def test_rejoin_reclaims_original_partition(self, small_graph):
        trainer, run = self._cycle(small_graph)
        assert len(run.epochs) == 12
        reassigner = trainer._recovery.reassigner
        membership = trainer._recovery.membership
        assert membership.is_alive(1)
        assert membership.custodian[1] == 1
        np.testing.assert_array_equal(
            reassigner.assignment, reassigner.original
        )
        assert trainer.workers[1].num_local > 0
        counters = trainer.fault_counters
        assert counters.rejoins == 1
        assert counters.adoptions == 1

    def test_rejoin_timeline_names_the_custodian(self, small_graph):
        trainer, _ = self._cycle(small_graph)
        events = trainer.membership_events
        adopted = next(e for e in events if e["kind"] == "partition_adopted")
        reclaimed = next(
            e for e in events if e["kind"] == "partition_reclaimed"
        )
        assert reclaimed["reclaimed_from"] == [adopted["adopter"]]
        assert reclaimed["vertices"] == adopted["vertices"]

    def test_unscheduled_rejoin_is_ignored(self, small_graph):
        # Rejoin for a worker that never died: recorded, not applied.
        faults = FaultConfig(
            enabled=True, elastic=True, checkpoint_every=1,
            rejoin_schedule=((4, 2),),
        )
        trainer, run = _train(small_graph, faults, epochs=8)
        assert len(run.epochs) == 8
        assert trainer.fault_counters.rejoins == 0
        assert "rejoin_ignored" in _event_kinds(trainer)


# ----------------------------------------------------------------------
# Interleavings: transient crashes x permanent losses (satellite)
# ----------------------------------------------------------------------
class TestCrashLossInterleavings:
    @pytest.mark.parametrize("crash_at,lose_at", [
        (3, 6),   # crash first, permanent loss later
        (6, 3),   # loss first, crash of a survivor later
        (5, 5),   # same epoch: crash recovery then membership change
    ], ids=["crash-then-loss", "loss-then-crash", "same-epoch"])
    def test_interleaving_survives(self, small_graph, crash_at, lose_at):
        faults = FaultConfig(
            enabled=True, elastic=True, checkpoint_every=1,
            crash_schedule=((crash_at, 2),),
            permanent_failures=((lose_at, 1),),
        )
        trainer, run = _train(small_graph, faults, epochs=12)
        assert len(run.epochs) == 12
        assert np.isfinite(run.epochs[-1].loss)
        counters = trainer.fault_counters
        assert counters.crashes == 1
        assert counters.permanent_failures == 1
        assert counters.adoptions == 1
        assert not trainer._recovery.membership.is_alive(1)

    def test_crash_of_the_already_dead_worker_epoch(self, small_graph):
        # The same worker crashes (transient) and is then lost for good.
        faults = FaultConfig(
            enabled=True, elastic=True, checkpoint_every=1,
            crash_schedule=((3, 1),),
            permanent_failures=((6, 1),),
        )
        trainer, run = _train(small_graph, faults, epochs=12)
        assert len(run.epochs) == 12
        assert trainer.fault_counters.crashes == 1
        assert trainer.fault_counters.adoptions == 1

    def test_interleaving_is_deterministic(self, small_graph):
        faults = FaultConfig(
            enabled=True, elastic=True, checkpoint_every=1,
            crash_schedule=((3, 2),), permanent_failures=((6, 1),),
            drop_prob=0.05,
        )
        _, r1 = _train(small_graph, faults)
        _, r2 = _train(small_graph, faults)
        assert [e.loss for e in r1.epochs] == [e.loss for e in r2.epochs]


# ----------------------------------------------------------------------
# Watchdog response through the engine
# ----------------------------------------------------------------------
class TestWatchdogResponse:
    def _elastic_trainer(self, graph, epochs=4, **faults_kw):
        faults = FaultConfig(enabled=True, elastic=True,
                             checkpoint_every=1, **faults_kw)
        return _train(graph, faults, epochs=epochs, obs=OBS)

    def test_nan_loss_triggers_rollback_and_escalation(self, small_graph):
        trainer, _ = self._elastic_trainer(small_graph)
        recovery = trainer._recovery
        before = {
            name: trainer.servers.get(name).copy()
            for name in trainer.servers.parameter_names()
        }
        # Poison the live parameters, then feed the watchdog a NaN loss:
        # the response must restore the checkpointed values and escalate
        # every channel to the widest rung.
        for name in trainer.servers.parameter_names():
            trainer.servers.set(
                name, np.full_like(before[name], np.nan)
            )
        recovery.observe_convergence(4, float("nan"))
        counters = trainer.fault_counters
        assert counters.watchdog_trips == 1
        assert counters.watchdog_rollbacks == 1
        assert counters.watchdog_escalations > 0
        for name, value in before.items():
            np.testing.assert_array_equal(trainer.servers.get(name), value)
        kinds = _event_kinds(trainer)
        assert "watchdog_trip" in kinds
        assert "watchdog_rollback" in kinds
        assert "watchdog_escalation" in kinds

    def test_consecutive_trips_raise_divergence_error(self, small_graph):
        trainer, _ = self._elastic_trainer(
            small_graph, max_consecutive_rollbacks=2,
        )
        recovery = trainer._recovery
        recovery.observe_convergence(4, float("nan"))
        with pytest.raises(DivergenceError, match="watchdog exhausted"):
            recovery.observe_convergence(5, float("nan"))

    def test_healthy_loss_never_trips(self, small_graph):
        trainer, run = self._elastic_trainer(small_graph, epochs=10)
        assert trainer.fault_counters.watchdog_trips == 0
        assert all(math.isfinite(e.loss) for e in run.epochs)

    def test_corruption_burst_arms_the_watchdog(self, small_graph):
        trainer, _ = self._elastic_trainer(
            small_graph, epochs=10, corrupt_prob=0.3, watchdog_burst=1,
        )
        assert trainer.fault_counters.corruptions > 0
        armed = [e for e in trainer.membership_events
                 if e["kind"] == "watchdog_armed"]
        assert armed and armed[0]["reason"] == "corruption_burst"

    def test_metrics_mirror_watchdog_counters(self, small_graph):
        trainer, _ = self._elastic_trainer(small_graph)
        trainer._recovery.observe_convergence(4, float("nan"))
        counters = trainer.fault_counters
        snap = trainer.obs.metrics.snapshot()
        assert snap.counter_total("watchdog_trips") == counters.watchdog_trips
        assert snap.counter_total("watchdog_rollbacks") == (
            counters.watchdog_rollbacks
        )
        assert snap.counter_total("watchdog_escalations") == (
            counters.watchdog_escalations
        )


# ----------------------------------------------------------------------
# Observability mirror: ledger events, metrics, Prometheus names
# ----------------------------------------------------------------------
class TestMembershipObservability:
    def _run(self, graph):
        faults = FaultConfig(
            enabled=True, elastic=True, checkpoint_every=1,
            permanent_failures=((3, 1),), rejoin_schedule=((7, 1),),
        )
        return _train(graph, faults, epochs=10, obs=OBS)

    def test_metrics_mirror_membership_counters(self, small_graph):
        trainer, run = self._run(small_graph)
        counters = trainer.fault_counters
        snap = run.telemetry.metrics
        assert snap.counter_total("membership_lost") == (
            counters.permanent_failures
        )
        assert snap.counter_total("membership_adoptions") == (
            counters.adoptions
        )
        assert snap.counter_total("membership_rejoins") == counters.rejoins
        assert counters.permanent_failures == 1
        assert counters.rejoins == 1

    def test_ledger_carries_the_event_timeline(self, small_graph):
        trainer, run = self._run(small_graph)
        events = run.telemetry.ledger.events
        kinds = [e["kind"] for e in events]
        assert kinds == ["worker_lost", "partition_adopted",
                         "worker_rejoined"]
        assert events[0]["epoch"] == 3
        assert events[2]["epoch"] == 7

    def test_prometheus_names_carry_the_ecgraph_prefix(self, small_graph):
        from repro.obs import metrics_to_prometheus

        trainer, run = self._run(small_graph)
        text = metrics_to_prometheus(run.telemetry.metrics)
        assert "ecgraph_membership_lost" in text
        assert "ecgraph_membership_adoptions" in text
        assert "ecgraph_membership_rejoins" in text

    def test_report_surfaces_membership_timeline(self, small_graph):
        from repro.obs.report import build_report, render_html, render_markdown

        trainer, run = self._run(small_graph)
        data = build_report(run)
        kinds = [e["kind"] for e in data["membership_events"]]
        assert "partition_adopted" in kinds
        assert "Membership timeline" in render_markdown(data)
        assert "Membership timeline" in render_html(data)


# ----------------------------------------------------------------------
# Checkpoint durability and the both-corrupt fail-fast (satellites)
# ----------------------------------------------------------------------
class TestCheckpointDurability:
    def test_save_fsyncs_file_and_directory(self, small_graph, tmp_path,
                                            monkeypatch):
        import os as os_module

        synced: list[int] = []
        real_fsync = os_module.fsync
        monkeypatch.setattr(
            "os.fsync", lambda fd: synced.append(fd) or real_fsync(fd)
        )
        trainer = ECGraphTrainer(
            small_graph, ModelConfig(num_layers=2, hidden_dim=4),
            ClusterSpec(num_workers=2), ECGraphConfig(),
        )
        save_checkpoint(trainer, tmp_path / "ckpt.npz", epoch=0)
        # One fsync for the temp file's contents, one for the directory
        # entry created by os.replace.
        assert len(synced) >= 2

    def test_save_survives_fsync_refusal_on_directory(
        self, small_graph, tmp_path, monkeypatch
    ):
        import os as os_module

        real_fsync = os_module.fsync

        def picky_fsync(fd):
            # Refuse directory handles the way some filesystems do.
            import stat

            if stat.S_ISDIR(os_module.fstat(fd).st_mode):
                raise OSError("fsync: invalid argument")
            real_fsync(fd)

        monkeypatch.setattr("os.fsync", picky_fsync)
        trainer = ECGraphTrainer(
            small_graph, ModelConfig(num_layers=2, hidden_dim=4),
            ClusterSpec(num_workers=2), ECGraphConfig(),
        )
        save_checkpoint(trainer, tmp_path / "ckpt.npz", epoch=0)
        assert (tmp_path / "ckpt.npz").exists()


class TestBothGenerationsCorrupt:
    def _trained(self, graph, tmp_path, epochs=4):
        faults = FaultConfig(enabled=True, checkpoint_every=1,
                             checkpoint_dir=str(tmp_path))
        return _train(graph, faults, epochs=epochs)

    def test_both_corrupt_raises_checkpoint_error(self, small_graph,
                                                  tmp_path):
        trainer, _ = self._trained(small_graph, tmp_path)
        assert (tmp_path / "latest.npz").exists()
        assert (tmp_path / "previous.npz").exists()
        (tmp_path / "latest.npz").write_bytes(b"garbage")
        (tmp_path / "previous.npz").write_bytes(b"garbage")
        recovery = trainer._recovery
        recovery.param_snapshot = None  # no in-memory fallback either
        with pytest.raises(CheckpointError, match="every checkpoint"):
            recovery.restore_latest_checkpoint()
        assert trainer.fault_counters.corrupt_checkpoints == 2

    def test_single_corrupt_still_recovers(self, small_graph, tmp_path):
        trainer, _ = self._trained(small_graph, tmp_path)
        (tmp_path / "latest.npz").write_bytes(b"garbage")
        trainer._recovery.param_snapshot = None
        assert trainer._recovery.restore_latest_checkpoint()
        assert trainer.fault_counters.corrupt_checkpoints == 1

    def test_snapshot_rescues_corrupt_disk(self, small_graph, tmp_path):
        trainer, _ = self._trained(small_graph, tmp_path)
        (tmp_path / "latest.npz").write_bytes(b"garbage")
        (tmp_path / "previous.npz").write_bytes(b"garbage")
        # The in-memory snapshot still exists: restore must succeed.
        assert trainer._recovery.restore_latest_checkpoint()

    def test_cli_maps_checkpoint_error_to_exit_2(self, capsys, monkeypatch):
        import repro.__main__ as cli

        def explode(*args, **kwargs):
            raise CheckpointError(
                "cannot restore parameters: every checkpoint generation "
                "in /ckpts is corrupt (latest.npz, previous.npz) and no "
                "in-memory snapshot exists"
            )

        monkeypatch.setattr(cli, "load_dataset", explode)
        code = cli.main(["--profile", "tiny", "train", "--epochs", "1"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot restore parameters")
        assert "Traceback" not in err


# ----------------------------------------------------------------------
# Chaos scenario acceptance
# ----------------------------------------------------------------------
class TestElasticChaosAcceptance:
    @pytest.mark.parametrize("scenario,losses,rejoins", [
        ("worker-loss", 1, 0),
        ("cascading-loss", 2, 0),
        ("lose-and-rejoin", 1, 1),
    ])
    def test_scenario_survives_within_two_points(
        self, small_graph, scenario, losses, rejoins
    ):
        """ISSUE acceptance: permanent losses must complete every epoch
        with final accuracy within 2 points of the fault-free twin."""
        report = run_chaos(
            small_graph, scenario, num_workers=3, num_epochs=24, seed=0,
        )
        assert report.survived
        assert report.counters.permanent_failures == losses
        assert report.counters.adoptions == losses
        assert report.counters.rejoins == rejoins
        assert report.accuracy_gap <= 0.02
        assert report.slowdown >= 1.0
        kinds = [e["kind"] for e in report.membership_events]
        assert kinds.count("worker_lost") == losses
        assert kinds.count("partition_adopted") == losses

    def test_report_round_trips_membership_events(self, small_graph):
        report = run_chaos(
            small_graph, "worker-loss", num_workers=3, num_epochs=12,
            seed=0,
        )
        payload = report.as_dict()
        assert payload["counters"]["permanent_failures"] == 1
        assert payload["membership_events"] == [
            dict(e) for e in report.membership_events
        ]
