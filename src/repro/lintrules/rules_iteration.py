"""ECG003 — iterate distributed state in a defined order.

The engine's bit-identity guarantee (same losses on the sync and
multiprocess backends, goldens pinned across machines) rests on every
reduction over per-worker / per-channel / per-partition state visiting
elements in a *defined* order: float accumulation does not commute, and
message interleavings follow iteration order. Python dicts preserve
insertion order, but insertion order is itself a moving part — it
changes when channels are rebuilt after a membership event or primed in
a different sequence by another backend.

This rule flags ``for`` loops and comprehensions in ``engine/``,
``mp/`` and ``membership/`` whose iterable is worker/channel/partition
dict state without a ``sorted(...)`` wrapper. Two shapes count:

* ``.items()``/``.keys()``/``.values()`` calls on a name matching the
  state vocabulary below (those methods are unambiguous dict
  evidence);
* bare-name iteration (``for k in d:``) over a vocabulary-matching
  name that the *same module* shows to be a dict — a ``dict[...]``
  annotation or a ``{}``/``dict()`` assignment — so ordered lists
  named ``workers`` or ``sessions`` stay quiet.

Two legitimate outcomes exist for a finding:

* wrap the iterable in ``sorted(...)`` (keys are ints, tuples or
  strings everywhere in this repo, so sorting is total and cheap); or
* pragma it with the reason the order is *already* canonical — e.g.
  ``halo_slots`` insertion order is the bit-pinned channel plan order,
  and sorting it would change float accumulation and break the goldens.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lintrules.base import Finding, ModuleInfo, Rule, dotted_name

__all__ = ["UnsortedIterationRule"]

_SCOPED_PACKAGES = ("engine", "mp", "membership")
_DICT_METHODS = {"items", "keys", "values"}
# Vocabulary of distributed-state containers in this repo. Matched
# against the terminal name of the iterable, underscores stripped.
_STATE_NAME = re.compile(
    r"(worker|channel|chan\b|partition|custodian|conn|proc\b|procs|"
    r"request|slot|residual|trend|shipped|segment|session|member|"
    r"pending|adopt|stall)",
)


def _terminal_name(node: ast.AST) -> str:
    name = dotted_name(node)
    return name.rsplit(".", 1)[-1].lstrip("_").lower() if name else ""


def _is_sorted_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("sorted", "enumerate", "reversed", "list", "tuple")
        and bool(node.args)
        and _is_sorted_call(node.args[0])
    ) or (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "sorted"
    )


class UnsortedIterationRule(Rule):
    """No unordered iteration over distributed dict state."""

    code = "ECG003"
    name = "unsorted-state-iteration"
    summary = (
        "iteration over worker/channel/partition dict state without "
        "sorted(...); nondeterministic float accumulation hazard"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_packages(*_SCOPED_PACKAGES):
            return
        dict_names = self._dict_evidence(module)
        for node in self.walk(module):
            iters: list[tuple[ast.AST, ast.AST]] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append((node, node.iter))
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(
                    (node, gen.iter) for gen in node.generators
                )
            for anchor, iterable in iters:
                hit = self._state_iterable(iterable, dict_names)
                if hit is not None:
                    yield module.finding(
                        self.code,
                        f"unordered iteration over {hit!r}; wrap in "
                        "sorted(...) or pragma why the order is canonical",
                        anchor,
                    )

    @staticmethod
    def _dict_evidence(module: ModuleInfo) -> set[str]:
        """Terminal names this module shows to be dicts."""
        names: set[str] = set()

        def _targets(node: ast.AST) -> Iterator[str]:
            if isinstance(node, (ast.Name, ast.Attribute)):
                name = dotted_name(node).rsplit(".", 1)[-1]
                if name:
                    yield name

        for node in ast.walk(module.tree):
            if isinstance(node, ast.AnnAssign):
                text = ast.unparse(node.annotation).lower()
                if "dict" in text:
                    names.update(_targets(node.target))
            elif isinstance(node, ast.Assign):
                value = node.value
                is_dict = isinstance(value, ast.Dict) or (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "dict"
                )
                if is_dict:
                    for target in node.targets:
                        names.update(_targets(target))
        return names

    def _state_iterable(
        self, node: ast.AST, dict_names: set[str]
    ) -> str | None:
        """Name of the offending state container, or None if clean."""
        if _is_sorted_call(node):
            return None
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _DICT_METHODS and not node.args:
                name = _terminal_name(node.func.value)
                if name and _STATE_NAME.search(name):
                    return f"{dotted_name(node.func.value)}.{node.func.attr}()"
            return None
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = _terminal_name(node)
            raw = dotted_name(node).rsplit(".", 1)[-1]
            if name and raw in dict_names and _STATE_NAME.search(name):
                return dotted_name(node)
        return None
