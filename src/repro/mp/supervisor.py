"""Supervisor side of the multi-process execution backend.

:class:`ProcessExecutor` implements the engine's executor seam (see
``repro.engine.executor``) by forking one OS process per partition and
driving them in strict lockstep rounds over pipes, with bulk tensors in
a :class:`~repro.mp.store.SharedStore`. The supervisor keeps the entire
exchange path — compression policies, BitTuner, fault injection,
traffic metering, parameter servers, degradation — so the numbers a
multiprocess run produces are bit-identical to ``execution="sync"``;
only the kernel math leaves the process.

:class:`ProcessChannelBuffers` is the transport's ``buffer_provider``:
halo-exchange session outputs land directly in shared memory, so the
scatter the supervisor performs is the last copy before the worker
kernels read the rows (same zero-then-fill semantics as the pooled
buffers, hence identical values).

Deadlock-freedom of the round protocol: the supervisor sends to every
worker, then receives in worker order. At a round boundary every worker
is parked in ``recv`` (so dispatches drain immediately), and replies
queue in the pipe until the supervisor's receive loop — there is no
cycle in which both sides block writing. A worker death surfaces as
``EOFError`` on its pipe and is re-raised as ``RuntimeError`` naming
the pid; crash *recovery* (SIGKILL + respawn via a fresh fork of the
already-recovered supervisor state) is handled by
:meth:`ProcessExecutor.on_worker_crash`.
"""

from __future__ import annotations

import multiprocessing
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.mp.store import SharedStore
from repro.mp.worker import worker_main

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

    from repro.core.worker import WorkerState
    from repro.engine.backends import ModelBackend
    from repro.engine.context import ExchangeContext

__all__ = ["ProcessChannelBuffers", "ProcessExecutor"]


class ProcessChannelBuffers:
    """Shared-memory blocks for exchange outputs and worker exports.

    Blocks are keyed ``(kind, worker, dim)`` and named
    ``f"{kind}{worker}d{dim}"``; rounds are strictly sequential, so a
    block is always fully consumed before the next round with the same
    key overwrites it, which lets e.g. all equal-width hidden layers
    share one ``h`` block per worker.
    """

    def __init__(self, store: SharedStore) -> None:
        self.store = store
        # id(view) -> block name, so the executor can recognize arrays it
        # handed to the transport and ship them to workers by name.
        self._names: dict[int, str] = {}

    @staticmethod
    def _name(kind: str, worker: int, dim: int) -> str:
        return f"{kind}{worker}d{dim}"

    def _block(
        self, kind: str, worker: int, rows: int, dim: int
    ) -> tuple[str | None, np.ndarray | None]:
        name = self._name(kind, worker, dim)
        if name in self.store:
            view = self.store.view(name)
            if view.shape != (rows, dim):
                return None, None
        else:
            view = self.store.allocate(name, (rows, dim))
        self._names[id(view)] = name
        return name, view

    def provide(
        self, kind: str, worker: int, rows: int, dim: int
    ) -> np.ndarray | None:
        """``HaloTransport.buffer_provider`` hook: a zeroed shared block,
        or ``None`` to fall back to a private buffer."""
        _, view = self._block(kind, worker, rows, dim)
        if view is None:
            return None
        view.fill(0.0)
        return view

    def ensure(self, kind: str, worker: int, rows: int, dim: int) -> str:
        """Block for worker-written rows; returns its name (not zeroed —
        the worker overwrites every row)."""
        name, _ = self._block(kind, worker, rows, dim)
        if name is None:
            raise RuntimeError(
                f"shared block {self._name(kind, worker, dim)} changed shape"
            )
        return name

    def view_of(self, kind: str, worker: int, dim: int) -> np.ndarray:
        return self.store.view(self._name(kind, worker, dim))

    def name_of(self, array: np.ndarray) -> str | None:
        return self._names.get(id(array))


class ProcessExecutor:
    """Executor that runs worker kernels in real OS processes."""

    name = "multiprocess"

    def __init__(self) -> None:
        self.ctx: ExchangeContext | None = None
        self.backend: ModelBackend | None = None
        self.store: SharedStore | None = None
        self.buffers: ProcessChannelBuffers | None = None
        self._procs: dict[int, multiprocessing.Process] = {}
        self._conns: dict[int, Connection] = {}
        self._shipped_version: dict[int, int] = {}
        self._spawned = False
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle

    def bind(self, ctx: ExchangeContext, backend: ModelBackend) -> None:
        self.ctx = ctx
        self.backend = backend
        self.store = SharedStore()
        self.buffers = ProcessChannelBuffers(self.store)
        ctx.transport.buffer_provider = self.buffers.provide
        # When the graph's features live in an mmap store, alias the
        # on-disk chunk files into the SharedStore instead of copying
        # them into /dev/shm: forked workers inherit the file-backed
        # mappings, every process shares the chunk pages through the
        # kernel page cache, and the layout manifest names the blocks
        # for attach-mode consumers. This also validates the files at
        # bind time, before any worker faults on them mid-round.
        feature_store = getattr(
            getattr(ctx, "graph", None), "feature_store", None
        )
        chunk_paths = getattr(feature_store, "chunk_paths", None)
        if chunk_paths is not None:
            for index, path in enumerate(chunk_paths()):
                self.store.map_npy(f"graphstore/features-{index:05d}", path)

    def _spawn(self, worker_id: int) -> None:
        # fork: the child inherits the fully-bound context/backend by
        # copy-on-write, so no state needs to be pickled at spawn.
        mp_ctx = multiprocessing.get_context("fork")
        parent, child = mp_ctx.Pipe()
        proc = mp_ctx.Process(
            target=worker_main,
            args=(worker_id, child, self.store.token, self.ctx, self.backend),
            name=f"ecg-worker-{worker_id}",
            daemon=True,
        )
        proc.start()
        child.close()
        self._procs[worker_id] = proc
        self._conns[worker_id] = parent
        self._shipped_version[worker_id] = getattr(
            self.backend, "kernel_version", 0
        )

    def _ensure_spawned(self) -> None:
        if self._spawned:
            return
        if self._closed:
            raise RuntimeError("ProcessExecutor is closed")
        # Spawn lazily at the first epoch round: trainer subclasses may
        # mutate backend state (e.g. offline resampling) after the
        # engine is built, and the fork must snapshot the final state.
        self._spawned = True
        for state in self.ctx.workers:
            self._spawn(state.worker_id)
        self._publish_pids()

    @property
    def worker_pids(self) -> dict[int, int]:
        return {w: proc.pid for w, proc in sorted(self._procs.items())}

    def _publish_pids(self) -> None:
        set_pids = getattr(
            self.ctx.telemetry.profiler, "set_worker_pids", None
        )
        if set_pids is not None:
            set_pids(self.worker_pids)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for _, conn in sorted(self._conns.items()):
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for _, proc in sorted(self._procs.items()):
            proc.join(timeout=5)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5)
        for _, conn in sorted(self._conns.items()):
            try:
                conn.close()
            except OSError:
                pass
        self._conns.clear()
        self._procs.clear()
        if self.ctx is not None:
            self.ctx.transport.buffer_provider = None
        if self.store is not None:
            self.store.close()

    def on_worker_crash(self, worker_id: int) -> None:
        """Crash under multiprocess is a real kill: terminate the OS
        process and respawn it from the recovered supervisor state."""
        if not self._spawned:
            return
        proc = self._procs.get(worker_id)
        if proc is not None:
            if proc.is_alive():
                proc.kill()
            proc.join(timeout=10)
        conn = self._conns.pop(worker_id, None)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        self._spawn(worker_id)
        self._publish_pids()

    # ------------------------------------------------------------------
    # round protocol

    def _send(self, worker_id: int, msg: tuple[Any, ...]) -> None:
        try:
            self._conns[worker_id].send(msg)
        except (BrokenPipeError, OSError) as exc:
            proc = self._procs[worker_id]
            raise RuntimeError(
                f"worker process {worker_id} (pid {proc.pid}) is gone "
                f"(exitcode {proc.exitcode})"
            ) from exc

    def _recv(self, worker_id: int) -> tuple[Any, float]:
        try:
            reply = self._conns[worker_id].recv()
        except EOFError as exc:
            proc = self._procs[worker_id]
            raise RuntimeError(
                f"worker process {worker_id} (pid {proc.pid}) died "
                f"mid-round (exitcode {proc.exitcode})"
            ) from exc
        kind, payload, wall = reply
        if kind == "err":
            raise RuntimeError(
                f"worker process {worker_id} failed:\n{payload}"
            )
        return payload, wall

    def _halo_ref(
        self, state: WorkerState, halo: np.ndarray
    ) -> tuple[Any, ...]:
        name = self.buffers.name_of(halo)
        if name is not None:
            return ("shm", name)
        if halo is state.halo_features:
            return ("own",)
        return ("data", halo)

    # ------------------------------------------------------------------
    # executor protocol

    def on_epoch_start(self, t: int) -> None:
        self._ensure_spawned()
        self.backend.on_epoch_start(t)
        version = getattr(self.backend, "kernel_version", 0)
        stale = [
            w
            for w, shipped in sorted(self._shipped_version.items())
            if shipped != version
        ]
        for w in stale:
            self._send(w, ("kstate", self.backend.kernel_refresh(w)))
        for w in stale:
            self._recv(w)
            self._shipped_version[w] = version

    def begin_iteration(self) -> None:
        self._ensure_spawned()
        # Supervisor-side copy stays in lockstep for anything read off
        # worker states outside the kernels (e.g. eval, checkpoints).
        self.backend.begin_iteration()
        for state in self.ctx.active_workers():
            self._send(state.worker_id, ("begin",))
        for state in self.ctx.active_workers():
            self._recv(state.worker_id)

    def forward_kernels(
        self,
        t: int,
        layer: int,
        pulled: list[dict[str, np.ndarray]],
        halos: list[np.ndarray],
        *,
        is_last: bool,
    ) -> None:
        del t
        ctx = self.ctx
        for state in ctx.active_workers():
            w = state.worker_id
            h_block = None
            if layer < ctx.params.num_layers:
                # Export the layer output: the next layer's halo exchange
                # serves rows straight out of this block.
                h_block = self.buffers.ensure(
                    "h", w, state.num_local, ctx.params.dims[layer]
                )
            self._send(
                w,
                ("fwd", layer, is_last, pulled[w],
                 self._halo_ref(state, halos[w]), h_block),
            )
        for state in ctx.active_workers():
            _, wall = self._recv(state.worker_id)
            ctx.runtime.add_compute(state.worker_id, wall)

    def loss_scan(self, t: int) -> tuple[float, dict[str, list[int]]]:
        del t
        ctx = self.ctx
        num_layers = ctx.params.num_layers
        for state in ctx.active_workers():
            g_block = None
            if num_layers > 1:
                g_block = self.buffers.ensure(
                    "g", state.worker_id, state.num_local,
                    ctx.params.dims[num_layers],
                )
            self._send(state.worker_id, ("loss", g_block))
        counters = {"train": [0, 0], "val": [0, 0], "test": [0, 0]}
        total_loss = 0.0
        for state in ctx.active_workers():
            payload, wall = self._recv(state.worker_id)
            ctx.runtime.add_compute(state.worker_id, wall)
            loss_term, worker_counters = payload
            total_loss += loss_term
            for split in counters:
                counters[split][0] += worker_counters[split][0]
                counters[split][1] += worker_counters[split][1]
        return total_loss, counters

    def backward_local(
        self,
        t: int,
        layer: int,
        weights: dict[str, np.ndarray],
        grads: dict[int, dict[str, np.ndarray]],
    ) -> None:
        del t
        ctx = self.ctx
        export_dim = self.backend.bp_halo_export_dim(layer)
        for state in ctx.active_workers():
            w = state.worker_id
            export_block = None
            if export_dim is not None:
                export_block = self.buffers.ensure(
                    "dhh", w, state.num_halo, export_dim
                )
            self._send(w, ("bpl", layer, weights, export_block))
        for state in ctx.active_workers():
            shares, wall = self._recv(state.worker_id)
            ctx.runtime.add_compute(state.worker_id, wall)
            grads[state.worker_id].update(shares)

    def backward_reduce(
        self,
        t: int,
        layer: int,
        weights: dict[str, np.ndarray],
        halos: list[np.ndarray],
    ) -> None:
        del t
        ctx = self.ctx
        for state in ctx.active_workers():
            w = state.worker_id
            g_block = None
            if layer - 1 > 1:
                # The bp exchange at layer-1 serves these gradient rows.
                g_block = self.buffers.ensure(
                    "g", w, state.num_local, ctx.params.dims[layer - 1]
                )
            self._send(
                w,
                ("bpr", layer, weights,
                 self._halo_ref(state, halos[w]), g_block),
            )
        for state in ctx.active_workers():
            _, wall = self._recv(state.worker_id)
            ctx.runtime.add_compute(state.worker_id, wall)

    # ------------------------------------------------------------------
    # row sources for the supervisor-side exchanges

    def layer_rows(self, state: WorkerState, layer: int) -> np.ndarray:
        return self.buffers.view_of(
            "h", state.worker_id, self.ctx.params.dims[layer]
        )

    def grad_rows(self, state: WorkerState, layer: int) -> np.ndarray:
        return self.buffers.view_of(
            "g", state.worker_id, self.ctx.params.dims[layer]
        )

    def bp_halo_rows(self, state: WorkerState, layer: int) -> np.ndarray:
        return self.buffers.view_of(
            "dhh", state.worker_id, self.ctx.params.dims[layer - 1]
        )
