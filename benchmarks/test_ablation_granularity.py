"""Ablation — Selector granularity: element vs vertex vs matrix.

The paper states (section IV-B) that vertex-wise selection empirically
balances message size against accuracy best. This bench quantifies that:
element-wise pays a 2-bit-per-element selector tax, matrix-wise loses
per-vertex adaptivity, vertex-wise sits in between on traffic while
keeping accuracy.
"""

from __future__ import annotations

from _helpers import HIDDEN, bench_graph, dataset_header, fmt_bytes, run_once

from repro.analysis.reporting import format_table
from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.trainer import ECGraphTrainer

DATASET = "reddit"
EPOCHS = 50
WORKERS = 6


def _experiment():
    graph = bench_graph(DATASET)
    runs = {}
    for granularity in ("element", "vertex", "matrix"):
        trainer = ECGraphTrainer(
            graph, ModelConfig(num_layers=2, hidden_dim=HIDDEN[DATASET]),
            ClusterSpec(num_workers=WORKERS),
            ECGraphConfig(
                fp_mode="reqec", bp_mode="resec", fp_bits=2, bp_bits=4,
                adaptive_bits=False, selector_granularity=granularity,
            ),
        )
        runs[granularity] = trainer.train(EPOCHS, name=granularity)
    return runs


def test_ablation_selector_granularity(benchmark):
    runs = run_once(benchmark, _experiment)
    print()
    print(dataset_header(DATASET))
    rows = [
        [name, run.best_test_accuracy(), fmt_bytes(run.total_bytes()),
         f"{run.avg_epoch_seconds() * 1e3:.2f}ms"]
        for name, run in runs.items()
    ]
    print(format_table(
        ["granularity", "best acc", "traffic", "epoch time"],
        rows,
        title="Selector granularity ablation (B=2 forward)",
    ))

    # Vertex-wise keeps accuracy within noise of element-wise while the
    # matrix-wise variant must not beat it on accuracy (it has strictly
    # less freedom).
    assert runs["vertex"].best_test_accuracy() >= (
        runs["matrix"].best_test_accuracy() - 0.03
    )
    assert runs["vertex"].best_test_accuracy() >= (
        runs["element"].best_test_accuracy() - 0.05
    )
