"""Metrics registry: labelled counters, gauges and summary histograms.

The registry keeps two scopes per metric — the current epoch and the
lifetime of the run — so callers get per-epoch breakdowns without
double-counting when the same registry spans many epochs (mirroring the
:class:`~repro.cluster.network.TrafficMeter` epoch/total split).

Metrics are identified by a name plus a sorted tuple of ``(key, value)``
label pairs; a disabled registry returns immediately from every update,
keeping the instrumented hot paths free when telemetry is off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["HistogramStat", "MetricsSnapshot", "MetricsRegistry"]

MetricKey = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: dict) -> MetricKey:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def _render(key: MetricKey) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


@dataclass
class HistogramStat:
    """Streaming summary of one histogram series (no buckets kept)."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
        }


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable copy of the registry at one point in time.

    ``scope`` records whether the numbers cover one epoch or the whole
    run. Counters/gauges map metric keys to values; histograms map keys
    to frozen ``(count, sum, min, max)`` tuples.
    """

    scope: str
    counters: dict[MetricKey, float] = field(default_factory=dict)
    gauges: dict[MetricKey, float] = field(default_factory=dict)
    histograms: dict[MetricKey, tuple] = field(default_factory=dict)

    def counter(self, name: str, **labels) -> float:
        """One counter's value (0.0 when never incremented)."""
        return self.counters.get(_key(name, labels), 0.0)

    def gauge(self, name: str, **labels) -> float | None:
        return self.gauges.get(_key(name, labels))

    def counter_total(self, name: str) -> float:
        """Sum of a counter over all label combinations."""
        return sum(v for (n, _), v in self.counters.items() if n == name)

    def counters_by_label(self, name: str, label: str) -> dict[str, float]:
        """``label value -> counter`` map for one metric name."""
        out: dict[str, float] = {}
        for (n, labels), value in self.counters.items():
            if n != name:
                continue
            for k, v in labels:
                if k == label:
                    out[v] = out.get(v, 0.0) + value
        return out

    def as_dict(self) -> dict:
        """JSON-ready rendering with ``name{k=v}`` flat keys.

        Keys are sorted (metric name, then label pairs), so the output
        is byte-stable across runs regardless of update order — JSONL
        and Prometheus exports diff cleanly in CI.
        """
        return {
            "scope": self.scope,
            "counters": {_render(k): v for k, v in sorted(self.counters.items())},
            "gauges": {_render(k): v for k, v in sorted(self.gauges.items())},
            "histograms": {
                _render(k): {
                    "count": c, "sum": s, "min": lo, "max": hi,
                    "mean": (s / c if c else 0.0),
                }
                for k, (c, s, lo, hi) in sorted(self.histograms.items())
            },
        }


class MetricsRegistry:
    """Counters, gauges and histograms with labels and epoch scoping."""

    __slots__ = ("enabled", "_epoch_counters", "_total_counters",
                 "_gauges", "_epoch_hist", "_total_hist")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._epoch_counters: dict[MetricKey, float] = {}
        self._total_counters: dict[MetricKey, float] = {}
        self._gauges: dict[MetricKey, float] = {}
        self._epoch_hist: dict[MetricKey, HistogramStat] = {}
        self._total_hist: dict[MetricKey, HistogramStat] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1, **labels) -> None:
        """Add ``value`` to a counter (both epoch and lifetime scope)."""
        if not self.enabled:
            return
        key = _key(name, labels)
        self._epoch_counters[key] = self._epoch_counters.get(key, 0) + value
        self._total_counters[key] = self._total_counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Record the instantaneous value of a gauge."""
        if not self.enabled:
            return
        self._gauges[_key(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Feed one sample into a histogram series."""
        if not self.enabled:
            return
        key = _key(name, labels)
        for store in (self._epoch_hist, self._total_hist):
            stat = store.get(key)
            if stat is None:
                stat = store[key] = HistogramStat()
            stat.observe(float(value))

    # ------------------------------------------------------------------
    def snapshot(self, scope: str = "total") -> MetricsSnapshot:
        """Copy the registry; ``scope`` is ``"total"`` or ``"epoch"``."""
        if scope not in ("total", "epoch"):
            raise ValueError(f"scope must be 'total' or 'epoch', got {scope!r}")
        counters = (
            self._total_counters if scope == "total" else self._epoch_counters
        )
        hists = self._total_hist if scope == "total" else self._epoch_hist
        return MetricsSnapshot(
            scope=scope,
            counters=dict(counters),
            gauges=dict(self._gauges),
            histograms={
                key: (stat.count, stat.total, stat.minimum, stat.maximum)
                for key, stat in hists.items()
            },
        )

    def reset_epoch(self) -> MetricsSnapshot:
        """Snapshot the epoch scope, then clear it (lifetime kept)."""
        snap = self.snapshot("epoch")
        self._epoch_counters.clear()
        self._epoch_hist.clear()
        return snap

    def reset(self) -> None:
        """Clear everything, both scopes (between independent runs)."""
        self._epoch_counters.clear()
        self._total_counters.clear()
        self._gauges.clear()
        self._epoch_hist.clear()
        self._total_hist.clear()
