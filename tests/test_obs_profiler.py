"""Stage timeline profiler: unit attribution plus engine integration.

Unit tests drive a :class:`~repro.obs.profiler.StageProfiler` against a
real :class:`~repro.cluster.engine.ClusterRuntime` with hand-charged
compute and traffic, so the attribution claims (straggler worker,
bottleneck link, meter-exact byte deltas) are checked against known
inputs. Integration tests assert the staged engine profiles all five
pipeline stages per epoch with near-airtight wall coverage.
"""

import json

import pytest

from repro.cluster.engine import ClusterRuntime
from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.trainer import ECGraphTrainer
from repro.obs import (
    ENGINE_STAGES,
    NULL_PROFILER,
    NullStageProfiler,
    ObsConfig,
    StageProfile,
    StageProfiler,
)


def _runtime(**spec_overrides) -> ClusterRuntime:
    spec = dict(num_workers=4, workers_per_machine=2)
    spec.update(spec_overrides)
    return ClusterRuntime(ClusterSpec(**spec))


def _trainer(graph, obs, **overrides):
    config = ECGraphConfig(seed=1, obs=obs, **overrides)
    return ECGraphTrainer(
        graph, ModelConfig(num_layers=2, hidden_dim=8),
        ClusterSpec(num_workers=4, workers_per_machine=2), config,
    )


class TestComputeAttribution:
    def test_compute_deltas_match_charges(self):
        runtime = _runtime()
        profiler = StageProfiler()
        profiler.begin_epoch(0, runtime)
        with profiler.stage("forward"):
            runtime.add_compute(0, 0.5)
            runtime.add_compute(2, 2.0)
        profiler.end_epoch(runtime.end_epoch())

        (timeline,) = profiler.profile().epochs
        (sample,) = timeline.samples
        assert sample.stage == "forward"
        assert sample.compute_seconds == pytest.approx((0.5, 0.0, 2.0, 0.0))
        assert sample.bottleneck_worker == 2
        assert sample.max_compute_seconds == pytest.approx(2.0)
        assert sample.wall_seconds > 0

    def test_heterogeneous_speeds_pick_the_slow_worker(self):
        # Equal raw seconds; worker 0 runs at 1x, worker 1 at 4x, so
        # worker 0's barrier time is 4x longer and it is the straggler.
        runtime = _runtime(
            num_workers=2, workers_per_machine=1, worker_speeds=(1.0, 4.0)
        )
        profiler = StageProfiler()
        profiler.begin_epoch(0, runtime)
        with profiler.stage("backward"):
            runtime.add_compute(0, 1.0)
            runtime.add_compute(1, 1.0)
        profiler.end_epoch(runtime.end_epoch())

        (sample,) = profiler.profile().epochs[0].samples
        assert sample.compute_seconds == pytest.approx((1.0, 0.25))
        assert sample.bottleneck_worker == 0

    def test_no_compute_means_no_straggler(self):
        runtime = _runtime()
        profiler = StageProfiler()
        profiler.begin_epoch(0, runtime)
        with profiler.stage("halo_plan"):
            pass
        profiler.end_epoch(runtime.end_epoch())

        (sample,) = profiler.profile().epochs[0].samples
        assert sample.bottleneck_worker is None
        assert sample.comm_seconds == 0.0
        assert sample.bytes_sent == 0
        assert sample.messages == 0


class TestCommAttribution:
    def test_traffic_delta_matches_meter_arithmetic(self):
        # 6 workers / 3 machines: 0->2 and 2->4 cross machine
        # boundaries, 0->1 stays local (free and invisible).
        runtime = _runtime(num_workers=6)
        network = runtime.spec.network
        profiler = StageProfiler()
        profiler.begin_epoch(0, runtime)
        with profiler.stage("forward"):
            runtime.send_worker_to_worker(0, 2, 1000, "fp_embeddings")
            runtime.send_worker_to_worker(2, 4, 4000, "fp_embeddings")
            runtime.send_worker_to_worker(0, 1, 9999, "fp_embeddings")
        profiler.end_epoch(runtime.end_epoch())

        (sample,) = profiler.profile().epochs[0].samples
        # Send-side bytes only (each wire message charged at its source).
        assert sample.bytes_sent == 5000
        assert sample.messages == 2  # wire messages, not endpoint events
        # Machine 1 both received 1000 and sent 4000 (2 endpoint
        # events); its 4000-byte send direction is the busiest link.
        expected = network.link_busy_seconds(4000, 1000, 2)
        assert sample.comm_seconds == pytest.approx(expected)
        assert sample.bottleneck_machine == 1

    def test_stage_deltas_are_independent(self):
        runtime = _runtime()
        profiler = StageProfiler()
        profiler.begin_epoch(0, runtime)
        with profiler.stage("forward"):
            runtime.send_worker_to_worker(0, 2, 100, "fp_embeddings")
        with profiler.stage("backward"):
            runtime.send_worker_to_worker(2, 0, 300, "bp_gradients")
        profiler.end_epoch(runtime.end_epoch())

        forward, backward = profiler.profile().epochs[0].samples
        assert forward.bytes_sent == 100
        assert backward.bytes_sent == 300
        assert forward.messages == backward.messages == 1


class TestProfileAggregation:
    def _two_epochs(self) -> StageProfile:
        runtime = _runtime()
        profiler = StageProfiler()
        for t in range(2):
            profiler.begin_epoch(t, runtime)
            with profiler.stage("forward"):
                runtime.add_compute(1, 1.0)
            with profiler.stage("backward"):
                runtime.add_compute(3, 2.0)
                runtime.send_worker_to_worker(3, 0, 500, "bp_gradients")
            profiler.end_epoch(runtime.end_epoch())
        return profiler.profile()

    def test_stage_totals_in_pipeline_order(self):
        profile = self._two_epochs()
        totals = profile.stage_totals()
        assert list(totals) == ["forward", "backward"]
        assert totals["forward"]["count"] == 2
        assert totals["forward"]["compute_seconds"] == pytest.approx(2.0)
        assert totals["backward"]["bytes_sent"] == 1000
        assert totals["backward"]["messages"] == 2

    def test_straggler_counts(self):
        profile = self._two_epochs()
        assert profile.straggler_counts() == {1: 2, 3: 2}

    def test_epoch_timeline_envelope(self):
        profile = self._two_epochs()
        assert [t.epoch for t in profile.epochs] == [0, 1]
        for timeline in profile.epochs:
            assert timeline.critical_stage() in {"forward", "backward"}
            assert timeline.modelled_seconds > 0
            assert 0.0 < timeline.coverage <= 1.0 + 1e-9

    def test_as_dict_is_json_serializable(self):
        profile = self._two_epochs()
        data = json.loads(json.dumps(profile.as_dict()))
        assert data["stage_totals"]["backward"]["bytes_sent"] == 1000
        assert data["straggler_counts"] == {"1": 2, "3": 2}
        assert len(data["epochs"]) == 2

    def test_reset_drops_everything(self):
        runtime = _runtime()
        profiler = StageProfiler()
        profiler.begin_epoch(0, runtime)
        with profiler.stage("forward"):
            pass
        profiler.end_epoch(runtime.end_epoch())
        profiler.reset()
        assert profiler.profile().epochs == ()

    def test_empty_profile_is_safe(self):
        profile = StageProfile()
        assert profile.coverage() == 0.0
        assert profile.stage_totals() == {}
        assert profile.straggler_counts() == {}
        assert profile.stage_names() == []


class TestNullProfiler:
    def test_every_call_is_a_noop(self):
        profiler = NullStageProfiler()
        assert not profiler.enabled
        profiler.begin_epoch(0, runtime=None)
        with profiler.stage("forward"):
            pass
        profiler.end_epoch()
        profiler.reset()
        assert profiler.profile().epochs == ()

    def test_shared_singleton(self):
        assert isinstance(NULL_PROFILER, NullStageProfiler)


class TestEngineIntegration:
    @pytest.fixture
    def profiled_run(self, small_graph):
        trainer = _trainer(small_graph, ObsConfig(enabled=True))
        run = trainer.train(3)
        return trainer, run

    def test_every_epoch_profiles_all_five_stages(self, profiled_run):
        _, run = profiled_run
        profile = run.telemetry.profile
        assert profile is not None
        assert len(profile.epochs) == 3
        for timeline in profile.epochs:
            assert tuple(s.stage for s in timeline.samples) == ENGINE_STAGES

    def test_stage_walls_cover_the_epoch(self, profiled_run):
        _, run = profiled_run
        profile = run.telemetry.profile
        # The five stages should account for nearly all of the epoch
        # envelope; the remainder is end_epoch bookkeeping and timer
        # jitter. Gate the *best* epoch: a scheduler hiccup in the gap
        # between stages of a sub-millisecond envelope only lowers
        # coverage, so the least-disturbed epoch is the honest one, and
        # 0.90 sits deliberately below the ~0.95 typically seen.
        assert max(t.coverage for t in profile.epochs) >= 0.90
        for timeline in profile.epochs:
            assert timeline.stage_wall_seconds <= timeline.wall_seconds + 1e-9

    def test_halo_traffic_lands_in_forward_and_backward(self, profiled_run):
        _, run = profiled_run
        totals = run.telemetry.profile.stage_totals()
        assert totals["forward"]["bytes_sent"] > 0
        assert totals["backward"]["bytes_sent"] > 0
        # Planning and optimize put nothing on the worker-worker wire
        # (optimize traffic is push/pull, which this config routes
        # through the same epoch, so just check plan stays silent).
        assert totals["halo_plan"]["bytes_sent"] == 0

    def test_modelled_seconds_track_epoch_breakdowns(self, profiled_run):
        trainer, run = profiled_run
        history = trainer.runtime.epoch_history
        profile = run.telemetry.profile
        modelled = [t.modelled_seconds for t in profile.epochs]
        assert modelled == [b.total_seconds for b in history[:3]]

    def test_profile_switch_off(self, small_graph):
        trainer = _trainer(
            small_graph, ObsConfig(enabled=True, profile=False)
        )
        run = trainer.train(2)
        assert run.telemetry.profile is None
        assert run.telemetry.metrics.counter_total("comm_bytes") > 0
