"""ModelBackend protocol, staged-engine equivalence, and the satellite
behaviours that landed with the engine refactor (configurable Bit-Tuner
thresholds, corrupt-checkpoint fallback)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec
from repro.core.bit_tuner import (
    DEFAULT_LOWER_THRESHOLD,
    DEFAULT_RAISE_THRESHOLD,
    BitTuner,
)
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.gat import GATTrainer
from repro.core.sage import SAGETrainer
from repro.core.trainer import ECGraphTrainer
from repro.engine import (
    GATBackend,
    GCNBackend,
    ModelBackend,
    SAGEBackend,
    SampledGCNBackend,
)
from repro.faults.config import FaultConfig
from repro.graph.generators import GraphSpec, generate_graph

SPEC = ClusterSpec(num_workers=3, num_servers=1)


@pytest.fixture(scope="module")
def graph():
    return generate_graph(GraphSpec(
        name="backends", num_vertices=72, avg_degree=5.0, feature_dim=10,
        num_classes=3, homophily=0.85, feature_noise=0.7,
        train=30, val=12, test=24, seed=11,
    ))


def _make_trainer(arch: str, graph, **config_kwargs):
    config = ECGraphConfig(seed=0, **config_kwargs)
    if arch == "gcn":
        return ECGraphTrainer(
            graph, ModelConfig(num_layers=2, hidden_dim=12), SPEC, config
        )
    if arch == "sage":
        return SAGETrainer(
            graph,
            ModelConfig(num_layers=2, hidden_dim=12, model="sage"),
            SPEC,
            config,
        )
    if arch == "gat":
        return GATTrainer(
            graph, ModelConfig(num_layers=2, hidden_dim=12), SPEC,
            config, num_heads=2,
        )
    raise AssertionError(arch)


class TestModelBackendProtocol:
    def test_backends_satisfy_the_protocol(self):
        rng = np.random.default_rng(0)
        for backend in (
            GCNBackend(),
            SAGEBackend(),
            GATBackend(num_heads=2),
            SampledGCNBackend([4, 4], online=False,
                              sampling_speedup=20.0, rng=rng),
        ):
            assert isinstance(backend, ModelBackend)

    def test_gat_backend_validates_heads(self):
        with pytest.raises(ValueError, match="num_heads"):
            GATBackend(num_heads=0)

    @pytest.mark.parametrize("arch,backend_cls", [
        ("gcn", GCNBackend), ("sage", SAGEBackend), ("gat", GATBackend),
    ])
    def test_trainer_selects_matching_backend(self, arch, backend_cls, graph):
        trainer = _make_trainer(arch, graph)
        trainer.setup()
        assert type(trainer.engine.backend) is backend_cls


class TestStagedEngineMatchesFacade:
    """Driving the stages directly produces the facade's exact losses."""

    @pytest.mark.parametrize("arch", ["gcn", "sage", "gat"])
    def test_forward_backward_equivalence(self, arch, graph):
        epochs = 3
        fp_mode = "compress" if arch == "gat" else "reqec"

        facade = _make_trainer(arch, graph, fp_mode=fp_mode)
        facade_losses = [facade.run_epoch(t).loss for t in range(epochs)]

        staged = _make_trainer(arch, graph, fp_mode=fp_mode)
        staged.setup()
        engine = staged.engine
        staged_losses = []
        for t in range(epochs):
            engine.halo_plan.run(t)
            loss, _counters = engine.forward.run(t)
            grads = engine.backward.run(t)
            engine.optimize.run(grads)
            staged.runtime.end_epoch()
            staged_losses.append(loss)

        assert staged_losses == facade_losses
        assert (
            staged.evaluate_exact()["test"] == facade.evaluate_exact()["test"]
        )

    @pytest.mark.parametrize("arch", ["gcn", "sage", "gat"])
    def test_private_hooks_delegate_to_stages(self, arch, graph):
        trainer = _make_trainer(arch, graph)
        trainer.setup()
        trainer._on_epoch_start(0)
        loss, counters = trainer._forward(0)
        assert np.isfinite(loss)
        assert counters["train"][1] > 0
        trainer._backward(0)
        loss2, _ = trainer._forward(1)
        assert np.isfinite(loss2) and loss2 != loss


class TestTunerThresholdConfig:
    def test_defaults_are_shared_constants(self):
        config = ECGraphConfig()
        assert config.tuner_raise == DEFAULT_RAISE_THRESHOLD == 0.6
        assert config.tuner_lower == DEFAULT_LOWER_THRESHOLD == 0.4
        tuner = BitTuner()
        assert tuner.raise_threshold == DEFAULT_RAISE_THRESHOLD
        assert tuner.lower_threshold == DEFAULT_LOWER_THRESHOLD

    def test_config_thresholds_reach_the_tuner(self, graph):
        trainer = _make_trainer(
            "gcn", graph, tuner_raise=0.8, tuner_lower=0.2
        )
        trainer.setup()
        assert trainer.tuner.raise_threshold == 0.8
        assert trainer.tuner.lower_threshold == 0.2
        # A proportion between the custom thresholds changes nothing even
        # though it would have crossed the default 0.6 boundary.
        assert trainer.tuner.update((0, 1), 0.7) == trainer.config.fp_bits

    def test_invalid_thresholds_rejected_at_construction(self):
        with pytest.raises(ValueError, match="tuner_lower"):
            ECGraphConfig(tuner_raise=0.3, tuner_lower=0.5)
        with pytest.raises(ValueError):
            BitTuner(raise_threshold=0.3, lower_threshold=0.5)


class TestCorruptCheckpointFallback:
    def _crashy_trainer(self, graph, tmp_path):
        return _make_trainer(
            "gcn",
            graph,
            faults=FaultConfig(
                enabled=True,
                checkpoint_every=1,
                checkpoint_dir=str(tmp_path),
            ),
        )

    def test_checkpoints_rotate(self, graph, tmp_path):
        trainer = self._crashy_trainer(graph, tmp_path)
        trainer.run_epoch(0)
        assert (tmp_path / "latest.npz").exists()
        assert not (tmp_path / "previous.npz").exists()
        trainer.run_epoch(1)
        assert (tmp_path / "previous.npz").exists()

    def test_corrupt_latest_falls_back_to_previous(self, graph, tmp_path):
        from repro.core.checkpoint import load_checkpoint

        trainer = self._crashy_trainer(graph, tmp_path)
        trainer.run_epoch(0)
        trainer.run_epoch(1)
        # Torn write: the newest checkpoint lands unreadable on disk.
        (tmp_path / "latest.npz").write_bytes(b"not a checkpoint")

        assert trainer._restore_latest_checkpoint() is True
        assert trainer.fault_counters.corrupt_checkpoints == 1

        previous = load_checkpoint(tmp_path / "previous.npz")
        for name, value in previous["params"].items():
            np.testing.assert_array_equal(trainer.servers.get(name), value)

    def test_both_corrupt_falls_back_to_snapshot(self, graph, tmp_path):
        trainer = self._crashy_trainer(graph, tmp_path)
        trainer.run_epoch(0)
        trainer.run_epoch(1)
        snapshot_epoch, snapshot = trainer._param_snapshot
        assert snapshot_epoch == 2
        (tmp_path / "latest.npz").write_bytes(b"garbage")
        (tmp_path / "previous.npz").write_bytes(b"garbage")

        assert trainer._restore_latest_checkpoint() is True
        assert trainer.fault_counters.corrupt_checkpoints == 2
        for name, value in snapshot.items():
            np.testing.assert_array_equal(trainer.servers.get(name), value)

    def test_corruption_emits_warning_metric(self, graph, tmp_path):
        from repro.obs.config import ObsConfig

        trainer = _make_trainer(
            "gcn",
            graph,
            obs=ObsConfig(enabled=True),
            faults=FaultConfig(
                enabled=True,
                checkpoint_every=1,
                checkpoint_dir=str(tmp_path),
            ),
        )
        trainer.run_epoch(0)
        (tmp_path / "latest.npz").write_bytes(b"garbage")
        assert trainer._restore_latest_checkpoint() is True
        snapshot = trainer.obs.metrics.snapshot()
        assert snapshot.counter_total("fault_checkpoint_corrupt") == 1

    def test_counter_round_trips_as_dict(self):
        from repro.faults.injector import FaultCounters

        counters = FaultCounters(corrupt_checkpoints=3)
        assert counters.as_dict()["corrupt_checkpoints"] == 3
