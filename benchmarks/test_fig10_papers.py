"""Fig. 10 — OGBN-Papers at scale on the 6-machine cluster.

The paper's largest experiment: only EC-Graph (full-batch) and
EC-Graph-S run OGBN-Papers; the baselines cannot. We run both modes on
the papers stand-in (heavily scaled; the scale factor is printed) with a
3-layer model and report epoch time, accuracy and traffic. The paper's
published accuracy is 44.6 % full-batch / 43.6 % sampled — far below the
other datasets — which the calibrated label noise reproduces.
"""

from __future__ import annotations

from _helpers import HIDDEN, bench_graph, dataset_header, run_once

from repro.analysis.reporting import format_table
from repro.baselines import run_system
from _helpers import fmt_bytes

DATASET = "ogbn-papers"
EPOCHS = 150
WORKERS = 6


def _experiment():
    graph = bench_graph(DATASET)
    full = run_system("ecgraph", graph, num_layers=3,
                      hidden_dim=HIDDEN[DATASET], num_workers=WORKERS,
                      num_epochs=EPOCHS)
    # The paper samples OGBN-Papers at (10, 10, 10) for 3 layers.
    sampled = run_system("ecgraph_s", graph, num_layers=3,
                         hidden_dim=HIDDEN[DATASET], num_workers=WORKERS,
                         num_epochs=EPOCHS, fanouts=[10, 10, 10])
    return full, sampled


def test_fig10_papers(benchmark):
    full, sampled = run_once(benchmark, _experiment)
    print()
    print(dataset_header(DATASET))
    rows = []
    for run, paper_acc in ((full, 0.4458), (sampled, 0.4356)):
        rows.append([
            run.name,
            f"{run.avg_epoch_seconds():.4f}",
            run.best_test_accuracy(),
            f"{paper_acc:.4f}",
            fmt_bytes(run.total_bytes()),
        ])
    print(format_table(
        ["mode", "epoch time (s)", "best acc", "paper acc", "traffic"],
        rows,
        title="Fig. 10: OGBN-Papers, 6 machines, 3-layer GCN",
    ))

    # Shape: papers accuracy is dramatically lower than the other
    # datasets (the paper's 44.6 %), sampling trades a little accuracy
    # for cheaper epochs, and both modes actually train.
    assert full.best_test_accuracy() < 0.65
    assert full.best_test_accuracy() > 0.25
    assert sampled.avg_epoch_seconds() < full.avg_epoch_seconds()
    assert sampled.best_test_accuracy() > 0.15
