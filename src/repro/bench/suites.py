"""The bench suites: codec micro-kernels, halo exchange, full epochs.

Three levels of the same hot path, so a regression can be localized:

* ``kernels`` — ``pack_bits`` / ``unpack_bits`` per bit width, new
  kernels against the bit-matrix references
  (:mod:`repro.bench.reference`), in ns/element;
* ``exchange`` — one full halo exchange through the unified transport
  layer (:class:`~repro.engine.transport.HaloTransport`, via its
  :class:`~repro.core.nac.NeighborAccessController` facade) under
  ``CompressPolicy``, sequential vs buffer-pooled vs thread-pooled;
* ``epoch`` — wall seconds of ``ECGraphTrainer.run_epoch`` with the
  default config vs the pooled+threaded config;
* ``epoch_multiprocess`` — the same epoch under
  ``execution="multiprocess"`` (real worker processes + shared memory)
  vs the sequential and GIL-bound threaded paths.

Timing samples are funnelled through a
:class:`~repro.obs.registry.MetricsRegistry` so the report carries the
same summary-stat shape (count/mean/min/max) as the telemetry exports.
"""

from __future__ import annotations

import resource
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.bench.harness import SCHEMA, best_seconds
from repro.bench.reference import pack_bits_reference, unpack_bits_reference
from repro.cluster.engine import ClusterRuntime
from repro.cluster.topology import ClusterSpec
from repro.compression.quantization import pack_bits, unpack_bits
from repro.core.nac import NeighborAccessController
from repro.core.policies import CompressPolicy
from repro.core.worker import build_worker_states
from repro.graph.datasets import load_dataset
from repro.graph.normalize import gcn_normalize
from repro.obs.registry import MetricsRegistry
from repro.partition.hashing import HashPartitioner

__all__ = [
    "run_bench", "bench_codec", "bench_exchange", "bench_epoch",
    "bench_epoch_multiprocess", "bench_large", "peak_rss_bytes",
]

_SMOKE = dict(elements=20_000, widths=(2, 4, 8), repeats=3,
              profile="tiny", epochs=2, exchange_repeats=3)
_FULL = dict(elements=400_000, widths=(1, 2, 3, 4, 8, 16), repeats=9,
             profile="bench", epochs=3, exchange_repeats=5)

# The out-of-core tier (``repro bench --profile large``): stream an
# R-MAT graph straight to an mmap store, then drive the store-native
# pipeline steps over it. Full is the paper-scale 2^20 = 1,048,576
# vertices with a 256 MiB on-disk feature matrix — deliberately bigger
# than the LRU residency budget, so the peak-RSS check below is a real
# out-of-core claim. Smoke shrinks everything to a CI-sized graph
# (seconds, not minutes); its RSS number is dominated by the
# interpreter, so only the full tier asserts RSS < feature bytes.
_LARGE_SMOKE = dict(scale=14, edge_factor=8, feature_dim=32,
                    num_workers=4, chunk_vertices=1 << 12,
                    resident_blocks=4, gather_parts=2)
_LARGE_FULL = dict(scale=20, edge_factor=8, feature_dim=128,
                   num_workers=8, chunk_vertices=1 << 16,
                   resident_blocks=4, gather_parts=2)


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes.

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; the high-
    water mark covers the whole process lifetime, which is exactly the
    semantics the out-of-core check wants (nothing before the large
    suite may have materialized the features either).
    """
    peak = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    return peak if sys.platform == "darwin" else peak * 1024


def bench_codec(params: dict, metrics: MetricsRegistry) -> dict:
    """Time pack/unpack per width, new kernels vs references."""
    kernels: dict[str, dict] = {}
    rng = np.random.default_rng(7)
    n = params["elements"]
    for bits in params["widths"]:
        ids = rng.integers(0, 1 << bits, size=n, dtype=np.uint32)
        packed = pack_bits(ids, bits)
        cases = {
            f"pack_bits[bits={bits}]": (
                lambda ids=ids, bits=bits: pack_bits(ids, bits),
                lambda ids=ids, bits=bits: pack_bits_reference(ids, bits),
            ),
            f"unpack_bits[bits={bits}]": (
                lambda packed=packed, bits=bits: unpack_bits(packed, bits, n),
                lambda packed=packed, bits=bits: (
                    unpack_bits_reference(packed, bits, n)
                ),
            ),
        }
        for name, (new, reference) in cases.items():
            new_s = best_seconds(new, repeats=params["repeats"])
            ref_s = best_seconds(reference, repeats=params["repeats"])
            entry = {
                "ns_per_element": new_s / n * 1e9,
                "reference_ns_per_element": ref_s / n * 1e9,
                "speedup_vs_reference": ref_s / new_s if new_s > 0 else 0.0,
            }
            kernels[name] = entry
            metrics.observe("bench_kernel_ns", entry["ns_per_element"],
                            kernel=name)
    return kernels


def _make_nac(buffer_pool: bool, threads: int):
    graph = load_dataset("cora", profile="tiny", seed=3)
    normalized = gcn_normalize(graph.adjacency)
    partition = HashPartitioner().partition(graph.adjacency, 3)
    workers = build_worker_states(graph, normalized, partition)
    runtime = ClusterRuntime(ClusterSpec(num_workers=3))
    nac = NeighborAccessController(
        runtime, workers, buffer_pool=buffer_pool, threads=threads
    )
    return workers, nac


def bench_exchange(params: dict, metrics: MetricsRegistry) -> dict:
    """One full halo exchange: plain vs pooled vs pooled+threaded."""
    dim = 32
    results = {}
    for name, (pool, threads) in {
        "sequential": (False, 0),
        "pooled": (True, 0),
        "threaded": (True, 4),
    }.items():
        workers, nac = _make_nac(pool, threads)
        rng = np.random.default_rng(11)
        values = [rng.random((s.num_local, dim)).astype(np.float32)
                  for s in workers]
        policy = CompressPolicy(bits=4)

        def one_exchange():
            nac.exchange(
                layer=1, t=0, rows_of=lambda s: values[s.worker_id],
                policy=policy, category="fp_embeddings", dim=dim,
            )

        seconds = best_seconds(
            one_exchange, repeats=params["exchange_repeats"]
        )
        nac.close()
        results[f"{name}_seconds"] = seconds
        metrics.observe("bench_exchange_seconds", seconds, variant=name)
    return results


def _epoch_seconds(graph, overrides: dict, epochs: int) -> float:
    from repro.cluster import ClusterSpec as ApiClusterSpec
    from repro.core import ECGraphTrainer, ModelConfig
    from repro.core.config import ECGraphConfig

    trainer = ECGraphTrainer(
        graph, ModelConfig(num_layers=2, hidden_dim=32),
        ApiClusterSpec(num_workers=3), ECGraphConfig(**overrides),
    )
    trainer.setup()
    trainer.run_epoch(0)  # warm-up epoch: caches, first-hop reuse
    start = time.perf_counter()
    for t in range(1, epochs + 1):
        trainer.run_epoch(t)
    seconds = (time.perf_counter() - start) / epochs
    trainer.close()
    return seconds


def _stage_profile(graph, epochs: int) -> dict:
    """Per-stage wall seconds of one instrumented trainer.

    Runs with only the stage profiler enabled (no tracing, health or
    ledger) so the per-stage numbers carry minimal instrumentation
    overhead; the warm-up epoch is profiled too but discarded with a
    ``profiler.reset()`` so caches don't pollute the steady state.
    """
    from repro.cluster import ClusterSpec as ApiClusterSpec
    from repro.core import ECGraphTrainer, ModelConfig
    from repro.core.config import ECGraphConfig
    from repro.obs import ObsConfig

    trainer = ECGraphTrainer(
        graph, ModelConfig(num_layers=2, hidden_dim=32),
        ApiClusterSpec(num_workers=3),
        ECGraphConfig(obs=ObsConfig(
            enabled=True, trace=False, health=False, ledger=False,
            epoch_snapshots=False,
        )),
    )
    trainer.setup()
    trainer.run_epoch(0)  # warm-up epoch: caches, first-hop reuse
    trainer.obs.profiler.reset()
    rounds = max(epochs, 3)
    for t in range(1, rounds + 1):
        trainer.run_epoch(t)
    profile = trainer.obs.profiler.profile()
    if trainer.nac is not None:
        trainer.nac.close()
    # Same noise-rejection idiom as the kernels' best-of-repeats: a
    # scheduler hiccup landing between stages of a sub-millisecond
    # epoch envelope can only ever *lower* coverage, so the
    # least-disturbed epoch is the honest measurement.
    best_coverage = max(t.coverage for t in profile.epochs)
    return {
        "stages": {
            stage: agg["wall_seconds"] / rounds
            for stage, agg in profile.stage_totals().items()
        },
        "stage_coverage": best_coverage,
    }


def bench_epoch(params: dict, metrics: MetricsRegistry) -> dict:
    """Measured (not modelled) wall seconds per training epoch.

    ``reference_codec`` runs the same trainer with the old bit-matrix
    pack/unpack kernels swapped back in — the true "before" of the
    codec rewrite, on identical everything else. ``default`` is the
    shipped configuration; ``optimized`` adds the buffer pool and the
    thread fan-out (which only pays off with spare cores). ``stages``
    attributes the default configuration's epoch to the five engine
    stages (per-epoch wall seconds, profiler-measured), so a
    ``--compare`` regression can be localized to the stage that moved.
    """
    from repro.compression import quantization

    graph = load_dataset("cora", profile=params["profile"], seed=3)
    epochs = params["epochs"]
    results = {}

    originals = (quantization.pack_bits, quantization.unpack_bits)
    quantization.pack_bits = pack_bits_reference
    quantization.unpack_bits = unpack_bits_reference
    try:
        results["reference_codec_seconds"] = _epoch_seconds(graph, {}, epochs)
    finally:
        quantization.pack_bits, quantization.unpack_bits = originals

    results["default_seconds"] = _epoch_seconds(graph, {}, epochs)
    results["optimized_seconds"] = _epoch_seconds(
        graph, {"halo_buffer_pool": True, "exchange_threads": 4}, epochs
    )
    for variant in ("reference_codec", "default", "optimized"):
        metrics.observe("bench_epoch_seconds",
                        results[f"{variant}_seconds"], variant=variant)
    if results["default_seconds"] > 0:
        results["speedup_vs_reference_codec"] = (
            results["reference_codec_seconds"] / results["default_seconds"]
        )
    if results["optimized_seconds"] > 0:
        results["speedup_optimized"] = (
            results["default_seconds"] / results["optimized_seconds"]
        )
    results.update(_stage_profile(graph, epochs))
    for stage, seconds in results["stages"].items():
        metrics.observe("bench_stage_seconds", seconds, stage=stage)
    return results


def bench_epoch_multiprocess(params: dict, metrics: MetricsRegistry) -> dict:
    """Epoch wall seconds with real worker processes vs the GIL-bound
    alternatives, on this host.

    Three configurations of the identical training run: ``sequential``
    (the default inline engine), ``threaded`` (the pooled + 4-thread
    halo fan-out, which the GIL makes *slower* than sequential), and
    ``multiprocess`` (``execution="multiprocess"``: one OS process per
    worker over shared memory). ``host_cpus`` is recorded because the
    multiprocess numbers are only meaningful relative to it — on a
    single-CPU host the processes time-slice one core and pay IPC on
    top, so ``speedup_multiprocess`` < 1 there is the host's ceiling,
    not a code regression (see docs/execution.md).
    """
    import os

    graph = load_dataset("cora", profile=params["profile"], seed=3)
    epochs = params["epochs"]
    results = {"host_cpus": os.cpu_count() or 1}
    results["sequential_seconds"] = _epoch_seconds(graph, {}, epochs)
    results["threaded_seconds"] = _epoch_seconds(
        graph, {"halo_buffer_pool": True, "exchange_threads": 4}, epochs
    )
    results["multiprocess_seconds"] = _epoch_seconds(
        graph, {"execution": "multiprocess"}, epochs
    )
    for variant in ("sequential", "threaded", "multiprocess"):
        metrics.observe("bench_epoch_mp_seconds",
                        results[f"{variant}_seconds"], variant=variant)
    if results["multiprocess_seconds"] > 0:
        results["speedup_multiprocess"] = (
            results["sequential_seconds"] / results["multiprocess_seconds"]
        )
        results["speedup_multiprocess_vs_threads"] = (
            results["threaded_seconds"] / results["multiprocess_seconds"]
        )
    return results


def bench_large(params: dict, metrics: MetricsRegistry) -> dict:
    """The million-vertex out-of-core tier, end to end.

    Streams an R-MAT graph into an mmap :class:`GraphStoreBundle` in a
    temporary directory and times the store-native pipeline a real run
    performs: generation, adjacency-free hash partitioning, streaming
    partition statistics (the halo plan's cost model), one worker's
    induced subgraph, and gathering that worker's feature rows through
    the chunk cache. No step is allowed to materialize the feature
    matrix — ``rss_below_features`` records whether the process
    high-water mark indeed stayed under the on-disk feature bytes.
    """
    from repro.graph.rmat import RMATSpec
    from repro.graph.streaming import stream_rmat_graph
    from repro.graph.subgraph import induced_subgraph
    from repro.partition.stats import partition_stats

    spec = RMATSpec(
        scale=params["scale"], edge_factor=params["edge_factor"],
        feature_dim=params["feature_dim"], seed=17,
    )
    results: dict = {
        "num_vertices": spec.num_vertices,
        "feature_dim": spec.feature_dim,
        "num_workers": params["num_workers"],
    }
    with tempfile.TemporaryDirectory(prefix="ecgraph-bench-large-") as root:
        start = time.perf_counter()
        bundle = stream_rmat_graph(
            spec, backend="mmap", out_dir=root,
            chunk_vertices=params["chunk_vertices"],
            max_resident_blocks=params["resident_blocks"],
        )
        results["generate_seconds"] = time.perf_counter() - start
        results["num_edges"] = bundle.num_edges

        store = bundle.feature_store
        feature_bytes = (
            int(np.prod(store.shape, dtype=np.int64)) * store.dtype.itemsize
        )
        results["feature_bytes_on_disk"] = feature_bytes
        results["store_bytes_on_disk"] = sum(
            p.stat().st_size for p in Path(root).rglob("*") if p.is_file()
        )

        start = time.perf_counter()
        partition = HashPartitioner().partition(
            bundle.adjacency, params["num_workers"]
        )
        results["partition_seconds"] = time.perf_counter() - start

        start = time.perf_counter()
        stats = partition_stats(bundle.adjacency, partition)
        results["stats_seconds"] = time.perf_counter() - start
        results["edge_cut_ratio"] = stats.edge_cut_ratio
        results["total_halo"] = stats.total_halo

        # Each step below models a fresh worker's bootstrap; dropping
        # the LRU residency between them keeps one step's cached chunks
        # from inflating the next step's resident footprint.
        bundle.adjacency.cache.drop_all()

        start = time.perf_counter()
        sub = induced_subgraph(bundle.adjacency, partition.part_vertices(0))
        results["subgraph_seconds"] = time.perf_counter() - start
        results["part0_local"] = len(sub.local_vertices)
        results["part0_remote"] = len(sub.remote_vertices)
        del sub
        bundle.adjacency.cache.drop_all()

        gathered_rows = 0
        gathered_bytes = 0
        start = time.perf_counter()
        for part in range(min(params["gather_parts"], partition.num_parts)):
            rows = store.rows(partition.part_vertices(part))
            gathered_rows += rows.shape[0]
            gathered_bytes += rows.nbytes
            del rows
        gather_seconds = time.perf_counter() - start
        results["gather_seconds"] = gather_seconds
        results["gather_rows"] = gathered_rows
        if gather_seconds > 0:
            results["gather_mb_per_second"] = (
                gathered_bytes / gather_seconds / 1e6
            )
        results["feature_cache"] = store.cache.stats()

    peak = peak_rss_bytes()
    results["peak_rss_bytes"] = peak
    results["rss_to_feature_ratio"] = (
        peak / feature_bytes if feature_bytes else 0.0
    )
    results["rss_below_features"] = bool(peak < feature_bytes)
    for step in ("generate", "partition", "stats", "subgraph", "gather"):
        metrics.observe("bench_large_seconds", results[f"{step}_seconds"],
                        step=step)
    return results


def run_bench(
    smoke: bool = False,
    execution: str | None = None,
    profile: str = "core",
) -> dict:
    """Run the suites; returns the report dict (see harness docs).

    ``execution`` narrows the run: ``"multiprocess"`` runs only the
    multiprocess epoch suite, ``"sync"`` only the single-process suites,
    ``None`` (default) everything. ``profile="large"`` runs *only* the
    out-of-core tier — nothing else may run in the process, so its
    peak-RSS measurement is attributable to the large suite alone.
    Every report carries ``peak_rss_bytes`` for the whole run.
    """
    metrics = MetricsRegistry()
    if profile == "large":
        params = dict(_LARGE_SMOKE if smoke else _LARGE_FULL)
        report = {
            "schema": SCHEMA,
            "profile": "large-smoke" if smoke else "large",
            "large": bench_large(params, metrics),
        }
    elif profile == "core":
        params = dict(_SMOKE if smoke else _FULL)
        report = {
            "schema": SCHEMA,
            "profile": "smoke" if smoke else "full",
        }
        if execution != "multiprocess":
            report["kernels"] = bench_codec(params, metrics)
            report["exchange"] = bench_exchange(params, metrics)
            report["epoch"] = bench_epoch(params, metrics)
        if execution != "sync":
            report["epoch_multiprocess"] = bench_epoch_multiprocess(
                params, metrics
            )
    else:
        raise ValueError(f"unknown bench profile {profile!r}; "
                         "expected 'core' or 'large'")
    report["metrics"] = metrics.snapshot().as_dict()
    report["peak_rss_bytes"] = peak_rss_bytes()
    return report
