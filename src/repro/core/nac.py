"""The 1-hop Neighbor Access Controller (paper Fig. 2a).

The NAC mediates every halo exchange: local neighbours come out of shared
memory for free, remote neighbours go through an exchange policy, the
traffic meter and the compute clocks.

Since the staged-engine refactor the exchange machinery itself lives in
:class:`repro.engine.transport.HaloTransport` — one transport layer
serving the sequential, pooled and threaded paths in both directions
through per-channel :class:`~repro.engine.transport.ChannelSession`
plans. ``NeighborAccessController`` is the compatibility name for that
transport: constructing one is exactly constructing a
:class:`HaloTransport` (same arguments, same accounting, same
fault-tolerance behaviour), and existing callers — the benches, the
robustness suite, direct users of ``exchange``/``reverse_exchange`` —
keep working unchanged. See ``docs/engine.md`` for the transport's
design notes (buffer pooling, thread fan-out, degradation ladder).
"""

from __future__ import annotations

from repro.engine.transport import ChannelSession, HaloTransport

__all__ = ["NeighborAccessController"]

# Historical private alias: the per-channel plan used to be ``_Channel``.
_Channel = ChannelSession


class NeighborAccessController(HaloTransport):
    """Runs one halo exchange across all worker pairs.

    When a :class:`~repro.faults.FaultInjector` is attached (see
    :attr:`injector`), every delivery can drop, corrupt or stall; the
    NAC retransmits with exponential backoff — retry bytes hit the
    traffic meter and backoff stalls the requester, so the modelled
    epoch time reflects the faults — and when retries are exhausted it
    *degrades* instead of aborting: the requester substitutes the
    ReqEC-FP predicted candidate, its last successfully received rows
    for the channel, or zeros (partial aggregation), in that order.

    Args:
        buffer_pool: Reuse halo buffers across exchanges (zeroed in
            place) instead of allocating fresh ones every call.
        threads: Fan the independent channels of one exchange out over
            this many threads; ``0``/``1`` keeps the sequential loop.
    """
