"""Checkpointing and crash recovery for the staged engine.

The :class:`RecoveryManager` owns the fault-tolerance lifecycle that
used to be spread across the trainer monolith: advancing the injector's
epoch clock, rebuilding crashed workers, rotating/saving parameter
checkpoints and rolling servers back after a crash.

Checkpoint files rotate — before each save, the previous ``latest.npz``
moves to ``previous.npz`` — so a checkpoint that lands corrupt on disk
(torn write, bit rot) no longer kills recovery: restore skips it with a
warning metric (``fault_checkpoint_corrupt`` / the
``corrupt_checkpoints`` counter) and falls back to the previous file,
then to the in-memory snapshot.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.engine.context import ExchangeContext

__all__ = ["RecoveryManager", "CHECKPOINT_NAME", "PREVIOUS_CHECKPOINT_NAME"]

CHECKPOINT_NAME = "latest.npz"
PREVIOUS_CHECKPOINT_NAME = "previous.npz"


class RecoveryManager:
    """Drives fault-tolerance hooks around each training iteration.

    Args:
        ctx: The shared exchange context (injector, runtime, workers,
            servers, policies, telemetry).
        trainer: The owning trainer facade — checkpoint serialization
            (:func:`~repro.core.checkpoint.save_checkpoint`) captures
            the trainer's model/config metadata.
    """

    def __init__(self, ctx: ExchangeContext, trainer):
        self.ctx = ctx
        self.trainer = trainer
        # (epoch, params) in-memory snapshot — the rollback of last
        # resort when no disk checkpoint is configured or readable.
        self.param_snapshot: tuple[int, dict[str, np.ndarray]] | None = None

    # ------------------------------------------------------------------
    # Epoch lifecycle
    # ------------------------------------------------------------------
    def begin_epoch(self, t: int) -> None:
        """Advance the injector clock and recover scheduled crashes."""
        injector = self.ctx.injector
        if injector is None:
            return
        injector.start_epoch(t)
        crashed = injector.take_crashes(t)
        if crashed:
            with self.ctx.telemetry.span(
                "recovery", epoch=t, crashed=list(crashed)
            ):
                self.recover_workers(crashed)

    def end_epoch(self, t: int) -> None:
        """Auto-checkpoint the server parameters after epoch ``t``."""
        if self.ctx.injector is not None:
            self.maybe_checkpoint(t)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def maybe_checkpoint(self, t: int) -> None:
        faults = self.ctx.config.faults
        if (t + 1) % faults.checkpoint_every != 0:
            return
        with self.ctx.telemetry.span("checkpoint", epoch=t):
            if faults.checkpoint_dir is not None:
                from repro.core.checkpoint import save_checkpoint

                directory = Path(faults.checkpoint_dir)
                path = directory / CHECKPOINT_NAME
                # Rotate so a corrupt newest file still leaves one good
                # generation on disk (os.replace keeps rotation atomic).
                if path.exists():
                    import os

                    os.replace(path, directory / PREVIOUS_CHECKPOINT_NAME)
                save_checkpoint(self.trainer, path, epoch=t + 1)
            self.param_snapshot = (t + 1, self.ctx.servers.state_dict())

    def restore_latest_checkpoint(self) -> bool:
        """Load the newest readable parameter checkpoint into the servers.

        Tries ``latest.npz``; a corrupt file is *skipped* — counted in
        ``corrupt_checkpoints`` and the ``fault_checkpoint_corrupt``
        metric — in favour of the rotated ``previous.npz``, and the
        in-memory snapshot remains the final fallback. Returns True when
        any source restored the parameters.
        """
        ctx = self.ctx
        faults = ctx.config.faults
        if faults.checkpoint_dir is not None:
            from repro.core.checkpoint import CheckpointError, load_checkpoint

            directory = Path(faults.checkpoint_dir)
            for name in (CHECKPOINT_NAME, PREVIOUS_CHECKPOINT_NAME):
                try:
                    state = load_checkpoint(directory / name)
                except FileNotFoundError:
                    continue
                except CheckpointError:
                    if ctx.injector is not None:
                        ctx.injector.counters.corrupt_checkpoints += 1
                    if ctx.telemetry.enabled:
                        ctx.telemetry.metrics.inc(
                            "fault_checkpoint_corrupt", file=name
                        )
                    continue
                for name_, value in state["params"].items():
                    ctx.servers.set(name_, value)
                return True
        if self.param_snapshot is not None:
            _, params = self.param_snapshot
            for name, value in params.items():
                ctx.servers.set(name, value.copy())
            return True
        return False

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def recover_workers(self, crashed: list[int]) -> None:
        """Rebuild crashed workers and resynchronize the exchange state.

        The static partition state (adjacency rows, feature shards,
        request/serve plans) rebuilds from the worker's local storage —
        charged as ``recovery_seconds`` of stall plus the re-fetch of
        the first-hop feature cache — while the server-side parameters
        roll back to the latest checkpoint (``restore_params``) and the
        error-compensation channel state touching the dead worker is
        zeroed (``reset_residuals``), restoring the Theorem-1 initial
        condition ``delta = 0`` for those channels.
        """
        ctx = self.ctx
        faults = ctx.config.faults
        counters = ctx.injector.counters
        obs = ctx.telemetry
        for worker in crashed:
            counters.crashes += 1
            if obs.enabled:
                obs.metrics.inc("fault_crashes", worker=worker)
            ctx.runtime.add_stall(worker, faults.recovery_seconds)
            state = ctx.workers[worker]
            rebuild_halo = (
                ctx.config.cache_first_hop
                and state.halo_features is not None
            )
            state.crash_reset(ctx.params.num_layers)
            if rebuild_halo:
                halo = np.zeros(
                    (state.num_halo, ctx.graph.feature_dim),
                    dtype=np.float32,
                )
                for owner, slots in state.halo_slots.items():
                    responder = ctx.workers[owner]
                    rows = responder.features[responder.serves[worker]]
                    halo[slots] = rows
                    ctx.runtime.send_worker_to_worker(
                        owner, worker, rows.nbytes + 16, "recovery"
                    )
                state.halo_features = halo
            if faults.reset_residuals:
                for policy in (ctx.fp_policy, ctx.bp_policy):
                    invalidate = getattr(policy, "invalidate_worker", None)
                    if invalidate is not None:
                        invalidate(worker)
            ctx.transport.invalidate_worker(worker)
        if faults.restore_params and self.restore_latest_checkpoint():
            counters.params_rolled_back += 1
            if obs.enabled:
                obs.metrics.inc("fault_params_rolled_back")
