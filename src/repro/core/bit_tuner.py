"""The adaptive Bit-Tuner (paper section IV-B, Algorithm 3 lines 13-18).

The tuner watches, per (responder, requester) worker pair, the proportion
of vertices for which the Selector chose the *predicted* approximation.
A high proportion means the trend extrapolation is beating the quantizer —
i.e. the compressed embeddings are too lossy — so the bit width doubles;
a low proportion means quantization is already accurate enough and the
width halves to save bandwidth. The ladder is the paper's
``{1, 2, 4, 8, 16}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "BitTuner",
    "BIT_LADDER",
    "DEFAULT_RAISE_THRESHOLD",
    "DEFAULT_LOWER_THRESHOLD",
]

BIT_LADDER = (1, 2, 4, 8, 16)

# The paper's tuning thresholds on the predicted proportion (section
# IV-B): double the width above 60%, halve it below 40%. These are the
# single source of truth — ``ECGraphConfig.tuner_raise``/``tuner_lower``
# default to them.
DEFAULT_RAISE_THRESHOLD = 0.6
DEFAULT_LOWER_THRESHOLD = 0.4


@dataclass
class BitTuner:
    """Per-channel-pair adaptive bit widths.

    Attributes:
        initial_bits: Starting width for every pair.
        raise_threshold: Double ``B`` when the predicted proportion
            exceeds this (paper: 0.6).
        lower_threshold: Halve ``B`` when it drops below this (paper: 0.4).
        enabled: When False the tuner always reports ``initial_bits``
            (the fixed-bit configurations of Figs. 6-8).
    """

    initial_bits: int = 4
    raise_threshold: float = DEFAULT_RAISE_THRESHOLD
    lower_threshold: float = DEFAULT_LOWER_THRESHOLD
    enabled: bool = True
    # Called as ``observer(pair, new_bits)`` on every width change; the
    # telemetry health monitor hooks in here to audit the trajectory.
    observer: Callable[[tuple[int, int], int], None] | None = field(
        default=None, repr=False, compare=False
    )
    _bits: dict[tuple[int, int], int] = field(default_factory=dict)
    _history: list[tuple[tuple[int, int], int]] = field(default_factory=list)

    def __post_init__(self):
        if self.initial_bits not in BIT_LADDER:
            raise ValueError(
                f"initial_bits must be one of {BIT_LADDER}, got {self.initial_bits}"
            )
        if not 0.0 <= self.lower_threshold < self.raise_threshold <= 1.0:
            raise ValueError("need 0 <= lower < raise <= 1")

    def bits(self, pair: tuple[int, int]) -> int:
        """Current width for a (responder, requester) pair."""
        return self._bits.get(pair, self.initial_bits)

    def update(self, pair: tuple[int, int], predicted_proportion: float) -> int:
        """Apply one tuning step; returns the (possibly new) width.

        Called once per iteration per pair, with the proportion observed
        at the last forward layer (Algorithm 3, ``l == L``).
        """
        if not 0.0 <= predicted_proportion <= 1.0:
            raise ValueError(
                f"proportion must be in [0, 1], got {predicted_proportion}"
            )
        current = self.bits(pair)
        if not self.enabled:
            return current
        new = current
        if predicted_proportion > self.raise_threshold and current < BIT_LADDER[-1]:
            new = current * 2
        elif predicted_proportion < self.lower_threshold and current > BIT_LADDER[0]:
            new = current // 2
        if new != current:
            self._bits[pair] = new
            self._history.append((pair, new))
            if self.observer is not None:
                self.observer(pair, new)
        return new

    def escalate(
        self,
        pairs,
        bits: int = BIT_LADDER[-1],
    ) -> list[tuple[int, int]]:
        """Force the given pairs to (at least) ``bits`` wide.

        The convergence watchdog calls this after a divergence trip:
        post-rollback, the affected channels re-run at high precision so
        compression error cannot re-trigger the divergence. Unlike
        :meth:`update` this ignores ``enabled`` — a safety override must
        apply to fixed-bit configurations too. Returns the pairs whose
        width actually changed.
        """
        if bits not in BIT_LADDER:
            raise ValueError(f"bits must be one of {BIT_LADDER}, got {bits}")
        changed = []
        for pair in sorted(pairs):
            if self.bits(pair) >= bits:
                continue
            self._bits[pair] = bits
            self._history.append((pair, bits))
            if self.observer is not None:
                self.observer(pair, bits)
            changed.append(pair)
        return changed

    def history(self) -> list[tuple[tuple[int, int], int]]:
        """All width changes, in order (for the ablation benchmarks)."""
        return list(self._history)

    def reset(self) -> None:
        self._bits.clear()
        self._history.clear()
