"""EC-Graph reproduction: distributed GNN training with error-compensated
message compression (Song et al., ICDE 2022).

Public API highlights:

* :func:`repro.api.train_ecgraph` — one-call training of a GCN on a
  simulated CPU cluster with the paper's full EC-Graph pipeline.
* :class:`repro.core.ECGraphTrainer` — the distributed trainer with all
  exchange policies (raw, compressed, ReqEC-FP, ResEC-BP, delayed).
* :mod:`repro.graph` — graph storage, synthetic datasets matched to the
  paper's Table III, partitioning in :mod:`repro.partition`.
* :mod:`repro.baselines` — DGL/PyG-style standalone, DistGNN, DistDGL,
  AGL and AliGraph-FG reimplementations on the same substrate.
"""

from repro.api import train_ecgraph
from repro.cluster import ClusterSpec, NetworkModel
from repro.core import ConvergenceRun, ECGraphConfig, ECGraphTrainer, ModelConfig
from repro.graph import load_dataset

__version__ = "1.0.0"

__all__ = [
    "train_ecgraph",
    "ClusterSpec",
    "NetworkModel",
    "ConvergenceRun",
    "ECGraphConfig",
    "ECGraphTrainer",
    "ModelConfig",
    "load_dataset",
    "__version__",
]
