"""Fault injection and fault tolerance for the simulated cluster.

* :mod:`repro.faults.config` — :class:`FaultConfig`, the declarative
  fault schedule hung off ``ECGraphConfig.faults``;
* :mod:`repro.faults.injector` — the deterministic
  :class:`FaultInjector` oracle plus :class:`FaultCounters`;
* :mod:`repro.faults.scenarios` — named chaos recipes for the CLI;
* :mod:`repro.faults.chaos` — the scenario runner (imported lazily by
  the CLI, not here, because it depends on :mod:`repro.core`).
"""

from repro.faults.config import FAULTS_DISABLED, FaultConfig
from repro.faults.injector import (
    FATE_CORRUPT,
    FATE_DELAY,
    FATE_DROP,
    FATE_OK,
    FaultCounters,
    FaultInjector,
)
from repro.faults.scenarios import SCENARIOS, build_scenario, scenario_names

__all__ = [
    "FAULTS_DISABLED",
    "FaultConfig",
    "FATE_CORRUPT",
    "FATE_DELAY",
    "FATE_DROP",
    "FATE_OK",
    "FaultCounters",
    "FaultInjector",
    "SCENARIOS",
    "build_scenario",
    "scenario_names",
]
