"""Unit tests for the raw, compress and delayed exchange policies."""

import numpy as np
import pytest

from repro.core.messages import ChannelKey, RawPolicy
from repro.core.policies import CompressPolicy, DelayedPolicy

KEY = ChannelKey(layer=1, responder=0, requester=1)


@pytest.fixture
def rows():
    rng = np.random.default_rng(0)
    return rng.standard_normal((20, 8)).astype(np.float32)


class TestRawPolicy:
    def test_lossless(self, rows):
        policy = RawPolicy()
        message = policy.respond(KEY, rows, t=0)
        result = policy.receive(KEY, message, t=0)
        np.testing.assert_array_equal(result.rows, rows)

    def test_size_is_raw(self, rows):
        message = RawPolicy().respond(KEY, rows, t=0)
        assert message.nbytes == rows.nbytes + 24


class TestCompressPolicy:
    def test_bounded_error(self, rows):
        policy = CompressPolicy(bits=8)
        message = policy.respond(KEY, rows, t=0)
        result = policy.receive(KEY, message, t=0)
        span = rows.max() - rows.min()
        assert np.abs(result.rows - rows).max() <= span / 512 + 1e-5

    def test_smaller_than_raw(self, rows):
        policy = CompressPolicy(bits=2)
        assert policy.respond(KEY, rows, t=0).nbytes < rows.nbytes / 4

    def test_codec_time_recorded(self, rows):
        message = CompressPolicy(bits=4).respond(KEY, rows, t=0)
        assert message.codec_seconds >= 0

    def test_name(self):
        assert CompressPolicy(bits=4).name == "compress4"


class TestDelayedPolicy:
    def test_first_iteration_full(self, rows):
        policy = DelayedPolicy(rounds=4)
        message = policy.respond(KEY, rows, t=0)
        result = policy.receive(KEY, message, t=0)
        np.testing.assert_array_equal(result.rows, rows)

    def test_block_refresh_partial(self, rows):
        policy = DelayedPolicy(rounds=4)
        policy.receive(KEY, policy.respond(KEY, rows, t=0), t=0)
        fresh = rows + 100.0
        result = policy.receive(KEY, policy.respond(KEY, fresh, t=1), t=1)
        block = np.arange(20) % 4 == 1
        np.testing.assert_array_equal(result.rows[block], fresh[block])
        np.testing.assert_array_equal(result.rows[~block], rows[~block])

    def test_full_refresh_after_r_rounds(self, rows):
        policy = DelayedPolicy(rounds=3)
        policy.receive(KEY, policy.respond(KEY, rows, t=0), t=0)
        fresh = rows * -1.0
        for t in range(1, 4):
            result = policy.receive(KEY, policy.respond(KEY, fresh, t=t), t=t)
        np.testing.assert_array_equal(result.rows, fresh)

    def test_block_message_smaller(self, rows):
        policy = DelayedPolicy(rounds=4)
        full = policy.respond(KEY, rows, t=0)
        policy.receive(KEY, full, t=0)
        block = policy.respond(KEY, rows, t=1)
        assert block.nbytes < full.nbytes

    def test_block_before_full_raises(self, rows):
        policy = DelayedPolicy(rounds=2)
        message = policy.respond(KEY, rows, t=1)  # t=1: block message
        # But first refresh at t=0 never happened on requester side:
        # responder sent full at t=1 because cache is empty, so simulate
        # a block payload against an empty cache directly.
        policy.respond(KEY, rows, t=1)
        policy._cache.clear()
        block_payload = ("block", np.array([0]), rows[:1])
        message.payload = block_payload
        with pytest.raises(RuntimeError):
            policy.receive(KEY, message, t=1)

    def test_reset_clears_cache(self, rows):
        policy = DelayedPolicy(rounds=2)
        policy.receive(KEY, policy.respond(KEY, rows, t=0), t=0)
        policy.reset()
        # After reset, the responder sends full again.
        message = policy.respond(KEY, rows, t=5)
        assert message.payload[0] == "full"

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            DelayedPolicy(rounds=0)

    def test_independent_channels(self, rows):
        policy = DelayedPolicy(rounds=2)
        other = ChannelKey(layer=2, responder=0, requester=1)
        policy.receive(KEY, policy.respond(KEY, rows, t=0), t=0)
        message = policy.respond(other, rows, t=3)
        assert message.payload[0] == "full"  # other channel still cold
