"""Elastic membership: lease-based liveness, partition adoption and the
convergence watchdog (the robustness layer above per-message fault
tolerance — see ``docs/fault_tolerance.md``)."""

from repro.membership.reassign import PartitionReassigner
from repro.membership.view import MembershipEvent, MembershipView, QuorumLostError
from repro.membership.watchdog import ConvergenceWatchdog, DivergenceError

__all__ = [
    "MembershipEvent",
    "MembershipView",
    "QuorumLostError",
    "PartitionReassigner",
    "ConvergenceWatchdog",
    "DivergenceError",
]
