"""Ablation — Bit-Tuner behaviour: thresholds, trend period, adaptivity.

Three questions the paper leaves implicit, answered empirically:

1. Does the adaptive tuner actually move bit widths during training, and
   does it match (or beat) the best fixed width on traffic?
2. How sensitive is ReqEC-FP to the trend period ``T_tr`` (paper sets 10)?
3. What do the 0.6/0.4 thresholds buy over a always-raise/always-lower
   tuner?
"""

from __future__ import annotations

from _helpers import HIDDEN, bench_graph, dataset_header, fmt_bytes, run_once

from repro.analysis.reporting import format_table
from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.trainer import ECGraphTrainer

DATASET = "ogbn-products"
EPOCHS = 50
WORKERS = 6


def _train(config, name):
    graph = bench_graph(DATASET)
    trainer = ECGraphTrainer(
        graph, ModelConfig(num_layers=2, hidden_dim=HIDDEN[DATASET]),
        ClusterSpec(num_workers=WORKERS), config,
    )
    run = trainer.train(EPOCHS, name=name)
    changes = len(trainer.tuner.history()) if trainer.tuner else 0
    return run, changes


def _experiment():
    results = {}
    # 1. Adaptive vs fixed widths.
    for bits in (1, 4, 16):
        results[f"fixed-{bits}"] = _train(
            ECGraphConfig(fp_mode="reqec", bp_mode="resec", fp_bits=bits,
                          adaptive_bits=False),
            f"fixed-{bits}",
        )
    results["adaptive"] = _train(
        ECGraphConfig(fp_mode="reqec", bp_mode="resec", fp_bits=4,
                      adaptive_bits=True),
        "adaptive",
    )
    # 2. Trend period sweep.
    for period in (4, 10, 25):
        results[f"T_tr={period}"] = _train(
            ECGraphConfig(fp_mode="reqec", bp_mode="resec", fp_bits=2,
                          adaptive_bits=False, trend_period=period),
            f"T_tr={period}",
        )
    # 3. Threshold variants.
    results["thresholds=0.8/0.2"] = _train(
        ECGraphConfig(fp_mode="reqec", bp_mode="resec", fp_bits=4,
                      adaptive_bits=True, tuner_raise=0.8, tuner_lower=0.2),
        "thresholds=0.8/0.2",
    )
    return results


def test_ablation_bittuner(benchmark):
    results = run_once(benchmark, _experiment)
    print()
    print(dataset_header(DATASET))
    rows = [
        [name, run.best_test_accuracy(), fmt_bytes(run.total_bytes()),
         changes]
        for name, (run, changes) in results.items()
    ]
    print(format_table(
        ["config", "best acc", "traffic", "tuner changes"],
        rows,
        title="Bit-Tuner ablation",
    ))

    adaptive_run, adaptive_changes = results["adaptive"]
    fixed16_run, _ = results["fixed-16"]
    # Adaptive matches the generous fixed width on accuracy with less
    # traffic.
    assert adaptive_run.best_test_accuracy() >= (
        fixed16_run.best_test_accuracy() - 0.03
    )
    assert adaptive_run.total_bytes() < fixed16_run.total_bytes()
    # T_tr sensitivity: every period converges (compensation is robust).
    for period in (4, 10, 25):
        run, _ = results[f"T_tr={period}"]
        assert run.best_test_accuracy() > 0.6
