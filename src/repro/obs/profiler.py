"""Stage timeline profiler: where each epoch's time actually goes.

The staged engine runs ``halo_plan -> forward -> backward -> optimize ->
eval`` once per iteration, but :class:`~repro.core.results.EpochResult`
only reports whole-epoch numbers. The :class:`StageProfiler` records,
per epoch and per stage:

* **wall time** — ``perf_counter`` around the stage;
* **modelled compute** — the per-worker compute-second deltas charged
  to the :class:`~repro.cluster.engine.ClusterRuntime` during the
  stage, scaled by each worker's speed (the BSP barrier waits for the
  slowest, so the argmax worker is the stage's *straggler*);
* **modelled communication** — the per-machine traffic deltas on the
  :class:`~repro.cluster.network.TrafficMeter` converted to busiest-link
  seconds under the cluster's :class:`~repro.cluster.network.
  NetworkModel` (the argmax machine *bounded the barrier*).

The profiler is one of the collectors bundled by
:class:`~repro.obs.telemetry.Telemetry` (``ObsConfig.profile``); the
disabled twin :class:`NullStageProfiler` makes every call a no-op so
un-instrumented runs stay bit-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = [
    "StageSample",
    "EpochTimeline",
    "StageProfile",
    "StageProfiler",
    "NullStageProfiler",
    "NULL_PROFILER",
    "ENGINE_STAGES",
]

# The staged engine's canonical pipeline order (TrainerCore.run_epoch).
ENGINE_STAGES = ("halo_plan", "forward", "backward", "optimize", "eval")


@dataclass(frozen=True)
class StageSample:
    """One stage of one epoch, fully attributed.

    Attributes:
        epoch: Iteration number.
        stage: Stage name (one of :data:`ENGINE_STAGES`).
        wall_seconds: Measured wall time of the stage.
        compute_seconds: Per-worker modelled compute charged during the
            stage (speed-scaled, so entries compare directly).
        comm_seconds: Modelled busiest-link communication time of the
            traffic this stage put on the wire.
        bytes_sent: Inter-machine bytes charged during the stage.
        messages: Inter-machine messages charged during the stage.
        bottleneck_worker: Worker whose compute bounded the stage's
            barrier (None when no compute was charged).
        bottleneck_machine: Machine whose link bounded the stage's
            communication (None when nothing hit the wire).
    """

    epoch: int
    stage: str
    wall_seconds: float
    compute_seconds: tuple[float, ...]
    comm_seconds: float
    bytes_sent: int
    messages: int
    bottleneck_worker: int | None
    bottleneck_machine: int | None

    @property
    def max_compute_seconds(self) -> float:
        """The barrier-bounding worker's modelled compute."""
        return max(self.compute_seconds, default=0.0)

    def as_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "stage": self.stage,
            "wall_seconds": self.wall_seconds,
            "compute_seconds": list(self.compute_seconds),
            "comm_seconds": self.comm_seconds,
            "bytes_sent": self.bytes_sent,
            "messages": self.messages,
            "bottleneck_worker": self.bottleneck_worker,
            "bottleneck_machine": self.bottleneck_machine,
        }


@dataclass(frozen=True)
class EpochTimeline:
    """One epoch's stage samples plus its envelope timings."""

    epoch: int
    wall_seconds: float
    modelled_seconds: float  # EpochBreakdown.total_seconds, 0 if unknown
    samples: tuple[StageSample, ...]

    @property
    def stage_wall_seconds(self) -> float:
        return sum(s.wall_seconds for s in self.samples)

    @property
    def coverage(self) -> float:
        """Fraction of the epoch wall time the stages account for."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.stage_wall_seconds / self.wall_seconds

    def critical_stage(self) -> str | None:
        """The stage that took the most wall time this epoch."""
        if not self.samples:
            return None
        return max(self.samples, key=lambda s: s.wall_seconds).stage

    def as_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "wall_seconds": self.wall_seconds,
            "modelled_seconds": self.modelled_seconds,
            "coverage": self.coverage,
            "critical_stage": self.critical_stage(),
            "stages": [s.as_dict() for s in self.samples],
        }


@dataclass(frozen=True)
class StageProfile:
    """Immutable end-of-run rendering of everything the profiler saw."""

    epochs: tuple[EpochTimeline, ...] = ()
    # worker -> OS pid, populated only under execution="multiprocess"
    # (the process executor publishes pids at spawn and respawn), so a
    # profile can attribute stages to the real processes that ran them.
    worker_pids: tuple[tuple[int, int], ...] = ()

    def stage_names(self) -> list[str]:
        """Stages observed, in first-seen (pipeline) order."""
        seen: list[str] = []
        for timeline in self.epochs:
            for sample in timeline.samples:
                if sample.stage not in seen:
                    seen.append(sample.stage)
        return seen

    def stage_totals(self) -> dict[str, dict]:
        """Per-stage aggregate over all profiled epochs.

        ``stage -> {count, wall_seconds, comm_seconds, compute_seconds
        (barrier max per sample, summed), bytes_sent, messages}``, in
        pipeline order.
        """
        totals: dict[str, dict] = {}
        for timeline in self.epochs:
            for s in timeline.samples:
                agg = totals.get(s.stage)
                if agg is None:
                    agg = totals[s.stage] = {
                        "count": 0, "wall_seconds": 0.0,
                        "compute_seconds": 0.0, "comm_seconds": 0.0,
                        "bytes_sent": 0, "messages": 0,
                    }
                agg["count"] += 1
                agg["wall_seconds"] += s.wall_seconds
                agg["compute_seconds"] += s.max_compute_seconds
                agg["comm_seconds"] += s.comm_seconds
                agg["bytes_sent"] += s.bytes_sent
                agg["messages"] += s.messages
        return totals

    def total_wall_seconds(self) -> float:
        """Sum of epoch envelope wall times."""
        return sum(t.wall_seconds for t in self.epochs)

    def coverage(self) -> float:
        """Stage wall sum over epoch envelope sum (1.0 = airtight)."""
        total = self.total_wall_seconds()
        if total <= 0:
            return 0.0
        covered = sum(t.stage_wall_seconds for t in self.epochs)
        return covered / total

    def straggler_counts(self) -> dict[int, int]:
        """``worker -> number of stage barriers it bounded``."""
        counts: dict[int, int] = {}
        for timeline in self.epochs:
            for s in timeline.samples:
                if s.bottleneck_worker is not None:
                    counts[s.bottleneck_worker] = (
                        counts.get(s.bottleneck_worker, 0) + 1
                    )
        return counts

    def as_dict(self) -> dict:
        out = {
            "coverage": self.coverage(),
            "total_wall_seconds": self.total_wall_seconds(),
            "stage_totals": self.stage_totals(),
            "straggler_counts": {
                str(w): c for w, c in sorted(self.straggler_counts().items())
            },
            "epochs": [t.as_dict() for t in self.epochs],
        }
        if self.worker_pids:
            out["worker_pids"] = {
                str(w): pid for w, pid in self.worker_pids
            }
        return out


class _ActiveStage:
    """Context manager capturing one stage's runtime deltas."""

    __slots__ = ("_profiler", "_name", "_start", "_compute", "_machines")

    def __init__(self, profiler: "StageProfiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self):
        prof = self._profiler
        self._compute = prof._compute_snapshot()
        self._machines = prof._machine_snapshot()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        wall = time.perf_counter() - self._start
        self._profiler._finish_stage(
            self._name, wall, self._compute, self._machines
        )
        return False


class StageProfiler:
    """Collects :class:`StageSample` records around the engine stages.

    Driven by :class:`~repro.engine.core.TrainerCore`::

        profiler.begin_epoch(t, runtime)
        with profiler.stage("forward"):
            ...
        profiler.end_epoch(breakdown)

    The runtime handle is only held between ``begin_epoch`` and
    ``end_epoch``; the profiler reads (never mutates) its per-worker
    compute accumulators and the traffic meter's per-machine epoch
    counters, so profiling cannot perturb the accounting it observes.
    """

    enabled = True

    def __init__(self):
        self._samples: list[StageSample] = []
        self._timelines: list[EpochTimeline] = []
        self._runtime = None
        self._epoch: int | None = None
        self._epoch_start = 0.0
        self._speeds: tuple[float, ...] = ()
        self._worker_pids: dict[int, int] = {}

    def set_worker_pids(self, pids: dict[int, int]) -> None:
        """Record worker -> OS pid (multiprocess execution); the latest
        mapping wins, so respawns after crashes update their slot."""
        self._worker_pids.update(pids)

    # ------------------------------------------------------------------
    # Epoch lifecycle
    # ------------------------------------------------------------------
    def begin_epoch(self, epoch: int, runtime) -> None:
        """Open one epoch envelope; ``runtime`` supplies the oracles."""
        self._runtime = runtime
        self._epoch = epoch
        self._samples = []
        spec = runtime.spec
        self._speeds = tuple(
            spec.speed_of(w) for w in range(spec.num_workers)
        )
        self._epoch_start = time.perf_counter()

    def stage(self, name: str) -> _ActiveStage:
        """Open one stage; use as ``with profiler.stage("forward"):``."""
        return _ActiveStage(self, name)

    def end_epoch(self, breakdown=None) -> None:
        """Close the epoch envelope and freeze its timeline."""
        if self._epoch is None:
            return
        wall = time.perf_counter() - self._epoch_start
        modelled = float(breakdown.total_seconds) if breakdown else 0.0
        self._timelines.append(EpochTimeline(
            epoch=self._epoch,
            wall_seconds=wall,
            modelled_seconds=modelled,
            samples=tuple(self._samples),
        ))
        self._samples = []
        self._epoch = None
        self._runtime = None

    # ------------------------------------------------------------------
    # Runtime snapshots
    # ------------------------------------------------------------------
    def _compute_snapshot(self):
        """Raw per-worker compute seconds (speed scaling happens once,
        on the delta, in :meth:`_finish_stage`)."""
        runtime = self._runtime
        if runtime is None:
            return None
        return runtime.compute_snapshot()

    def _machine_snapshot(self) -> tuple[tuple[int, int, int], ...]:
        runtime = self._runtime
        if runtime is None:
            return ()
        return tuple(
            runtime.meter.epoch_machine_bytes(machine)
            for machine in range(runtime.spec.num_machines)
        )

    def _finish_stage(
        self,
        name: str,
        wall: float,
        compute_before,
        machines_before: tuple[tuple[int, int, int], ...],
    ) -> None:
        if self._epoch is None:
            return
        compute_after = self._compute_snapshot()
        machines_after = self._machine_snapshot()

        if compute_after is None or compute_before is None:
            compute: tuple[float, ...] = ()
        else:
            compute = tuple(
                (after - before) / speed
                for after, before, speed in zip(
                    compute_after, compute_before, self._speeds
                )
            )
        bottleneck_worker = None
        if compute and max(compute) > 0.0:
            bottleneck_worker = max(range(len(compute)), key=compute.__getitem__)

        network = self._runtime.spec.network if self._runtime else None
        comm = 0.0
        bytes_sent = messages = 0
        bottleneck_machine = None
        for machine, (after, before) in enumerate(
            zip(machines_after, machines_before)
        ):
            sent = after[0] - before[0]
            received = after[1] - before[1]
            msgs = after[2] - before[2]
            bytes_sent += sent
            messages += msgs
            if network is None:
                continue
            busy = network.link_busy_seconds(sent, received, msgs)
            if busy > comm:
                comm = busy
                bottleneck_machine = machine
        # epoch_machine_bytes double-counts messages (sender + receiver
        # each see one); report wire messages, matching the meter.
        messages //= 2

        self._samples.append(StageSample(
            epoch=self._epoch,
            stage=name,
            wall_seconds=wall,
            compute_seconds=compute,
            comm_seconds=comm,
            bytes_sent=bytes_sent,
            messages=messages,
            bottleneck_worker=bottleneck_worker,
            bottleneck_machine=bottleneck_machine,
        ))

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def profile(self) -> StageProfile:
        """Freeze everything recorded so far."""
        return StageProfile(
            epochs=tuple(self._timelines),
            worker_pids=tuple(sorted(self._worker_pids.items())),
        )

    def reset(self) -> None:
        """Drop every recorded timeline (between independent runs)."""
        self._samples = []
        self._timelines = []
        self._runtime = None
        self._epoch = None
        self._worker_pids = {}


class _NullStage:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_STAGE = _NullStage()


class NullStageProfiler:
    """Disabled twin: every call is a no-op on shared objects."""

    enabled = False

    def begin_epoch(self, epoch: int, runtime) -> None:
        pass

    def stage(self, name: str) -> _NullStage:
        return _NULL_STAGE

    def end_epoch(self, breakdown=None) -> None:
        pass

    def set_worker_pids(self, pids: dict[int, int]) -> None:
        pass

    def profile(self) -> StageProfile:
        return StageProfile()

    def reset(self) -> None:
        """Nothing recorded, nothing to clear."""


NULL_PROFILER = NullStageProfiler()
