"""Unit tests for checkpointing."""

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec
from repro.core.checkpoint import (
    CheckpointError,
    load_checkpoint,
    restore_trainer,
    save_checkpoint,
)
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.trainer import ECGraphTrainer


def _trainer(graph, layers=2, seed=3):
    return ECGraphTrainer(
        graph, ModelConfig(num_layers=layers, hidden_dim=8),
        ClusterSpec(num_workers=2),
        ECGraphConfig(fp_mode="raw", bp_mode="raw", seed=seed),
    )


class TestRoundTrip:
    def test_params_and_metadata_preserved(self, small_graph, tmp_path):
        trainer = _trainer(small_graph)
        for t in range(5):
            trainer.run_epoch(t)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path, epoch=5, extra={"note": "unit"})
        state = load_checkpoint(path)
        assert state["epoch"] == 5
        assert state["extra"] == {"note": "unit"}
        assert state["model_config"] == trainer.model_config
        assert state["ec_config"] == trainer.config
        for name in trainer.servers.parameter_names():
            np.testing.assert_array_equal(
                state["params"][name], trainer.servers.get(name)
            )

    def test_restore_resumes_identically(self, small_graph, tmp_path):
        reference = _trainer(small_graph)
        for t in range(8):
            reference.run_epoch(t)

        first_half = _trainer(small_graph)
        for t in range(4):
            first_half.run_epoch(t)
        path = tmp_path / "mid.npz"
        save_checkpoint(first_half, path, epoch=4)

        resumed = _trainer(small_graph)
        epoch = restore_trainer(resumed, path)
        assert epoch == 4
        losses = [resumed.run_epoch(t).loss for t in range(4, 8)]
        # The optimizer state (Adam moments) is not checkpointed, so the
        # trajectory differs, but the restored parameters must be exactly
        # the mid-run ones: loss right after restore is close to the
        # reference run's epoch-4 loss.
        reference_loss = None
        probe = _trainer(small_graph)
        restore_trainer(probe, path)
        reference_loss = probe.run_epoch(4).loss
        assert losses[0] == pytest.approx(reference_loss)

    def test_creates_parent_dirs(self, small_graph, tmp_path):
        trainer = _trainer(small_graph)
        trainer.run_epoch(0)
        path = tmp_path / "deep" / "dir" / "c.npz"
        save_checkpoint(trainer, path, epoch=1)
        assert path.exists()


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "missing.npz")

    def test_architecture_mismatch_rejected(self, small_graph, tmp_path):
        trainer = _trainer(small_graph, layers=2)
        trainer.run_epoch(0)
        path = tmp_path / "l2.npz"
        save_checkpoint(trainer, path, epoch=1)
        other = _trainer(small_graph, layers=3)
        with pytest.raises(ValueError, match="model config"):
            restore_trainer(other, path)

    def test_bad_version_rejected(self, small_graph, tmp_path):
        trainer = _trainer(small_graph)
        trainer.run_epoch(0)
        path = tmp_path / "v.npz"
        save_checkpoint(trainer, path, epoch=1)
        with np.load(path) as archive:
            payload = {k: archive[k] for k in archive.files}
        payload["format_version"] = np.int64(42)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)

    def test_truncated_file_raises_checkpoint_error(
        self, small_graph, tmp_path
    ):
        trainer = _trainer(small_graph)
        trainer.run_epoch(0)
        path = tmp_path / "trunc.npz"
        save_checkpoint(trainer, path, epoch=1)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError, match=str(path)):
            load_checkpoint(path)

    def test_garbage_file_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(CheckpointError, match=str(path)):
            load_checkpoint(path)

    def test_missing_entries_raise_checkpoint_error(
        self, small_graph, tmp_path
    ):
        trainer = _trainer(small_graph)
        trainer.run_epoch(0)
        path = tmp_path / "partial.npz"
        save_checkpoint(trainer, path, epoch=1)
        with np.load(path) as archive:
            payload = {
                k: archive[k] for k in archive.files if k != "param_names"
            }
        np.savez_compressed(path, **payload)
        with pytest.raises(CheckpointError, match=str(path)):
            load_checkpoint(path)

    def test_checkpoint_error_is_a_value_error(self):
        assert issubclass(CheckpointError, ValueError)


class TestAtomicSave:
    def test_failed_save_preserves_previous_checkpoint(
        self, small_graph, tmp_path, monkeypatch
    ):
        trainer = _trainer(small_graph)
        trainer.run_epoch(0)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path, epoch=1)
        before = path.read_bytes()

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", boom)
        with pytest.raises(OSError, match="disk full"):
            save_checkpoint(trainer, path, epoch=2)
        # The old checkpoint survives byte-for-byte; no temp litter.
        assert path.read_bytes() == before
        assert list(tmp_path.iterdir()) == [path]
        assert load_checkpoint(path)["epoch"] == 1

    def test_no_temp_files_left_on_success(self, small_graph, tmp_path):
        trainer = _trainer(small_graph)
        trainer.run_epoch(0)
        path = tmp_path / "clean.npz"
        save_checkpoint(trainer, path, epoch=1)
        assert list(tmp_path.iterdir()) == [path]
