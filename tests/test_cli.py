"""Unit tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.system == "ecgraph"
        assert args.dataset == "cora"
        assert args.workers == 6

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--system", "spark"])

    def test_profile_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--profile", "huge", "datasets"])

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.scenario == "mixed"
        assert args.max_accuracy_gap == pytest.approx(0.02)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "meteor-strike"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["--profile", "tiny", "datasets"]) == 0
        out = capsys.readouterr().out
        assert "cora" in out and "ogbn-papers" in out
        assert "111,059,956" in out  # paper statistics shown

    def test_train(self, capsys):
        code = main([
            "--profile", "tiny", "train", "--dataset", "cora",
            "--workers", "2", "--epochs", "5", "--hidden", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best acc" in out

    def test_compare(self, capsys):
        code = main([
            "--profile", "tiny", "compare", "--dataset", "cora",
            "--systems", "ecgraph", "noncp",
            "--workers", "2", "--epochs", "5", "--hidden", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ecgraph" in out and "noncp" in out

    def test_partition(self, capsys):
        code = main([
            "--profile", "tiny", "partition", "--dataset", "cora",
            "--workers", "3", "--methods", "hash", "metis",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "edge-cut" in out

    def test_trace_smoke(self, capsys, tmp_path):
        import json

        code = main(["trace", "--smoke", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Telemetry: wall time by phase" in out
        assert "Compression health" in out
        doc = json.loads((tmp_path / "trace.json").read_text())
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert events
        for event in events:
            assert {"name", "ph", "ts", "dur"} <= event.keys()
        report = json.loads((tmp_path / "telemetry.json").read_text())
        assert report["metrics"]["scope"] == "total"
        assert (tmp_path / "spans.jsonl").exists()

    def test_chaos_smoke(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "chaos.json"
        code = main([
            "chaos", "--smoke", "--workers", "2",
            "--json-out", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "survived" in out
        assert "Faults injected" in out
        report = json.loads(out_path.read_text())
        assert report["survived"] is True
        assert report["completed_epochs"] == report["scheduled_epochs"]
        assert report["counters"]["crashes"] == 1


class TestOperationalErrors:
    def test_invalid_config_value_one_line_error(self, capsys):
        code = main([
            "--profile", "tiny", "train", "--dataset", "cora",
            "--workers", "2", "--epochs", "2", "--layers", "0",
        ])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_missing_path_one_line_error(self, capsys, tmp_path, monkeypatch):
        # A missing dataset/checkpoint path surfaces as FileNotFoundError
        # from inside a command; main() must turn it into one line.
        import repro.__main__ as cli

        def explode(*args, **kwargs):
            raise FileNotFoundError(
                f"checkpoint not found: {tmp_path / 'nope.npz'}"
            )

        monkeypatch.setattr(cli, "load_dataset", explode)
        code = cli.main(["--profile", "tiny", "train", "--epochs", "1"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: checkpoint not found")
        assert "Traceback" not in err
