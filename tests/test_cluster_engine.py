"""Unit tests for the cluster runtime's epoch accounting."""

import time

import pytest

from repro.cluster.engine import ClusterRuntime
from repro.cluster.network import NetworkModel
from repro.cluster.topology import ClusterSpec


def _runtime(workers=3, bandwidth=100.0, latency=0.0, speed=1.0):
    spec = ClusterSpec(
        num_workers=workers,
        network=NetworkModel(bandwidth_bytes_per_s=bandwidth,
                             latency_s=latency),
        compute_speed=speed,
    )
    return ClusterRuntime(spec)


class TestComputeAccounting:
    def test_epoch_compute_is_max_over_workers(self):
        runtime = _runtime()
        runtime.add_compute(0, 0.5)
        runtime.add_compute(1, 2.0)
        runtime.add_compute(2, 1.0)
        breakdown = runtime.end_epoch()
        assert breakdown.compute_seconds == pytest.approx(2.0)

    def test_compute_speed_scales(self):
        runtime = _runtime(speed=4.0)
        runtime.add_compute(0, 2.0)
        assert runtime.end_epoch().compute_seconds == pytest.approx(0.5)

    def test_context_manager_measures(self):
        runtime = _runtime()
        with runtime.worker_compute(1):
            time.sleep(0.01)
        breakdown = runtime.end_epoch()
        assert breakdown.compute_seconds >= 0.009

    def test_negative_compute_rejected(self):
        runtime = _runtime()
        with pytest.raises(ValueError):
            runtime.add_compute(0, -1.0)

    def test_epoch_resets_compute(self):
        runtime = _runtime()
        runtime.add_compute(0, 1.0)
        runtime.end_epoch()
        assert runtime.end_epoch().compute_seconds == 0.0


class TestCommAccounting:
    def test_worker_to_worker_charges_bytes(self):
        runtime = _runtime(bandwidth=100.0)
        runtime.send_worker_to_worker(0, 1, 500, "fp_embeddings")
        breakdown = runtime.end_epoch()
        assert breakdown.bytes_sent == 500
        assert breakdown.comm_seconds == pytest.approx(5.0)

    def test_same_machine_workers_free(self):
        spec = ClusterSpec(
            num_workers=4,
            workers_per_machine=2,
            network=NetworkModel(bandwidth_bytes_per_s=100.0, latency_s=0),
        )
        runtime = ClusterRuntime(spec)
        runtime.send_worker_to_worker(0, 1, 10_000, "x")  # same machine
        assert runtime.end_epoch().bytes_sent == 0

    def test_server_traffic(self):
        runtime = _runtime()
        runtime.send_worker_to_server(1, 0, 100, "param_push")  # w1->m0
        runtime.send_server_to_worker(0, 2, 100, "param_pull")  # m0->w2
        breakdown = runtime.end_epoch()
        assert breakdown.bytes_sent == 200
        assert breakdown.category_bytes == {
            "param_push": 100,
            "param_pull": 100,
        }

    def test_colocated_server_free(self):
        runtime = _runtime()
        runtime.send_worker_to_server(0, 0, 100, "param_push")  # both m0
        assert runtime.end_epoch().bytes_sent == 0


class TestEpochLifecycle:
    def test_total_is_compute_plus_comm(self):
        runtime = _runtime(bandwidth=100.0)
        runtime.add_compute(0, 1.0)
        runtime.send_worker_to_worker(0, 1, 100, "x")
        breakdown = runtime.end_epoch()
        assert breakdown.total_seconds == pytest.approx(
            breakdown.compute_seconds + breakdown.comm_seconds
        )

    def test_overlap_mode_takes_max(self):
        spec = ClusterSpec(
            num_workers=2,
            network=NetworkModel(bandwidth_bytes_per_s=100.0, latency_s=0),
            overlap_comm=True,
        )
        runtime = ClusterRuntime(spec)
        runtime.add_compute(0, 1.0)
        runtime.send_worker_to_worker(0, 1, 500, "x")  # 5 s of comm
        breakdown = runtime.end_epoch()
        assert breakdown.total_seconds == pytest.approx(5.0)

    def test_history_accumulates(self):
        runtime = _runtime()
        runtime.add_compute(0, 1.0)
        runtime.end_epoch()
        runtime.add_compute(0, 2.0)
        runtime.end_epoch()
        assert len(runtime.epoch_history) == 2
        assert runtime.total_seconds() == pytest.approx(3.0)
