"""Unit tests for run export (CSV / JSON)."""

import csv

import pytest

from repro.analysis.export import export_csv, export_json, load_json, run_to_records
from repro.cluster.engine import EpochBreakdown
from repro.core.results import ConvergenceRun, EpochResult


def _run(name="r", epochs=3):
    run = ConvergenceRun(name=name, preprocessing_seconds=0.1,
                         meta={"dataset": "unit"})
    for i in range(epochs):
        run.epochs.append(EpochResult(
            epoch=i, loss=1.0 / (i + 1), train_accuracy=0.5,
            val_accuracy=0.6, test_accuracy=0.7,
            breakdown=EpochBreakdown(0.01, 0.02, 0.03, 100, {"x": 100}),
        ))
    run.final_test_accuracy = 0.7
    return run


class TestRecords:
    def test_one_record_per_epoch(self):
        records = run_to_records(_run(epochs=4))
        assert len(records) == 4
        assert records[0]["run"] == "r"
        assert records[2]["loss"] == pytest.approx(1 / 3)


class TestCSV:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "runs.csv"
        export_csv([_run("a"), _run("b", epochs=2)], path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 5
        assert {row["run"] for row in rows} == {"a", "b"}
        assert float(rows[0]["total_seconds"]) == pytest.approx(0.03)

    def test_creates_dirs(self, tmp_path):
        export_csv([_run()], tmp_path / "deep" / "runs.csv")
        assert (tmp_path / "deep" / "runs.csv").exists()


class TestJSON:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "runs.json"
        export_json([_run("a")], path)
        document = load_json(path)
        assert document[0]["name"] == "a"
        assert document[0]["meta"] == {"dataset": "unit"}
        assert document[0]["final_test_accuracy"] == 0.7
        assert len(document[0]["epochs"]) == 3
        assert document[0]["total_bytes"] == 300

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_json(tmp_path / "missing.json")


class TestRealRunExport:
    def test_export_real_training_run(self, small_graph, tmp_path):
        from repro import train_ecgraph

        run = train_ecgraph(small_graph, num_workers=2, num_epochs=3,
                            hidden_dim=4)
        export_json([run], tmp_path / "real.json")
        document = load_json(tmp_path / "real.json")
        assert len(document[0]["epochs"]) == 3
