"""Simulated CPU-cluster runtime: topology, network/traffic model,
compute accounting, parameter servers and a shared store.

See DESIGN.md section 2 for how this substitutes the paper's physical
clusters while preserving the quantities the evaluation depends on.
"""

from repro.cluster.engine import ClusterRuntime, EpochBreakdown
from repro.cluster.network import GIGABIT, NetworkModel, TrafficMeter
from repro.cluster.nfs import SharedStore
from repro.cluster.param_server import ParameterServerGroup, Shard, range_shards
from repro.cluster.topology import ClusterSpec

__all__ = [
    "ClusterRuntime",
    "EpochBreakdown",
    "GIGABIT",
    "NetworkModel",
    "TrafficMeter",
    "SharedStore",
    "ParameterServerGroup",
    "Shard",
    "range_shards",
    "ClusterSpec",
]
