"""Unit tests for the metrics registry: labels, scopes, disabled mode."""

import json

import pytest

from repro.obs.export import (
    metrics_to_prometheus,
    write_metrics_jsonl,
    write_prometheus,
)
from repro.obs.registry import HistogramStat, MetricsRegistry


class TestLabels:
    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.inc("bytes", 10, category="fp", worker=1)
        reg.inc("bytes", 5, worker=1, category="fp")
        snap = reg.snapshot()
        assert snap.counter("bytes", category="fp", worker=1) == 10 + 5

    def test_distinct_labels_distinct_series(self):
        reg = MetricsRegistry()
        reg.inc("bytes", 10, category="fp")
        reg.inc("bytes", 20, category="bp")
        snap = reg.snapshot()
        assert snap.counter("bytes", category="fp") == 10
        assert snap.counter("bytes", category="bp") == 20
        assert snap.counter_total("bytes") == 30

    def test_label_values_stringified(self):
        reg = MetricsRegistry()
        reg.inc("x", 1, worker=3)
        assert reg.snapshot().counter("x", worker="3") == 1

    def test_counters_by_label(self):
        reg = MetricsRegistry()
        reg.inc("bytes", 10, category="fp")
        reg.inc("bytes", 20, category="bp")
        reg.inc("other", 99, category="fp")
        snap = reg.snapshot()
        assert snap.counters_by_label("bytes", "category") == {
            "fp": 10, "bp": 20,
        }

    def test_unknown_counter_reads_zero(self):
        snap = MetricsRegistry().snapshot()
        assert snap.counter("nope") == 0.0
        assert snap.gauge("nope") is None

    def test_rendered_keys_in_as_dict(self):
        reg = MetricsRegistry()
        reg.inc("bytes", 7, category="fp")
        reg.set_gauge("loss", 1.5)
        rendered = reg.snapshot().as_dict()
        assert rendered["counters"] == {"bytes{category=fp}": 7}
        assert rendered["gauges"] == {"loss": 1.5}


class TestScopes:
    def test_epoch_reset_keeps_lifetime(self):
        reg = MetricsRegistry()
        reg.inc("bytes", 100)
        epoch0 = reg.reset_epoch()
        reg.inc("bytes", 50)
        epoch1 = reg.reset_epoch()
        assert epoch0.counter("bytes") == 100
        assert epoch1.counter("bytes") == 50
        assert reg.snapshot("total").counter("bytes") == 150

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.inc("bytes", 1)
        snap = reg.snapshot()
        reg.inc("bytes", 1)
        assert snap.counter("bytes") == 1

    def test_invalid_scope_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().snapshot("decade")

    def test_gauges_are_instantaneous(self):
        reg = MetricsRegistry()
        reg.set_gauge("loss", 2.0)
        reg.set_gauge("loss", 1.0)
        reg.reset_epoch()
        # Gauges survive the epoch reset: they are not accumulations.
        assert reg.snapshot().gauge("loss") == 1.0

    def test_full_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.inc("bytes", 9)
        reg.set_gauge("loss", 1.0)
        reg.observe("sizes", 4.0)
        reg.reset()
        snap = reg.snapshot()
        assert not snap.counters and not snap.gauges and not snap.histograms


class TestHistograms:
    def test_summary_stats(self):
        reg = MetricsRegistry()
        for v in (1.0, 5.0, 3.0):
            reg.observe("sizes", v, category="fp")
        count, total, lo, hi = reg.snapshot().histograms[
            ("sizes", (("category", "fp"),))
        ]
        assert (count, total, lo, hi) == (3, 9.0, 1.0, 5.0)

    def test_histogram_epoch_scope_resets(self):
        reg = MetricsRegistry()
        reg.observe("sizes", 2.0)
        reg.reset_epoch()
        reg.observe("sizes", 4.0)
        epoch = reg.snapshot("epoch")
        total = reg.snapshot("total")
        assert epoch.histograms[("sizes", ())][0] == 1
        assert total.histograms[("sizes", ())][0] == 2

    def test_stat_mean(self):
        stat = HistogramStat()
        assert stat.mean == 0.0
        stat.observe(2.0)
        stat.observe(4.0)
        assert stat.mean == pytest.approx(3.0)


class TestDisabled:
    def test_updates_are_no_ops(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("bytes", 100)
        reg.set_gauge("loss", 1.0)
        reg.observe("sizes", 4.0)
        snap = reg.snapshot()
        assert not snap.counters and not snap.gauges and not snap.histograms


class TestDeterministicRendering:
    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.inc("comm_bytes", 100, category="fp_embeddings")
        reg.inc("comm_bytes", 40, category="bp_gradients")
        reg.inc("epochs_completed")
        reg.set_gauge("epoch_total_seconds", 0.25)
        reg.observe("epoch_seconds", 0.25)
        reg.observe("epoch_seconds", 0.35)
        return reg

    def test_as_dict_keys_are_sorted(self):
        rendered = self._populated().snapshot().as_dict()
        for section in ("counters", "gauges", "histograms"):
            keys = list(rendered[section])
            assert keys == sorted(keys)

    def test_as_dict_is_stable_across_insertion_order(self):
        forward = self._populated().snapshot().as_dict()
        reg = MetricsRegistry()
        reg.observe("epoch_seconds", 0.25)
        reg.observe("epoch_seconds", 0.35)
        reg.set_gauge("epoch_total_seconds", 0.25)
        reg.inc("epochs_completed")
        reg.inc("comm_bytes", 40, category="bp_gradients")
        reg.inc("comm_bytes", 100, category="fp_embeddings")
        assert reg.snapshot().as_dict() == forward
        assert json.dumps(reg.snapshot().as_dict(), sort_keys=True) == \
            json.dumps(forward, sort_keys=True)


class TestPrometheusExport:
    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.inc("comm_bytes", 100, category="fp_embeddings")
        reg.set_gauge("epoch_total_seconds", 0.25)
        reg.observe("epoch_seconds", 0.25)
        reg.observe("epoch_seconds", 0.35)
        return reg

    def test_families_typed_and_prefixed(self):
        text = metrics_to_prometheus(self._populated().snapshot())
        assert "# TYPE ecgraph_comm_bytes counter" in text
        assert "# TYPE ecgraph_epoch_total_seconds gauge" in text
        assert "# TYPE ecgraph_epoch_seconds summary" in text
        assert 'ecgraph_comm_bytes{category="fp_embeddings"} 100' in text

    def test_histograms_become_summaries(self):
        text = metrics_to_prometheus(self._populated().snapshot())
        assert "ecgraph_epoch_seconds_count 2" in text
        assert "ecgraph_epoch_seconds_sum 0.6" in text
        assert "ecgraph_epoch_seconds_min 0.25" in text
        assert "ecgraph_epoch_seconds_max 0.35" in text

    def test_rendering_is_deterministic(self):
        a = metrics_to_prometheus(self._populated().snapshot())
        b = metrics_to_prometheus(self._populated().snapshot())
        assert a == b

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.inc("x", 1, path='a"b\\c')
        text = metrics_to_prometheus(reg.snapshot())
        assert 'ecgraph_x{path="a\\"b\\\\c"} 1' in text

    def test_empty_snapshot_renders_empty(self):
        assert metrics_to_prometheus(MetricsRegistry().snapshot()) == ""

    def test_write_prometheus(self, tmp_path):
        path = write_prometheus(
            self._populated().snapshot(), tmp_path / "m" / "metrics.prom"
        )
        assert path.read_text().endswith("\n")
        assert "# TYPE" in path.read_text()


class TestMetricsJsonl:
    def test_one_object_per_snapshot(self, tmp_path):
        reg = MetricsRegistry()
        snaps = []
        for epoch in range(3):
            reg.inc("comm_bytes", 10 * (epoch + 1))
            snaps.append(reg.reset_epoch())
        path = write_metrics_jsonl(snaps, tmp_path / "metrics.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        records = [json.loads(line) for line in lines]
        assert [r["counters"]["comm_bytes"] for r in records] == [10, 20, 30]

    def test_empty_sequence(self, tmp_path):
        path = write_metrics_jsonl([], tmp_path / "metrics.jsonl")
        assert path.read_text() == ""
