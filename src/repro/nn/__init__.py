"""Dense neural-network substrate: initializers, activations, losses,
optimizers, metrics and learning-rate schedules.

This package replaces the PyTorch computation backend of the original
EC-Graph implementation with plain numpy (see DESIGN.md section 2).
"""

from repro.nn.activations import ACTIVATION_NAMES, Activation, get_activation
from repro.nn.init import get_initializer, glorot_uniform
from repro.nn.losses import LossResult, log_softmax, softmax, softmax_cross_entropy
from repro.nn.metrics import accuracy, macro_f1, micro_f1
from repro.nn.optim import (
    OPTIMIZER_NAMES,
    SGD,
    Adam,
    AdaGrad,
    Momentum,
    Optimizer,
    make_optimizer,
)

__all__ = [
    "ACTIVATION_NAMES",
    "OPTIMIZER_NAMES",
    "Activation",
    "get_activation",
    "get_initializer",
    "glorot_uniform",
    "LossResult",
    "log_softmax",
    "softmax",
    "softmax_cross_entropy",
    "accuracy",
    "macro_f1",
    "micro_f1",
    "SGD",
    "Adam",
    "AdaGrad",
    "Momentum",
    "Optimizer",
    "make_optimizer",
]
