"""Per-channel traffic ledger for the halo transport.

Every halo exchange moves one message per planned (responder,
requester) channel; the :class:`~repro.cluster.network.TrafficMeter`
aggregates those into per-machine and per-category totals, which is
what the epoch model needs — but it cannot answer *which channel* the
bytes belong to, which is exactly the view per-channel bit-width
tuning (AdaQP-style) and straggler debugging need.

The :class:`ChannelLedger` keeps one :class:`ChannelRecord` per
``(responder, consumer, layer, direction)`` channel: wire bytes split
into metered (inter-machine, what the TrafficMeter charges) and local
(co-located, free) bytes, delivery attempts (frames), retries,
degradations by kind, and enough element counts to compute the
channel's *effective bit-width* — bits that actually crossed the wire
per payload element, headers included.

Reconciliation contract: the sum of ``metered_bytes`` over a
direction's channels equals the TrafficMeter's category total for that
direction **exactly** (``fp`` ↔ ``fp_embeddings``, ``bp`` ↔
``bp_gradients``), because the ledger records the same charges the
transport hands the meter, including retransmissions.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ChannelRecord",
    "LedgerSnapshot",
    "ChannelLedger",
    "NullChannelLedger",
    "NULL_LEDGER",
    "direction_of_category",
]

# TrafficMeter categories <-> ledger directions (paper Fig. 6 labels).
_CATEGORY_DIRECTIONS = {"fp_embeddings": "fp", "bp_gradients": "bp"}

LedgerKey = tuple[int, int, int, str]  # (responder, consumer, layer, direction)


def direction_of_category(category: str) -> str:
    """Ledger direction for a traffic-meter category (identity for
    categories outside the fp/bp halo directions, e.g. ``eval``)."""
    return _CATEGORY_DIRECTIONS.get(category, category)


@dataclass
class ChannelRecord:
    """Running totals for one (responder, consumer, layer, direction)."""

    metered_bytes: int = 0
    local_bytes: int = 0
    frames: int = 0
    retries: int = 0
    retry_bytes: int = 0
    rows: int = 0
    elements: int = 0
    degraded_predicted: int = 0
    degraded_cached: int = 0
    degraded_zero: int = 0

    @property
    def wire_bytes(self) -> int:
        """All bytes serialized for this channel, metered or local."""
        return self.metered_bytes + self.local_bytes

    @property
    def degraded(self) -> int:
        return (
            self.degraded_predicted + self.degraded_cached + self.degraded_zero
        )

    @property
    def effective_bits(self) -> float:
        """Wire bits per payload element (headers and retries included)."""
        if not self.elements:
            return 0.0
        return 8.0 * self.wire_bytes / self.elements

    def as_dict(self) -> dict:
        return {
            "metered_bytes": self.metered_bytes,
            "local_bytes": self.local_bytes,
            "wire_bytes": self.wire_bytes,
            "frames": self.frames,
            "retries": self.retries,
            "retry_bytes": self.retry_bytes,
            "rows": self.rows,
            "elements": self.elements,
            "degraded_predicted": self.degraded_predicted,
            "degraded_cached": self.degraded_cached,
            "degraded_zero": self.degraded_zero,
            "effective_bits": self.effective_bits,
        }


@dataclass(frozen=True)
class LedgerSnapshot:
    """Immutable copy of the ledger, channels in sorted key order.

    ``events`` is the elastic-membership/watchdog timeline — one dict
    per transition (``worker_lost``, ``partition_adopted``,
    ``worker_rejoined``, ``watchdog_trip``, ...) in the deterministic
    order the engine recorded them.
    """

    channels: tuple[tuple[LedgerKey, ChannelRecord], ...] = ()
    events: tuple[dict, ...] = ()

    def direction_bytes(self, direction: str) -> int:
        """Metered bytes over all of one direction's channels — the
        quantity that reconciles against the TrafficMeter category."""
        return sum(
            record.metered_bytes
            for (_, _, _, d), record in self.channels
            if d == direction
        )

    def direction_totals(self) -> dict[str, dict]:
        """``direction -> aggregate record fields`` over its channels."""
        out: dict[str, dict] = {}
        for (_, _, _, direction), record in self.channels:
            agg = out.get(direction)
            if agg is None:
                agg = out[direction] = {
                    "metered_bytes": 0, "local_bytes": 0, "frames": 0,
                    "retries": 0, "retry_bytes": 0, "rows": 0,
                    "elements": 0, "degraded": 0, "channels": 0,
                }
            agg["metered_bytes"] += record.metered_bytes
            agg["local_bytes"] += record.local_bytes
            agg["frames"] += record.frames
            agg["retries"] += record.retries
            agg["retry_bytes"] += record.retry_bytes
            agg["rows"] += record.rows
            agg["elements"] += record.elements
            agg["degraded"] += record.degraded
            agg["channels"] += 1
        return out

    def top_channels(self, n: int = 20) -> list[tuple[LedgerKey, ChannelRecord]]:
        """The ``n`` heaviest channels by wire bytes, descending; ties
        broken by key so the waterfall is deterministic."""
        ranked = sorted(
            self.channels, key=lambda item: (-item[1].wire_bytes, item[0])
        )
        return ranked[:n]

    def as_dict(self) -> dict:
        return {
            "channels": {
                f"{responder}->{consumer}/L{layer}/{direction}":
                    record.as_dict()
                for (responder, consumer, layer, direction), record
                in self.channels
            },
            "directions": self.direction_totals(),
            "events": [dict(event) for event in self.events],
        }


class ChannelLedger:
    """Accumulates per-channel traffic records (hot path: dict updates)."""

    enabled = True

    def __init__(self):
        self._records: dict[LedgerKey, ChannelRecord] = {}
        self._events: list[dict] = []

    def _record(self, key, direction: str) -> ChannelRecord:
        ledger_key = (key.responder, key.requester, key.layer, direction)
        record = self._records.get(ledger_key)
        if record is None:
            record = self._records[ledger_key] = ChannelRecord()
        return record

    # ------------------------------------------------------------------
    # Hooks (called by HaloTransport)
    # ------------------------------------------------------------------
    def record_frame(
        self,
        key,
        category: str,
        nbytes: int,
        metered: bool,
        retry: bool = False,
    ) -> None:
        """One delivery attempt of one channel message.

        ``metered`` mirrors the TrafficMeter's intra-machine exemption:
        only inter-machine frames count toward ``metered_bytes``.
        """
        record = self._record(key, direction_of_category(category))
        record.frames += 1
        if metered:
            record.metered_bytes += nbytes
        else:
            record.local_bytes += nbytes
        if retry:
            record.retries += 1
            record.retry_bytes += nbytes

    def record_rows(
        self, key, category: str, rows: int, elements: int
    ) -> None:
        """Payload shape of one successfully decoded message."""
        record = self._record(key, direction_of_category(category))
        record.rows += rows
        record.elements += elements

    def record_degraded(self, key, category: str, kind: str) -> None:
        """A channel fell back to ``kind`` (predicted/cached/zero)."""
        record = self._record(key, direction_of_category(category))
        if kind == "predicted":
            record.degraded_predicted += 1
        elif kind == "cached":
            record.degraded_cached += 1
        else:
            record.degraded_zero += 1

    def record_event(self, kind: str, epoch: int, **labels) -> None:
        """One membership/watchdog transition (kept in arrival order —
        the engine processes transitions deterministically, so the
        timeline is reproducible run to run)."""
        self._events.append({"kind": kind, "epoch": epoch, **labels})

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def direction_bytes(self, direction: str) -> int:
        return sum(
            record.metered_bytes
            for (_, _, _, d), record in self._records.items()
            if d == direction
        )

    def snapshot(self) -> LedgerSnapshot:
        """Freeze the ledger (records are copied, keys sorted)."""
        return LedgerSnapshot(
            channels=tuple(
                (ledger_key, ChannelRecord(**vars(record)))
                for ledger_key, record in sorted(self._records.items())
            ),
            events=tuple(dict(event) for event in self._events),
        )

    def reset(self) -> None:
        """Drop every record (between independent runs)."""
        self._records.clear()
        self._events.clear()


class NullChannelLedger:
    """Disabled twin: every hook returns immediately."""

    enabled = False

    def record_frame(self, key, category, nbytes, metered, retry=False):
        pass

    def record_rows(self, key, category, rows, elements):
        pass

    def record_degraded(self, key, category, kind):
        pass

    def record_event(self, kind, epoch, **labels):
        pass

    def direction_bytes(self, direction: str) -> int:
        return 0

    def snapshot(self) -> LedgerSnapshot:
        return LedgerSnapshot()

    def reset(self) -> None:
        """Nothing recorded, nothing to clear."""


NULL_LEDGER = NullChannelLedger()
