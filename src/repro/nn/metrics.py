"""Classification metrics used in the evaluation (Table V reports accuracy)."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "confusion_matrix", "f1_scores", "micro_f1", "macro_f1"]


def accuracy(
    predictions: np.ndarray,
    labels: np.ndarray,
    mask: np.ndarray | None = None,
) -> float:
    """Fraction of masked vertices whose prediction matches the label."""
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs labels {labels.shape}"
        )
    if mask is not None:
        predictions = predictions[mask]
        labels = labels[mask]
    if predictions.size == 0:
        return 0.0
    return float((predictions == labels).mean())


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """``(num_classes, num_classes)`` matrix; rows are true classes."""
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def f1_scores(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """Per-class F1 scores. Classes absent from both sides score 0."""
    cm = confusion_matrix(predictions, labels, num_classes)
    tp = np.diag(cm).astype(np.float64)
    fp = cm.sum(axis=0) - tp
    fn = cm.sum(axis=1) - tp
    denom = 2 * tp + fp + fn
    with np.errstate(divide="ignore", invalid="ignore"):
        f1 = np.where(denom > 0, 2 * tp / denom, 0.0)
    return f1


def micro_f1(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> float:
    """Micro-averaged F1; equals accuracy for single-label classification."""
    cm = confusion_matrix(predictions, labels, num_classes)
    tp = np.diag(cm).sum()
    total = cm.sum()
    return float(tp / total) if total else 0.0


def macro_f1(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> float:
    """Macro-averaged F1 (unweighted mean of per-class F1)."""
    return float(f1_scores(predictions, labels, num_classes).mean())
