"""Unit tests for softmax cross-entropy and its gradient."""

import numpy as np
import pytest

from repro.nn.losses import log_softmax, softmax, softmax_cross_entropy


class TestSoftmax:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        z = rng.standard_normal((10, 5))
        np.testing.assert_allclose(softmax(z).sum(axis=1), 1.0, atol=1e-6)

    def test_shift_invariance(self):
        z = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(z), softmax(z + 100.0), atol=1e-6)

    def test_large_logits_stable(self):
        z = np.array([[1e4, -1e4, 0.0]])
        s = softmax(z)
        assert np.isfinite(s).all()
        assert s[0, 0] == pytest.approx(1.0)

    def test_log_softmax_consistent(self):
        rng = np.random.default_rng(1)
        z = rng.standard_normal((6, 4))
        np.testing.assert_allclose(
            np.exp(log_softmax(z)), softmax(z), atol=1e-6
        )


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.eye(3) * 50.0
        labels = np.arange(3)
        result = softmax_cross_entropy(logits, labels)
        assert result.loss < 1e-6
        assert result.accuracy == 1.0

    def test_uniform_prediction_loss_is_log_k(self):
        logits = np.zeros((4, 5))
        labels = np.zeros(4, dtype=np.int64)
        result = softmax_cross_entropy(logits, labels)
        assert result.loss == pytest.approx(np.log(5), abs=1e-5)

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(2)
        logits = rng.standard_normal((6, 4)).astype(np.float64)
        labels = rng.integers(0, 4, size=6)
        result = softmax_cross_entropy(logits, labels)
        eps = 1e-5
        for i in range(6):
            for j in range(4):
                bumped = logits.copy()
                bumped[i, j] += eps
                up = softmax_cross_entropy(bumped, labels).loss
                bumped[i, j] -= 2 * eps
                down = softmax_cross_entropy(bumped, labels).loss
                numeric = (up - down) / (2 * eps)
                assert result.grad[i, j] == pytest.approx(numeric, abs=1e-4)

    def test_mask_zeroes_excluded_rows(self):
        rng = np.random.default_rng(3)
        logits = rng.standard_normal((5, 3))
        labels = rng.integers(0, 3, size=5)
        mask = np.array([True, False, True, False, False])
        result = softmax_cross_entropy(logits, labels, mask)
        assert result.count == 2
        assert not result.grad[~mask].any()

    def test_masked_labels_may_be_invalid(self):
        logits = np.zeros((3, 2))
        labels = np.array([0, -1, 1])  # -1 outside mask
        mask = np.array([True, False, True])
        result = softmax_cross_entropy(logits, labels, mask)
        assert np.isfinite(result.loss)

    def test_empty_mask(self):
        logits = np.zeros((3, 2))
        labels = np.zeros(3, dtype=np.int64)
        result = softmax_cross_entropy(logits, labels, np.zeros(3, dtype=bool))
        assert result.loss == 0.0
        assert result.count == 0
        assert result.accuracy == 0.0

    def test_gradient_rows_sum_to_zero(self):
        # d(sum_k CE)/dz sums to zero per row: softmax minus one-hot.
        rng = np.random.default_rng(4)
        logits = rng.standard_normal((7, 5))
        labels = rng.integers(0, 5, size=7)
        result = softmax_cross_entropy(logits, labels)
        np.testing.assert_allclose(result.grad.sum(axis=1), 0.0, atol=1e-6)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((3, 2)), np.zeros(4, dtype=np.int64))

    def test_1d_logits_rejected(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros(3), np.zeros(3, dtype=np.int64))

    def test_bad_mask_shape_rejected(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(
                np.zeros((3, 2)),
                np.zeros(3, dtype=np.int64),
                np.zeros(4, dtype=bool),
            )
