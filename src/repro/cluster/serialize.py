"""Binary wire format for every message the cluster exchanges.

The traffic meter charges sizes that the codecs *compute*; this module
provides the actual serialization (the stand-in for the original
system's protobuf layer) so those computed sizes can be validated
against real encoded bytes — tests assert the two agree. It also makes
the simulator honest about framing overhead: every frame carries a
16-byte header (magic, kind, flags, payload length).

Supported payload kinds:

* ``RAW``      — float32 matrix,
* ``QUANT``    — bucket-quantized matrix (packed ids + table or bounds),
* ``EXACT``    — ReqEC-FP trend message (rows + changing-rate matrix),
* ``SELECTOR`` — ReqEC-FP selector message (2-bit selector + quantized
  subset + proportion).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compression.quantization import QuantizedMatrix

__all__ = [
    "HEADER_BYTES",
    "encode_raw",
    "decode_raw",
    "encode_quantized",
    "decode_quantized",
    "encode_exact",
    "decode_exact",
    "encode_selector",
    "decode_selector",
]

HEADER_BYTES = 16
_MAGIC = 0xEC6A
_KIND_RAW = 1
_KIND_QUANT = 2
_KIND_EXACT = 3
_KIND_SELECTOR = 4

_HEADER = struct.Struct("<HHIQ")  # magic, kind, flags, payload length


def _frame(kind: int, payload: bytes, flags: int = 0) -> bytes:
    return _HEADER.pack(_MAGIC, kind, flags, len(payload)) + payload


def _unframe(frame: bytes, expected_kind: int) -> tuple[bytes, int]:
    if len(frame) < HEADER_BYTES:
        raise ValueError("frame shorter than header")
    magic, kind, flags, length = _HEADER.unpack_from(frame)
    if magic != _MAGIC:
        raise ValueError(f"bad magic 0x{magic:04X}")
    if kind != expected_kind:
        raise ValueError(f"expected kind {expected_kind}, got {kind}")
    payload = frame[HEADER_BYTES:HEADER_BYTES + length]
    if len(payload) != length:
        raise ValueError("truncated frame")
    return payload, flags


def _pack_shape(shape: tuple[int, ...]) -> bytes:
    if len(shape) > 2:
        raise ValueError("wire format supports at most 2-D matrices")
    rows = shape[0] if len(shape) >= 1 else 0
    cols = shape[1] if len(shape) == 2 else 0
    return struct.pack("<II", rows, cols)


def _unpack_shape(buffer: bytes, offset: int) -> tuple[tuple[int, ...], int]:
    if len(buffer) < offset + 8:
        raise ValueError("frame payload too short for its shape word")
    rows, cols = struct.unpack_from("<II", buffer, offset)
    shape = (rows,) if cols == 0 else (rows, cols)
    return shape, offset + 8


def _shape_elements(shape: tuple[int, ...]) -> int:
    count = 1
    for dim in shape:
        count *= dim
    return count


# ----------------------------------------------------------------------
# RAW
# ----------------------------------------------------------------------
def encode_raw(matrix: np.ndarray) -> bytes:
    """Frame a float32 matrix."""
    data = np.ascontiguousarray(matrix, dtype=np.float32)
    return _frame(_KIND_RAW, _pack_shape(data.shape) + data.tobytes())


def decode_raw(frame: bytes) -> np.ndarray:
    payload, _ = _unframe(frame, _KIND_RAW)
    shape, offset = _unpack_shape(payload, 0)
    return np.frombuffer(payload, dtype=np.float32, offset=offset).reshape(
        shape
    ).copy()


# ----------------------------------------------------------------------
# QUANT
# ----------------------------------------------------------------------
def encode_quantized(quantized: QuantizedMatrix) -> bytes:
    """Frame a bucket-quantized matrix.

    ``table`` mode ships the bucket representatives explicitly (paper
    Fig. 3); ``bounds`` mode ships only (lo, hi) and flags it so the
    decoder rebuilds the midpoints.
    """
    parts = [
        _pack_shape(quantized.shape),
        struct.pack("<Bff", quantized.bits, quantized.lo, quantized.hi),
    ]
    flags = 0
    if quantized.table_mode == "table":
        flags = 1
        parts.append(quantized.bucket_values.astype(np.float32).tobytes())
    parts.append(np.ascontiguousarray(quantized.packed).tobytes())
    return _frame(_KIND_QUANT, b"".join(parts), flags=flags)


def decode_quantized(frame: bytes) -> QuantizedMatrix:
    """Decode a QUANT frame, validating every length against its header.

    A corrupted frame (the fault-injection path flips wire bytes) must
    surface as a wire-format ``ValueError``, never as a bare numpy
    buffer error: the bit width is range-checked, the bucket table must
    be fully present, and the packed-id buffer must hold *exactly*
    ``ceil(shape_elements * bits / 8)`` bytes.
    """
    payload, flags = _unframe(frame, _KIND_QUANT)
    shape, offset = _unpack_shape(payload, 0)
    meta = struct.calcsize("<Bff")
    if len(payload) < offset + meta:
        raise ValueError("QUANT frame truncated before bits/lo/hi metadata")
    bits, lo, hi = struct.unpack_from("<Bff", payload, offset)
    offset += meta
    if not 1 <= bits <= 16:
        raise ValueError(f"QUANT frame carries invalid bit width {bits}")
    buckets = 1 << bits
    if flags & 1:
        if len(payload) - offset < buckets * 4:
            raise ValueError(
                f"QUANT frame truncated: bucket table needs {buckets * 4} "
                f"bytes, {len(payload) - offset} remain"
            )
        table = np.frombuffer(
            payload, dtype=np.float32, count=buckets, offset=offset
        ).copy()
        offset += buckets * 4
        mode = "table"
    else:
        # Rebuild midpoints from the bounds.
        width = (hi - lo) / buckets if hi > lo else 0.0
        if width > 0:
            table = (lo + (np.arange(buckets) + 0.5) * width).astype(np.float32)
        else:
            table = np.full(buckets, lo, dtype=np.float32)
        mode = "bounds"
    expected = (_shape_elements(shape) * bits + 7) // 8
    remaining = len(payload) - offset
    if remaining != expected:
        raise ValueError(
            f"QUANT frame packed ids hold {remaining} bytes but shape "
            f"{shape} at {bits} bits needs exactly {expected}"
        )
    packed = np.frombuffer(payload, dtype=np.uint8, offset=offset).copy()
    return QuantizedMatrix(
        shape=shape, bits=bits, packed=packed, lo=lo, hi=hi,
        bucket_values=table, table_mode=mode,
    )


# ----------------------------------------------------------------------
# EXACT (ReqEC-FP trend boundary)
# ----------------------------------------------------------------------
def encode_exact(rows: np.ndarray, changing_rate: np.ndarray) -> bytes:
    """Frame the exact embeddings + M_cr of a trend boundary."""
    if rows.shape != changing_rate.shape:
        raise ValueError("rows and changing rate must share a shape")
    data_rows = np.ascontiguousarray(rows, dtype=np.float32)
    data_rate = np.ascontiguousarray(changing_rate, dtype=np.float32)
    payload = _pack_shape(data_rows.shape) + data_rows.tobytes() + (
        data_rate.tobytes()
    )
    return _frame(_KIND_EXACT, payload)


def decode_exact(frame: bytes) -> tuple[np.ndarray, np.ndarray]:
    payload, _ = _unframe(frame, _KIND_EXACT)
    shape, offset = _unpack_shape(payload, 0)
    count = int(np.prod(shape))
    rows = np.frombuffer(
        payload, dtype=np.float32, count=count, offset=offset
    ).reshape(shape).copy()
    offset += count * 4
    rate = np.frombuffer(
        payload, dtype=np.float32, count=count, offset=offset
    ).reshape(shape).copy()
    return rows, rate


# ----------------------------------------------------------------------
# SELECTOR (ReqEC-FP in-group message)
# ----------------------------------------------------------------------
def encode_selector(
    selection: np.ndarray,
    quantized: QuantizedMatrix,
    proportion: float,
) -> bytes:
    """Frame a Selector message: 2-bit ids + quantized subset + stats."""
    from repro.compression.quantization import pack_bits

    flat = np.ascontiguousarray(selection, dtype=np.uint32).ravel()
    packed_sel = pack_bits(flat, 2)
    quant_frame = encode_quantized(quantized)
    payload = (
        _pack_shape(selection.shape)
        + struct.pack("<fI", proportion, packed_sel.size)
        + packed_sel.tobytes()
        + quant_frame
    )
    return _frame(_KIND_SELECTOR, payload)


def decode_selector(frame: bytes) -> tuple[np.ndarray, QuantizedMatrix, float]:
    """Decode a SELECTOR frame, bounds-checking the embedded lengths.

    The ``sel_bytes`` field is untrusted wire data: it must equal the
    exact 2-bit-packed size the selection shape implies and fit inside
    the payload, or the frame is rejected as corrupt.
    """
    from repro.compression.quantization import unpack_bits

    payload, _ = _unframe(frame, _KIND_SELECTOR)
    shape, offset = _unpack_shape(payload, 0)
    meta = struct.calcsize("<fI")
    if len(payload) < offset + meta:
        raise ValueError("SELECTOR frame truncated before its metadata")
    proportion, sel_bytes = struct.unpack_from("<fI", payload, offset)
    offset += meta
    count = _shape_elements(shape)
    expected = (2 * count + 7) // 8
    if sel_bytes != expected:
        raise ValueError(
            f"SELECTOR frame claims {sel_bytes} selector bytes but shape "
            f"{shape} needs exactly {expected}"
        )
    if len(payload) - offset < sel_bytes:
        raise ValueError(
            f"SELECTOR frame truncated: selector needs {sel_bytes} bytes, "
            f"{len(payload) - offset} remain"
        )
    packed_sel = np.frombuffer(
        payload, dtype=np.uint8, count=sel_bytes, offset=offset
    )
    offset += sel_bytes
    selection = unpack_bits(packed_sel, 2, count).reshape(shape).astype(
        np.uint8
    )
    quantized = decode_quantized(payload[offset:])
    return selection, quantized, float(proportion)
