"""Unit tests for learning-rate schedules."""

import pytest

from repro.nn.lr_schedule import (
    ConstantLR,
    CosineAnnealingLR,
    ExponentialDecayLR,
    StepDecayLR,
)


class TestConstant:
    def test_constant(self):
        sched = ConstantLR(0.01)
        assert sched(0) == sched(1000) == 0.01


class TestStepDecay:
    def test_steps(self):
        sched = StepDecayLR(base_lr=1.0, step_size=10, gamma=0.5)
        assert sched(0) == 1.0
        assert sched(9) == 1.0
        assert sched(10) == 0.5
        assert sched(25) == 0.25

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepDecayLR(base_lr=1.0, step_size=0)


class TestExponential:
    def test_monotone_decrease(self):
        sched = ExponentialDecayLR(base_lr=0.1, gamma=0.9)
        values = [sched(e) for e in range(5)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_formula(self):
        sched = ExponentialDecayLR(base_lr=2.0, gamma=0.5)
        assert sched(3) == pytest.approx(0.25)


class TestCosine:
    def test_endpoints(self):
        sched = CosineAnnealingLR(base_lr=1.0, t_max=100, min_lr=0.1)
        assert sched(0) == pytest.approx(1.0)
        assert sched(100) == pytest.approx(0.1)

    def test_midpoint(self):
        sched = CosineAnnealingLR(base_lr=1.0, t_max=100)
        assert sched(50) == pytest.approx(0.5)

    def test_clamps_past_t_max(self):
        sched = CosineAnnealingLR(base_lr=1.0, t_max=10, min_lr=0.2)
        assert sched(500) == pytest.approx(0.2)

    def test_invalid_t_max(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(base_lr=1.0, t_max=0)
