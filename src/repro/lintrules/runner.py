"""Run the ECG rule set over source trees and format the results.

:func:`run_lint` is the single entry point the CLI (``repro lint``)
and the tests share: collect ``.py`` files, parse each once, hand the
module to every selected rule, then apply same-line pragmas. Pragmas
are themselves audited — an invalid pragma (no reason, unknown code)
or one that suppresses nothing becomes an ``ECG000`` finding, so the
escape hatch cannot rot silently.

Exit-code contract: 0 when every finding is suppressed by a reasoned
pragma (or there are none), 1 when any finding stands, 2 on usage
errors (unknown rule code, missing path).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lintrules.base import (
    META_CODE,
    Finding,
    ModuleInfo,
    Rule,
    parse_pragmas,
)
from repro.lintrules.rules_clock import WallClockRule
from repro.lintrules.rules_config import ConfigDriftRule
from repro.lintrules.rules_decode import DecodeDisciplineRule
from repro.lintrules.rules_iteration import UnsortedIterationRule
from repro.lintrules.rules_lifecycle import SharedLifecycleRule
from repro.lintrules.rules_random import UnseededRandomRule
from repro.lintrules.rules_serialization import SerializationRule

__all__ = ["ALL_RULES", "LintReport", "run_lint", "format_text", "format_json"]

ALL_RULES: tuple[type[Rule], ...] = (
    WallClockRule,
    UnseededRandomRule,
    UnsortedIterationRule,
    SharedLifecycleRule,
    DecodeDisciplineRule,
    SerializationRule,
    ConfigDriftRule,
)

_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".mypy_cache"}


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: list[Rule] = field(default_factory=list)

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0


def _collect_files(paths: Sequence[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"lint path does not exist: {path}")
        if path.is_file():
            if path.suffix == ".py":
                files.append(path)
            continue
        for candidate in sorted(path.rglob("*.py")):
            if not any(part in _SKIP_DIRS for part in candidate.parts):
                files.append(candidate)
    return files


def _resolve_rules(
    select: Iterable[str] | None, ignore: Iterable[str] | None
) -> list[Rule]:
    known = {cls.code: cls for cls in ALL_RULES}
    selected = list(select) if select else sorted(known)
    for code in list(selected) + list(ignore or []):
        if code not in known:
            raise ValueError(
                f"unknown rule code {code!r}; known: {', '.join(sorted(known))}"
            )
    ignored = set(ignore or [])
    return [known[code]() for code in selected if code not in ignored]


def _apply_pragmas(
    module: ModuleInfo,
    findings: list[Finding],
    active_codes: frozenset[str],
) -> list[Finding]:
    """Suppress same-line findings; audit the pragmas themselves.

    Staleness is judged only against ``active_codes`` — the rules this
    run actually executed. A pragma for a rule excluded by
    ``--select``/``--ignore`` is not stale, it is simply out of scope,
    so narrowing a run never manufactures ECG000 findings.
    """
    out: list[Finding] = []
    valid_by_line: dict[int, dict[str, str]] = {}
    for pragma in module.pragmas:
        if not pragma.valid:
            out.append(
                Finding(
                    code=META_CODE,
                    message=(
                        "malformed ecg pragma: needs ECGxxx codes and a "
                        "non-empty reason"
                    ),
                    path=module.display_path,
                    line=pragma.line,
                )
            )
            continue
        line_map = valid_by_line.setdefault(pragma.applies_to, {})
        for code in pragma.codes:
            line_map[code] = pragma.reason
    used: set[tuple[int, str]] = set()
    for finding in findings:
        reason = valid_by_line.get(finding.line, {}).get(finding.code)
        if reason is not None and finding.code != META_CODE:
            used.add((finding.line, finding.code))
            out.append(
                Finding(
                    code=finding.code,
                    message=finding.message,
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    suppressed=True,
                    reason=reason,
                )
            )
        else:
            out.append(finding)
    for line, codes in sorted(valid_by_line.items()):
        for code in sorted(codes):
            if code in active_codes and (line, code) not in used:
                out.append(
                    Finding(
                        code=META_CODE,
                        message=(
                            f"pragma suppresses {code} but no such finding "
                            "fires on this line; delete the stale pragma"
                        ),
                        path=module.display_path,
                        line=line,
                    )
                )
    return out


def run_lint(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> LintReport:
    """Lint ``paths`` with the selected rules; never raises on findings."""
    rules = _resolve_rules(select, ignore)
    active_codes = frozenset(rule.code for rule in rules)
    report = LintReport(rules_run=rules)
    for path in _collect_files(paths):
        report.files_checked += 1
        display = str(path)
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            report.findings.append(
                Finding(
                    code=META_CODE,
                    message=f"file does not parse: {exc.msg}",
                    path=display,
                    line=exc.lineno or 0,
                )
            )
            continue
        module = ModuleInfo(
            path=path,
            display_path=display,
            source=source,
            tree=tree,
            pragmas=parse_pragmas(source),
        )
        findings: list[Finding] = []
        for rule in rules:
            findings.extend(rule.check(module))
        report.findings.extend(_apply_pragmas(module, findings, active_codes))
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return report


def format_text(report: LintReport) -> str:
    lines = [finding.format_text() for finding in report.findings]
    active, suppressed = report.active, report.suppressed
    lines.append(
        f"checked {report.files_checked} files with "
        f"{len(report.rules_run)} rules: {len(active)} finding(s), "
        f"{len(suppressed)} suppressed by pragma"
    )
    for finding in suppressed:
        lines.append(
            f"  suppressed {finding.code} at {finding.path}:{finding.line}"
            f" — {finding.reason}"
        )
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    payload = {
        "version": 1,
        "files_checked": report.files_checked,
        "rules": [
            {"code": rule.code, "name": rule.name, "summary": rule.summary}
            for rule in report.rules_run
        ],
        "findings": [finding.as_json() for finding in report.findings],
        "counts": {
            "active": len(report.active),
            "suppressed": len(report.suppressed),
        },
        "exit_code": report.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
