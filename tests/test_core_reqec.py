"""Unit tests for ReqEC-FP: trend groups, the Selector and reconstruction."""

import numpy as np
import pytest

from repro.core.bit_tuner import BitTuner
from repro.core.messages import ChannelKey
from repro.core.reqec_fp import (
    SELECT_AVERAGE,
    SELECT_COMPRESSED,
    SELECT_PREDICTED,
    ReqECPolicy,
)

KEY = ChannelKey(layer=1, responder=0, requester=1)


def _policy(bits=4, period=4, granularity="vertex", adaptive=False):
    tuner = BitTuner(initial_bits=bits, enabled=adaptive)
    return ReqECPolicy(tuner, trend_period=period, granularity=granularity)


def _roundtrip(policy, rows, t):
    message = policy.respond(KEY, rows, t)
    return policy.receive(KEY, message, t), message


class TestSchedule:
    def test_boundary_iteration_exact(self):
        policy = _policy(period=4)
        rows = np.random.default_rng(0).random((6, 3)).astype(np.float32)
        result, message = _roundtrip(policy, rows, t=3)  # (3+1) % 4 == 0
        assert message.payload[0] == "exact"
        np.testing.assert_array_equal(result.rows, rows)

    def test_pre_boundary_is_compressed_only(self):
        policy = _policy(period=4)
        rows = np.random.default_rng(0).random((6, 3)).astype(np.float32)
        _, message = _roundtrip(policy, rows, t=0)
        assert message.payload[0] == "cps_only"

    def test_post_boundary_uses_selector(self):
        policy = _policy(period=4)
        rng = np.random.default_rng(0)
        rows = rng.random((6, 3)).astype(np.float32)
        _roundtrip(policy, rows, t=3)  # boundary primes the trend
        _, message = _roundtrip(policy, rows, t=4)
        assert message.payload[0] == "cps"

    def test_exact_message_carries_changing_rate(self):
        policy = _policy(period=2)
        rows0 = np.zeros((4, 2), dtype=np.float32)
        rows1 = np.ones((4, 2), dtype=np.float32) * 2.0
        _roundtrip(policy, rows0, t=1)  # first boundary
        _, message = _roundtrip(policy, rows1, t=3)  # second boundary
        m_cr = message.payload[2]
        np.testing.assert_allclose(m_cr, 1.0)  # (2 - 0) / T_tr=2


class TestSelector:
    def test_linear_trend_selects_predicted(self):
        """Embeddings moving at a constant rate are perfectly predicted,
        so the Selector should pick `predicted` and send no payload."""
        policy = _policy(period=4, bits=1)
        base = np.random.default_rng(0).random((8, 4)).astype(np.float32)
        step = np.full_like(base, 0.01)
        # Two boundaries establish the rate.
        _roundtrip(policy, base, t=3)
        _roundtrip(policy, base + 4 * step, t=7)
        result, message = _roundtrip(policy, base + 5 * step, t=8)
        selection = message.payload[1]
        assert (selection == SELECT_PREDICTED).mean() > 0.9
        assert message.meta["proportion"] > 0.9
        np.testing.assert_allclose(
            result.rows, base + 5 * step, atol=1e-3
        )

    def test_static_then_jump_selects_compressed(self):
        """After an abrupt change the prediction is stale; the quantized
        rows win."""
        policy = _policy(period=4, bits=8)
        rng = np.random.default_rng(1)
        rows = rng.random((8, 4)).astype(np.float32)
        _roundtrip(policy, rows, t=3)
        _roundtrip(policy, rows, t=7)  # rate == 0
        jumped = rows + rng.random((8, 4)).astype(np.float32) * 5.0
        _, message = _roundtrip(policy, jumped, t=8)
        selection = message.payload[1]
        assert (selection == SELECT_COMPRESSED).mean() > 0.5

    def test_reconstruction_matches_selected_candidates(self):
        policy = _policy(period=4, bits=4)
        rng = np.random.default_rng(2)
        rows = rng.random((10, 3)).astype(np.float32)
        _roundtrip(policy, rows, t=3)
        drifted = rows + rng.normal(0, 0.05, rows.shape).astype(np.float32)
        result, message = _roundtrip(policy, drifted, t=4)
        # Reconstruction error must be no worse than pure quantization
        # over the full matrix (the Selector picks the best per vertex).
        from repro.compression.quantization import BucketQuantizer

        cps_err = np.abs(
            BucketQuantizer(4).quantize(drifted) - drifted
        ).sum(axis=1)
        rec_err = np.abs(result.rows - drifted).sum(axis=1)
        assert (rec_err <= cps_err + 1e-4).all()

    def test_average_candidate_reconstruction(self):
        policy = _policy(period=4, bits=2)
        rng = np.random.default_rng(3)
        rows = rng.random((30, 4)).astype(np.float32)
        _roundtrip(policy, rows, t=3)
        drifted = rows + 0.08
        result, message = _roundtrip(policy, drifted, t=4)
        selection = message.payload[1]
        if (selection == SELECT_AVERAGE).any():
            # Averaged rows must equal (predicted + compressed) / 2.
            avg_rows = np.flatnonzero(selection == SELECT_AVERAGE)
            assert np.abs(result.rows[avg_rows] - drifted[avg_rows]).max() < 0.5


class TestGranularities:
    @pytest.mark.parametrize("granularity", ["vertex", "matrix", "element"])
    def test_all_granularities_reconstruct(self, granularity):
        policy = _policy(period=3, granularity=granularity, bits=8)
        rng = np.random.default_rng(4)
        rows = rng.random((12, 5)).astype(np.float32)
        _roundtrip(policy, rows, t=2)
        drifted = rows + rng.normal(0, 0.02, rows.shape).astype(np.float32)
        result, _ = _roundtrip(policy, drifted, t=3)
        assert np.abs(result.rows - drifted).max() < 0.1

    def test_matrix_granularity_single_choice(self):
        policy = _policy(period=3, granularity="matrix")
        rng = np.random.default_rng(5)
        rows = rng.random((10, 4)).astype(np.float32)
        _roundtrip(policy, rows, t=2)
        _, message = _roundtrip(policy, rows + 0.01, t=3)
        selection = message.payload[1]
        assert len(np.unique(selection)) == 1

    def test_element_selection_shape(self):
        policy = _policy(period=3, granularity="element")
        rng = np.random.default_rng(6)
        rows = rng.random((7, 5)).astype(np.float32)
        _roundtrip(policy, rows, t=2)
        _, message = _roundtrip(policy, rows + 0.01, t=3)
        assert message.payload[1].shape == (7, 5)

    def test_unknown_granularity_rejected(self):
        with pytest.raises(ValueError):
            _policy(granularity="row")


class TestCosts:
    def test_predicted_rows_save_bytes(self):
        """A channel with perfectly predictable rows ships less than one
        with unpredictable rows."""
        rng = np.random.default_rng(7)
        base = rng.random((64, 16)).astype(np.float32)
        step = np.full_like(base, 0.01)

        predictable = _policy(period=4, bits=8)
        for t, rows in [(3, base), (7, base + 4 * step)]:
            predictable.respond(KEY, rows, t)
        good = predictable.respond(KEY, base + 5 * step, 8)

        noisy = _policy(period=4, bits=8)
        for t, rows in [(3, base), (7, base + 4 * step)]:
            noisy.respond(KEY, rows, t)
        random_rows = rng.random((64, 16)).astype(np.float32) * 3.0
        bad = noisy.respond(KEY, random_rows, 8)
        assert good.nbytes < bad.nbytes

    def test_exact_message_double_raw_size(self):
        policy = _policy(period=2)
        rows = np.zeros((10, 8), dtype=np.float32)
        message = policy.respond(KEY, rows, t=1)
        assert message.nbytes == 24 + 2 * rows.nbytes


class TestErrors:
    def test_selector_before_boundary_on_requester_raises(self):
        responder = _policy(period=4)
        rows = np.random.default_rng(8).random((4, 2)).astype(np.float32)
        responder.respond(KEY, rows, t=3)  # prime responder only
        message = responder.respond(KEY, rows, t=4)
        fresh_requester = _policy(period=4)
        with pytest.raises(RuntimeError, match="exact trend snapshot"):
            fresh_requester.receive(KEY, message, t=4)

    def test_sampled_subset_unsupported(self):
        policy = _policy()
        rows = np.zeros((4, 2), dtype=np.float32)
        with pytest.raises(NotImplementedError):
            policy.respond(KEY, rows, t=0, rows_idx=np.array([0, 1]))

    def test_reset_clears_trend(self):
        policy = _policy(period=2)
        rows = np.zeros((4, 2), dtype=np.float32)
        policy.respond(KEY, rows, t=1)
        policy.reset()
        message = policy.respond(KEY, rows, t=2)
        assert message.payload[0] == "cps_only"
