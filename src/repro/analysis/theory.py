"""Theorem 1: the ResEC-BP residual error bound, and tools to check it.

The paper bounds the expected accumulated compression error of the
embedding gradients under two standard assumptions:

* the compressor is ``alpha``-contractive:
  ``E || x - C(x) ||^2 <= alpha^2 || x ||^2``  (Eq. 13),
* gradients are bounded: ``E || G_{t,l} ||^2 <= G^2``  (Eq. 14).

Then for every layer ``l`` and iteration ``t`` (Theorem 1):

    E || delta_{t,l} ||^2  <=  (1 + alpha)^{L - l} * G^2
                               / (1 - alpha^2 (1 + 1/rho)),
    with  rho > 1  and  alpha < 1 / sqrt(1 + rho)  (so alpha < sqrt(2)/2).

This module computes the bound, estimates ``alpha`` empirically for a
bucket quantizer, and replays the error-feedback recursion on synthetic
gradient streams so tests and the Theorem-1 benchmark can verify that
measured residuals stay below the bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.quantization import BucketQuantizer

__all__ = ["theorem1_bound", "estimate_alpha", "ErrorFeedbackTrace",
           "simulate_error_feedback"]


def theorem1_bound(
    alpha: float,
    grad_norm_bound: float,
    num_layers: int,
    layer: int,
    rho: float = 1.5,
) -> float:
    """Evaluate the Theorem 1 right-hand side for ``E||delta_{t,l}||^2``.

    Args:
        alpha: Compressor contraction factor (Eq. 13).
        grad_norm_bound: ``G`` with ``E||G_{t,l}||^2 <= G^2`` (Eq. 14).
        num_layers: ``L``.
        layer: ``l`` in ``[1, L]``.
        rho: Free parameter; the bound needs ``rho > 1`` and
            ``alpha < 1 / sqrt(1 + rho)``.
    """
    if not 1 <= layer <= num_layers:
        raise ValueError(f"layer must be in [1, {num_layers}]")
    if rho <= 1.0:
        raise ValueError("rho must be > 1")
    if alpha <= 0 or alpha >= 1.0 / np.sqrt(1.0 + rho):
        raise ValueError(
            f"alpha must be in (0, {1.0 / np.sqrt(1.0 + rho):.4f}) for rho={rho}"
        )
    denominator = 1.0 - alpha ** 2 * (1.0 + 1.0 / rho)
    return ((1.0 + alpha) ** (num_layers - layer)) * grad_norm_bound ** 2 / denominator


def estimate_alpha(
    quantizer: BucketQuantizer,
    samples: int = 64,
    dim: int = 128,
    seed: int = 0,
) -> float:
    """Empirical contraction factor of a bucket quantizer.

    Draws Gaussian matrices and returns the worst observed ratio
    ``||x - C(x)|| / ||x||``. For a midpoint quantizer over the data range
    with ``2^B`` buckets this is well below 1 for ``B >= 2``.
    """
    rng = np.random.default_rng(seed)
    worst = 0.0
    for _ in range(samples):
        x = rng.standard_normal((32, dim)).astype(np.float32)
        error = x - quantizer.quantize(x)
        ratio = float(np.linalg.norm(error) / np.linalg.norm(x))
        worst = max(worst, ratio)
    return worst


@dataclass
class ErrorFeedbackTrace:
    """Residual norms over a simulated error-feedback run."""

    residual_norms: list[float]
    gradient_norms: list[float]

    def max_residual_sq(self) -> float:
        return max((r ** 2 for r in self.residual_norms), default=0.0)

    def max_gradient_sq(self) -> float:
        return max((g ** 2 for g in self.gradient_norms), default=0.0)


def simulate_error_feedback(
    quantizer: BucketQuantizer,
    gradients: list[np.ndarray],
) -> ErrorFeedbackTrace:
    """Replay the ResEC-BP recursion (Eqs. 11-12) over a gradient stream.

    Args:
        quantizer: The ``C_bit`` compressor.
        gradients: The per-iteration true gradient matrices ``G_t``.

    Returns:
        The trace of ``||delta_t||`` and ``||G_t||`` for every iteration,
        so callers can compare ``max ||delta||^2`` against
        :func:`theorem1_bound`.
    """
    residual = None
    residual_norms: list[float] = []
    gradient_norms: list[float] = []
    for grad in gradients:
        grad = np.asarray(grad, dtype=np.float32)
        if residual is None:
            residual = np.zeros_like(grad)
        compensated = grad + residual
        decoded = quantizer.quantize(compensated)
        residual = compensated - decoded
        residual_norms.append(float(np.linalg.norm(residual)))
        gradient_norms.append(float(np.linalg.norm(grad)))
    return ErrorFeedbackTrace(residual_norms, gradient_norms)
