"""Top-k sparsification (Stich et al., cited by the paper as [32]).

Keeps only the ``k`` largest-magnitude entries per row and ships
``(column index, value)`` pairs. Included as the classic compression
baseline against which bucket quantization is positioned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.codec import EncodedMatrix

__all__ = ["TopKPayload", "TopKCodec"]


@dataclass
class TopKPayload:
    """Sparse representation: per-row column indices and values."""

    shape: tuple[int, int]
    indices: np.ndarray  # (rows, k) int32
    values: np.ndarray  # (rows, k) float32


class TopKCodec:
    """Per-row top-k magnitude sparsification."""

    def __init__(self, k: int):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k

    @property
    def name(self) -> str:
        return f"topk{self.k}"

    def encode(self, matrix: np.ndarray) -> EncodedMatrix:
        data = np.ascontiguousarray(matrix, dtype=np.float32)
        if data.ndim != 2:
            raise ValueError("TopKCodec expects a 2-D matrix")
        rows, cols = data.shape
        k = min(self.k, cols)
        if k == cols:
            indices = np.tile(np.arange(cols, dtype=np.int32), (rows, 1))
            values = data.copy()
        else:
            # argpartition gives the k largest |values| per row in O(cols).
            part = np.argpartition(-np.abs(data), k - 1, axis=1)[:, :k]
            indices = np.sort(part, axis=1).astype(np.int32)
            values = np.take_along_axis(data, indices, axis=1)
        payload = TopKPayload(shape=(rows, cols), indices=indices, values=values)
        # Each kept entry travels as (int32 index, float32 value).
        size = 16 + indices.nbytes + values.nbytes
        return EncodedMatrix(
            payload=payload,
            payload_bytes=size,
            shape=data.shape,
            codec_name=self.name,
        )

    def decode(self, encoded: EncodedMatrix) -> np.ndarray:
        payload = encoded.payload
        if not isinstance(payload, TopKPayload):
            raise ValueError(f"not a top-k payload: {encoded.codec_name}")
        out = np.zeros(payload.shape, dtype=np.float32)
        rows = np.arange(payload.shape[0])[:, None]
        out[rows, payload.indices] = payload.values
        return out
