"""The telemetry facade wired through the trainer and cluster runtime.

One :class:`Telemetry` object bundles the five collectors (span tracer,
metrics registry, compression-health monitor, stage profiler, channel
ledger) behind the single :class:`~repro.obs.config.ObsConfig` switch.
Instrumented code holds a ``Telemetry`` and calls ``span()`` /
``metrics.inc()`` / ``profiler.stage()`` / ``ledger.record_frame()``
unconditionally; when the config is disabled every call is a no-op on a
shared null object, so the un-instrumented timings are preserved.

There is exactly one ``Telemetry`` per training run: the trainer builds
it, hands it to the :class:`~repro.cluster.engine.ClusterRuntime`, and
the staged engine's :class:`~repro.engine.context.ExchangeContext`
carries the same instance to every stage, the halo transport and the
recovery manager — so the span tree (``epoch > forward/backward >
layer > kernel/halo_exchange > encode/decode``) nests consistently no
matter which layer opened the span.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.config import ObsConfig
from repro.obs.export import write_chrome_trace, write_jsonl
from repro.obs.health import CompressionHealthMonitor, HealthReport
from repro.obs.ledger import NULL_LEDGER, ChannelLedger, LedgerSnapshot
from repro.obs.profiler import NULL_PROFILER, StageProfile, StageProfiler
from repro.obs.registry import MetricsRegistry, MetricsSnapshot
from repro.obs.tracing import NullTracer, Span, SpanTracer

__all__ = ["Telemetry", "TelemetryReport", "NULL_TELEMETRY"]

_NULL_TRACER = NullTracer()


@dataclass(frozen=True)
class TelemetryReport:
    """End-of-run telemetry attached to a :class:`ConvergenceRun`.

    Attributes:
        phase_totals: ``span name -> (count, total seconds)``.
        metrics: Lifetime metrics snapshot.
        health: Compression-health report (None when disabled).
        num_spans: Spans recorded; ``dropped_spans`` counts overflow.
        profile: Stage timeline profile (None when disabled).
        ledger: Per-channel traffic ledger snapshot (None when disabled).
    """

    phase_totals: dict[str, tuple[int, float]]
    metrics: MetricsSnapshot
    health: HealthReport | None
    num_spans: int
    dropped_spans: int
    profile: StageProfile | None = None
    ledger: LedgerSnapshot | None = None
    spans: list[Span] = field(default_factory=list, repr=False)

    def as_dict(self) -> dict:
        return {
            "phase_totals": {
                name: {"count": count, "seconds": seconds}
                for name, (count, seconds) in sorted(self.phase_totals.items())
            },
            "metrics": self.metrics.as_dict(),
            "health": self.health.as_dict() if self.health else None,
            "num_spans": self.num_spans,
            "dropped_spans": self.dropped_spans,
            "profile": self.profile.as_dict() if self.profile else None,
            "ledger": self.ledger.as_dict() if self.ledger else None,
        }


class Telemetry:
    """Bundle of tracer + metrics + health + profiler + ledger behind
    one enable switch."""

    __slots__ = ("config", "enabled", "tracer", "metrics", "health",
                 "profiler", "ledger")

    def __init__(self, config: ObsConfig | None = None):
        self.config = config or ObsConfig()
        self.enabled = self.config.enabled
        self.metrics = MetricsRegistry(
            enabled=self.enabled and self.config.metrics
        )
        if self.enabled and self.config.trace:
            self.tracer = SpanTracer(
                max_spans=self.config.max_spans,
                metrics=self.metrics if self.metrics.enabled else None,
            )
        else:
            self.tracer = _NULL_TRACER
        self.health = (
            CompressionHealthMonitor(rho=self.config.health_rho)
            if self.enabled and self.config.health
            else None
        )
        self.profiler = (
            StageProfiler()
            if self.enabled and self.config.profile
            else NULL_PROFILER
        )
        self.ledger = (
            ChannelLedger()
            if self.enabled and self.config.ledger
            else NULL_LEDGER
        )

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs):
        """Open a nested span (no-op context when tracing is off)."""
        return self.tracer.span(name, **attrs)

    def end_epoch(self, epoch: int) -> MetricsSnapshot | None:
        """Close one epoch's metrics scope.

        Returns the epoch-scoped snapshot when ``epoch_snapshots`` is
        configured (it becomes ``EpochResult.telemetry``), always
        resetting the epoch scope so the next epoch starts clean.
        """
        if not self.metrics.enabled:
            return None
        self.metrics.set_gauge("last_epoch", epoch)
        snap = self.metrics.reset_epoch()
        return snap if self.config.epoch_snapshots else None

    def report(self) -> TelemetryReport:
        """Aggregate everything collected so far."""
        return TelemetryReport(
            phase_totals=self.tracer.totals_by_name(),
            metrics=self.metrics.snapshot("total"),
            health=self.health.report() if self.health else None,
            num_spans=len(self.tracer.spans),
            dropped_spans=self.tracer.dropped,
            profile=self.profiler.profile() if self.profiler.enabled else None,
            ledger=self.ledger.snapshot() if self.ledger.enabled else None,
            spans=self.tracer.spans,
        )

    # ------------------------------------------------------------------
    def write_trace(self, directory) -> dict[str, str]:
        """Dump spans (JSONL + Chrome trace) into ``directory``.

        Returns ``{"jsonl": path, "chrome": path}`` as strings; no files
        are written (empty dict) when tracing is disabled.
        """
        if not self.tracer.enabled:
            return {}
        spans = self.tracer.spans
        from pathlib import Path

        directory = Path(directory)
        jsonl = write_jsonl(spans, directory / "spans.jsonl")
        chrome = write_chrome_trace(spans, directory / "trace.json")
        return {"jsonl": str(jsonl), "chrome": str(chrome)}

    def reset(self) -> None:
        """Clear all collectors (between independent runs)."""
        self.tracer.reset()
        self.metrics.reset()
        if self.health is not None:
            self.health.reset()
        self.profiler.reset()
        self.ledger.reset()


# Shared disabled instance: the default for every un-instrumented run.
NULL_TELEMETRY = Telemetry(ObsConfig(enabled=False))
