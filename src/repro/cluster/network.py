"""Network model and traffic accounting for the simulated cluster.

The paper's clusters connect machines with Gigabit Ethernet; communication
time there is (message bytes / bandwidth) plus per-message latency. The
simulator charges every inter-machine message to a :class:`TrafficMeter`
with its *actual serialized size* (codecs report exact wire bytes), and a
:class:`NetworkModel` converts the per-epoch byte totals into seconds.

Intra-machine traffic (workers sharing a machine, or a worker talking to a
co-located server) is free, matching the paper's shared-memory access for
local neighbours.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = [
    "NetworkModel",
    "TrafficRecord",
    "TrafficSnapshot",
    "TrafficMeter",
    "GIGABIT",
]


@dataclass(frozen=True)
class NetworkModel:
    """Bandwidth/latency model of one cluster interconnect.

    Attributes:
        bandwidth_bytes_per_s: Per-machine link bandwidth. The default is
            Gigabit Ethernet (1e9 bits/s = 125 MB/s), the paper's setting.
        latency_s: One-way per-message latency (RPC + serialization fixed
            cost). 0.1 ms is typical for LAN gRPC.
        timeout_factor: Multiple of the expected round trip a sender
            waits before declaring a message lost (retransmission
            timeout); see :meth:`loss_detection_seconds`.
    """

    bandwidth_bytes_per_s: float = 125e6
    latency_s: float = 1e-4
    timeout_factor: float = 4.0

    def __post_init__(self):
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")
        if self.timeout_factor < 1:
            raise ValueError("timeout_factor must be >= 1")

    def bandwidth_seconds(self, num_bytes: int) -> float:
        """Pure wire time for ``num_bytes`` (no per-message latency)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes / self.bandwidth_bytes_per_s

    def transfer_seconds(self, num_bytes: int, num_messages: int = 1) -> float:
        """Time to move ``num_bytes`` split over ``num_messages`` messages.

        Nonzero bytes must travel in at least one message; callers that
        account latency separately should use :meth:`bandwidth_seconds`.
        """
        if num_messages < 0:
            raise ValueError("num_messages must be non-negative")
        if num_messages == 0 and num_bytes > 0:
            raise ValueError(
                f"{num_bytes} bytes cannot be transferred in 0 messages; "
                "use bandwidth_seconds() for latency-free wire time"
            )
        return self.bandwidth_seconds(num_bytes) + num_messages * self.latency_s

    def link_busy_seconds(
        self, sent: int, received: int, messages: int
    ) -> float:
        """Busy time of one full-duplex link carrying ``sent`` /
        ``received`` bytes over ``messages`` endpoint events.

        Send and receive overlap, so the link is busy for the larger
        direction; latency counts once per wire message, and
        ``messages`` counts both endpoints (sent + received), hence the
        halving. This is the per-machine term inside
        :meth:`TrafficMeter.epoch_comm_seconds`, exposed so the stage
        profiler can attribute a traffic delta to link seconds with the
        same arithmetic the epoch model uses.
        """
        return (
            self.bandwidth_seconds(max(sent, received))
            + (messages / 2) * self.latency_s
        )

    def loss_detection_seconds(self, num_bytes: int) -> float:
        """Retransmission timeout: how long a sender waits before it can
        conclude a message of ``num_bytes`` was lost.

        Modelled as ``timeout_factor`` times the expected one-message
        round trip (transfer + ack latency) — the conservative RTO a
        reliable RPC layer would use. Charged once per failed delivery
        attempt by the fault-tolerant exchange path, on top of the
        retry policy's exponential backoff.
        """
        return self.timeout_factor * (
            self.transfer_seconds(num_bytes) + self.latency_s
        )


GIGABIT = NetworkModel()


@dataclass
class TrafficRecord:
    """Byte/message counters for one (endpoint, category) pair."""

    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0


@dataclass(frozen=True)
class TrafficSnapshot:
    """Immutable copy of a meter's cumulative totals at one instant.

    Two snapshots of the same meter subtract to the traffic between
    them, which is how callers slice a shared meter per run or per
    phase without double-counting lifetime totals.
    """

    total_bytes: int
    total_messages: int
    category_bytes: dict[str, int] = field(default_factory=dict)

    def delta(self, since: "TrafficSnapshot") -> "TrafficSnapshot":
        """Traffic between ``since`` (earlier) and this snapshot."""
        categories = {}
        for category, nbytes in self.category_bytes.items():
            diff = nbytes - since.category_bytes.get(category, 0)
            if diff:
                categories[category] = diff
        return TrafficSnapshot(
            total_bytes=self.total_bytes - since.total_bytes,
            total_messages=self.total_messages - since.total_messages,
            category_bytes=categories,
        )


class TrafficMeter:
    """Per-epoch and cumulative traffic accounting.

    Every charge names a source machine, a destination machine and a
    category (``fp_embeddings``, ``bp_gradients``, ``param_pull``,
    ``param_push``, ``sampling``, ...). Per-machine counters let the
    engine compute the bottleneck link each epoch.
    """

    def __init__(self):
        self._epoch: dict[int, dict[str, TrafficRecord]] = defaultdict(
            lambda: defaultdict(TrafficRecord)
        )
        self._total_bytes: int = 0
        self._total_messages: int = 0
        self._category_bytes: dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------
    def charge(
        self,
        src_machine: int,
        dst_machine: int,
        num_bytes: int,
        category: str = "other",
    ) -> None:
        """Record one message. Intra-machine messages are free."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if src_machine == dst_machine:
            return
        src = self._epoch[src_machine][category]
        dst = self._epoch[dst_machine][category]
        src.bytes_sent += num_bytes
        src.messages_sent += 1
        dst.bytes_received += num_bytes
        dst.messages_received += 1
        self._total_bytes += num_bytes
        self._total_messages += 1
        self._category_bytes[category] += num_bytes

    # ------------------------------------------------------------------
    def epoch_machine_bytes(self, machine: int) -> tuple[int, int, int]:
        """``(sent, received, messages)`` for one machine this epoch."""
        sent = received = messages = 0
        for record in self._epoch.get(machine, {}).values():
            sent += record.bytes_sent
            received += record.bytes_received
            messages += record.messages_sent + record.messages_received
        return sent, received, messages

    def epoch_bytes(self) -> int:
        """Total bytes charged since the last :meth:`reset_epoch`."""
        return sum(
            record.bytes_sent
            for per_cat in self._epoch.values()
            for record in per_cat.values()
        )

    def epoch_category_bytes(self) -> dict[str, int]:
        """Bytes per category since the last reset (send side only)."""
        out: dict[str, int] = defaultdict(int)
        for per_cat in self._epoch.values():
            for category, record in per_cat.items():
                out[category] += record.bytes_sent
        return dict(out)

    def epoch_comm_seconds(self, network: NetworkModel, machines: int) -> float:
        """Per-epoch communication time under a synchronous model.

        Each machine's link carries its sent+received bytes; the epoch is
        gated by the busiest link, so the epoch communication time is the
        max over machines of that link's transfer time.
        """
        worst = 0.0
        for machine in range(machines):
            sent, received, messages = self.epoch_machine_bytes(machine)
            busy = network.link_busy_seconds(sent, received, messages)
            worst = max(worst, busy)
        return worst

    def reset_epoch(self) -> None:
        """Clear the per-epoch counters (cumulative totals are kept)."""
        self._epoch.clear()

    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    @property
    def total_messages(self) -> int:
        return self._total_messages

    def category_totals(self) -> dict[str, int]:
        """Cumulative bytes per category since construction."""
        return dict(self._category_bytes)

    def snapshot(self) -> TrafficSnapshot:
        """Freeze the cumulative totals (see :class:`TrafficSnapshot`).

        Take one snapshot before a run and one after, and ``after.delta
        (before)`` is exactly that run's traffic even when the meter is
        shared across runs.
        """
        return TrafficSnapshot(
            total_bytes=self._total_bytes,
            total_messages=self._total_messages,
            category_bytes=dict(self._category_bytes),
        )

    def reset(self) -> None:
        """Clear everything — epoch counters *and* lifetime totals."""
        self._epoch.clear()
        self._total_bytes = 0
        self._total_messages = 0
        self._category_bytes.clear()
