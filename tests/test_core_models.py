"""Unit tests for parameter construction."""

import numpy as np
import pytest

from repro.core.config import ModelConfig
from repro.core.models import bias_name, build_parameters, weight_name


class TestNames:
    def test_naming(self):
        assert weight_name(0) == "W0"
        assert bias_name(2) == "b2"


class TestBuildParameters:
    def test_shapes(self):
        params = build_parameters(ModelConfig(num_layers=3, hidden_dim=8),
                                  input_dim=20, num_classes=4)
        assert params.tensors["W0"].shape == (20, 8)
        assert params.tensors["W1"].shape == (8, 8)
        assert params.tensors["W2"].shape == (8, 4)
        assert params.tensors["b2"].shape == (4,)

    def test_no_bias_option(self):
        params = build_parameters(
            ModelConfig(num_layers=2, use_bias=False), 10, 3
        )
        assert "b0" not in params.tensors
        assert params.layer_param_names(0) == ["W0"]

    def test_same_seed_same_weights(self):
        a = build_parameters(ModelConfig(), 10, 3, seed=5)
        b = build_parameters(ModelConfig(), 10, 3, seed=5)
        np.testing.assert_array_equal(a.tensors["W0"], b.tensors["W0"])

    def test_different_seed_differs(self):
        a = build_parameters(ModelConfig(), 10, 3, seed=5)
        b = build_parameters(ModelConfig(), 10, 3, seed=6)
        assert not np.array_equal(a.tensors["W0"], b.tensors["W0"])

    def test_biases_start_zero(self):
        params = build_parameters(ModelConfig(), 10, 3)
        assert not params.tensors["b0"].any()

    def test_all_param_names_ordered_by_layer(self):
        params = build_parameters(ModelConfig(num_layers=2), 10, 3)
        assert params.all_param_names() == ["W0", "b0", "W1", "b1"]

    def test_num_parameters(self):
        params = build_parameters(
            ModelConfig(num_layers=2, hidden_dim=8), 10, 3
        )
        assert params.num_parameters() == 10 * 8 + 8 + 8 * 3 + 3

    def test_dims_property(self):
        params = build_parameters(
            ModelConfig(num_layers=2, hidden_dim=8), 10, 3
        )
        assert params.dims == [10, 8, 3]
        assert params.num_layers == 2

    def test_activation_resolved(self):
        params = build_parameters(
            ModelConfig(activation="tanh"), 10, 3
        )
        assert params.activation.name == "tanh"

    def test_unknown_activation_fails_fast(self):
        # Typos are rejected at config construction (ECG007: every field
        # validated), before any model is built.
        with pytest.raises(ValueError, match="swishy"):
            ModelConfig(activation="swishy")
