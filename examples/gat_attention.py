"""Train a Graph Attention Network with EC-Graph's compression pipeline.

The paper argues EC-Graph generalizes beyond GCN to any GNN exchanging
embeddings forward and embedding gradients backward, naming GAT
explicitly (section III-B). This example trains a distributed GAT
(single attention head; pass ``num_heads`` for more) under three exchange configurations and shows that the
compression + compensation machinery transfers unchanged:

    python examples/gat_attention.py
"""

from __future__ import annotations

from repro import ECGraphConfig
from repro.analysis.reporting import format_table
from repro.cluster import ClusterSpec
from repro.core import GATTrainer, ModelConfig
from repro.graph import load_dataset

EPOCHS = 60
WORKERS = 4


def main() -> None:
    graph = load_dataset("cora", profile="bench", seed=0)
    print(graph.summary())
    print()

    configs = [
        ("GAT raw", ECGraphConfig(fp_mode="raw", bp_mode="raw")),
        ("GAT Cp-2", ECGraphConfig(fp_mode="compress", bp_mode="compress",
                                   fp_bits=2, bp_bits=2,
                                   adaptive_bits=False)),
        ("GAT EC-2", ECGraphConfig(fp_mode="reqec", bp_mode="resec",
                                   fp_bits=2, bp_bits=2,
                                   adaptive_bits=False)),
    ]
    rows = []
    for name, config in configs:
        trainer = GATTrainer(
            graph, ModelConfig(num_layers=2, hidden_dim=16),
            ClusterSpec(num_workers=WORKERS), config,
        )
        run = trainer.train(EPOCHS, name=name)
        rows.append([
            name,
            run.best_test_accuracy(),
            run.final_test_accuracy,
            f"{run.total_bytes() / 1e6:.2f}MB",
        ])
    print(format_table(
        ["configuration", "best acc", "final acc", "traffic"],
        rows,
        title=f"Distributed GAT on {graph.name} ({WORKERS} workers)",
    ))
    print(
        "\nForward attention inputs ride the same halo exchange as GCN"
        "\nembeddings (ReqEC-FP applies); backward partial gradients use"
        "\nthe NAC's reverse exchange (ResEC-BP applies)."
    )


if __name__ == "__main__":
    main()
