"""Trace and metrics exporters: JSONL and Chrome ``chrome://tracing``.

Two formats cover the two consumption paths:

* **JSONL** — one span per line, trivially greppable and streamable into
  pandas (``pd.read_json(path, lines=True)``);
* **Chrome trace** — the ``traceEvents`` document that loads directly in
  ``chrome://tracing`` or Perfetto. Spans become complete events
  (``ph: "X"``) with microsecond ``ts``/``dur``; nesting is recovered
  from timestamps on a single thread row.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.tracing import Span

__all__ = [
    "span_to_record",
    "spans_to_jsonl",
    "spans_to_chrome",
    "write_jsonl",
    "write_chrome_trace",
    "read_jsonl",
]


def span_to_record(span: Span) -> dict:
    """Flatten one span into a JSON-ready dict (seconds kept as floats)."""
    return {
        "name": span.name,
        "start_s": span.start_s,
        "duration_s": span.duration_s,
        "depth": span.depth,
        "parent": span.parent,
        "index": span.index,
        "attrs": dict(span.attrs),
    }


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """Render spans as one JSON object per line."""
    return "\n".join(json.dumps(span_to_record(s)) for s in spans)


def spans_to_chrome(
    spans: Iterable[Span],
    process_name: str = "ecgraph",
) -> dict:
    """Build a Chrome-trace document (``chrome://tracing`` / Perfetto).

    All spans land on pid 0 / tid 0; complete events carry microsecond
    timestamps relative to the tracer origin, so the viewer reconstructs
    the nesting purely from containment.
    """
    events = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "tid": 0,
        "args": {"name": process_name},
    }]
    for span in spans:
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": span.start_s * 1e6,
            "dur": span.duration_s * 1e6,
            "pid": 0,
            "tid": 0,
            "cat": span.name,
            "args": dict(span.attrs),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_jsonl(spans: Iterable[Span], path: str | Path) -> Path:
    """Write spans as JSONL; returns the resolved path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = spans_to_jsonl(spans)
    path.write_text(text + ("\n" if text else ""))
    return path


def write_chrome_trace(
    spans: Iterable[Span],
    path: str | Path,
    process_name: str = "ecgraph",
) -> Path:
    """Write the Chrome-trace JSON document; returns the resolved path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(spans_to_chrome(spans, process_name), handle)
    return path


def read_jsonl(path: str | Path) -> list[dict]:
    """Load a JSONL span file back into records (round-trip testing)."""
    path = Path(path)
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
