"""Unit tests for GCN/row adjacency normalization."""

import numpy as np
import pytest

from repro.graph.csr import from_edge_list
from repro.graph.normalize import gcn_normalize, normalized_adjacency, row_normalize


def _dense(graph):
    return graph.to_scipy().toarray()


class TestGCNNormalize:
    def test_matches_dense_formula(self, ring_graph):
        normalized = gcn_normalize(ring_graph)
        a = _dense(ring_graph.with_self_loops())
        d = a.sum(axis=1)
        expected = a / np.sqrt(np.outer(d, d))
        np.testing.assert_allclose(_dense(normalized), expected, atol=1e-6)

    def test_symmetric_input_gives_symmetric_output(self, ring_graph):
        dense = _dense(gcn_normalize(ring_graph))
        np.testing.assert_allclose(dense, dense.T, atol=1e-6)

    def test_isolated_vertex_keeps_unit_self_loop(self):
        g = from_edge_list([(0, 1), (1, 0)], num_vertices=3)
        normalized = gcn_normalize(g)
        dense = _dense(normalized)
        assert dense[2, 2] == pytest.approx(1.0)

    def test_row_sums_at_most_one(self, ring_graph):
        dense = _dense(gcn_normalize(ring_graph))
        assert dense.sum(axis=1).max() <= 1.0 + 1e-6

    def test_without_self_loops(self, ring_graph):
        normalized = gcn_normalize(ring_graph, add_self_loops=False)
        dense = _dense(normalized)
        assert np.diag(dense).max() == 0.0

    def test_spectral_radius_at_most_one(self, ring_graph):
        dense = _dense(gcn_normalize(ring_graph))
        eigenvalues = np.linalg.eigvalsh(dense)
        assert np.abs(eigenvalues).max() <= 1.0 + 1e-6


class TestRowNormalize:
    def test_rows_sum_to_one(self, ring_graph):
        dense = _dense(row_normalize(ring_graph))
        np.testing.assert_allclose(dense.sum(axis=1), 1.0, atol=1e-6)

    def test_zero_degree_row_stays_zero(self):
        g = from_edge_list([(0, 1)], num_vertices=3)
        dense = _dense(row_normalize(g))
        assert not dense[2].any()

    def test_self_loops_optional(self, ring_graph):
        with_loops = row_normalize(ring_graph, add_self_loops=True)
        assert np.diag(_dense(with_loops)).min() > 0


class TestRegistry:
    def test_gcn_scheme(self, ring_graph):
        a = _dense(normalized_adjacency(ring_graph, "gcn"))
        b = _dense(gcn_normalize(ring_graph))
        np.testing.assert_allclose(a, b)

    def test_row_scheme_includes_loops(self, ring_graph):
        dense = _dense(normalized_adjacency(ring_graph, "row"))
        np.testing.assert_allclose(dense.sum(axis=1), 1.0, atol=1e-6)
        assert np.diag(dense).min() > 0

    def test_unknown_scheme(self, ring_graph):
        with pytest.raises(KeyError, match="gcn"):
            normalized_adjacency(ring_graph, "laplacian")
