"""Unit tests for the parameter servers and range sharding."""

import numpy as np
import pytest

from repro.cluster.engine import ClusterRuntime
from repro.cluster.param_server import ParameterServerGroup, range_shards
from repro.cluster.topology import ClusterSpec
from repro.nn.optim import SGD, Adam


def _group(num_workers=2, num_servers=2, reduce="mean", lr=1.0):
    runtime = ClusterRuntime(ClusterSpec(num_workers=num_workers,
                                         num_servers=num_servers))
    return ParameterServerGroup(runtime, lambda: SGD(lr=lr), reduce=reduce), runtime


class TestRangeShards:
    def test_even_split(self):
        shards = range_shards("w", 10, 2)
        assert [(s.start, s.stop) for s in shards] == [(0, 5), (5, 10)]

    def test_uneven_split_front_loads(self):
        shards = range_shards("w", 7, 3)
        assert [(s.start, s.stop) for s in shards] == [(0, 3), (3, 5), (5, 7)]

    def test_fewer_rows_than_servers(self):
        shards = range_shards("w", 2, 4)
        assert len(shards) == 2
        assert all(s.stop - s.start == 1 for s in shards)

    def test_covers_all_rows(self):
        shards = range_shards("w", 13, 5)
        covered = sorted(
            (row for s in shards for row in range(s.start, s.stop))
        )
        assert covered == list(range(13))


class TestPushPullUpdate:
    def test_pull_returns_copy(self):
        group, _ = _group()
        group.register("w", np.ones((4, 2), dtype=np.float32))
        pulled = group.pull(0, ["w"])["w"]
        pulled[:] = 0.0
        assert group.get("w").sum() == 8.0

    def test_mean_reduce(self):
        group, _ = _group(reduce="mean", lr=1.0)
        group.register("w", np.zeros(4, dtype=np.float32))
        group.push(0, {"w": np.full(4, 2.0, dtype=np.float32)})
        group.push(1, {"w": np.full(4, 4.0, dtype=np.float32)})
        group.apply_updates()
        # SGD with lr=1 on the mean gradient 3.0.
        np.testing.assert_allclose(group.get("w"), -3.0)

    def test_sum_reduce(self):
        group, _ = _group(reduce="sum", lr=1.0)
        group.register("w", np.zeros(4, dtype=np.float32))
        group.push(0, {"w": np.full(4, 2.0, dtype=np.float32)})
        group.push(1, {"w": np.full(4, 4.0, dtype=np.float32)})
        group.apply_updates()
        np.testing.assert_allclose(group.get("w"), -6.0)

    def test_sharded_update_equals_global(self):
        """Per-server Adam over shards == one global Adam (element-wise)."""
        rng = np.random.default_rng(0)
        w0 = rng.standard_normal((9, 3)).astype(np.float32)
        grads = [rng.standard_normal((9, 3)).astype(np.float32)
                 for _ in range(5)]

        runtime = ClusterRuntime(ClusterSpec(num_workers=1, num_servers=3))
        group = ParameterServerGroup(runtime, lambda: Adam(lr=0.05),
                                     reduce="sum")
        group.register("w", w0.copy())
        for g in grads:
            group.push(0, {"w": g})
            group.apply_updates()

        reference = Adam(lr=0.05)
        w_ref = {"w": w0.copy()}
        for g in grads:
            reference.step(w_ref, {"w": g})

        np.testing.assert_allclose(group.get("w"), w_ref["w"], atol=1e-5)

    def test_pending_cleared_after_update(self):
        group, _ = _group(lr=1.0)
        group.register("w", np.zeros(2, dtype=np.float32))
        group.push(0, {"w": np.ones(2, dtype=np.float32)})
        group.apply_updates()
        group.apply_updates()  # no pending grads: no further change
        np.testing.assert_allclose(group.get("w"), -1.0)

    def test_traffic_charged_for_remote_server(self):
        runtime = ClusterRuntime(ClusterSpec(num_workers=2, num_servers=2))
        group = ParameterServerGroup(runtime, lambda: SGD(lr=1.0))
        group.register("w", np.zeros((8, 4), dtype=np.float32))
        group.pull(0, ["w"])  # shard 0 local to worker 0, shard 1 remote
        assert runtime.meter.total_bytes > 0

    def test_bias_vector_sharding(self):
        group, _ = _group(num_servers=3, lr=1.0, reduce="sum")
        group.register("b", np.zeros(5, dtype=np.float32))
        group.push(0, {"b": np.arange(5, dtype=np.float32)})
        group.apply_updates()
        np.testing.assert_allclose(group.get("b"), -np.arange(5))


class TestValidation:
    def test_duplicate_register_rejected(self):
        group, _ = _group()
        group.register("w", np.zeros(2, dtype=np.float32))
        with pytest.raises(ValueError):
            group.register("w", np.zeros(2, dtype=np.float32))

    def test_unknown_grad_rejected(self):
        group, _ = _group()
        with pytest.raises(KeyError):
            group.push(0, {"nope": np.zeros(2)})

    def test_shape_mismatch_rejected(self):
        group, _ = _group()
        group.register("w", np.zeros(2, dtype=np.float32))
        with pytest.raises(ValueError):
            group.push(0, {"w": np.zeros(3)})

    def test_invalid_reduce_rejected(self):
        with pytest.raises(ValueError):
            _group(reduce="max")

    def test_state_dict_is_copy(self):
        group, _ = _group()
        group.register("w", np.ones(2, dtype=np.float32))
        state = group.state_dict()
        state["w"][:] = 0
        assert group.get("w").sum() == 2.0

    def test_set_restores(self):
        group, _ = _group()
        group.register("w", np.ones(2, dtype=np.float32))
        group.set("w", np.full(2, 5.0, dtype=np.float32))
        assert group.get("w")[0] == 5.0
        with pytest.raises(ValueError):
            group.set("w", np.zeros(3, dtype=np.float32))
