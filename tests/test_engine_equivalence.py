"""Bit-identity of the staged engine against the pre-refactor trainer.

The golden values below — full loss curves (exact float reprs), exact
TrafficMeter byte/message totals per category, and final exact-eval test
accuracy — were captured on main immediately before the trainer/NAC
monoliths were decomposed into the staged engine
(:mod:`repro.engine`). The refactor's contract is that every
configuration trains *bit-identically*: same float op order, same RNG
draw order, same wire bytes. Any drift here is a correctness
regression, not a tolerance issue, so comparisons are exact.
"""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.gat import GATTrainer
from repro.core.sage import SAGETrainer
from repro.core.sampling_trainer import SampledECGraphTrainer
from repro.core.trainer import ECGraphTrainer
from repro.graph.generators import GraphSpec, generate_graph

EPOCHS = 6

# Captured pre-refactor (commit 885d59a) with the graph/cluster below.
GOLDEN = {
    "ecgraph_default": {
        "losses": [
            "1.0977857947349547", "1.036339682340622", "1.0336278736591338",
            "0.971476310491562", "0.9145746827125549", "0.8591823935508729",
        ],
        "total_bytes": 44408,
        "total_messages": 174,
        "category_totals": {
            "bp_gradients": 4968, "feature_cache": 7920,
            "fp_embeddings": 5120, "param_pull": 13200, "param_push": 13200,
        },
        "final_test": "1.0",
    },
    "raw": {
        "losses": [
            "1.0938398241996765", "1.014786207675934", "0.943224734067917",
            "0.8782640933990479", "0.8198732972145081", "0.7669233202934265",
        ],
        "total_bytes": 110376,
        "total_messages": 174,
        "category_totals": {
            "bp_gradients": 12600, "feature_cache": 7920,
            "fp_embeddings": 63456, "param_pull": 13200, "param_push": 13200,
        },
        "final_test": "1.0",
    },
    "compress": {
        "losses": [
            "1.0977857947349547", "1.0177841365337372", "0.9481551349163055",
            "0.8842178225517274", "0.8286498486995697", "0.7764853537082672",
        ],
        "total_bytes": 50604,
        "total_messages": 174,
        "category_totals": {
            "bp_gradients": 4968, "feature_cache": 7920,
            "fp_embeddings": 11316, "param_pull": 13200, "param_push": 13200,
        },
        "final_test": "1.0",
    },
    "delayed": {
        "losses": [
            "1.0938398241996765", "1.0387981832027435", "0.9831118583679199",
            "0.9293251395225526", "0.8711061000823974", "0.8117950022220611",
        ],
        "total_bytes": 62128,
        "total_messages": 174,
        "category_totals": {
            "bp_gradients": 5428, "feature_cache": 7920,
            "fp_embeddings": 22380, "param_pull": 13200, "param_push": 13200,
        },
        "final_test": "1.0",
    },
    "sage": {
        "losses": [
            "1.5707411527633668", "1.3959121108055115", "1.2655068993568421",
            "1.1362760841846464", "1.019603967666626", "0.90932776927948",
        ],
        "total_bytes": 68216,
        "total_messages": 222,
        "category_totals": {
            "bp_gradients": 4968, "feature_cache": 7920,
            "fp_embeddings": 5120, "param_pull": 25104, "param_push": 25104,
        },
        "final_test": "0.875",
    },
    "gat": {
        "losses": [
            "1.0902566194534302", "1.0467941761016846", "1.0080687701702118",
            "0.9718242883682251", "0.9375437498092651", "0.9025300323963166",
        ],
        "total_bytes": 91128,
        "total_messages": 414,
        "category_totals": {
            "bp_gradients": 11316, "feature_cache": 7920,
            "fp_embeddings": 11316, "param_pull": 30288, "param_push": 30288,
        },
        "final_test": "0.75",
    },
    "sampled_offline": {
        "losses": [
            "1.1031481742858886", "1.0230998992919922", "0.9518005311489105",
            "0.8830403804779053", "0.8251548290252686", "0.7702265083789825",
        ],
        "total_bytes": 48270,
        "total_messages": 174,
        "category_totals": {
            "bp_gradients": 4602, "feature_cache": 7920,
            "fp_embeddings": 9348, "param_pull": 13200, "param_push": 13200,
        },
        "final_test": "1.0",
    },
    "sampled_online": {
        "losses": [
            "1.1031481742858886", "1.0187377870082854", "0.9523339986801147",
            "0.8907919466495513", "0.8477146863937379", "0.7877366423606873",
        ],
        "total_bytes": 50924,
        "total_messages": 210,
        "category_totals": {
            "bp_gradients": 4656, "feature_cache": 7920,
            "fp_embeddings": 9644, "param_pull": 13200, "param_push": 13200,
            "sampling": 2304,
        },
        "final_test": "1.0",
    },
}


@pytest.fixture(scope="module")
def graph():
    return generate_graph(GraphSpec(
        name="golden", num_vertices=96, avg_degree=6.0, feature_dim=12,
        num_classes=3, homophily=0.9, feature_noise=0.8,
        train=40, val=16, test=32, seed=7,
    ))


SPEC = ClusterSpec(num_workers=3, num_servers=1)
MODEL = dict(num_layers=2, hidden_dim=16)


def _build(name: str, graph):
    if name == "ecgraph_default":
        return ECGraphTrainer(
            graph, ModelConfig(**MODEL), SPEC, ECGraphConfig(seed=0)
        )
    if name == "raw":
        return ECGraphTrainer(
            graph, ModelConfig(**MODEL), SPEC,
            ECGraphConfig(seed=0).as_non_cp(),
        )
    if name == "compress":
        return ECGraphTrainer(
            graph, ModelConfig(**MODEL), SPEC,
            ECGraphConfig(seed=0).as_cp_only(),
        )
    if name == "delayed":
        return ECGraphTrainer(
            graph, ModelConfig(**MODEL), SPEC,
            ECGraphConfig(seed=0, fp_mode="delayed", bp_mode="delayed"),
        )
    if name == "sage":
        return SAGETrainer(
            graph, ModelConfig(model="sage", **MODEL), SPEC,
            ECGraphConfig(seed=0),
        )
    if name == "gat":
        return GATTrainer(
            graph, ModelConfig(**MODEL), SPEC,
            ECGraphConfig(seed=0, fp_mode="compress"), num_heads=2,
        )
    if name == "sampled_offline":
        return SampledECGraphTrainer(
            graph, ModelConfig(**MODEL), SPEC, fanouts=[4, 4],
            config=ECGraphConfig(seed=0, fp_mode="compress", bp_mode="resec"),
        )
    if name == "sampled_online":
        return SampledECGraphTrainer(
            graph, ModelConfig(**MODEL), SPEC, fanouts=[4, 4],
            config=ECGraphConfig(seed=0, fp_mode="compress", bp_mode="resec"),
            online=True,
        )
    raise AssertionError(name)


class TestStagedEngineBitIdentity:
    """Loss curves and traffic accounting match main exactly."""

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_bit_identical_to_pre_refactor(self, name, graph):
        golden = GOLDEN[name]
        trainer = _build(name, graph)
        losses = [trainer.run_epoch(t).loss for t in range(EPOCHS)]

        assert [repr(float(x)) for x in losses] == golden["losses"]

        meter = trainer.runtime.meter
        assert int(meter.total_bytes) == golden["total_bytes"]
        assert int(meter.total_messages) == golden["total_messages"]
        assert {
            k: int(v) for k, v in sorted(meter.category_totals().items())
        } == golden["category_totals"]

        final = trainer.evaluate_exact()["test"]
        assert repr(float(final)) == golden["final_test"]


class TestMultiprocessBitIdentity:
    """``execution="multiprocess"`` trains bit-identically to sync.

    The process backend keeps the entire exchange path (policies,
    tuner, fault injection, traffic metering) on the supervisor and
    ships only the numeric kernels to worker processes, so every
    golden value — losses, wire bytes, message counts, final exact
    eval — must match the sync goldens exactly, not approximately.
    """

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_bit_identical_to_sync(self, name, graph):
        import dataclasses

        golden = GOLDEN[name]
        trainer = _build(name, graph)
        trainer.config = dataclasses.replace(
            trainer.config, execution="multiprocess"
        )
        try:
            losses = [trainer.run_epoch(t).loss for t in range(EPOCHS)]

            assert [repr(float(x)) for x in losses] == golden["losses"]

            meter = trainer.runtime.meter
            assert int(meter.total_bytes) == golden["total_bytes"]
            assert int(meter.total_messages) == golden["total_messages"]
            assert {
                k: int(v) for k, v in sorted(meter.category_totals().items())
            } == golden["category_totals"]

            final = trainer.evaluate_exact()["test"]
            assert repr(float(final)) == golden["final_test"]

            # The workers really are separate OS processes.
            import os

            pids = trainer.engine.ctx.executor.worker_pids
            assert len(pids) == SPEC.num_workers
            assert os.getpid() not in pids.values()
        finally:
            trainer.close()


class TestFacadeSurface:
    """The staged engine is reachable through the stable facade."""

    def test_trainer_exposes_engine(self, graph):
        trainer = _build("ecgraph_default", graph)
        trainer.setup()
        from repro.engine import ExchangeContext, TrainerCore

        assert isinstance(trainer.engine, TrainerCore)
        assert isinstance(trainer.engine.ctx, ExchangeContext)
        # One shared transport: the facade's NAC is the engine's transport.
        assert trainer.engine.ctx.transport is trainer.nac
        assert trainer.engine.ctx.fp_policy is trainer._fp_policy
        assert trainer.engine.ctx.bp_policy is trainer._bp_policy
        assert trainer.engine.ctx.tuner is trainer.tuner

    def test_nac_is_the_unified_transport(self, graph):
        from repro.core.nac import NeighborAccessController
        from repro.engine.transport import HaloTransport

        assert issubclass(NeighborAccessController, HaloTransport)
