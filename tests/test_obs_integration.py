"""Integration tests: telemetry wired through a real training run.

The two contract properties: enabling telemetry must not change the
training computation (identical loss curve), and the mirrored byte
counters must agree with the traffic meter byte-for-byte.
"""

import json

import pytest

from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.sampling_trainer import SampledECGraphTrainer
from repro.core.trainer import ECGraphTrainer
from repro.obs import ObsConfig


def _trainer(graph, obs, **overrides):
    config = ECGraphConfig(seed=1, obs=obs, **overrides)
    return ECGraphTrainer(
        graph, ModelConfig(num_layers=2, hidden_dim=8),
        ClusterSpec(num_workers=4, workers_per_machine=2), config,
    )


@pytest.fixture
def instrumented_run(small_graph):
    trainer = _trainer(small_graph, ObsConfig(enabled=True))
    run = trainer.train(3)
    return trainer, run


class TestNoBehaviourChange:
    def test_loss_curve_identical(self, small_graph):
        run_off = _trainer(small_graph, ObsConfig()).train(3)
        run_on = _trainer(small_graph, ObsConfig(enabled=True)).train(3)
        assert [e.loss for e in run_on.epochs] == [
            e.loss for e in run_off.epochs
        ]
        assert [e.test_accuracy for e in run_on.epochs] == [
            e.test_accuracy for e in run_off.epochs
        ]
        # Same wire bytes too: the profiler and ledger only observe.
        assert run_on.total_bytes() == run_off.total_bytes()

    def test_disabled_run_attaches_nothing(self, small_graph):
        run = _trainer(small_graph, ObsConfig()).train(2)
        assert run.telemetry is None
        assert all(e.telemetry is None for e in run.epochs)


class TestSpans:
    def test_layer_spans_nest_inside_epoch(self, instrumented_run):
        trainer, _ = instrumented_run
        spans = trainer.obs.tracer.spans
        epochs = [s for s in spans if s.name == "epoch"]
        layers = [s for s in spans if s.name == "layer"]
        assert epochs and layers
        for epoch_span in epochs:
            inside = [
                s for s in layers
                if s.start_s >= epoch_span.start_s
                and s.start_s + s.duration_s
                <= epoch_span.start_s + epoch_span.duration_s + 1e-9
            ]
            # 2 forward + 2 backward layer spans per 2-layer iteration.
            assert len(inside) == 4
            assert sum(s.duration_s for s in inside) \
                <= epoch_span.duration_s + 1e-9

    def test_expected_phases_present(self, instrumented_run):
        _, run = instrumented_run
        assert set(run.telemetry.phase_totals) >= {
            "epoch", "halo_plan", "forward", "backward", "optimize",
            "eval", "layer", "kernel", "halo_exchange", "encode",
            "decode", "loss", "param_pull", "param_push", "server_apply",
        }

    def test_nothing_dropped(self, instrumented_run):
        _, run = instrumented_run
        assert run.telemetry.dropped_spans == 0
        assert run.telemetry.num_spans > 0


class TestMetricsMatchMeter:
    def test_comm_bytes_exactly_match_meter(self, instrumented_run):
        trainer, run = instrumented_run
        meter = trainer.runtime.meter
        snap = run.telemetry.metrics
        assert snap.counter_total("comm_bytes") == meter.total_bytes
        assert snap.counter_total("comm_messages") == meter.total_messages
        for category, nbytes in meter.category_totals().items():
            assert snap.counter("comm_bytes", category=category) == nbytes

    def test_epoch_snapshots_sum_to_lifetime(self, instrumented_run):
        _, run = instrumented_run
        per_epoch = sum(
            e.telemetry.counter_total("comm_bytes") for e in run.epochs
        )
        lifetime = run.telemetry.metrics.counter_total("comm_bytes")
        # Lifetime additionally covers setup traffic (feature cache).
        setup = run.telemetry.metrics.counter(
            "comm_bytes", category="feature_cache"
        )
        assert per_epoch + setup == lifetime

    def test_worker_topology_gauges(self, instrumented_run):
        _, run = instrumented_run
        gauges = run.telemetry.metrics
        total_local = sum(
            gauges.gauge("worker_local_vertices", worker=w) for w in range(4)
        )
        assert total_local == 96  # small_graph vertex count


class TestTraceExport:
    def test_chrome_trace_from_run_is_valid(self, instrumented_run, tmp_path):
        trainer, _ = instrumented_run
        paths = trainer.obs.write_trace(tmp_path)
        doc = json.loads((tmp_path / "trace.json").read_text())
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert events
        for event in events:
            assert {"name", "ph", "ts", "dur"} <= event.keys()
        assert paths["chrome"].endswith("trace.json")

    def test_health_report_attached(self, instrumented_run):
        _, run = instrumented_run
        health = run.telemetry.health
        assert health is not None
        # ReqEC-FP ran, so the selector tallied every halo element.
        assert sum(health.candidate_fractions.values()) == pytest.approx(1.0)
        # ResEC-BP recorded residuals for the backward layers.
        assert health.residual_checks


class TestSamplingTrainer:
    def test_sampling_span_recorded(self, small_graph):
        trainer = SampledECGraphTrainer(
            small_graph, ModelConfig(num_layers=2, hidden_dim=8),
            ClusterSpec(num_workers=2), fanouts=[4, 4], online=True,
            config=ECGraphConfig(
                fp_mode="compress", bp_mode="resec", seed=1,
                obs=ObsConfig(enabled=True),
            ),
        )
        run = trainer.train(2)
        assert "sampling" in run.telemetry.phase_totals
        assert run.telemetry.metrics.counter("resamples") == 2


class TestObsConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ObsConfig(max_spans=0)
        with pytest.raises(ValueError):
            ObsConfig(health_rho=1.0)

    def test_sub_switches(self, small_graph):
        trainer = _trainer(
            small_graph,
            ObsConfig(enabled=True, trace=False, health=False),
        )
        run = trainer.train(2)
        assert run.telemetry.num_spans == 0
        assert run.telemetry.health is None
        assert run.telemetry.metrics.counter_total("comm_bytes") > 0
