"""Where do the bytes go? Traffic breakdown per message category.

The paper's argument is that *vertex messages* (embeddings forward,
embedding gradients backward) dominate distributed GNN traffic, and that
is what EC-Graph compresses — parameter pull/push traffic is small and
untouched. This example verifies that claim on the simulated cluster by
breaking each system's traffic down per category.

    python examples/traffic_breakdown.py
"""

from __future__ import annotations

from repro import ECGraphConfig
from repro.analysis import dominant_category, traffic_table
from repro.baselines import run_system
from repro.graph import load_dataset

EPOCHS = 20
WORKERS = 6


def main() -> None:
    graph = load_dataset("reddit", profile="bench", seed=0)
    print(graph.summary())
    print()

    runs = []
    for system in ("noncp", "cponly", "ecgraph", "distgnn", "ecgraph_s"):
        runs.append(run_system(
            system, graph, num_layers=2, hidden_dim=16,
            num_workers=WORKERS, num_epochs=EPOCHS,
            config=ECGraphConfig(fp_bits=2, bp_bits=2),
        ))

    print(traffic_table(runs))
    print()
    noncp = runs[0]
    print(
        f"Without compression, '{dominant_category(noncp)}' dominates — "
        "exactly the traffic the paper's compression targets.\n"
        "Parameter traffic is identical across systems: EC-Graph only\n"
        "touches the vertex messages."
    )


if __name__ == "__main__":
    main()
