"""Unit tests for worker-state construction (request/serve plans)."""

import numpy as np
import pytest

from repro.core.worker import build_worker_states
from repro.graph.normalize import gcn_normalize
from repro.partition.hashing import HashPartitioner


@pytest.fixture
def states(small_graph):
    normalized = gcn_normalize(small_graph.adjacency)
    partition = HashPartitioner().partition(small_graph.adjacency, 3)
    return (
        build_worker_states(small_graph, normalized, partition),
        partition,
        normalized,
        small_graph,
    )


class TestConstruction:
    def test_locals_cover_graph(self, states):
        workers, partition, _, graph = states
        total = sum(s.num_local for s in workers)
        assert total == graph.num_vertices

    def test_local_slices_match_partition(self, states):
        workers, partition, _, graph = states
        for state in workers:
            expected = partition.part_vertices(state.worker_id)
            np.testing.assert_array_equal(state.sub.local_vertices, expected)
            np.testing.assert_array_equal(
                state.features, graph.features[expected]
            )
            np.testing.assert_array_equal(
                state.labels, graph.labels[expected]
            )

    def test_a_local_shape(self, states):
        workers, *_ = states
        for state in workers:
            rows, cols = state.a_local.shape
            assert rows == state.num_local
            assert cols == state.num_local + state.num_halo

    def test_requests_point_at_owners(self, states):
        workers, partition, *_ = states
        for state in workers:
            for owner, wanted in state.requests.items():
                assert owner != state.worker_id
                assert (partition.assignment[wanted] == owner).all()

    def test_halo_slots_partition_halo(self, states):
        workers, *_ = states
        for state in workers:
            if not state.requests:
                continue
            all_slots = np.concatenate(list(state.halo_slots.values()))
            assert sorted(all_slots.tolist()) == list(range(state.num_halo))

    def test_serve_plans_mirror_requests(self, states):
        workers, *_ = states
        for state in workers:
            for owner, wanted in state.requests.items():
                rows = workers[owner].serves[state.worker_id]
                served_globals = workers[owner].sub.local_vertices[rows]
                np.testing.assert_array_equal(served_globals, wanted)

    def test_mismatched_partition_rejected(self, small_graph):
        from repro.partition.base import Partition

        normalized = gcn_normalize(small_graph.adjacency)
        bad = Partition(np.zeros(10, dtype=np.int64), 1)
        with pytest.raises(ValueError):
            build_worker_states(small_graph, normalized, bad)


class TestAdjacencyCorrectness:
    def test_local_rows_reproduce_global_aggregation(self, states):
        """A_local applied to the concatenated (local + halo) features must
        equal the global normalized aggregation restricted to the worker's
        rows — the foundation of distributed == standalone equality."""
        workers, partition, normalized, graph = states
        dense_global = normalized.to_scipy().toarray()
        expected_all = dense_global @ graph.features
        for state in workers:
            halo_features = graph.features[state.sub.remote_vertices]
            h_cat = np.concatenate([state.features, halo_features], axis=0)
            local_result = state.a_local @ h_cat
            np.testing.assert_allclose(
                local_result,
                expected_all[state.sub.local_vertices],
                atol=1e-4,
            )

    def test_reset_iteration_clears_caches(self, states):
        workers, *_ = states
        state = workers[0]
        state.reset_iteration(3)
        assert len(state.caches) == 4
        assert all(c is None for c in state.caches)
        with pytest.raises(RuntimeError):
            state.local_output(1)
