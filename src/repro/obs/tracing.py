"""Span tracer: nested ``perf_counter`` timings of the training loop.

A span covers one phase of work (``epoch``, ``forward``, ``layer``,
``halo_exchange``, ``encode``, ``decode``, ``kernel``, ``server_apply``,
``sampling``...). Spans nest: the tracer keeps a stack, so each finished
span knows its depth and parent, which is what the Chrome-trace exporter
needs to draw the flame graph.

``NullTracer`` is the disabled twin — ``span()`` hands back one shared
no-op context manager, so un-instrumented runs pay a single attribute
lookup and call per site.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

__all__ = ["Span", "SpanTracer", "NullTracer", "monotonic_now"]


def monotonic_now() -> float:
    """Monotonic timestamp in seconds (``time.perf_counter``).

    The single clock used for every span and epoch timing; unlike
    ``time.time`` it can never run backwards under NTP adjustments.
    """
    return time.perf_counter()


@dataclass(frozen=True)
class Span:
    """One finished span, times relative to the tracer's origin."""

    name: str
    start_s: float
    duration_s: float
    depth: int
    parent: int  # opening-order index of the enclosing span, -1 for roots
    index: int  # opening-order index of this span
    attrs: dict = field(default_factory=dict)


class _ActiveSpan:
    """Context manager recording one span on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start", "_parent", "_index")

    def __init__(self, tracer: "SpanTracer", name: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self):
        tracer = self._tracer
        self._parent = tracer._stack[-1] if tracer._stack else -1
        self._index = tracer._next_index
        tracer._next_index += 1
        tracer._stack.append(self._index)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        duration = time.perf_counter() - self._start
        tracer = self._tracer
        tracer._stack.pop()
        if len(tracer._spans) >= tracer.max_spans:
            tracer._drop()
            return False
        tracer._spans.append(Span(
            name=self._name,
            start_s=self._start - tracer.origin,
            duration_s=duration,
            depth=len(tracer._stack),
            parent=self._parent,
            index=self._index,
            attrs=self._attrs,
        ))
        return False


class SpanTracer:
    """Collects nested spans with a bounded in-memory buffer."""

    enabled = True

    def __init__(self, max_spans: int = 500_000, metrics=None):
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.origin = time.perf_counter()
        self.max_spans = max_spans
        self.dropped = 0
        # Optional MetricsRegistry mirror: overflow shows up as a
        # ``spans_dropped`` counter next to the other run metrics
        # instead of only on the tracer object.
        self.metrics = metrics
        self._spans: list[Span] = []
        self._stack: list[int] = []
        self._next_index = 0

    def span(self, name: str, **attrs) -> _ActiveSpan:
        """Open a nested span; use as ``with tracer.span("kernel"): ...``."""
        return _ActiveSpan(self, name, attrs)

    def _drop(self) -> None:
        """Count one span past ``max_spans``; warn once at the first."""
        self.dropped += 1
        if self.dropped == 1:
            warnings.warn(
                f"span buffer full (max_spans={self.max_spans}); further "
                "spans are counted in 'spans_dropped' but not recorded",
                RuntimeWarning,
                stacklevel=4,
            )
        if self.metrics is not None:
            self.metrics.inc("spans_dropped")

    @property
    def spans(self) -> list[Span]:
        """Finished spans, in completion order (children before parents)."""
        return list(self._spans)

    def totals_by_name(self) -> dict[str, tuple[int, float]]:
        """``name -> (count, total seconds)`` over all finished spans."""
        out: dict[str, tuple[int, float]] = {}
        for span in self._spans:
            count, total = out.get(span.name, (0, 0.0))
            out[span.name] = (count + 1, total + span.duration_s)
        return out

    def reset(self) -> None:
        self._spans.clear()
        self._stack.clear()
        self._next_index = 0
        self.dropped = 0
        self.origin = time.perf_counter()


class _NullContext:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """Disabled tracer: every span is the same shared no-op context."""

    enabled = False
    dropped = 0
    max_spans = 0

    def span(self, name: str, **attrs) -> _NullContext:
        return _NULL_CONTEXT

    @property
    def spans(self) -> list[Span]:
        return []

    def totals_by_name(self) -> dict[str, tuple[int, float]]:
        return {}

    def reset(self) -> None:
        """Nothing recorded, nothing to clear."""
