"""``repro lint``: AST-based invariant checking for the EC-Graph repro.

Seven repo-specific rules (see ``docs/static_analysis.md``):

========  ==========================  =====================================
Code      Name                        Invariant
========  ==========================  =====================================
ECG001    wall-clock-read             simulated NetworkModel clock is the
                                      time oracle in engine/, mp/, core/
ECG002    unseeded-randomness         RNG is an injected seeded Generator
ECG003    unsorted-state-iteration    worker/channel/partition dict state
                                      iterates in sorted (or pragma'd
                                      canonical) order
ECG004    shared-lifecycle            SharedMemory/process owners define
                                      close()/shutdown()
ECG005    decode-discipline           wire decoders raise ValueError on
                                      malformed input
ECG006    pickle-eval                 no pickle/eval on wire/checkpoint
                                      bytes
ECG007    config-drift                config fields validated and
                                      documented
========  ==========================  =====================================

Suppression: ``# ecg: ignore[ECGxxx] reason`` on the finding's line.
"""

from repro.lintrules.base import Finding, ModuleInfo, Pragma, Rule
from repro.lintrules.runner import (
    ALL_RULES,
    LintReport,
    format_json,
    format_text,
    run_lint,
)

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintReport",
    "ModuleInfo",
    "Pragma",
    "Rule",
    "format_json",
    "format_text",
    "run_lint",
]
