"""1-bit quantization (Seide et al., the paper's reference [31]).

Each element is reduced to its sign; the decoder scales signs by the mean
magnitude of the positive and negative halves respectively, which is the
standard reconstruction for 1-bit SGD. Included as a baseline codec.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.codec import EncodedMatrix
from repro.compression.quantization import pack_bits, unpack_bits

__all__ = ["OneBitPayload", "OneBitCodec"]


@dataclass
class OneBitPayload:
    """Sign bits plus the two reconstruction magnitudes."""

    shape: tuple[int, ...]
    packed_signs: np.ndarray
    positive_mean: float
    negative_mean: float


class OneBitCodec:
    """Sign quantization with mean-magnitude reconstruction."""

    name = "onebit"

    def encode(self, matrix: np.ndarray) -> EncodedMatrix:
        data = np.ascontiguousarray(matrix, dtype=np.float32)
        flat = data.ravel()
        positive = flat >= 0
        pos_mean = float(flat[positive].mean()) if positive.any() else 0.0
        neg_mean = float(flat[~positive].mean()) if (~positive).any() else 0.0
        packed = pack_bits(positive.astype(np.uint32), 1)
        payload = OneBitPayload(
            shape=data.shape,
            packed_signs=packed,
            positive_mean=pos_mean,
            negative_mean=neg_mean,
        )
        size = 16 + packed.size + 8  # header + bits + two float32 means
        return EncodedMatrix(
            payload=payload,
            payload_bytes=size,
            shape=data.shape,
            codec_name=self.name,
        )

    def decode(self, encoded: EncodedMatrix) -> np.ndarray:
        payload = encoded.payload
        if not isinstance(payload, OneBitPayload):
            raise ValueError(f"not a 1-bit payload: {encoded.codec_name}")
        count = 1
        for dim in payload.shape:
            count *= dim
        signs = unpack_bits(payload.packed_signs, 1, count).astype(bool)
        out = np.where(signs, payload.positive_mean, payload.negative_mean)
        return out.reshape(payload.shape).astype(np.float32)
