"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``datasets`` — list the paper-matched datasets and their statistics;
* ``train``    — train one system on one dataset and print the run;
* ``compare``  — train several systems on one dataset side by side;
* ``partition`` — partition a dataset and print quality statistics;
* ``trace``    — run with telemetry enabled and export trace + metrics.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.analysis.convergence import convergence_target, summarize
from repro.analysis.reporting import format_table, telemetry_table
from repro.baselines import run_system, system_names
from repro.core.config import ECGraphConfig
from repro.graph.datasets import PAPER_STATS, dataset_names, load_dataset
from repro.obs import ObsConfig
from repro.obs.export import write_chrome_trace, write_jsonl
from repro.partition import make_partitioner, partition_stats


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name in dataset_names():
        stats = PAPER_STATS[name]
        graph = load_dataset(name, profile=args.profile)
        rows.append([
            name,
            f"{stats.num_vertices:,}",
            f"{graph.num_vertices:,}",
            f"{stats.avg_degree:.1f}",
            f"{graph.adjacency.average_degree:.1f}",
            stats.num_classes,
            graph.num_classes,
        ])
    print(format_table(
        ["dataset", "paper |V|", "sim |V|", "paper deg", "sim deg",
         "paper classes", "sim classes"],
        rows,
        title=f"Datasets (profile={args.profile})",
    ))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, profile=args.profile, seed=args.seed)
    print(graph.summary())
    run = run_system(
        args.system, graph,
        num_layers=args.layers, hidden_dim=args.hidden,
        num_workers=args.workers, num_epochs=args.epochs,
        patience=args.patience,
    )
    print(format_table(
        ["epochs", "best acc", "final acc", "epoch time", "traffic"],
        [[
            run.num_epochs,
            run.best_test_accuracy(),
            run.final_test_accuracy
            if run.final_test_accuracy is not None else "-",
            f"{run.avg_epoch_seconds() * 1e3:.2f}ms",
            f"{run.total_bytes() / 1e6:.1f}MB",
        ]],
        title=f"{args.system} on {graph.name}",
    ))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, profile=args.profile, seed=args.seed)
    print(graph.summary())
    runs = []
    for system in args.systems:
        print(f"training {system} ...", file=sys.stderr)
        runs.append(run_system(
            system, graph,
            num_layers=args.layers, hidden_dim=args.hidden,
            num_workers=args.workers, num_epochs=args.epochs,
        ))
    target = convergence_target(runs, slack=0.97)
    rows = []
    for run in runs:
        summary = summarize(run, target)
        rows.append([
            run.name,
            f"{summary.avg_epoch_seconds * 1e3:.2f}ms",
            summary.best_test_accuracy,
            f"{summary.total_bytes / 1e6:.1f}MB",
            summary.epochs_to_target or "-",
        ])
    print(format_table(
        ["system", "epoch time", "best acc", "traffic",
         f"epochs to {target:.3f}"],
        rows,
    ))
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, profile=args.profile, seed=args.seed)
    print(graph.summary())
    rows = []
    for method in args.methods:
        partitioner = make_partitioner(method, seed=args.seed)
        partition = partitioner.partition(graph.adjacency, args.workers)
        stats = partition_stats(graph.adjacency, partition)
        rows.append([
            method,
            f"{partition.seconds * 1e3:.1f}ms",
            f"{stats.edge_cut_ratio:.3f}",
            f"{stats.balance:.2f}",
            f"{stats.avg_remote_neighbors:.2f}",
        ])
    print(format_table(
        ["method", "time", "edge-cut", "balance", "g_rmt"],
        rows,
        title=f"{args.workers}-way partitions of {graph.name}",
    ))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.smoke:
        args.profile = "tiny"
        args.epochs = min(args.epochs, 3)
        args.workers = min(args.workers, 4)
    graph = load_dataset(args.dataset, profile=args.profile, seed=args.seed)
    print(graph.summary())
    config = ECGraphConfig(seed=args.seed, obs=ObsConfig(enabled=True))
    run = run_system(
        args.system, graph,
        num_layers=args.layers, hidden_dim=args.hidden,
        num_workers=args.workers, num_epochs=args.epochs,
        config=config,
    )
    report = run.telemetry
    if report is None:
        print(f"{args.system} does not support telemetry", file=sys.stderr)
        return 1

    out = pathlib.Path(args.out)
    if out.exists() and not out.is_dir():
        print(f"--out {out} exists and is not a directory", file=sys.stderr)
        return 1
    out.mkdir(parents=True, exist_ok=True)
    chrome_path = out / "trace.json"
    jsonl_path = out / "spans.jsonl"
    report_path = out / "telemetry.json"
    write_chrome_trace(report.spans, chrome_path)
    write_jsonl(report.spans, jsonl_path)
    report_path.write_text(json.dumps(report.as_dict(), indent=2) + "\n")

    print(telemetry_table(report))
    if report.health is not None:
        health = report.health
        fractions = ", ".join(
            f"{name}={frac:.2f}"
            for name, frac in sorted(health.candidate_fractions.items())
        )
        print(f"\nCompression health: {'OK' if health.ok else 'VIOLATIONS'}")
        if fractions:
            print(f"  candidate wins: {fractions}")
        if health.bits_events:
            print(f"  bit-width changes: {len(health.bits_events)}")
        for violation in health.violations:
            print(f"  VIOLATION: {violation}")
    print(f"\nwrote {chrome_path} (chrome://tracing), {jsonl_path}, "
          f"{report_path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EC-Graph reproduction: distributed GNN training "
                    "with error-compensated compression",
    )
    parser.add_argument("--profile", default="bench",
                        choices=["tiny", "bench", "full"],
                        help="dataset size profile")
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list datasets").set_defaults(
        func=_cmd_datasets
    )

    train = sub.add_parser("train", help="train one system")
    train.add_argument("--system", default="ecgraph", choices=system_names())
    train.add_argument("--dataset", default="cora", choices=dataset_names())
    train.add_argument("--workers", type=int, default=6)
    train.add_argument("--layers", type=int, default=2)
    train.add_argument("--hidden", type=int, default=16)
    train.add_argument("--epochs", type=int, default=100)
    train.add_argument("--patience", type=int, default=None)
    train.set_defaults(func=_cmd_train)

    compare = sub.add_parser("compare", help="train several systems")
    compare.add_argument("--systems", nargs="+",
                         default=["ecgraph", "noncp", "distgnn"],
                         choices=system_names())
    compare.add_argument("--dataset", default="reddit",
                         choices=dataset_names())
    compare.add_argument("--workers", type=int, default=6)
    compare.add_argument("--layers", type=int, default=2)
    compare.add_argument("--hidden", type=int, default=16)
    compare.add_argument("--epochs", type=int, default=60)
    compare.set_defaults(func=_cmd_compare)

    part = sub.add_parser("partition", help="partition quality statistics")
    part.add_argument("--dataset", default="reddit", choices=dataset_names())
    part.add_argument("--workers", type=int, default=6)
    part.add_argument("--methods", nargs="+",
                      default=["hash", "bfs", "metis"],
                      choices=["hash", "bfs", "metis", "spectral"])
    part.set_defaults(func=_cmd_partition)

    trace = sub.add_parser(
        "trace", help="instrumented run: export Chrome trace + metrics"
    )
    trace.add_argument("--system", default="ecgraph", choices=system_names())
    trace.add_argument("--dataset", default="cora", choices=dataset_names())
    trace.add_argument("--workers", type=int, default=4)
    trace.add_argument("--layers", type=int, default=2)
    trace.add_argument("--hidden", type=int, default=16)
    trace.add_argument("--epochs", type=int, default=10)
    trace.add_argument("--out", default="traces",
                       help="output directory for trace.json / spans.jsonl "
                            "/ telemetry.json")
    trace.add_argument("--smoke", action="store_true",
                       help="tiny profile, <=3 epochs (CI smoke test)")
    trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
