"""Train GCN, GraphSAGE and GAT on the same cluster and compare.

Demonstrates the paper's generality claim (section III-B): the EC-Graph
pipeline is model-agnostic as long as the model exchanges embeddings in
the forward pass and embedding gradients in the backward pass. Each
model here runs with the full error-compensated pipeline, then results
are exported to ``runs_model_zoo.json`` for downstream analysis.

    python examples/model_zoo.py
"""

from __future__ import annotations

from repro import ECGraphConfig
from repro.analysis.export import export_json
from repro.analysis.reporting import format_table
from repro.cluster import ClusterSpec
from repro.core import ECGraphTrainer, GATTrainer, ModelConfig, SAGETrainer
from repro.graph import load_dataset

EPOCHS = 80
WORKERS = 4


def main() -> None:
    graph = load_dataset("pubmed", profile="bench", seed=0)
    print(graph.summary())
    print()

    config = ECGraphConfig()  # the full paper pipeline
    spec = ClusterSpec(num_workers=WORKERS)

    trainers = {
        "GCN": ECGraphTrainer(
            graph, ModelConfig(num_layers=2, hidden_dim=16), spec, config,
        ),
        "GraphSAGE": SAGETrainer(
            graph, ModelConfig(num_layers=2, hidden_dim=16, model="sage"),
            spec, config,
        ),
        "GAT": GATTrainer(
            graph, ModelConfig(num_layers=2, hidden_dim=16), spec, config,
        ),
    }

    runs = []
    rows = []
    for name, trainer in trainers.items():
        run = trainer.train(EPOCHS, name=name, patience=30)
        runs.append(run)
        rows.append([
            name,
            run.num_epochs,
            run.best_test_accuracy(),
            run.final_test_accuracy,
            f"{run.total_bytes() / 1e6:.1f}MB",
            f"{run.avg_epoch_seconds() * 1e3:.2f}ms",
        ])
    print(format_table(
        ["model", "epochs", "best acc", "final acc", "traffic",
         "epoch time"],
        rows,
        title=f"Model zoo on {graph.name} with the full EC-Graph pipeline",
    ))

    export_json(runs, "runs_model_zoo.json")
    print("\nPer-epoch records exported to runs_model_zoo.json")


if __name__ == "__main__":
    main()
