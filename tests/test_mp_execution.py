"""Behavioural tests of the multiprocess execution backend.

Bit-identity against the sync goldens lives in
``test_engine_equivalence.py`` (``TestMultiprocessBitIdentity``); this
module covers everything else the process backend must get right:
shared-memory hygiene (no ``/dev/shm`` residue, even after a worker is
SIGKILLed mid-run), idempotent teardown, real-process crash recovery,
backpressure with payloads larger than a pipe buffer, the one-time GIL
warning for the thread fan-out, and the elastic-membership gate.
"""

from __future__ import annotations

import os
import signal
import warnings

import pytest

from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.trainer import ECGraphTrainer, _reset_thread_warning
from repro.faults.config import FaultConfig
from repro.graph.generators import GraphSpec, generate_graph

SHM_DIR = "/dev/shm"


@pytest.fixture(scope="module")
def graph():
    return generate_graph(GraphSpec(
        name="mp", num_vertices=72, avg_degree=5.0, feature_dim=8,
        num_classes=3, homophily=0.9, feature_noise=0.8,
        train=30, val=12, test=24, seed=11,
    ))


def _mp_trainer(graph, **overrides):
    config = ECGraphConfig(seed=0, execution="multiprocess", **overrides)
    return ECGraphTrainer(
        graph, ModelConfig(num_layers=2, hidden_dim=16),
        ClusterSpec(num_workers=3, num_servers=1), config,
    )


def _shm_entries(token: str) -> list[str]:
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-Linux hosts
        pytest.skip("/dev/shm not available")
    return [n for n in os.listdir(SHM_DIR) if token in n]


class TestSharedMemoryHygiene:
    def test_close_unlinks_every_segment(self, graph):
        trainer = _mp_trainer(graph)
        trainer.run_epoch(0)
        token = trainer.engine.ctx.executor.store.token
        assert _shm_entries(token), "expected live segments during training"
        trainer.close()
        assert _shm_entries(token) == []

    def test_killed_worker_leaves_no_residue(self, graph):
        trainer = _mp_trainer(graph)
        trainer.run_epoch(0)
        executor = trainer.engine.ctx.executor
        token = executor.store.token
        victim = executor.worker_pids[0]
        os.kill(victim, signal.SIGKILL)
        # close() must reap the dead process and unlink cleanly: only
        # the supervisor ever unlinks, so a SIGKILLed worker (which
        # never runs teardown) cannot strand a segment.
        trainer.close()
        assert _shm_entries(token) == []

    def test_double_close_is_a_noop(self, graph):
        trainer = _mp_trainer(graph)
        trainer.run_epoch(0)
        trainer.close()
        trainer.close()

    def test_store_double_close_direct(self):
        from repro.mp import SharedStore

        store = SharedStore()
        store.allocate("x", (4, 4))
        store.close()
        store.close()
        assert _shm_entries(store.token) == []


class TestCrashRecovery:
    def test_crash_respawns_a_fresh_process(self, graph):
        trainer = _mp_trainer(graph)
        trainer.run_epoch(0)
        executor = trainer.engine.ctx.executor
        old_pid = executor.worker_pids[1]
        try:
            executor.on_worker_crash(1)
            new_pid = executor.worker_pids[1]
            assert new_pid != old_pid
            assert os.getpid() not in (old_pid, new_pid)
            # The respawned worker participates in the next epoch.
            result = trainer.run_epoch(1)
            assert result.loss == result.loss  # not NaN
        finally:
            trainer.close()

    def test_chaos_crash_scenario_under_multiprocess(self, graph, tmp_path):
        from repro.faults.chaos import run_chaos

        report = run_chaos(
            graph, "crash", num_workers=3, num_epochs=4, seed=0,
            checkpoint_dir=str(tmp_path), execution="multiprocess",
        )
        assert report.survived
        assert report.counters.crashes >= 1


class TestBackpressure:
    def test_large_payloads_do_not_deadlock(self):
        # W1 alone is 128x128 float64 = 131 KB — past the 64 KB pipe
        # buffer, so a naive broadcast that sends before any worker
        # drains would block forever. The protocol survives because
        # workers park in recv() between rounds; the alarm turns a
        # regression into a failure instead of a hang.
        graph = generate_graph(GraphSpec(
            name="wide", num_vertices=64, avg_degree=4.0, feature_dim=128,
            num_classes=3, homophily=0.9, feature_noise=0.8,
            train=24, val=12, test=16, seed=5,
        ))
        trainer = ECGraphTrainer(
            graph, ModelConfig(num_layers=2, hidden_dim=128),
            ClusterSpec(num_workers=3, num_servers=1),
            ECGraphConfig(seed=0, execution="multiprocess"),
        )
        previous = signal.alarm(180)
        try:
            for t in range(2):
                trainer.run_epoch(t)
        finally:
            signal.alarm(previous)
            trainer.close()


class TestThreadWarningAndGates:
    def test_gil_thread_warning_emitted_once(self, graph):
        _reset_thread_warning()
        first = ECGraphTrainer(
            graph, ModelConfig(num_layers=2, hidden_dim=16),
            ClusterSpec(num_workers=3, num_servers=1),
            ECGraphConfig(seed=0, exchange_threads=4),
        )
        with pytest.warns(RuntimeWarning, match="GIL"):
            first.setup()
        first.close()

        second = ECGraphTrainer(
            graph, ModelConfig(num_layers=2, hidden_dim=16),
            ClusterSpec(num_workers=3, num_servers=1),
            ECGraphConfig(seed=0, exchange_threads=4),
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            second.setup()
        second.close()
        assert [w for w in caught if w.category is RuntimeWarning] == []

    def test_multiprocess_forces_serial_exchange(self, graph):
        _reset_thread_warning()
        trainer = _mp_trainer(graph, exchange_threads=4)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            trainer.setup()
        try:
            assert [w for w in caught if w.category is RuntimeWarning] == []
        finally:
            trainer.close()

    def test_elastic_membership_is_rejected(self, graph):
        trainer = _mp_trainer(
            graph, faults=FaultConfig(elastic=True)
        )
        with pytest.raises(ValueError, match="elastic"):
            trainer.setup()


class TestConfigSurface:
    def test_unknown_execution_mode_rejected(self):
        with pytest.raises(ValueError, match="execution"):
            ECGraphConfig(execution="threads")

    def test_context_manager_closes(self, graph):
        with _mp_trainer(graph) as trainer:
            trainer.run_epoch(0)
            token = trainer.engine.ctx.executor.store.token
        assert _shm_entries(token) == []
