"""Tests for traffic breakdowns and the trainer's LR-schedule hook."""

import pytest

from repro.analysis.traffic import (
    dominant_category,
    measure_traffic,
    snapshot_table,
    traffic_by_category,
    traffic_table,
)
from repro.cluster.engine import EpochBreakdown
from repro.cluster.network import TrafficMeter
from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.results import ConvergenceRun, EpochResult
from repro.core.trainer import ECGraphTrainer
from repro.nn.lr_schedule import StepDecayLR


def _run_with_categories(name, per_epoch):
    run = ConvergenceRun(name=name)
    for i, categories in enumerate(per_epoch):
        run.epochs.append(EpochResult(
            epoch=i, loss=0.5, train_accuracy=0.5, val_accuracy=0.5,
            test_accuracy=0.5,
            breakdown=EpochBreakdown(
                0.0, 0.0, 0.0, sum(categories.values()), categories,
            ),
        ))
    return run


class TestTrafficBreakdown:
    def test_totals_accumulate_over_epochs(self):
        run = _run_with_categories("a", [
            {"fp": 100, "bp": 50},
            {"fp": 200},
        ])
        assert traffic_by_category(run) == {"fp": 300, "bp": 50}

    def test_dominant(self):
        run = _run_with_categories("a", [{"fp": 10, "bp": 90}])
        assert dominant_category(run) == "bp"

    def test_dominant_empty_run(self):
        assert dominant_category(ConvergenceRun(name="x")) is None

    def test_table_orders_by_grand_total(self):
        runs = [
            _run_with_categories("a", [{"fp": 1 << 21, "bp": 1024}]),
            _run_with_categories("b", [{"bp": 2048}]),
        ]
        table = traffic_table(runs)
        assert table.index("fp") < table.index("bp")
        assert "2.0MB" in table
        assert "2.0KB" in table

    def test_real_run_categories(self, small_graph):
        trainer = ECGraphTrainer(
            small_graph, ModelConfig(num_layers=2, hidden_dim=4),
            ClusterSpec(num_workers=3),
            ECGraphConfig(fp_mode="raw", bp_mode="raw"),
        )
        run = trainer.train(3)
        totals = traffic_by_category(run)
        assert set(totals) >= {"fp_embeddings", "bp_gradients",
                               "param_pull", "param_push"}
        assert dominant_category(run) in totals


class TestSnapshotHelpers:
    def test_measure_traffic_isolates_the_call(self):
        meter = TrafficMeter()
        meter.charge(0, 1, 1000, "earlier")  # pre-existing lifetime bytes
        delta = measure_traffic(
            meter, lambda: meter.charge(0, 1, 64, "fp_embeddings")
        )
        assert delta.total_bytes == 64
        assert delta.category_bytes == {"fp_embeddings": 64}

    def test_measure_traffic_on_real_epoch(self, small_graph):
        trainer = ECGraphTrainer(
            small_graph, ModelConfig(num_layers=2, hidden_dim=4),
            ClusterSpec(num_workers=2),
            ECGraphConfig(fp_mode="raw", bp_mode="raw"),
        )
        trainer.setup()
        delta = measure_traffic(trainer.runtime.meter,
                                lambda: trainer.run_epoch(0))
        result = trainer.run_epoch(1)
        # One epoch's delta equals the per-epoch breakdown the engine
        # reports (full-batch epochs are byte-deterministic).
        assert delta.total_bytes == result.breakdown.bytes_sent

    def test_snapshot_table(self):
        meter = TrafficMeter()
        meter.charge(0, 1, 100, "fp")
        first = meter.snapshot()
        meter.charge(0, 1, 50, "bp")
        table = snapshot_table({
            "setup": first,
            "epoch0": meter.snapshot().delta(first),
        })
        assert "setup" in table and "epoch0" in table
        assert table.index("fp") < table.index("bp")


class TestLRScheduleHook:
    def test_schedule_applied_each_epoch(self, small_graph):
        trainer = ECGraphTrainer(
            small_graph, ModelConfig(num_layers=2, hidden_dim=4),
            ClusterSpec(num_workers=2),
            ECGraphConfig(fp_mode="raw", bp_mode="raw",
                          learning_rate=1.0, optimizer="sgd"),
        )
        seen = []
        trainer.train(
            6, lr_schedule=lambda t: seen.append(t) or 0.1 * (t + 1)
        )
        assert seen == list(range(6))
        # Last applied rate is visible on the server optimizers.
        assert trainer.servers._optimizers[0].lr == pytest.approx(0.6)

    def test_step_decay_improves_stability(self, medium_graph):
        """A decaying schedule must at least train successfully."""
        trainer = ECGraphTrainer(
            medium_graph, ModelConfig(num_layers=2, hidden_dim=8),
            ClusterSpec(num_workers=2),
            ECGraphConfig(fp_mode="raw", bp_mode="raw", learning_rate=0.05),
        )
        run = trainer.train(
            30, lr_schedule=StepDecayLR(base_lr=0.05, step_size=10,
                                        gamma=0.5),
        )
        assert run.best_test_accuracy() > 0.5

    def test_invalid_rate_rejected(self, small_graph):
        trainer = ECGraphTrainer(
            small_graph, ModelConfig(num_layers=2, hidden_dim=4),
            ClusterSpec(num_workers=2),
            ECGraphConfig(fp_mode="raw", bp_mode="raw"),
        )
        with pytest.raises(ValueError):
            trainer.train(2, lr_schedule=lambda t: 0.0)
