"""Per-worker state for distributed full-batch training.

Each worker owns a partition of the vertices and keeps:

* its rows of the *globally normalized* adjacency, with columns in a
  compact local space (owned vertices first, then the halo of remote
  1-hop neighbours),
* local slices of features, labels and split masks,
* the request plan: which vertex rows it needs from each remote owner and
  where they scatter into its halo buffer, plus the serve plan for the
  symmetric direction,
* the forward caches (``H``, ``Z``, ``A H``) needed by the backward pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.sparse import csr_matrix

from repro.core.gcn_math import LayerForwardCache
from repro.graph.attributed import AttributedGraph
from repro.graph.csr import CSRGraph
from repro.graph.store.base import GraphStore, GraphStoreBundle, as_bundle
from repro.graph.subgraph import LocalSubgraph, induced_subgraph
from repro.partition.base import Partition

__all__ = ["WorkerState", "build_worker_states"]


@dataclass
class WorkerState:
    """Everything one worker holds between communication steps.

    Attributes:
        worker_id: This worker's index.
        sub: The worker's :class:`LocalSubgraph` over the normalized
            adjacency.
        a_local: ``(n_local, n_local + n_halo)`` sparse adjacency rows.
        features / labels / masks: Local slices, in local-vertex order.
        requests: owner -> global ids this worker fetches each layer.
        halo_slots: owner -> positions of those ids in the halo buffer.
        serves: requester -> local row indices this worker ships to it.
        caches: Forward caches per layer (index 0 unused).
        grad_rows: ``G^l`` rows for the local vertices, per layer.
    """

    worker_id: int
    sub: LocalSubgraph
    a_local: csr_matrix
    features: np.ndarray
    labels: np.ndarray
    train_mask: np.ndarray
    val_mask: np.ndarray
    test_mask: np.ndarray
    requests: dict[int, np.ndarray]
    halo_slots: dict[int, np.ndarray]
    serves: dict[int, np.ndarray]
    caches: list[LayerForwardCache | None] = field(default_factory=list)
    grad_rows: list[np.ndarray | None] = field(default_factory=list)
    halo_features: np.ndarray | None = None

    @property
    def num_local(self) -> int:
        return self.sub.num_local

    @property
    def num_halo(self) -> int:
        return self.sub.num_remote

    def stats(self) -> dict[str, int]:
        """Topology gauges for telemetry: partition shape of this worker."""
        return {
            "local_vertices": self.num_local,
            "halo_vertices": self.num_halo,
            "local_edges": int(self.a_local.nnz),
            "train_vertices": int(self.train_mask.sum()),
            "peers": len(self.requests),
        }

    def local_output(self, layer: int) -> np.ndarray:
        """``H^layer`` rows for the local vertices (layer >= 1)."""
        cache = self.caches[layer]
        if cache is None:
            raise RuntimeError(f"layer {layer} has not run forward yet")
        return cache.output

    def reset_iteration(self, num_layers: int) -> None:
        """Clear per-iteration caches before a new forward pass."""
        self.caches = [None] * (num_layers + 1)
        self.grad_rows = [None] * (num_layers + 1)

    def crash_reset(self, num_layers: int) -> None:
        """Wipe everything a crashed worker loses.

        The static partition state (adjacency rows, feature/label shards,
        request/serve plans) rebuilds from local storage, but the forward
        caches, gradient rows and the first-hop halo-feature cache lived
        in memory only — recovery must refetch the halo features from
        the owning workers (see ``ECGraphTrainer._recover_workers``).
        """
        self.reset_iteration(num_layers)
        self.halo_features = None


def build_worker_states(
    graph: AttributedGraph | GraphStoreBundle,
    normalized: CSRGraph | GraphStore,
    partition: Partition,
) -> list[WorkerState]:
    """Construct all worker states for a partitioned training run.

    Args:
        graph: The attributed input graph (features/labels/masks), either
            resident or behind a :class:`GraphStoreBundle` — worker
            feature/label shards are gathered through the store row API,
            so an mmap-backed bundle never materializes the full matrix.
        normalized: The *globally* normalized adjacency (GCN or row
            normalization must happen before partitioning so degrees are
            global); a :class:`CSRGraph` or a (possibly lazy)
            :class:`GraphStore` view.
        partition: Vertex-to-worker assignment.
    """
    bundle = as_bundle(graph)
    if partition.num_vertices != bundle.num_vertices:
        raise ValueError("partition does not match the graph")
    states: list[WorkerState] = []
    subs: list[LocalSubgraph] = []
    for worker in range(partition.num_parts):
        local = partition.part_vertices(worker)
        subs.append(induced_subgraph(normalized, local))

    assignment = partition.assignment
    # Local row index of every vertex on its owner (owners list vertices
    # in ascending global order, so searchsorted gives the row).
    owner_vertex_lists = [subs[w].local_vertices for w in range(partition.num_parts)]

    for worker in range(partition.num_parts):
        sub = subs[worker]
        n_cols = sub.num_local + sub.num_remote
        a_local = csr_matrix(
            (
                sub.weights
                if sub.weights is not None
                else np.ones(sub.num_edges, dtype=np.float32),
                sub.indices,
                sub.indptr,
            ),
            shape=(sub.num_local, n_cols),
        )

        requests: dict[int, np.ndarray] = {}
        halo_slots: dict[int, np.ndarray] = {}
        if sub.num_remote:
            owners = assignment[sub.remote_vertices]
            for owner in np.unique(owners):
                mask = owners == owner
                requests[int(owner)] = sub.remote_vertices[mask]
                halo_slots[int(owner)] = np.flatnonzero(mask).astype(np.int64)

        states.append(
            WorkerState(
                worker_id=worker,
                sub=sub,
                a_local=a_local,
                features=bundle.feature_store.rows(sub.local_vertices),
                labels=bundle.labels[sub.local_vertices],
                train_mask=bundle.train_mask[sub.local_vertices],
                val_mask=bundle.val_mask[sub.local_vertices],
                test_mask=bundle.test_mask[sub.local_vertices],
                requests=requests,
                halo_slots=halo_slots,
                serves={},
            )
        )

    # Serve plans are the mirror of the request plans.
    for state in states:
        for owner, wanted in state.requests.items():
            rows = np.searchsorted(owner_vertex_lists[owner], wanted)
            states[owner].serves[state.worker_id] = rows.astype(np.int64)

    return states
